package bullet

// The Protocol/Deployment API: one uniform way to deploy any protocol
// in this repository into a World and drive it at runtime.
//
// A Protocol is anything deployable — Bullet itself, the plain tree
// streamer, push gossip, streaming + anti-entropy — and each ships as
// a small config struct implementing the interface, registered by name
// ("bullet", "streamer", "gossip", "anti-entropy"). A Deployment is
// the runtime handle every deploy returns: metrics, per-node
// introspection, teardown, and — the capability the old Deploy*
// methods could not express — membership churn. Crash, Restart, and
// Join compose with link dynamics through scenarios:
//
//	w, _ := bullet.NewWorld(bullet.WorldConfig{Seed: 1})
//	tree, _ := w.RandomTree(5)
//	p, _ := bullet.ProtocolByName("bullet")
//	d, _ := w.Deploy(p, tree)
//	w.Scenario(bullet.NewScenario().
//	    At(60*bullet.Second, bullet.CrashNode(tree.Participants[7])).
//	    At(90*bullet.Second, bullet.RestartNode(tree.Participants[7])))
//	w.Run(150 * bullet.Second)
//	fmt.Println(d.Collector().MeanOver(100*bullet.Second, 150*bullet.Second, bullet.Useful))

import (
	"fmt"
	"sort"

	"bullet/internal/adversary"
	"bullet/internal/core"
	"bullet/internal/epidemic"
	"bullet/internal/experiments"
	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/sim"
	"bullet/internal/streamer"
	"bullet/internal/workload"
)

// Protocol is anything deployable into a World over a distribution
// tree. Implementations are value-ish config holders; Deploy wires the
// protocol into the world's emulator and returns its runtime handle.
// Deploy through World.Deploy (which tracks the deployment so
// scenarios can reach it), not by calling this method directly.
type Protocol interface {
	// Name identifies the protocol (registry key, Deployment.Protocol).
	Name() string
	// Deploy instantiates the protocol over tree in w. Protocols that
	// need no tree (gossip) accept nil; tree-based protocols reject it.
	Deploy(w *World, tree *Tree) (Deployment, error)
}

// Deployment is the uniform runtime handle a deploy returns.
type Deployment interface {
	// Protocol returns the deploying protocol's name.
	Protocol() string
	// Collector returns the deployment's metrics sink.
	Collector() *Collector
	// Workload returns the source driving packet generation: the one
	// configured on the protocol, or the default CBR stream. Finite
	// workloads (File) additionally arm the collector's per-node
	// completion tracking (Collector.CompletionCDF).
	Workload() Workload
	// Tree returns the distribution tree (shared, live — membership
	// changes mutate it), or nil for mesh-only protocols like gossip.
	Tree() *Tree
	// Nodes returns the ids of live participants in sorted order.
	Nodes() []int
	// Live reports whether node is a current, non-crashed participant.
	Live(node int) bool
	// MemberEpoch counts membership changes (crashes, restarts, joins)
	// applied so far.
	MemberEpoch() int
	// Shard returns the index of the simulation shard executing node's
	// events (always 0 in a serial world). Purely informational: which
	// shard a node lands on never changes what the simulation computes.
	Shard(node int) int
	// Shards returns the world's effective shard count (1 = serial).
	Shards() int
	// Crash fails node mid-run. Recovery is protocol-defined: Bullet
	// re-parents the orphans after its failover delay and re-installs
	// Bloom filters at live peers; the plain streamer's subtree simply
	// starves. The source (tree root) cannot crash.
	Crash(node int) error
	// Restart brings a crashed node back.
	Restart(node int) error
	// Join admits a brand-new participant at the protocol's
	// deterministic join point.
	Join(node int) error
	// Colluders returns the ids compromised by the deployment's
	// adversary fleet in ascending order (nil without WithAdversary).
	// Filter these out with MinKbpsOverNodes/honest-subset metrics to
	// measure the goodput honest participants actually see.
	Colluders() []int
	// Stop tears the deployment down; the world keeps running.
	Stop()
}

// runtimeSystem is the contract every internal protocol system
// satisfies; deployment adapts it to the public Deployment interface.
type runtimeSystem interface {
	Crash(node int) error
	Restart(node int) error
	Join(node int) error
	Stop()
	Live(node int) bool
	LiveNodes() []int
	MemberEpoch() int
	Workload() workload.Source
}

// advSystem is the adversary contract the internal protocol systems
// satisfy (narrow hooks; see internal/adversary).
type advSystem interface {
	SetAdversary(*adversary.Fleet)
	Compromise(nodes []int)
	Strike()
}

// deployment is the stock Deployment implementation shared by the four
// built-in protocols.
type deployment struct {
	name string
	col  *Collector
	tree *Tree // nil for gossip
	sys  runtimeSystem
	net  *netem.Network

	// fleet/adv are set by WithAdversary: the seeded hostile fleet and
	// the protocol system's adversary hook surface.
	fleet *adversary.Fleet
	adv   advSystem
}

func (d *deployment) Protocol() string       { return d.name }
func (d *deployment) Collector() *Collector  { return d.col }
func (d *deployment) Workload() Workload     { return d.sys.Workload() }
func (d *deployment) Tree() *Tree            { return d.tree }
func (d *deployment) Nodes() []int           { return d.sys.LiveNodes() }
func (d *deployment) Live(node int) bool     { return d.sys.Live(node) }
func (d *deployment) MemberEpoch() int       { return d.sys.MemberEpoch() }
func (d *deployment) Shard(node int) int     { return d.net.ShardOf(node) }
func (d *deployment) Shards() int            { return d.net.Shards() }
func (d *deployment) Crash(node int) error   { return d.sys.Crash(node) }
func (d *deployment) Restart(node int) error { return d.sys.Restart(node) }
func (d *deployment) Join(node int) error    { return d.sys.Join(node) }
func (d *deployment) Stop()                  { d.sys.Stop() }

func (d *deployment) Colluders() []int {
	if d.fleet == nil {
		return nil
	}
	return append([]int(nil), d.fleet.Colluders()...)
}

// compromise/strike forward scenario adversary actions to the
// protocol system; no-ops without WithAdversary.
func (d *deployment) compromise(nodes []int) {
	if d.adv != nil {
		d.adv.Compromise(nodes)
	}
}

func (d *deployment) strike() {
	if d.adv != nil {
		d.adv.Strike()
	}
}

// DeployOption configures a single World.Deploy call.
type DeployOption func(*deployOptions)

type deployOptions struct {
	adv Adversary
}

// WithAdversary deploys the protocol with a seeded hostile-peer fleet
// attached: a pure-function-of-(seed, model, scale) subset of the
// participants is compromised at deploy time, but behaves honestly
// until a scenario's AdversaryAt action strikes. See bullet.Adversary
// for the models.
func WithAdversary(a Adversary) DeployOption {
	return func(o *deployOptions) { o.adv = a }
}

// Deploy instantiates p over tree and registers the deployment with
// this world, so scenario membership actions (CrashNode, RestartNode,
// JoinNode, ChurnNodes) and adversary actions (CompromiseNodes,
// AdversaryAt) reach it. This is the one generic entry point every
// protocol deploys through; resolve registered protocols by name with
// ProtocolByName.
func (w *World) Deploy(p Protocol, tree *Tree, opts ...DeployOption) (Deployment, error) {
	var o deployOptions
	for _, opt := range opts {
		opt(&o)
	}
	d, err := p.Deploy(w, tree)
	if err != nil {
		return nil, err
	}
	if o.adv.Model != AdvNone {
		if err := attachAdversary(w, d, tree, o.adv); err != nil {
			return nil, err
		}
	}
	w.deployments = append(w.deployments, d)
	return d, nil
}

// attachAdversary builds the seeded fleet over the deployment's
// participant set and hands it to the protocol system's hooks.
func attachAdversary(w *World, d Deployment, tree *Tree, cfg Adversary) error {
	dd, ok := d.(*deployment)
	if !ok {
		return fmt.Errorf("bullet: deployment %q does not support adversaries", d.Protocol())
	}
	sys, ok := dd.sys.(advSystem)
	if !ok {
		return fmt.Errorf("bullet: protocol %q does not support adversaries", d.Protocol())
	}
	participants, root := w.g.Clients, w.g.Clients[0]
	if tree != nil {
		participants, root = tree.Participants, tree.Root
	}
	fleet := adversary.New(cfg, participants, root, w.eng.Seed())
	sys.SetAdversary(fleet)
	dd.fleet, dd.adv = fleet, sys
	return nil
}

// Deployments returns the deployments tracked by this world, in deploy
// order.
func (w *World) Deployments() []Deployment {
	return append([]Deployment(nil), w.deployments...)
}

// Crash forwards to every deployment in this world (scenario
// CrashNode actions land here). It succeeds if any deployment accepted
// the operation; with no deployments it reports an error.
func (w *World) Crash(node int) error {
	return w.forEachDeployment("crash", func(d Deployment) error { return d.Crash(node) })
}

// Restart forwards to every deployment in this world.
func (w *World) Restart(node int) error {
	return w.forEachDeployment("restart", func(d Deployment) error { return d.Restart(node) })
}

// Join forwards to every deployment in this world.
func (w *World) Join(node int) error {
	return w.forEachDeployment("join", func(d Deployment) error { return d.Join(node) })
}

// Compromise forwards to every deployment with an attached adversary
// fleet (scenario CompromiseNodes actions land here). Deployments
// without one ignore it.
func (w *World) Compromise(nodes []int) {
	for _, d := range w.deployments {
		if dd, ok := d.(*deployment); ok {
			dd.compromise(nodes)
		}
	}
}

// Strike fires every attached adversary fleet (scenario AdversaryAt
// actions land here).
func (w *World) Strike() {
	for _, d := range w.deployments {
		if dd, ok := d.(*deployment); ok {
			dd.strike()
		}
	}
}

func (w *World) forEachDeployment(op string, fn func(Deployment) error) error {
	if len(w.deployments) == 0 {
		return fmt.Errorf("bullet: no deployment to %s in", op)
	}
	var firstErr error
	ok := false
	for _, d := range w.deployments {
		if err := fn(d); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			ok = true
		}
	}
	if ok {
		return nil
	}
	return firstErr
}

// ---------------------------------------------------------------------
// Protocol registry
// ---------------------------------------------------------------------

// protocolFactories maps protocol names to default-config factories.
var protocolFactories = map[string]func() Protocol{
	"bullet": func() Protocol { return BulletProtocol{Config: DefaultConfig(600)} },
	"streamer": func() Protocol {
		return StreamerProtocol{Config: StreamConfig{
			RateKbps: 600, PacketSize: 1500, Duration: 300 * sim.Second}}
	},
	"gossip": func() Protocol {
		return GossipProtocol{Config: GossipConfig{
			RateKbps: 600, PacketSize: 1500, Duration: 300 * sim.Second, Fanout: 5}}
	},
	"anti-entropy": func() Protocol {
		return AntiEntropyProtocol{Config: AntiEntropyConfig{
			RateKbps: 600, PacketSize: 1500, Duration: 300 * sim.Second,
			Epoch: 20 * sim.Second, Peers: 5, Window: 2000}}
	},
}

// RegisterProtocol adds (or replaces) a named protocol factory, so
// external protocol implementations deploy through the same by-name
// path as the built-ins.
func RegisterProtocol(name string, factory func() Protocol) {
	protocolFactories[name] = factory
}

// Protocols returns the registered protocol names in sorted order.
func Protocols() []string {
	out := make([]string, 0, len(protocolFactories))
	for name := range protocolFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// UnknownProtocolError reports an unrecognized protocol name, with a
// did-you-mean Suggestion (the nearest registered name by edit
// distance) when one is plausibly close.
type UnknownProtocolError struct {
	Name       string
	Suggestion string
}

func (e *UnknownProtocolError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("bullet: unknown protocol %q (did you mean %q? have %v)",
			e.Name, e.Suggestion, Protocols())
	}
	return fmt.Sprintf("bullet: unknown protocol %q (have %v)", e.Name, Protocols())
}

// ProtocolByName returns a default-configured instance of the named
// protocol. Configure further by type-asserting to the concrete
// protocol struct, or construct the struct directly.
func ProtocolByName(name string) (Protocol, error) {
	f, ok := protocolFactories[name]
	if !ok {
		return nil, &UnknownProtocolError{Name: name, Suggestion: experiments.Nearest(name, Protocols())}
	}
	return f(), nil
}

// ---------------------------------------------------------------------
// Built-in protocol implementations
// ---------------------------------------------------------------------

// BulletProtocol deploys Bullet itself (the §3 mesh) with the given
// core configuration.
type BulletProtocol struct{ Config Config }

// Name implements Protocol.
func (BulletProtocol) Name() string { return "bullet" }

// Deploy implements Protocol.
func (p BulletProtocol) Deploy(w *World, tree *Tree) (Deployment, error) {
	if tree == nil {
		return nil, fmt.Errorf("bullet: protocol %q needs a tree", p.Name())
	}
	col := metrics.NewCollector(sim.Second)
	sys, err := core.Deploy(w.net, tree, p.Config, col)
	if err != nil {
		return nil, err
	}
	return &deployment{name: p.Name(), col: col, tree: tree, sys: sys, net: w.net}, nil
}

// StreamerProtocol deploys the plain tree-streaming baseline (§4.2).
// The Config passes through verbatim; ProtocolByName("streamer")
// returns a 600 Kbps / 300 s default.
type StreamerProtocol struct{ Config StreamConfig }

// Name implements Protocol.
func (StreamerProtocol) Name() string { return "streamer" }

// Deploy implements Protocol.
func (p StreamerProtocol) Deploy(w *World, tree *Tree) (Deployment, error) {
	if tree == nil {
		return nil, fmt.Errorf("bullet: protocol %q needs a tree", p.Name())
	}
	col := metrics.NewCollector(sim.Second)
	sys, err := streamer.Deploy(w.net, tree, p.Config, col)
	if err != nil {
		return nil, err
	}
	return &deployment{name: p.Name(), col: col, tree: tree, sys: sys, net: w.net}, nil
}

// GossipProtocol deploys the push-gossip baseline (§4.4). It needs no
// tree: passing one only selects the source (the tree root); with a
// nil tree the first world participant is the source.
// ProtocolByName("gossip") returns a 600 Kbps / 300 s default.
type GossipProtocol struct{ Config GossipConfig }

// Name implements Protocol.
func (GossipProtocol) Name() string { return "gossip" }

// Deploy implements Protocol.
func (p GossipProtocol) Deploy(w *World, tree *Tree) (Deployment, error) {
	source := w.g.Clients[0]
	if tree != nil {
		source = tree.Root
	}
	col := metrics.NewCollector(sim.Second)
	sys, err := epidemic.DeployGossip(w.net, w.g.Clients, source, p.Config, col)
	if err != nil {
		return nil, err
	}
	return &deployment{name: p.Name(), col: col, sys: sys, net: w.net}, nil
}

// AntiEntropyProtocol deploys streaming + anti-entropy recovery
// (§4.4). ProtocolByName("anti-entropy") returns a 600 Kbps / 300 s
// default with the paper's 20 s epoch.
type AntiEntropyProtocol struct{ Config AntiEntropyConfig }

// Name implements Protocol.
func (AntiEntropyProtocol) Name() string { return "anti-entropy" }

// Deploy implements Protocol.
func (p AntiEntropyProtocol) Deploy(w *World, tree *Tree) (Deployment, error) {
	if tree == nil {
		return nil, fmt.Errorf("bullet: protocol %q needs a tree", p.Name())
	}
	col := metrics.NewCollector(sim.Second)
	sys, err := epidemic.DeployAntiEntropy(w.net, tree, p.Config, col)
	if err != nil {
		return nil, err
	}
	return &deployment{name: p.Name(), col: col, tree: tree, sys: sys, net: w.net}, nil
}
