// Microbenchmarks for the event-dispatch hot path. Where bench_test.go
// measures whole experiments (seconds per iteration, gated loosely),
// these isolate the three layers the per-event cost decomposes into —
// engine dispatch, netem delivery, and arena churn — so a regression
// shows up attributed to its layer instead of smeared across a Figure 7
// run. All three report allocations: their steady states are designed
// to allocate nothing per event.
package bullet_test

import (
	"testing"

	"bullet/internal/arena"
	"bullet/internal/netem"
	"bullet/internal/sim"
	"bullet/internal/topology"
)

// BenchmarkEngineDispatchBatch drives the engine's batched dispatch
// loop: bursts of events sharing a deadline, the shape netem delivery
// and protocol timer storms produce. Each iteration schedules and
// executes 64 batches of 16 same-timestamp events.
func BenchmarkEngineDispatchBatch(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine(1)
	var fired int
	fn := func() { fired++ }
	const batches, perBatch = 64, 16
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for t := 1; t <= batches; t++ {
			at := base + sim.Time(t)*sim.Time(sim.Microsecond)
			for j := 0; j < perBatch; j++ {
				e.Schedule(at, fn)
			}
		}
		e.Run(base + sim.Time(batches+1)*sim.Time(sim.Microsecond))
	}
	if fired != b.N*batches*perBatch {
		b.Fatalf("fired %d events, want %d", fired, b.N*batches*perBatch)
	}
}

// BenchmarkNetemDeliverBurst pushes a burst of data packets across a
// three-hop path (client-stub-stub-client) per iteration: the emulator
// hop/deliver path with link serialization, queuing, and handler
// dispatch, but no protocol logic on top.
func BenchmarkNetemDeliverBurst(b *testing.B) {
	b.ReportAllocs()
	const burst = 256
	bld := topology.NewBuilder()
	c0 := bld.AddNode(topology.Client, 0, 0)
	s0 := bld.AddNode(topology.Stub, 1, 0)
	s1 := bld.AddNode(topology.Stub, 2, 0)
	c1 := bld.AddNode(topology.Client, 3, 0)
	bld.AddLink(c0, s0, topology.ClientStub, 1e6, sim.Millisecond, 0)
	bld.AddLink(s0, s1, topology.StubStub, 1e6, 2*sim.Millisecond, 0)
	bld.AddLink(s1, c1, topology.ClientStub, 1e6, sim.Millisecond, 0)
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(1)
	net := netem.New(eng, g, topology.NewRouter(g), netem.Config{})
	delivered := 0
	net.Register(c1, func(pkt netem.Packet) { delivered++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			net.Send(netem.Packet{Kind: netem.Data, Seq: uint64(j), Size: 1500, From: c0, To: c1})
		}
		eng.Run(eng.Now() + 10*sim.Time(sim.Second))
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no packets delivered")
	}
}

// BenchmarkArenaChurn cycles 512 in-flight objects through a shard
// arena per iteration — the allocate/retire rhythm of packet delivery.
// Steady state must be allocation-free: every Get after the first lap
// is served from the free list.
func BenchmarkArenaChurn(b *testing.B) {
	b.ReportAllocs()
	var ar arena.Arena[[64]byte]
	buf := make([]*[64]byte, 512)
	for i := 0; i < b.N; i++ {
		for j := range buf {
			buf[j] = ar.Get()
		}
		for j := range buf {
			ar.Put(buf[j])
		}
	}
}
