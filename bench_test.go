// Benchmarks: one per paper table/figure (regenerating the experiment
// at small scale and reporting the headline numbers as custom metrics)
// plus ablation benches for the design choices DESIGN.md calls out.
// Run with:
//
//	go test -bench=. -benchmem
//
// The custom metrics (useful_kbps, dup_ratio, ...) are the values
// EXPERIMENTS.md tracks against the paper.
package bullet_test

import (
	"testing"

	"bullet"
)

func benchExperiment(b *testing.B, id string, report func(b *testing.B, r *bullet.ExperimentResult)) {
	b.Helper()
	// B/op and allocs/op are gated by cmd/benchgate alongside ns/op, so
	// every experiment bench reports them even without -benchmem.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := bullet.RunExperiment(id, bullet.SmallScale, 42)
		if err != nil {
			b.Fatal(err)
		}
		if report != nil {
			report(b, r)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, "table1", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["generated.nodes"], "topo_nodes")
	})
}

func BenchmarkFig06(b *testing.B) {
	benchExperiment(b, "fig6", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.MeanTail("bottleneck_tree", 0.4), "bottleneck_kbps")
		b.ReportMetric(r.MeanTail("random_tree", 0.4), "random_kbps")
	})
}

func BenchmarkFig07(b *testing.B) {
	benchExperiment(b, "fig7", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.MeanTail("useful_total", 0.4), "useful_kbps")
		b.ReportMetric(r.MeanTail("raw_total", 0.4), "raw_kbps")
		b.ReportMetric(r.Summary["duplicate_ratio"], "dup_ratio")
		b.ReportMetric(r.Summary["control_overhead_kbps"], "control_kbps")
		b.ReportMetric(r.Summary["link_stress_avg"], "link_stress")
	})
}

// BenchmarkFig07Sharded is the same Figure 7 run partitioned into 4
// simulation shards. Its output (and so every reported metric) is
// byte-identical to BenchmarkFig07's; only ns/op should differ — this
// is the wall-clock win of the parallel engine on multi-core hosts.
func BenchmarkFig07Sharded(b *testing.B) {
	b.ReportAllocs()
	sc := bullet.SmallScale
	sc.Shards = 4
	for i := 0; i < b.N; i++ {
		r, err := bullet.RunExperiment("fig7", sc, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanTail("useful_total", 0.4), "useful_kbps")
		b.ReportMetric(r.Summary["duplicate_ratio"], "dup_ratio")
	}
}

func BenchmarkFig08(b *testing.B) {
	benchExperiment(b, "fig8", func(b *testing.B, r *bullet.ExperimentResult) {
		if len(r.CDF) > 0 {
			b.ReportMetric(r.CDF[len(r.CDF)/2], "median_kbps")
			b.ReportMetric(r.CDF[len(r.CDF)/10], "p10_kbps")
		}
	})
}

func BenchmarkFig09(b *testing.B) {
	benchExperiment(b, "fig9", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.MeanTail("bullet_low", 0.4), "bullet_low_kbps")
		b.ReportMetric(r.MeanTail("bottleneck_tree_low", 0.4), "tree_low_kbps")
		b.ReportMetric(r.MeanTail("bullet_high", 0.4), "bullet_high_kbps")
		b.ReportMetric(r.MeanTail("bottleneck_tree_high", 0.4), "tree_high_kbps")
	})
}

func BenchmarkFig10(b *testing.B) {
	benchExperiment(b, "fig10", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.MeanTail("useful_total", 0.4), "nondisjoint_useful_kbps")
	})
}

func BenchmarkFig11(b *testing.B) {
	benchExperiment(b, "fig11", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.MeanTail("bullet_useful", 0.4), "bullet_kbps")
		b.ReportMetric(r.MeanTail("gossip_useful", 0.4), "gossip_kbps")
		b.ReportMetric(r.MeanTail("antientropy_useful", 0.4), "antientropy_kbps")
	})
}

func BenchmarkFig12(b *testing.B) {
	benchExperiment(b, "fig12", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.MeanTail("bullet_low", 0.4), "bullet_low_kbps")
		b.ReportMetric(r.MeanTail("bottleneck_tree_low", 0.4), "tree_low_kbps")
	})
}

func BenchmarkFig13(b *testing.B) {
	benchExperiment(b, "fig13", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["useful_before_kbps"], "before_kbps")
		b.ReportMetric(r.Summary["useful_after_kbps"], "after_kbps")
	})
}

func BenchmarkFig14(b *testing.B) {
	benchExperiment(b, "fig14", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["useful_before_kbps"], "before_kbps")
		b.ReportMetric(r.Summary["useful_after_kbps"], "after_kbps")
	})
}

func BenchmarkFig15(b *testing.B) {
	benchExperiment(b, "fig15", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.MeanTail("bullet", 0.4), "bullet_kbps")
		b.ReportMetric(r.MeanTail("good_tree", 0.4), "good_tree_kbps")
		b.ReportMetric(r.MeanTail("worst_tree", 0.4), "worst_tree_kbps")
	})
}

// Dynamic-network benches: Bullet vs the streaming baseline under
// scenario-driven link mutations. The recovery metrics are the
// headline numbers of the dynamics subsystem.

func BenchmarkDynPartition(b *testing.B) {
	benchExperiment(b, "dyn-partition", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["bullet_recovery_ratio"], "bullet_recovery")
		b.ReportMetric(r.Summary["stream_recovery_ratio"], "stream_recovery")
		b.ReportMetric(r.Summary["bullet_overall_kbps"], "bullet_kbps")
		b.ReportMetric(r.Summary["stream_overall_kbps"], "stream_kbps")
	})
}

func BenchmarkDynBottleneck(b *testing.B) {
	benchExperiment(b, "dyn-bottleneck", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["bullet_during_kbps"], "bullet_during_kbps")
		b.ReportMetric(r.Summary["stream_during_kbps"], "stream_during_kbps")
	})
}

func BenchmarkDynFlashCrowd(b *testing.B) {
	benchExperiment(b, "dyn-flashcrowd", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["bullet_overall_kbps"], "bullet_kbps")
		b.ReportMetric(r.Summary["stream_overall_kbps"], "stream_kbps")
	})
}

func BenchmarkChurnCrash(b *testing.B) {
	benchExperiment(b, "churn-crash25", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["bullet_orphan_recovery_ratio"], "bullet_orphan_recovery")
		b.ReportMetric(r.Summary["stream_orphan_after_kbps"], "stream_orphan_kbps")
		b.ReportMetric(r.Summary["bullet_overall_kbps"], "bullet_kbps")
		b.ReportMetric(r.Summary["stream_overall_kbps"], "stream_kbps")
	})
}

// BenchmarkAdvFreeride is the adversary subsystem's headline bench:
// a quarter of the overlay free-rides from the one-third mark on, and
// the honest-subset floor ratios are the numbers the goodput-floor
// regression test asserts on (Bullet >= 0.5, streamer < 0.5).
func BenchmarkAdvFreeride(b *testing.B) {
	benchExperiment(b, "adv-freeride", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["bullet_honest_floor_ratio"], "bullet_floor")
		b.ReportMetric(r.Summary["stream_honest_floor_ratio"], "stream_floor")
		b.ReportMetric(r.Summary["bullet_honest_after_kbps"], "bullet_honest_kbps")
		b.ReportMetric(r.Summary["bullet_honest_min_kbps"], "bullet_min_kbps")
	})
}

// Workload benches: the same non-CBR workload disseminated by Bullet,
// the streamer, and gossip. The completion metrics are the headline
// numbers of the workload layer.

func BenchmarkFileDist(b *testing.B) {
	benchExperiment(b, "filedist-compare", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["bullet_first_frac"], "bullet_first_frac")
		b.ReportMetric(r.Summary["bullet_median_completion_s"], "bullet_median_s")
		b.ReportMetric(r.Summary["stream_median_completion_s"], "stream_median_s")
		b.ReportMetric(r.Summary["bullet_completed_frac"], "bullet_completed")
	})
}

func BenchmarkOvercast(b *testing.B) {
	benchExperiment(b, "overcast", func(b *testing.B, r *bullet.ExperimentResult) {
		b.ReportMetric(r.Summary["overcast_to_offline_ratio"], "ratio")
	})
}

// ---------------------------------------------------------------------
// Ablation benches (design choices from DESIGN.md §4). Each runs the
// Figure 7 configuration with one mechanism disabled and reports the
// resulting useful bandwidth and duplicate ratio for comparison with
// BenchmarkFig07.
// ---------------------------------------------------------------------

func benchAblation(b *testing.B, mutate func(*bullet.Config)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 1500, Clients: 40, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		tree, err := w.RandomTree(5)
		if err != nil {
			b.Fatal(err)
		}
		cfg := bullet.DefaultConfig(600)
		cfg.MaxSenders, cfg.MaxReceivers = 4, 4
		cfg.Start = 20 * bullet.Second
		cfg.Duration = 130 * bullet.Second
		mutate(&cfg)
		d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
		if err != nil {
			b.Fatal(err)
		}
		col := d.Collector()
		w.Run(150 * bullet.Second)
		b.ReportMetric(col.MeanOver(70*bullet.Second, 150*bullet.Second, bullet.Useful), "useful_kbps")
		b.ReportMetric(col.DuplicateRatio(), "dup_ratio")
	}
}

// BenchmarkAblationBaseline is the reference point for the ablations.
func BenchmarkAblationBaseline(b *testing.B) {
	benchAblation(b, func(c *bullet.Config) {})
}

// BenchmarkAblationNoDisjoint disables the Figure 5 disjoint send.
func BenchmarkAblationNoDisjoint(b *testing.B) {
	benchAblation(b, func(c *bullet.Config) { c.DisjointSend = false })
}

// BenchmarkAblationNoModRows disables sequence-matrix row partitioning.
func BenchmarkAblationNoModRows(b *testing.B) {
	benchAblation(b, func(c *bullet.Config) { c.ModRows = false })
}

// BenchmarkAblationRandomPeering replaces min-resemblance peer choice
// with a uniformly random choice from the RanSub set.
func BenchmarkAblationRandomPeering(b *testing.B) {
	benchAblation(b, func(c *bullet.Config) { c.MinResemblance = false })
}

// BenchmarkAblationNoEviction disables §3.4 sender/receiver
// re-evaluation.
func BenchmarkAblationNoEviction(b *testing.B) {
	benchAblation(b, func(c *bullet.Config) { c.Eviction = false })
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the substrates.
// ---------------------------------------------------------------------

// BenchmarkPaperScaleStartup measures the cold path to a deployed
// paper-scale overlay: generating the 20,000-node topology, building
// the 1000-participant random tree, and wiring a full Bullet
// deployment (endpoints, flows, RanSub agents, dense per-node state).
// This is the fixed cost every paper-scale run pays before the first
// virtual second, and the allocation counter is the canary for per-node
// state regressions at scale.
func BenchmarkPaperScaleStartup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := bullet.NewWorld(bullet.WorldConfig{
			TotalNodes: bullet.PaperScale.TopoNodes, Clients: bullet.PaperScale.Clients, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		tree, err := w.RandomTree(bullet.PaperScale.TreeDegree)
		if err != nil {
			b.Fatal(err)
		}
		cfg := bullet.DefaultConfig(600)
		cfg.Start = bullet.PaperScale.Start
		cfg.Duration = bullet.PaperScale.Duration
		d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.Collector().Nodes()), "participants")
	}
}

// BenchmarkMegaStartup measures the cold path at mega scale — a
// 100,000-node topology with 10,000 participants, five times the
// paper's configuration — plus a short sharded run of the deployed
// overlay's first virtual seconds. The topology size crosses the
// hierarchical-router threshold, so this bench is the canary for the
// subquadratic startup path: with flat per-source shortest-path trees
// it would take minutes and tens of gigabytes; hierarchical startup is
// a couple of seconds.
func BenchmarkMegaStartup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := bullet.NewWorld(bullet.WorldConfig{
			TotalNodes: bullet.MegaScale.TopoNodes, Clients: bullet.MegaScale.Clients,
			Seed: 42, Shards: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		tree, err := w.RandomTree(bullet.MegaScale.TreeDegree)
		if err != nil {
			b.Fatal(err)
		}
		cfg := bullet.DefaultConfig(600)
		cfg.Start = bullet.MegaScale.Start
		cfg.Duration = bullet.MegaScale.Duration
		d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
		if err != nil {
			b.Fatal(err)
		}
		// A short pre-stream window: enough virtual time for the mesh
		// and RanSub control plane to start everywhere, proving the
		// sharded run path executes at this scale.
		w.Run(2 * bullet.Second)
		b.ReportMetric(float64(d.Collector().Nodes()), "participants")
		b.ReportMetric(float64(w.Shards()), "shards")
	}
}

func BenchmarkEmulatorPacketForwarding(b *testing.B) {
	b.ReportAllocs()
	w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 1500, Clients: 40, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		b.Fatal(err)
	}
	d, err := w.Deploy(bullet.StreamerProtocol{Config: bullet.StreamConfig{
		RateKbps: 600, PacketSize: 1500, Start: 0, Duration: bullet.Time(b.N) * bullet.Second,
	}}, tree)
	if err != nil {
		b.Fatal(err)
	}
	col := d.Collector()
	b.ResetTimer()
	w.Run(bullet.Time(b.N) * bullet.Second)
	b.StopTimer()
	_ = col
}
