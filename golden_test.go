package bullet_test

import (
	"math"
	"testing"

	"bullet"
)

// Golden-trace determinism tests. The constants below were captured
// from the pre-refactor seed implementation (pointer-heap scheduler,
// per-packet path recomputation) on linux/amd64 with seed 42; the
// rebuilt hot path must reproduce them bit-for-bit. They double as the
// determinism contract for future changes: a PR that shifts any of
// these values has changed simulation semantics, not just performance.

// A plain tree-streaming run over a lossy 1500-node topology: every
// event count and byte counter must match the seed implementation.
func TestGoldenStreamerTrace(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500, Clients: 40, Seed: 42, Loss: bullet.PaperLoss,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := w.Deploy(bullet.StreamerProtocol{Config: bullet.StreamConfig{
		RateKbps: 600, PacketSize: 1500,
		Start: 5 * bullet.Second, Duration: 60 * bullet.Second,
	}}, tree)
	if err != nil {
		t.Fatal(err)
	}
	col := d.Collector()
	w.Run(70 * bullet.Second)

	if fired := w.Network().Engine().Fired(); fired != 737583 {
		t.Errorf("Engine.Fired() = %d, want 737583", fired)
	}
	st := w.Network().Stats()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"DataBytesSent", st.DataBytesSent, 57793128},
		{"DataBytesDelivered", st.DataBytesDelivered, 54992016},
		{"ControlBytes", st.ControlBytes, 1244160},
		{"CongestionDrops", st.CongestionDrops, 275},
		{"RandomLossDrops", st.RandomLossDrops, 1563},
		{"DeliveredPackets", st.DeliveredPackets, 62004},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	useful := col.MeanOver(30*bullet.Second, 70*bullet.Second, bullet.Useful)
	if math.Abs(useful-184.10833333333332) > 1e-9 {
		t.Errorf("useful = %.12f Kbps, want 184.108333333333", useful)
	}
}

// A dynamic-scenario golden trace: the same streamer configuration as
// TestGoldenStreamerTrace (lossless here) with the worst-case subtree's
// access link failed at t=20s and restored at t=40s. Pins the full
// dynamics path — route-epoch invalidation, in-flight re-resolution,
// down-link drops — to exact values, so any semantic change to the
// network dynamics subsystem is caught, not just static-path changes.
func TestGoldenDynamicScenarioTrace(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500, Clients: 40, Seed: 42, Loss: bullet.PaperLoss,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		t.Fatal(err)
	}
	victim, best := tree.HeaviestChild(tree.Root)
	lid := w.Graph().AccessLink(victim)
	if victim != 1488 || best != 18 || lid != 1873 {
		t.Fatalf("victim selection drifted: victim=%d desc=%d link=%d, want 1488/18/1873", victim, best, lid)
	}
	d, err := w.Deploy(bullet.StreamerProtocol{Config: bullet.StreamConfig{
		RateKbps: 600, PacketSize: 1500,
		Start: 5 * bullet.Second, Duration: 60 * bullet.Second,
	}}, tree)
	if err != nil {
		t.Fatal(err)
	}
	col := d.Collector()
	w.Scenario(bullet.NewScenario().
		At(20*bullet.Second, bullet.FailLink(lid)).
		At(40*bullet.Second, bullet.RestoreLink(lid)))
	w.Run(70 * bullet.Second)

	if fired := w.Network().Engine().Fired(); fired != 556041 {
		t.Errorf("Engine.Fired() = %d, want 556041", fired)
	}
	st := w.Network().Stats()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"DataBytesSent", st.DataBytesSent, 43886628},
		{"DataBytesDelivered", st.DataBytesDelivered, 41778936},
		{"ControlBytes", st.ControlBytes, 927984},
		{"CongestionDrops", st.CongestionDrops, 264},
		{"RandomLossDrops", st.RandomLossDrops, 1069},
		{"LinkDownDrops", st.LinkDownDrops, 6},
		{"ReroutedPackets", st.ReroutedPackets, 119},
		{"DeliveredPackets", st.DeliveredPackets, 46682},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	useful := col.MeanOver(30*bullet.Second, 70*bullet.Second, bullet.Useful)
	if math.Abs(useful-132.325) > 1e-9 {
		t.Errorf("useful = %.12f Kbps, want 132.325000000000", useful)
	}
}

// The headline dynamics claim as a regression test: after a transient
// partition of the worst-case subtree (FailLink at 1/3 of the stream,
// RestoreLink at 2/3), Bullet's useful bandwidth recovers — its mesh
// keeps descendants fed during the outage and backfills the victim
// afterwards — while the plain streamer permanently loses the data sent
// during the outage and degrades badly while it lasts.
func TestDynPartitionBulletRecoversStreamerDoesNot(t *testing.T) {
	if testing.Short() {
		t.Skip("two full small-scale runs; skipped in -short")
	}
	r, err := bullet.RunExperiment("dyn-partition", bullet.SmallScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary
	// Bullet recovers: post-restore useful bandwidth back to (here,
	// beyond — catch-up) its pre-failure level.
	if ratio := s["bullet_recovery_ratio"]; ratio < 0.95 {
		t.Errorf("bullet recovery ratio %.3f, want >= 0.95", ratio)
	}
	// Bullet's mesh holds the floor during the outage.
	if s["bullet_during_kbps"] < 0.9*s["bullet_before_kbps"] {
		t.Errorf("bullet during outage %.1f Kbps vs %.1f before: mesh did not hold",
			s["bullet_during_kbps"], s["bullet_before_kbps"])
	}
	// The streamer collapses during the outage...
	if s["stream_during_kbps"] > 0.75*s["stream_before_kbps"] {
		t.Errorf("stream during outage %.1f Kbps vs %.1f before: expected collapse",
			s["stream_during_kbps"], s["stream_before_kbps"])
	}
	// ...and never gets the lost data back: its overall mean stays
	// depressed, while Bullet's overall mean stays at its baseline.
	if s["stream_overall_kbps"] > 0.92*s["stream_before_kbps"] {
		t.Errorf("stream overall %.1f Kbps vs %.1f before: outage loss should be permanent",
			s["stream_overall_kbps"], s["stream_before_kbps"])
	}
	if s["bullet_overall_kbps"] < 0.98*s["bullet_before_kbps"] {
		t.Errorf("bullet overall %.1f Kbps vs %.1f before: outage loss should be transient",
			s["bullet_overall_kbps"], s["bullet_before_kbps"])
	}
	// And head-to-head, Bullet recovers where the streamer does not.
	if s["bullet_recovery_ratio"] < s["stream_recovery_ratio"]+0.1 {
		t.Errorf("bullet recovery %.3f not clearly above streamer recovery %.3f",
			s["bullet_recovery_ratio"], s["stream_recovery_ratio"])
	}
}

// The Figure 7 headline metrics for the standard (small, seed 42)
// configuration — the numbers the benchmark trajectory tracks.
func TestGoldenFig07Metrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig7 run; skipped in -short")
	}
	r, err := bullet.RunExperiment("fig7", bullet.SmallScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"useful_total tail mean", r.MeanTail("useful_total", 0.4), 540.27},
		{"raw_total tail mean", r.MeanTail("raw_total", 0.4), 634.39},
		{"duplicate_ratio", r.Summary["duplicate_ratio"], 0.159561132},
		{"control_overhead_kbps", r.Summary["control_overhead_kbps"], 19.964576},
		{"link_stress_avg", r.Summary["link_stress_avg"], 2.383302549},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-6 {
			t.Errorf("%s = %.9f, want %.9f", c.name, c.got, c.want)
		}
	}
}
