package bullet_test

import (
	"math"
	"testing"

	"bullet"
)

// Golden-trace determinism tests. The constants below were captured
// from the pre-refactor seed implementation (pointer-heap scheduler,
// per-packet path recomputation) on linux/amd64 with seed 42; the
// rebuilt hot path must reproduce them bit-for-bit. They double as the
// determinism contract for future changes: a PR that shifts any of
// these values has changed simulation semantics, not just performance.

// A plain tree-streaming run over a lossy 1500-node topology: every
// event count and byte counter must match the seed implementation.
func TestGoldenStreamerTrace(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500, Clients: 40, Seed: 42, Loss: bullet.PaperLoss,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		t.Fatal(err)
	}
	col, err := w.DeployStreamer(tree, bullet.StreamConfig{
		RateKbps: 600, PacketSize: 1500,
		Start: 5 * bullet.Second, Duration: 60 * bullet.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(70 * bullet.Second)

	if fired := w.Network().Engine().Fired(); fired != 712704 {
		t.Errorf("Engine.Fired() = %d, want 712704", fired)
	}
	st := w.Network().Stats()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"DataBytesSent", st.DataBytesSent, 56634888},
		{"DataBytesDelivered", st.DataBytesDelivered, 54030372},
		{"ControlBytes", st.ControlBytes, 1204080},
		{"CongestionDrops", st.CongestionDrops, 231},
		{"RandomLossDrops", st.RandomLossDrops, 1478},
		{"DeliveredPackets", st.DeliveredPackets, 60538},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	useful := col.MeanOver(30*bullet.Second, 70*bullet.Second, bullet.Useful)
	if math.Abs(useful-172.61666666666667) > 1e-9 {
		t.Errorf("useful = %.12f Kbps, want 172.616666666667", useful)
	}
}

// The Figure 7 headline metrics for the standard (small, seed 42)
// configuration — the numbers the benchmark trajectory tracks.
func TestGoldenFig07Metrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig7 run; skipped in -short")
	}
	r, err := bullet.RunExperiment("fig7", bullet.SmallScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"useful_total tail mean", r.MeanTail("useful_total", 0.4), 551.8},
		{"raw_total tail mean", r.MeanTail("raw_total", 0.4), 658.78},
		{"duplicate_ratio", r.Summary["duplicate_ratio"], 0.160738152},
		{"control_overhead_kbps", r.Summary["control_overhead_kbps"], 19.877344},
		{"link_stress_avg", r.Summary["link_stress_avg"], 2.392529259},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-6 {
			t.Errorf("%s = %.9f, want %.9f", c.name, c.got, c.want)
		}
	}
}
