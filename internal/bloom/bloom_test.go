package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(4096, 4)
	for i := uint64(0); i < 200; i++ {
		f.Add(i * 7)
	}
	for i := uint64(0); i < 200; i++ {
		if !f.Contains(i * 7) {
			t.Fatalf("false negative for %d", i*7)
		}
	}
}

func TestFalsePositiveRateNearPrediction(t *testing.T) {
	n := 1000
	f := NewForCapacity(n, 0.01)
	for i := 0; i < n; i++ {
		f.Add(uint64(i))
	}
	fp := 0
	probes := 20000
	for i := 0; i < probes; i++ {
		if f.Contains(uint64(1_000_000 + i)) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > 0.03 {
		t.Fatalf("observed FP rate %.4f far above target 0.01", rate)
	}
	est := f.EstimatedFPRate()
	if est <= 0 || est > 0.05 {
		t.Fatalf("estimated FP rate %.4f implausible", est)
	}
}

func TestReset(t *testing.T) {
	f := New(1024, 3)
	f.Add(42)
	f.Reset()
	if f.Contains(42) {
		t.Fatal("contains after reset")
	}
	if f.N() != 0 {
		t.Fatalf("N=%d after reset", f.N())
	}
	if f.EstimatedFPRate() != 0 {
		t.Fatal("nonzero FP estimate on empty filter")
	}
}

func TestClone(t *testing.T) {
	f := New(1024, 3)
	f.Add(1)
	c := f.Clone()
	c.Add(2)
	if f.Contains(2) {
		t.Fatal("clone shares storage with original")
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("clone missing elements")
	}
}

func TestNewForCapacitySizing(t *testing.T) {
	f := NewForCapacity(1000, 0.01)
	// Standard sizing: ~9.6 bits/element, ~7 hashes.
	if f.M() < 9000 || f.M() > 11000 {
		t.Fatalf("m=%d for n=1000 fp=1%%", f.M())
	}
	if f.K() < 5 || f.K() > 9 {
		t.Fatalf("k=%d", f.K())
	}
	// Degenerate inputs fall back to sane defaults.
	g := NewForCapacity(0, -1)
	if g.M() < 64 || g.K() < 1 {
		t.Fatalf("degenerate sizing m=%d k=%d", g.M(), g.K())
	}
}

func TestSizeBytes(t *testing.T) {
	f := New(1024, 4)
	if f.SizeBytes() != 1024/8+8 {
		t.Fatalf("SizeBytes=%d", f.SizeBytes())
	}
}

// Property: anything added is always found (no false negatives), for
// arbitrary key sets and filter shapes.
func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(keys []uint64, mRaw, kRaw uint8) bool {
		m := 64 + int(mRaw)*8
		k := 1 + int(kRaw)%8
		fl := New(m, k)
		for _, key := range keys {
			fl.Add(key)
		}
		for _, key := range keys {
			if !fl.Contains(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}
