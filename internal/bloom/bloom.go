// Package bloom implements the Bloom filters Bullet uses for
// approximate reconciliation (§2.3): a receiver summarizes the packets
// it already has in a Bloom filter and installs it at sending peers,
// which then forward only packets not described by the filter. False
// positives mean a missing packet may not be sent (recoverable from
// another peer); false negatives never occur, so described packets are
// never resent.
package bloom

import "math"

// Filter is a fixed-size Bloom filter over uint64 keys with k
// independent hash functions (Kirsch-Mitzenmacher double hashing).
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int
	n    int // inserted elements
}

// New creates a filter with m bits and k hash functions. m is rounded
// up to a multiple of 64.
func New(m int, k int) *Filter {
	if m < 64 {
		m = 64
	}
	if k < 1 {
		k = 1
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: uint64(words * 64), k: k}
}

// NewForCapacity sizes a filter for n expected elements and target
// false-positive rate fp, using the standard m = -n ln(fp)/ln(2)^2 and
// k = (m/n) ln 2 formulas.
func NewForCapacity(n int, fp float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fp <= 0 || fp >= 1 {
		fp = 0.01
	}
	m := int(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

func (f *Filter) hashes(key uint64) (h1, h2 uint64) {
	h1 = mix(key)
	h2 = mix(key ^ 0x9E3779B97F4A7C15)
	h2 |= 1 // ensure odd so probes cover the table
	return
}

// Add inserts key into the filter.
func (f *Filter) Add(key uint64) {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// Contains reports whether key may be in the set. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter. Bullet rebuilds filters over the current
// working-set window rather than letting n grow without bound.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// N returns the number of inserted elements.
func (f *Filter) N() int { return f.n }

// M returns the filter size in bits.
func (f *Filter) M() int { return int(f.m) }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// EstimatedFPRate returns (1 - e^{-kn/m})^k for the current load, the
// formula quoted in §2.3.
func (f *Filter) EstimatedFPRate() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// SizeBytes returns the wire size of the filter.
func (f *Filter) SizeBytes() int { return len(f.bits)*8 + 8 }

// Clone returns an independent copy (used when shipping a snapshot to
// a peer).
func (f *Filter) Clone() *Filter {
	c := &Filter{bits: make([]uint64, len(f.bits)), m: f.m, k: f.k, n: f.n}
	copy(c.bits, f.bits)
	return c
}
