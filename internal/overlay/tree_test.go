package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bullet/internal/topology"
)

func testTopo(t *testing.T, seed int64, clients int) (*topology.Graph, *topology.Router) {
	t.Helper()
	g, err := topology.Generate(topology.Config{
		TransitDomains: 2, TransitPerDomain: 3,
		StubDomains: 8, StubDomainSize: 5,
		Clients: clients, Bandwidth: topology.MediumBandwidth, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, topology.NewRouter(g)
}

func TestTreeBasics(t *testing.T) {
	tr := NewTree(1)
	if err := tr.Attach(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(4, 2); err != nil {
		t.Fatal(err)
	}
	if p, ok := tr.Parent(4); !ok || p != 2 {
		t.Fatalf("parent(4)=%d,%v", p, ok)
	}
	if _, ok := tr.Parent(1); ok {
		t.Fatal("root has a parent")
	}
	if tr.Size() != 4 || tr.Depth() != 2 || tr.DepthOf(4) != 2 {
		t.Fatalf("size=%d depth=%d", tr.Size(), tr.Depth())
	}
	if tr.Descendants(1) != 3 || tr.Descendants(2) != 1 {
		t.Fatal("descendants wrong")
	}
	if !tr.IsDescendant(2, 4) || tr.IsDescendant(3, 4) {
		t.Fatal("IsDescendant wrong")
	}
	if err := tr.Validate([]int{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(5, 99); err == nil {
		t.Fatal("attach to unknown parent allowed")
	}
	if err := tr.Attach(2, 1); err == nil {
		t.Fatal("re-attach allowed")
	}
}

func TestTreeRemoveSubtree(t *testing.T) {
	tr := NewTree(1)
	tr.Attach(2, 1)
	tr.Attach(3, 2)
	tr.Attach(4, 2)
	tr.Attach(5, 1)
	orphans := tr.Remove(2)
	if len(orphans) != 3 {
		t.Fatalf("orphans=%v", orphans)
	}
	if tr.Contains(3) || tr.Contains(4) {
		t.Fatal("descendants of removed node still present")
	}
	if err := tr.Validate([]int{1, 5}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeSpanningAndBounded(t *testing.T) {
	g, _ := testTopo(t, 1, 40)
	rng := rand.New(rand.NewSource(1))
	tr, err := Random(g.Clients, g.Clients[0], 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g.Clients); err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Participants {
		if tr.Degree(p) > 4 {
			t.Fatalf("node %d degree %d > 4", p, tr.Degree(p))
		}
	}
}

// Property: random trees are always valid spanning trees for any seed
// and degree bound >= 1.
func TestRandomTreeProperty(t *testing.T) {
	g, _ := testTopo(t, 2, 25)
	f := func(seed int64, degRaw uint8) bool {
		deg := int(degRaw)%6 + 1
		tr, err := Random(g.Clients, g.Clients[0], deg, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if tr.Validate(g.Clients) != nil {
			return false
		}
		for _, p := range tr.Participants {
			if tr.Degree(p) > deg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorContention(t *testing.T) {
	g, rt := testTopo(t, 3, 20)
	est := NewEstimator(rt, 1500)
	v, w := g.Clients[0], g.Clients[1]
	before := est.Throughput(v, w)
	if before <= 0 {
		t.Fatal("zero estimate on connected pair")
	}
	// Place several flows on the same path; fair share must fall.
	est.Place(v, w)
	est.Place(v, w)
	est.Place(v, w)
	after := est.Throughput(v, w)
	if after >= before {
		t.Fatalf("contention ignored: %v -> %v", before, after)
	}
	est.Reset()
	if est.Throughput(v, w) != before {
		t.Fatal("reset did not clear contention")
	}
}

func TestBottleneckTreeValidAndBetterThanRandom(t *testing.T) {
	g, rt := testTopo(t, 4, 30)
	root := g.Clients[0]
	bt, err := Bottleneck(rt, g.Clients, root, 1500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Validate(g.Clients); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Compare objective values: OMBT should beat the average random
	// tree's bottleneck (it is a greedy heuristic, so compare against
	// the mean of several).
	btRate := BottleneckRate(rt, bt, 1500)
	var sum float64
	const nRand = 5
	for i := 0; i < nRand; i++ {
		rtree, _ := Random(g.Clients, root, 6, rng)
		sum += BottleneckRate(rt, rtree, 1500)
	}
	if btRate < sum/nRand {
		t.Fatalf("OMBT bottleneck %.0f below random average %.0f", btRate, sum/nRand)
	}
}

func TestBottleneckTreeDegreeBound(t *testing.T) {
	g, rt := testTopo(t, 5, 25)
	bt, err := Bottleneck(rt, g.Clients, g.Clients[0], 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range bt.Participants {
		if bt.Degree(p) > 3 {
			t.Fatalf("degree %d > 3", bt.Degree(p))
		}
	}
	if err := bt.Validate(g.Clients); err != nil {
		t.Fatal(err)
	}
}

func TestOvercastTree(t *testing.T) {
	g, rt := testTopo(t, 6, 30)
	ot, err := Overcast(rt, g.Clients, g.Clients[0], 1500, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := ot.Validate(g.Clients); err != nil {
		t.Fatal(err)
	}
	// The paper found Overcast-like trees reach at most ~75% of the
	// offline tree; verify it does not *exceed* the offline objective
	// by any meaningful margin.
	bt, _ := Bottleneck(rt, g.Clients, g.Clients[0], 1500, 0)
	if BottleneckRate(rt, ot, 1500) > BottleneckRate(rt, bt, 1500)*1.2 {
		t.Fatal("online Overcast tree beat the offline OMBT by >20%; estimator inconsistent")
	}
}

func TestHandcraftedGoodVsWorst(t *testing.T) {
	g, rt := testTopo(t, 7, 30)
	root := g.Clients[0]
	good, err := Handcrafted(rt, g.Clients, root, 1500, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := Handcrafted(rt, g.Clients, root, 1500, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(g.Clients); err != nil {
		t.Fatal(err)
	}
	if err := worst.Validate(g.Clients); err != nil {
		t.Fatal(err)
	}
	// The good tree puts high-bandwidth nodes near the root: mean
	// bandwidth of the root's children must dominate the worst tree's.
	est := NewEstimator(rt, 1500)
	mean := func(tr *Tree) float64 {
		var s float64
		cs := tr.Children(root)
		for _, c := range cs {
			s += est.Throughput(root, c)
		}
		return s / float64(len(cs))
	}
	if mean(good) <= mean(worst) {
		t.Fatalf("good tree root children bw %.0f <= worst %.0f", mean(good), mean(worst))
	}
	for _, p := range good.Participants {
		if good.Degree(p) > 3 {
			t.Fatal("good tree exceeds degree bound")
		}
	}
}

func TestBottleneckRatePositive(t *testing.T) {
	g, rt := testTopo(t, 8, 15)
	bt, _ := Bottleneck(rt, g.Clients, g.Clients[0], 1500, 0)
	if r := BottleneckRate(rt, bt, 1500); r <= 0 {
		t.Fatalf("bottleneck rate %v", r)
	}
}

func TestReparentChildren(t *testing.T) {
	//       1
	//      / \
	//     2   3
	//    / \
	//   4   5
	tr := NewTree(1)
	for _, e := range [][2]int{{2, 1}, {3, 1}, {4, 2}, {5, 2}} {
		if err := tr.Attach(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	promoted, err := tr.ReparentChildren(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(promoted) != 2 || promoted[0] != 4 || promoted[1] != 5 {
		t.Fatalf("promoted %v, want [4 5]", promoted)
	}
	if tr.Contains(2) {
		t.Fatal("removed node still present")
	}
	for _, n := range []int{4, 5} {
		if p, _ := tr.Parent(n); p != 1 {
			t.Fatalf("node %d parent %d, want 1", n, p)
		}
	}
	// Children order at the grandparent: existing child first, then the
	// promoted ones in their original order.
	if got := tr.Children(1); len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("root children %v, want [3 4 5]", got)
	}
	if tr.Size() != 4 {
		t.Fatalf("size %d, want 4", tr.Size())
	}
	if err := tr.Validate([]int{1, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	// Errors: root and unknown nodes.
	if _, err := tr.ReparentChildren(1); err == nil {
		t.Fatal("reparenting the root was allowed")
	}
	if _, err := tr.ReparentChildren(99); err == nil {
		t.Fatal("reparenting an unknown node was allowed")
	}
}

func TestAttachPoint(t *testing.T) {
	tr := NewTree(1)
	for _, e := range [][2]int{{2, 1}, {3, 1}, {4, 2}} {
		if err := tr.Attach(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Root has degree 2: with bound 3 the root itself is first in BFS.
	if got := tr.AttachPoint(3, nil); got != 1 {
		t.Fatalf("AttachPoint(3) = %d, want 1", got)
	}
	// Bound 2: root is full; BFS order visits 2 (degree 1) next.
	if got := tr.AttachPoint(2, nil); got != 2 {
		t.Fatalf("AttachPoint(2) = %d, want 2", got)
	}
	// Filter: excluding node 2 moves the choice to 3.
	if got := tr.AttachPoint(2, func(n int) bool { return n != 2 }); got != 3 {
		t.Fatalf("filtered AttachPoint = %d, want 3", got)
	}
	// Unbounded degree always yields the root.
	if got := tr.AttachPoint(0, nil); got != 1 {
		t.Fatalf("AttachPoint(0) = %d, want 1", got)
	}
	// Nothing eligible.
	if got := tr.AttachPoint(2, func(int) bool { return false }); got != -1 {
		t.Fatalf("AttachPoint with empty filter = %d, want -1", got)
	}
}
