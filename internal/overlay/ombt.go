package overlay

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"bullet/internal/tfrc"
	"bullet/internal/topology"
)

// Estimator predicts the throughput of a prospective overlay link per
// §4.1: the minimum of the TCP steady-state formula rate (from path
// RTT and end-to-end loss) and the fair share of every physical link
// along the fixed routing path, given the flows already routed.
type Estimator struct {
	rt         *topology.Router
	packetSize float64
	flows      map[int32]int // physical link -> flows already placed
}

// NewEstimator creates an estimator for paths routed by rt with the
// given nominal packet size in bytes.
func NewEstimator(rt *topology.Router, packetSize float64) *Estimator {
	return &Estimator{rt: rt, packetSize: packetSize, flows: make(map[int32]int)}
}

// Throughput estimates the bytes/second an overlay link v->w would
// achieve if placed now.
func (e *Estimator) Throughput(v, w int) float64 {
	path := e.rt.Path(v, w)
	if path == nil || len(path) == 0 {
		return 0
	}
	// TCP formula component: RTT over both directions, combined loss.
	rtt := (e.rt.Delay(v, w) + e.rt.Delay(w, v)).ToSeconds()
	loss := e.rt.PathLoss(v, w)
	rate := math.Inf(1)
	if loss > 0 {
		rate = tfrc.Rate(e.packetSize, rtt, loss, 4*rtt)
	}
	// Fair share component: each physical link shared by existing
	// flows plus this one.
	for _, lid := range path {
		share := e.rt.Graph().Links[lid].Bytes / float64(e.flows[lid]+1)
		if share < rate {
			rate = share
		}
	}
	return rate
}

// Place commits a flow v->w, consuming fair share on its path.
func (e *Estimator) Place(v, w int) {
	for _, lid := range e.rt.Path(v, w) {
		e.flows[lid]++
	}
}

// Reset clears all placed flows.
func (e *Estimator) Reset() { e.flows = make(map[int32]int) }

type offer struct {
	rate float64
	from int // in-tree node
	to   int // remaining node
}

type offerHeap []offer

func (h offerHeap) Len() int           { return len(h) }
func (h offerHeap) Less(i, j int) bool { return h[i].rate > h[j].rate } // max-heap
func (h offerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *offerHeap) Push(x any)        { *h = append(*h, x.(offer)) }
func (h *offerHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Bottleneck builds the offline greedy Overlay Maximum Bottleneck Tree
// of §4.1: Prim-style growth that repeatedly attaches the remaining
// node reachable through the highest-throughput overlay link, using
// global topology knowledge (link capacities, loss rates, delays) and
// accounting for fair-share contention with flows already placed. As in
// the paper, already-attached nodes are not re-examined when later
// flows share their physical links. maxDegree <= 0 means unconstrained
// (the paper's trees are "long and skinny").
func Bottleneck(rt *topology.Router, participants []int, root int, packetSize float64, maxDegree int) (*Tree, error) {
	est := NewEstimator(rt, packetSize)
	t := NewTree(root)
	remaining := make(map[int]bool, len(participants))
	for _, p := range participants {
		if p != root {
			remaining[p] = true
		}
	}
	h := &offerHeap{}
	pushOffers := func(from int) {
		// Iterate candidates in sorted order: equal-throughput offers
		// tie-break by insertion order, and map order must never make
		// tree construction process-dependent.
		ids := make([]int, 0, len(remaining))
		for to := range remaining {
			ids = append(ids, to)
		}
		sort.Ints(ids)
		for _, to := range ids {
			if r := est.Throughput(from, to); r > 0 {
				heap.Push(h, offer{rate: r, from: from, to: to})
			}
		}
	}
	pushOffers(root)
	for len(remaining) > 0 {
		if h.Len() == 0 {
			return nil, fmt.Errorf("overlay: %d participants unreachable from %d", len(remaining), root)
		}
		o := heap.Pop(h).(offer)
		if !remaining[o.to] {
			continue
		}
		if maxDegree > 0 && t.Degree(o.from) >= maxDegree {
			continue
		}
		// Lazy revalidation: recompute with current contention; accept
		// only if still at least as good as the next best offer.
		cur := est.Throughput(o.from, o.to)
		if h.Len() > 0 && cur < (*h)[0].rate {
			if cur > 0 {
				heap.Push(h, offer{rate: cur, from: o.from, to: o.to})
			}
			continue
		}
		if cur <= 0 {
			continue
		}
		if err := t.Attach(o.to, o.from); err != nil {
			return nil, err
		}
		est.Place(o.from, o.to)
		delete(remaining, o.to)
		pushOffers(o.to)
	}
	sort.Ints(t.Participants)
	return t, nil
}

// Overcast builds an Overcast-like online bandwidth-optimizing tree
// ([21], as approximated in §4.2): each node joins at the root and
// migrates down below a sibling-child whenever the bandwidth estimate
// through that child is no worse than its current estimate through the
// parent, preferring positions deeper in the tree. Unlike Bottleneck it
// uses only pairwise probes (no global contention accounting), which is
// why the paper finds such trees reach at most ~75% of the offline
// algorithm's bandwidth.
func Overcast(rt *topology.Router, participants []int, root int, packetSize float64, maxDegree int) (*Tree, error) {
	if maxDegree < 1 {
		maxDegree = 8
	}
	est := NewEstimator(rt, packetSize)
	t := NewTree(root)
	for _, n := range participants {
		if n == root {
			continue
		}
		cur := root
		curBW := est.Throughput(root, n)
		for {
			moved := false
			var bestChild int
			bestBW := -1.0
			for _, c := range t.Children(cur) {
				if bw := est.Throughput(c, n); bw >= curBW*0.95 && bw > bestBW {
					bestChild, bestBW = c, bw
				}
			}
			if bestBW >= 0 {
				cur, curBW = bestChild, bestBW
				moved = true
			}
			if !moved || t.Degree(cur) == 0 {
				break
			}
		}
		// Respect the degree bound by descending to the child with the
		// best bandwidth until a slot opens.
		for t.Degree(cur) >= maxDegree {
			var bestChild int
			bestBW := -1.0
			for _, c := range t.Children(cur) {
				if bw := est.Throughput(c, n); bw > bestBW {
					bestChild, bestBW = c, bw
				}
			}
			cur = bestChild
		}
		if err := t.Attach(n, cur); err != nil {
			return nil, err
		}
		est.Place(cur, n)
	}
	sort.Ints(t.Participants)
	return t, nil
}

// Handcrafted builds the §4.7 PlanetLab-style trees: nodes are ranked
// by measured available bandwidth from the root (pathload's role played
// by the static estimator) and packed into a complete maxDegree-ary
// tree level by level — descending order for the "good" tree (high
// bandwidth near the root), ascending for the "worst" tree.
func Handcrafted(rt *topology.Router, participants []int, root int, packetSize float64, maxDegree int, good bool) (*Tree, error) {
	if maxDegree < 1 {
		return nil, fmt.Errorf("overlay: maxDegree %d", maxDegree)
	}
	est := NewEstimator(rt, packetSize)
	type ranked struct {
		node int
		bw   float64
	}
	var rest []ranked
	for _, p := range participants {
		if p != root {
			rest = append(rest, ranked{node: p, bw: est.Throughput(root, p)})
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].bw != rest[j].bw {
			if good {
				return rest[i].bw > rest[j].bw
			}
			return rest[i].bw < rest[j].bw
		}
		return rest[i].node < rest[j].node
	})
	t := NewTree(root)
	queue := []int{root}
	qi := 0
	for _, r := range rest {
		for t.Degree(queue[qi]) >= maxDegree {
			qi++
		}
		if err := t.Attach(r.node, queue[qi]); err != nil {
			return nil, err
		}
		queue = append(queue, r.node)
	}
	sort.Ints(t.Participants)
	return t, nil
}

// BottleneckRate returns the minimum estimated per-edge throughput of
// the whole tree under fresh contention accounting: the §4.1 objective
// value, used by tests and the Overcast comparison.
func BottleneckRate(rt *topology.Router, t *Tree, packetSize float64) float64 {
	est := NewEstimator(rt, packetSize)
	min := math.Inf(1)
	var walk func(n int)
	walk = func(n int) {
		for _, c := range t.Children(n) {
			if r := est.Throughput(n, c); r < min {
				min = r
			}
			est.Place(n, c)
			walk(c)
		}
	}
	walk(t.Root)
	return min
}
