// Package overlay builds the distribution trees Bullet runs on top of:
// random degree-constrained trees, the paper's offline greedy bottleneck
// bandwidth tree (OMBT, §4.1) computed from global topology knowledge,
// an Overcast-like online bandwidth-optimizing tree, and the handcrafted
// good/worst trees of the PlanetLab experiment (§4.7).
package overlay

import (
	"fmt"
	"math/rand"
	"sort"

	"bullet/internal/nodeset"
)

// Tree is a rooted overlay tree over participant (graph-node) IDs.
// Parent and child links live in dense node-id-indexed tables (graph
// node ids are small integers), so membership checks and parent walks
// on the churn path are slice lookups, not map hashes.
type Tree struct {
	Root         int
	Participants []int
	parent       nodeset.Table[int] // -1 at the root
	children     nodeset.Table[[]int]
}

// NewTree creates a tree containing only the root.
func NewTree(root int) *Tree {
	t := &Tree{
		Root:         root,
		Participants: []int{root},
	}
	t.parent.Put(root, -1)
	return t
}

// Attach adds node as a child of parent. The parent must already be in
// the tree and the node must not be.
func (t *Tree) Attach(node, parent int) error {
	if !t.parent.Contains(parent) {
		return fmt.Errorf("overlay: parent %d not in tree", parent)
	}
	if t.parent.Contains(node) {
		return fmt.Errorf("overlay: node %d already in tree", node)
	}
	t.parent.Put(node, parent)
	t.children.Put(parent, append(t.children.At(parent), node))
	t.Participants = append(t.Participants, node)
	return nil
}

// Parent returns node's parent and true, or -1,false for the root or
// unknown nodes.
func (t *Tree) Parent(node int) (int, bool) {
	p, ok := t.parent.Get(node)
	if !ok || p < 0 {
		return -1, false
	}
	return p, true
}

// Children returns node's children (shared slice; do not mutate).
func (t *Tree) Children(node int) []int { return t.children.At(node) }

// Contains reports whether node is in the tree.
func (t *Tree) Contains(node int) bool {
	return t.parent.Contains(node)
}

// Size returns the number of participants.
func (t *Tree) Size() int { return len(t.Participants) }

// Degree returns the out-degree (children count) of node.
func (t *Tree) Degree(node int) int { return len(t.children.At(node)) }

// SubtreeSize returns the number of nodes in node's subtree, including
// itself.
func (t *Tree) SubtreeSize(node int) int {
	n := 1
	for _, c := range t.children.At(node) {
		n += t.SubtreeSize(c)
	}
	return n
}

// Descendants returns SubtreeSize - 1.
func (t *Tree) Descendants(node int) int { return t.SubtreeSize(node) - 1 }

// HeaviestChild returns the child of node with the most descendants
// (first wins on ties, so the result is deterministic) along with that
// descendant count, or (-1, -1) if node has no children. This is the
// "worst single failure" selection of the paper's §4.6 experiments,
// shared by the failure and dynamics scenarios.
func (t *Tree) HeaviestChild(node int) (child, descendants int) {
	child, descendants = -1, -1
	for _, k := range t.children.At(node) {
		if d := t.Descendants(k); d > descendants {
			descendants, child = d, k
		}
	}
	return child, descendants
}

// Depth returns the maximum root-to-leaf hop count.
func (t *Tree) Depth() int {
	var walk func(n, d int) int
	walk = func(n, d int) int {
		max := d
		for _, c := range t.children.At(n) {
			if cd := walk(c, d+1); cd > max {
				max = cd
			}
		}
		return max
	}
	return walk(t.Root, 0)
}

// DepthOf returns the hop distance from the root to node (-1 if absent).
func (t *Tree) DepthOf(node int) int {
	d := 0
	for node != t.Root {
		p, ok := t.parent.Get(node)
		if !ok || p < 0 {
			return -1
		}
		node = p
		d++
	}
	return d
}

// IsDescendant reports whether b lies in a's subtree (a is its own
// descendant for convenience in RanSub-nondescendants checks).
func (t *Tree) IsDescendant(a, b int) bool {
	for b != a {
		p, ok := t.parent.Get(b)
		if !ok || p < 0 {
			return false
		}
		b = p
	}
	return true
}

// Validate checks that the tree spans exactly the given participants,
// is acyclic, and every non-root node has a parent in the tree.
func (t *Tree) Validate(participants []int) error {
	if len(t.Participants) != len(participants) {
		return fmt.Errorf("overlay: tree has %d nodes, want %d", len(t.Participants), len(participants))
	}
	want := make(map[int]bool, len(participants))
	for _, p := range participants {
		want[p] = true
	}
	reached := 0
	var walk func(n int) error
	seen := make(map[int]bool)
	var err error
	walk = func(n int) error {
		if seen[n] {
			return fmt.Errorf("overlay: cycle through %d", n)
		}
		seen[n] = true
		reached++
		if !want[n] {
			return fmt.Errorf("overlay: unexpected node %d", n)
		}
		for _, c := range t.children.At(n) {
			if e := walk(c); e != nil {
				return e
			}
		}
		return nil
	}
	if err = walk(t.Root); err != nil {
		return err
	}
	if reached != len(participants) {
		return fmt.Errorf("overlay: reached %d of %d nodes", reached, len(participants))
	}
	return nil
}

// Remove detaches node (which must be a leaf or an entire failed
// subtree is detached with it) — used by failure experiments. The
// orphaned subtree nodes are returned.
func (t *Tree) Remove(node int) []int {
	p, ok := t.parent.Get(node)
	if !ok {
		return nil
	}
	if p >= 0 {
		cs := t.children.At(p)
		for i, c := range cs {
			if c == node {
				t.children.Put(p, append(cs[:i], cs[i+1:]...))
				break
			}
		}
	}
	var orphans []int
	var collect func(n int)
	collect = func(n int) {
		orphans = append(orphans, n)
		for _, c := range t.children.At(n) {
			collect(c)
		}
		t.parent.Delete(n)
		t.children.Delete(n)
	}
	collect(node)
	kept := t.Participants[:0]
	gone := make(map[int]bool, len(orphans))
	for _, o := range orphans {
		gone[o] = true
	}
	for _, p := range t.Participants {
		if !gone[p] {
			kept = append(kept, p)
		}
	}
	t.Participants = kept
	return orphans
}

// ReparentChildren detaches a single failed node and re-attaches its
// children — in their existing order — under the nearest live ancestor
// (node's own parent, for a direct call). It is the deterministic
// orphan re-parenting rule of the churn subsystem: no randomness, no
// load balancing, just promotion one level up. The promoted children
// are returned in attachment order. Removing the root is an error.
func (t *Tree) ReparentChildren(node int) ([]int, error) {
	p, ok := t.parent.Get(node)
	if !ok {
		return nil, fmt.Errorf("overlay: node %d not in tree", node)
	}
	if p < 0 {
		return nil, fmt.Errorf("overlay: cannot reparent children of root %d", node)
	}
	promoted := append([]int(nil), t.children.At(node)...)
	// Unlink node from its parent.
	cs := t.children.At(p)
	for i, c := range cs {
		if c == node {
			t.children.Put(p, append(cs[:i], cs[i+1:]...))
			break
		}
	}
	// Promote the children.
	for _, c := range promoted {
		t.parent.Put(c, p)
		t.children.Put(p, append(t.children.At(p), c))
	}
	t.parent.Delete(node)
	t.children.Delete(node)
	kept := t.Participants[:0]
	for _, q := range t.Participants {
		if q != node {
			kept = append(kept, q)
		}
	}
	t.Participants = kept
	return promoted, nil
}

// AttachPoint returns the deterministic join point for a new
// participant: the first node in breadth-first order (children in
// stored order) that passes the eligible filter and has out-degree
// below maxDegree. maxDegree < 1 means unbounded; a nil filter accepts
// every node. It returns -1 when no node qualifies (e.g. every
// candidate is filtered out).
func (t *Tree) AttachPoint(maxDegree int, eligible func(node int) bool) int {
	if !t.parent.Contains(t.Root) {
		return -1
	}
	queue := []int{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if (eligible == nil || eligible(n)) && (maxDegree < 1 || t.Degree(n) < maxDegree) {
			return n
		}
		queue = append(queue, t.children.At(n)...)
	}
	return -1
}

// MaxDegree returns the largest out-degree in the tree (0 for a
// single-node tree). Protocol systems use max(2, MaxDegree()) as the
// degree bound for runtime joins.
func (t *Tree) MaxDegree() int {
	max := 0
	for _, p := range t.Participants {
		if d := len(t.children.At(p)); d > max {
			max = d
		}
	}
	return max
}

// ConnectedToRoot reports whether n and every ancestor up to the root
// passes the live filter — i.e. whether data streamed from the root
// actually reaches n. A nil filter treats every node as live.
func (t *Tree) ConnectedToRoot(n int, live func(node int) bool) bool {
	for {
		if live != nil && !live(n) {
			return false
		}
		p, ok := t.parent.Get(n)
		if !ok {
			return false // not in the tree at all
		}
		if p < 0 {
			return n == t.Root
		}
		n = p
	}
}

// Random builds a random tree: participants are attached in random
// order to a uniformly random already-attached node with spare degree.
// This is the paper's "random tree" baseline.
func Random(participants []int, root int, maxDegree int, rng *rand.Rand) (*Tree, error) {
	if maxDegree < 1 {
		return nil, fmt.Errorf("overlay: maxDegree %d", maxDegree)
	}
	t := NewTree(root)
	order := make([]int, 0, len(participants))
	for _, p := range participants {
		if p != root {
			order = append(order, p)
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	attached := []int{root}
	for _, n := range order {
		// Rejection-sample an attachment point with spare degree.
		for {
			cand := attached[rng.Intn(len(attached))]
			if t.Degree(cand) < maxDegree {
				if err := t.Attach(n, cand); err != nil {
					return nil, err
				}
				attached = append(attached, n)
				break
			}
		}
	}
	sort.Ints(t.Participants)
	return t, nil
}
