package codec

import (
	"fmt"
	"math/rand"
)

// Tornado codes (§2.1, Luby et al., STOC '97): redundant check blocks
// are XORs of selected source blocks arranged in a cascade of sparse
// bipartite layers. Any (1+eps)k correctly received blocks reconstruct
// the k source blocks with high probability, with encoding and
// decoding linear in the block count — much faster than Reed-Solomon,
// at the price of a fixed stretch factor n/k chosen in advance (the
// limitation LT codes later removed).
//
// This implementation uses regular-degree layers: layer i has
// k_i * layerRate check blocks, each the XOR of checkDegree randomly
// chosen blocks of layer i-1, cascading until the last layer is small.

// TornadoParams configures the cascade.
type TornadoParams struct {
	// LayerRate is each layer's size as a fraction of the previous
	// layer (the stretch factor is 1/(1-LayerRate) as layers telescope).
	LayerRate float64
	// CheckDegree is how many previous-layer blocks each check XORs.
	CheckDegree int
	// MinLayer stops the cascade when a layer would be smaller.
	MinLayer int
}

// DefaultTornadoParams gives a cascade with left degree ~3 (every
// block of a layer participates in about three checks), which peels
// reliably up to ~20% block loss at stretch ~1.6.
var DefaultTornadoParams = TornadoParams{LayerRate: 0.33, CheckDegree: 9, MinLayer: 8}

// TornadoCode is a deterministic cascade structure shared by encoder
// and decoder (both sides derive it from (k, seed, params)).
type TornadoCode struct {
	k         int
	blockSize int
	// edges[c] lists the block indices (global numbering) XORed into
	// check block c (global numbering, c >= k).
	edges [][]int
	// dups replicate the cascade's final layer (which no further
	// checks protect): dups[i] is the global index duplicated by block
	// k+len(edges)+i.
	dups   []int
	total  int // k + checks + duplicates
	params TornadoParams
}

// NewTornadoCode builds the cascade for k source blocks of blockSize
// bytes using the shared seed.
func NewTornadoCode(k, blockSize int, seed int64, p TornadoParams) (*TornadoCode, error) {
	if k <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("codec: tornado k=%d blockSize=%d", k, blockSize)
	}
	if p.LayerRate <= 0 || p.LayerRate >= 1 {
		p.LayerRate = DefaultTornadoParams.LayerRate
	}
	if p.CheckDegree < 2 {
		p.CheckDegree = DefaultTornadoParams.CheckDegree
	}
	if p.MinLayer < 2 {
		p.MinLayer = DefaultTornadoParams.MinLayer
	}
	rng := rand.New(rand.NewSource(seed ^ 0x746f726e))
	tc := &TornadoCode{k: k, blockSize: blockSize, params: p}
	layerStart, layerLen := 0, k
	next := k // next global block index
	var edges [][]int
	for {
		checks := int(float64(layerLen) * p.LayerRate)
		if checks < p.MinLayer {
			checks = p.MinLayer
		}
		if layerLen <= p.MinLayer {
			break
		}
		// Regular on both sides: deal shuffled copies of the layer's
		// blocks into the checks, so every block is covered by at
		// least one check (a purely random assignment leaves a
		// fraction of blocks uncovered and unrecoverable).
		deg := p.CheckDegree
		if deg > layerLen {
			deg = layerLen
		}
		slots := make([]int, 0, checks*deg+layerLen)
		for len(slots) < checks*deg {
			for b := 0; b < layerLen && len(slots) < checks*deg; b++ {
				slots = append(slots, layerStart+b)
			}
		}
		rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
		for c := 0; c < checks; c++ {
			seen := make(map[int]struct{}, deg)
			var e []int
			for _, b := range slots[c*deg : (c+1)*deg] {
				if _, dup := seen[b]; !dup {
					seen[b] = struct{}{}
					e = append(e, b)
				}
			}
			edges = append(edges, e)
		}
		layerStart = next
		layerLen = checks
		next += checks
	}
	tc.edges = edges
	// Protect the final (uncovered) layer by duplication.
	for copies := 0; copies < 2; copies++ {
		for b := 0; b < layerLen; b++ {
			tc.dups = append(tc.dups, layerStart+b)
		}
	}
	tc.total = k + len(edges) + len(tc.dups)
	return tc, nil
}

// K returns the source block count.
func (tc *TornadoCode) K() int { return tc.k }

// N returns the total block count (source + checks): the stretch
// factor is N()/K().
func (tc *TornadoCode) N() int { return tc.total }

// Encode produces all n blocks: the k source blocks followed by the
// cascade's check blocks. data shorter than k*blockSize is zero-padded.
func (tc *TornadoCode) Encode(data []byte) ([][]byte, error) {
	if len(data) > tc.k*tc.blockSize {
		return nil, fmt.Errorf("codec: payload %d exceeds k*blockSize %d", len(data), tc.k*tc.blockSize)
	}
	blocks := make([][]byte, tc.total)
	for i := 0; i < tc.k; i++ {
		b := make([]byte, tc.blockSize)
		lo := i * tc.blockSize
		if lo < len(data) {
			copy(b, data[lo:min(len(data), lo+tc.blockSize)])
		}
		blocks[i] = b
	}
	for c, e := range tc.edges {
		b := make([]byte, tc.blockSize)
		for _, src := range e {
			xorInto(b, blocks[src])
		}
		blocks[tc.k+c] = b
	}
	for i, src := range tc.dups {
		b := make([]byte, tc.blockSize)
		copy(b, blocks[src])
		blocks[tc.k+len(tc.edges)+i] = b
	}
	return blocks, nil
}

// TornadoDecoder reconstructs the source blocks from any sufficiently
// large subset of the n blocks, by iteratively solving check equations
// with exactly one missing participant (peeling).
type TornadoDecoder struct {
	tc    *TornadoCode
	have  [][]byte // by global index; nil = missing
	nHave int
	nSrc  int // recovered source blocks
	// checkMissing[c] = number of missing participants of check c
	// (participants = edges[c] plus the check block itself).
	checkMissing []int
	// waiters[b] = checks that reference block b.
	waiters map[int][]int
}

// NewTornadoDecoder prepares a decoder over the shared cascade.
func NewTornadoDecoder(tc *TornadoCode) *TornadoDecoder {
	d := &TornadoDecoder{
		tc:           tc,
		have:         make([][]byte, tc.total),
		checkMissing: make([]int, len(tc.edges)),
		waiters:      make(map[int][]int),
	}
	for c, e := range tc.edges {
		d.checkMissing[c] = len(e) + 1 // sources + the check block itself
		for _, b := range e {
			d.waiters[b] = append(d.waiters[b], c)
		}
		d.waiters[tc.k+c] = append(d.waiters[tc.k+c], c)
	}
	return d
}

// Done reports whether all k source blocks are recovered.
func (d *TornadoDecoder) Done() bool { return d.nSrc == d.tc.k }

// Received returns how many distinct blocks have been added or
// recovered so far.
func (d *TornadoDecoder) Received() int { return d.nHave }

// Add supplies block idx (global numbering: 0..k-1 source, k..n-1
// checks). Duplicate adds are ignored. Returns Done().
func (d *TornadoDecoder) Add(idx int, data []byte) (bool, error) {
	if idx < 0 || idx >= d.tc.total {
		return d.Done(), fmt.Errorf("codec: block index %d out of [0,%d)", idx, d.tc.total)
	}
	if len(data) != d.tc.blockSize {
		return d.Done(), fmt.Errorf("codec: block size %d, want %d", len(data), d.tc.blockSize)
	}
	if base := d.tc.k + len(d.tc.edges); idx >= base {
		idx = d.tc.dups[idx-base] // duplicate: stands in for the original
	}
	d.supply(idx, append([]byte(nil), data...))
	return d.Done(), nil
}

// supply records a block and peels any check equations that become
// solvable (exactly one missing participant).
func (d *TornadoDecoder) supply(idx int, data []byte) {
	if d.have[idx] != nil {
		return
	}
	d.have[idx] = data
	d.nHave++
	if idx < d.tc.k {
		d.nSrc++
	}
	queue := []int{idx}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, c := range d.waiters[b] {
			d.checkMissing[c]--
			if d.checkMissing[c] != 1 {
				continue
			}
			// Exactly one participant missing: solve for it.
			missing := -1
			x := make([]byte, d.tc.blockSize)
			if d.have[d.tc.k+c] == nil {
				missing = d.tc.k + c
			} else {
				xorInto(x, d.have[d.tc.k+c])
			}
			for _, src := range d.tc.edges[c] {
				if d.have[src] == nil {
					missing = src
					continue
				}
				xorInto(x, d.have[src])
			}
			if missing < 0 || d.have[missing] != nil {
				continue
			}
			d.have[missing] = x
			d.nHave++
			if missing < d.tc.k {
				d.nSrc++
			}
			queue = append(queue, missing)
		}
		d.waiters[b] = nil
	}
}

// Payload returns the reconstructed data (k*blockSize bytes; the
// caller trims padding) once decoding is complete.
func (d *TornadoDecoder) Payload() ([]byte, bool) {
	if !d.Done() {
		return nil, false
	}
	out := make([]byte, 0, d.tc.k*d.tc.blockSize)
	for i := 0; i < d.tc.k; i++ {
		out = append(out, d.have[i]...)
	}
	return out, true
}
