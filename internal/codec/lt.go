// Package codec provides the data encodings discussed in §2.1 of the
// Bullet paper. The paper's evaluation uses the "null" encoding (each
// sequence number names a data block directly); for file distribution
// it advocates digital-fountain erasure codes. This package implements
// both: a trivial Null codec and full LT codes (Luby, FOCS 2002) with
// the robust soliton degree distribution and a peeling decoder, so any
// (1+eps)k received symbols reconstruct the k source blocks with the
// small reception overhead the paper quotes (~0.05).
package codec

import (
	"fmt"
	"math"
	"math/rand"
)

// LTParams configures the robust soliton distribution.
type LTParams struct {
	// C is the robust soliton constant c (typical 0.03-0.3).
	C float64
	// Delta is the decoder failure probability bound.
	Delta float64
}

// DefaultLTParams gives a good general-purpose operating point.
var DefaultLTParams = LTParams{C: 0.1, Delta: 0.05}

// Symbol is one LT-encoded packet: the XOR of the source blocks chosen
// deterministically from (stream seed, ID).
type Symbol struct {
	ID   uint64
	K    int
	Data []byte
}

// robustSolitonCDF builds the cumulative distribution of symbol degree
// for k source blocks.
func robustSolitonCDF(k int, p LTParams) []float64 {
	if p.C <= 0 {
		p.C = DefaultLTParams.C
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		p.Delta = DefaultLTParams.Delta
	}
	s := p.C * math.Log(float64(k)/p.Delta) * math.Sqrt(float64(k))
	if s < 1 {
		s = 1
	}
	pivot := int(math.Floor(float64(k) / s))
	if pivot < 1 {
		pivot = 1
	}
	if pivot > k {
		pivot = k
	}
	rho := make([]float64, k+1) // 1-indexed degrees
	rho[1] = 1 / float64(k)
	for d := 2; d <= k; d++ {
		rho[d] = 1 / (float64(d) * float64(d-1))
	}
	tau := make([]float64, k+1)
	for d := 1; d < pivot; d++ {
		tau[d] = s / (float64(d) * float64(k))
	}
	tau[pivot] = s * math.Log(s/p.Delta) / float64(k)
	var z float64
	for d := 1; d <= k; d++ {
		z += rho[d] + tau[d]
	}
	cdf := make([]float64, k+1)
	var acc float64
	for d := 1; d <= k; d++ {
		acc += (rho[d] + tau[d]) / z
		cdf[d] = acc
	}
	cdf[k] = 1
	return cdf
}

func sampleDegree(cdf []float64, rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 1, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// neighbors derives the deterministic source-block set for symbol id.
func neighbors(k int, seed int64, id uint64, cdf []float64) []int {
	rng := rand.New(rand.NewSource(seed ^ int64(id*0x9E3779B97F4A7C15+1)))
	d := sampleDegree(cdf, rng)
	if d > k {
		d = k
	}
	chosen := make(map[int]struct{}, d)
	out := make([]int, 0, d)
	for len(out) < d {
		b := rng.Intn(k)
		if _, dup := chosen[b]; !dup {
			chosen[b] = struct{}{}
			out = append(out, b)
		}
	}
	return out
}

// Encoder produces LT symbols for a fixed payload.
type Encoder struct {
	k         int
	blockSize int
	blocks    [][]byte
	seed      int64
	cdf       []float64
}

// NewEncoder splits data into blockSize-byte source blocks (the last
// block zero-padded) and prepares the degree distribution. The seed
// must be shared with decoders.
func NewEncoder(data []byte, blockSize int, seed int64, p LTParams) (*Encoder, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("codec: blockSize %d", blockSize)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("codec: empty payload")
	}
	k := (len(data) + blockSize - 1) / blockSize
	blocks := make([][]byte, k)
	for i := 0; i < k; i++ {
		b := make([]byte, blockSize)
		copy(b, data[i*blockSize:min(len(data), (i+1)*blockSize)])
		blocks[i] = b
	}
	return &Encoder{k: k, blockSize: blockSize, blocks: blocks, seed: seed, cdf: robustSolitonCDF(k, p)}, nil
}

// K returns the number of source blocks.
func (e *Encoder) K() int { return e.k }

// Symbol generates the encoded symbol with the given ID. Symbol
// generation is deterministic and random-access, so different overlay
// nodes can serve disjoint symbol IDs without coordination.
func (e *Encoder) Symbol(id uint64) Symbol {
	data := make([]byte, e.blockSize)
	for _, b := range neighbors(e.k, e.seed, id, e.cdf) {
		xorInto(data, e.blocks[b])
	}
	return Symbol{ID: id, K: e.k, Data: data}
}

func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Decoder reconstructs the payload via belief-propagation peeling.
type Decoder struct {
	k         int
	blockSize int
	seed      int64
	cdf       []float64

	recovered [][]byte
	nRecov    int
	// pending symbols not yet reduced to degree 1, keyed by remaining
	// neighbor count.
	pending []*pendingSym
	// blockWaiters[b] lists pending symbols that still reference b.
	blockWaiters map[int][]*pendingSym
	received     int
}

type pendingSym struct {
	data  []byte
	needs map[int]struct{}
	done  bool
}

// NewDecoder prepares to decode k blocks of blockSize bytes produced
// with the same seed and params.
func NewDecoder(k, blockSize int, seed int64, p LTParams) (*Decoder, error) {
	if k <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("codec: bad decoder params k=%d blockSize=%d", k, blockSize)
	}
	return &Decoder{
		k: k, blockSize: blockSize, seed: seed,
		cdf:          robustSolitonCDF(k, p),
		recovered:    make([][]byte, k),
		blockWaiters: make(map[int][]*pendingSym),
	}, nil
}

// Received returns how many symbols have been added.
func (d *Decoder) Received() int { return d.received }

// Progress returns the number of recovered source blocks.
func (d *Decoder) Progress() int { return d.nRecov }

// Done reports whether all source blocks are recovered.
func (d *Decoder) Done() bool { return d.nRecov == d.k }

// Add ingests one symbol and runs peeling; it returns Done().
func (d *Decoder) Add(sym Symbol) bool {
	if d.Done() {
		return true
	}
	d.received++
	data := make([]byte, d.blockSize)
	copy(data, sym.Data)
	needs := make(map[int]struct{})
	for _, b := range neighbors(d.k, d.seed, sym.ID, d.cdf) {
		if d.recovered[b] != nil {
			xorInto(data, d.recovered[b])
		} else {
			needs[b] = struct{}{}
		}
	}
	ps := &pendingSym{data: data, needs: needs}
	if len(needs) == 0 {
		return d.Done() // pure redundancy
	}
	if len(needs) == 1 {
		d.resolve(ps)
		return d.Done()
	}
	d.pending = append(d.pending, ps)
	for b := range needs {
		d.blockWaiters[b] = append(d.blockWaiters[b], ps)
	}
	return d.Done()
}

// resolve recovers the single remaining block of ps and propagates.
func (d *Decoder) resolve(ps *pendingSym) {
	queue := []*pendingSym{ps}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.done || len(cur.needs) != 1 {
			continue
		}
		var b int
		for k := range cur.needs {
			b = k
		}
		cur.done = true
		if d.recovered[b] != nil {
			continue
		}
		d.recovered[b] = cur.data
		d.nRecov++
		for _, w := range d.blockWaiters[b] {
			if w.done {
				continue
			}
			if _, ok := w.needs[b]; ok {
				xorInto(w.data, d.recovered[b])
				delete(w.needs, b)
				if len(w.needs) == 1 {
					queue = append(queue, w)
				}
			}
		}
		delete(d.blockWaiters, b)
	}
}

// Payload returns the reconstructed data (length k*blockSize; the
// caller trims any padding) and whether decoding is complete.
func (d *Decoder) Payload() ([]byte, bool) {
	if !d.Done() {
		return nil, false
	}
	out := make([]byte, 0, d.k*d.blockSize)
	for _, b := range d.recovered {
		out = append(out, b...)
	}
	return out, true
}

// Null is the paper's null encoding: sequence numbers name blocks
// directly and no coding is applied. It exists so applications can be
// written against a common shape for both modes.
type Null struct {
	BlockSize int
	Data      []byte
}

// K returns the number of blocks in the payload.
func (n *Null) K() int {
	if n.BlockSize <= 0 {
		return 0
	}
	return (len(n.Data) + n.BlockSize - 1) / n.BlockSize
}

// Block returns the i'th block (zero-padded).
func (n *Null) Block(i int) []byte {
	b := make([]byte, n.BlockSize)
	lo := i * n.BlockSize
	if lo < len(n.Data) {
		copy(b, n.Data[lo:min(len(n.Data), lo+n.BlockSize)])
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
