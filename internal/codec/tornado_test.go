package codec

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestTornadoRoundTripInOrder(t *testing.T) {
	data := make([]byte, 500*100)
	rand.New(rand.NewSource(1)).Read(data)
	tc, err := NewTornadoCode(500, 100, 7, DefaultTornadoParams)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := tc.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != tc.N() {
		t.Fatalf("encode produced %d blocks, want %d", len(blocks), tc.N())
	}
	d := NewTornadoDecoder(tc)
	for i, b := range blocks {
		done, err := d.Add(i, b)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	got, ok := d.Payload()
	if !ok {
		t.Fatal("not decoded after all blocks")
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatal("payload mismatch")
	}
}

func TestTornadoRecoversFromLosses(t *testing.T) {
	// Drop a random 12% of blocks; the surviving (1+eps)k must
	// suffice. (Production Tornado uses tuned irregular degree
	// distributions that tolerate loss approaching the stretch bound;
	// this regular cascade is comfortably sufficient for Bullet's
	// moderate-loss regime.)
	data := make([]byte, 1000*64)
	rand.New(rand.NewSource(2)).Read(data)
	tc, err := NewTornadoCode(1000, 64, 9, DefaultTornadoParams)
	if err != nil {
		t.Fatal(err)
	}
	blocks, _ := tc.Encode(data)
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(len(blocks))
	d := NewTornadoDecoder(tc)
	received := 0
	for _, i := range perm {
		if rng.Float64() < 0.12 {
			continue // lost
		}
		received++
		if done, _ := d.Add(i, blocks[i]); done {
			break
		}
	}
	if !d.Done() {
		t.Fatalf("decode failed with %d of %d blocks (k=%d)", received, len(blocks), tc.K())
	}
	got, _ := d.Payload()
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatal("payload mismatch after loss recovery")
	}
}

func TestTornadoStretchFactor(t *testing.T) {
	tc, err := NewTornadoCode(1000, 32, 1, DefaultTornadoParams)
	if err != nil {
		t.Fatal(err)
	}
	stretch := float64(tc.N()) / float64(tc.K())
	if stretch < 1.2 || stretch > 2.0 {
		t.Fatalf("stretch factor %.2f outside the expected cascade range", stretch)
	}
}

func TestTornadoDeterministicCascade(t *testing.T) {
	a, _ := NewTornadoCode(200, 16, 5, DefaultTornadoParams)
	b, _ := NewTornadoCode(200, 16, 5, DefaultTornadoParams)
	if a.N() != b.N() {
		t.Fatal("cascades differ in size")
	}
	for c := range a.edges {
		for j := range a.edges[c] {
			if a.edges[c][j] != b.edges[c][j] {
				t.Fatal("cascades differ in structure")
			}
		}
	}
}

func TestTornadoDuplicatesAndErrors(t *testing.T) {
	tc, _ := NewTornadoCode(50, 8, 11, DefaultTornadoParams)
	data := make([]byte, 50*8)
	rand.New(rand.NewSource(4)).Read(data)
	blocks, _ := tc.Encode(data)
	d := NewTornadoDecoder(tc)
	if _, err := d.Add(-1, blocks[0]); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := d.Add(0, []byte{1}); err == nil {
		t.Fatal("wrong block size accepted")
	}
	for i := 0; i < 10; i++ {
		d.Add(0, blocks[0]) // duplicates are no-ops
	}
	if d.Received() != 1 {
		t.Fatalf("duplicates counted: received=%d", d.Received())
	}
	if _, ok := d.Payload(); ok {
		t.Fatal("payload available before decode completes")
	}
}

func TestTornadoRejectsOversizedPayload(t *testing.T) {
	tc, _ := NewTornadoCode(4, 8, 1, DefaultTornadoParams)
	if _, err := tc.Encode(make([]byte, 4*8+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if _, err := NewTornadoCode(0, 8, 1, DefaultTornadoParams); err == nil {
		t.Fatal("k=0 accepted")
	}
}
