package codec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLTRoundTrip(t *testing.T) {
	data := make([]byte, 100*1000)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	enc, err := NewEncoder(data, 1000, 42, DefaultLTParams)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(enc.K(), 1000, 42, DefaultLTParams)
	if err != nil {
		t.Fatal(err)
	}
	var id uint64
	for !dec.Done() {
		dec.Add(enc.Symbol(id))
		id++
		if id > uint64(enc.K()*3) {
			t.Fatalf("decoder needed more than 3k symbols (k=%d)", enc.K())
		}
	}
	got, ok := dec.Payload()
	if !ok {
		t.Fatal("payload not ready")
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatal("decoded payload differs")
	}
}

func TestLTReceptionOverhead(t *testing.T) {
	// The paper quotes reception overhead ~0.05 for LT codes. Allow a
	// generous bound for moderate k.
	data := make([]byte, 1000*100)
	rand.New(rand.NewSource(2)).Read(data)
	enc, _ := NewEncoder(data, 100, 7, DefaultLTParams)
	k := enc.K() // 1000
	dec, _ := NewDecoder(k, 100, 7, DefaultLTParams)
	var id uint64
	for !dec.Done() {
		dec.Add(enc.Symbol(id))
		id++
	}
	overhead := float64(dec.Received()-k) / float64(k)
	if overhead > 0.35 {
		t.Fatalf("reception overhead %.3f too high for k=%d", overhead, k)
	}
}

func TestLTRandomAccessSymbols(t *testing.T) {
	// Decoding from an arbitrary, non-contiguous symbol ID set must
	// work: this is what lets Bullet peers serve disjoint symbols.
	data := make([]byte, 50*64)
	rand.New(rand.NewSource(3)).Read(data)
	enc, _ := NewEncoder(data, 64, 9, DefaultLTParams)
	dec, _ := NewDecoder(enc.K(), 64, 9, DefaultLTParams)
	rng := rand.New(rand.NewSource(4))
	for !dec.Done() {
		dec.Add(enc.Symbol(uint64(rng.Intn(1 << 20))))
		if dec.Received() > enc.K()*10 {
			t.Fatal("random-access decode did not converge")
		}
	}
	got, _ := dec.Payload()
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatal("decoded payload differs")
	}
}

func TestLTSymbolDeterminism(t *testing.T) {
	data := make([]byte, 10*32)
	rand.New(rand.NewSource(5)).Read(data)
	e1, _ := NewEncoder(data, 32, 11, DefaultLTParams)
	e2, _ := NewEncoder(data, 32, 11, DefaultLTParams)
	for id := uint64(0); id < 50; id++ {
		if !bytes.Equal(e1.Symbol(id).Data, e2.Symbol(id).Data) {
			t.Fatalf("symbol %d differs between identical encoders", id)
		}
	}
}

func TestLTDuplicatesHarmless(t *testing.T) {
	data := make([]byte, 20*16)
	rand.New(rand.NewSource(6)).Read(data)
	enc, _ := NewEncoder(data, 16, 13, DefaultLTParams)
	dec, _ := NewDecoder(enc.K(), 16, 13, DefaultLTParams)
	var id uint64
	for !dec.Done() {
		dec.Add(enc.Symbol(id % 40)) // heavy duplication
		id++
		if id > 10000 {
			// With only 40 distinct symbols decode may be impossible;
			// that is fine — just stop.
			break
		}
	}
	if dec.Done() {
		got, _ := dec.Payload()
		if !bytes.Equal(got[:len(data)], data) {
			t.Fatal("decode with duplicates wrong")
		}
	}
}

func TestLTErrors(t *testing.T) {
	if _, err := NewEncoder(nil, 10, 1, DefaultLTParams); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := NewEncoder([]byte{1}, 0, 1, DefaultLTParams); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := NewDecoder(0, 10, 1, DefaultLTParams); err == nil {
		t.Fatal("zero k accepted")
	}
}

func TestRobustSolitonCDF(t *testing.T) {
	cdf := robustSolitonCDF(100, DefaultLTParams)
	if cdf[len(cdf)-1] != 1 {
		t.Fatalf("CDF does not end at 1: %v", cdf[len(cdf)-1])
	}
	for i := 2; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1]-1e-12 {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	// Degree-1 probability must be positive (decoding must bootstrap)
	// and small-ish.
	if cdf[1] <= 0 || cdf[1] > 0.3 {
		t.Fatalf("degree-1 mass %v implausible", cdf[1])
	}
}

// Property: round trip succeeds for arbitrary payloads.
func TestLTRoundTripProperty(t *testing.T) {
	f := func(payload []byte, bsRaw uint8) bool {
		if len(payload) == 0 {
			return true
		}
		bs := int(bsRaw)%32 + 8
		enc, err := NewEncoder(payload, bs, 21, DefaultLTParams)
		if err != nil {
			return false
		}
		dec, _ := NewDecoder(enc.K(), bs, 21, DefaultLTParams)
		for id := uint64(0); !dec.Done(); id++ {
			dec.Add(enc.Symbol(id))
			if id > uint64(enc.K()*20+100) {
				return false
			}
		}
		got, ok := dec.Payload()
		return ok && bytes.Equal(got[:len(payload)], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestNullCodec(t *testing.T) {
	n := &Null{BlockSize: 4, Data: []byte{1, 2, 3, 4, 5}}
	if n.K() != 2 {
		t.Fatalf("K=%d", n.K())
	}
	b0, b1 := n.Block(0), n.Block(1)
	if !bytes.Equal(b0, []byte{1, 2, 3, 4}) {
		t.Fatalf("block 0 = %v", b0)
	}
	if !bytes.Equal(b1, []byte{5, 0, 0, 0}) {
		t.Fatalf("block 1 = %v", b1)
	}
}
