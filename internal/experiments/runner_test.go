package experiments

import (
	"bytes"
	"testing"
)

// printAll renders results the way cmd/bullet-sim does, so byte
// equality here is exactly "parallel and serial TSVs are identical".
func printAll(t *testing.T, rs []RunResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rr := range rs {
		if rr.Err != nil {
			t.Fatalf("%s: %v", rr.Run.ID, rr.Err)
		}
		rr.Result.Print(&buf)
	}
	return buf.Bytes()
}

// Parallel execution must be invisible in the output: same runs, same
// seeds, any worker count -> byte-identical TSVs in input order.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	runs := []Run{
		{ID: "table1", Scale: Small, Seed: 42},
		{ID: "table1", Scale: Small, Seed: 7},
	}
	if !testing.Short() {
		runs = append(runs,
			Run{ID: "fig6", Scale: Small, Seed: 42},
			Run{ID: "fig7", Scale: Small, Seed: 42},
		)
	}
	serial := printAll(t, RunAll(runs, 1))
	parallel := printAll(t, RunAll(runs, 4))
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel runner output differs from serial")
	}
	if len(serial) == 0 {
		t.Fatal("runner produced no output")
	}
}

// Results come back in input order even though workers finish in
// arbitrary order.
func TestRunAllPreservesOrder(t *testing.T) {
	runs := []Run{
		{ID: "table1", Scale: Small, Seed: 1},
		{ID: "nope", Scale: Small, Seed: 1},
		{ID: "table1", Scale: Small, Seed: 2},
	}
	out := RunAll(runs, 3)
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3", len(out))
	}
	for i, rr := range out {
		if rr.Run.ID != runs[i].ID || rr.Run.Seed != runs[i].Seed ||
			rr.Run.Scale.Name != runs[i].Scale.Name {
			t.Fatalf("result %d is for run %+v, want %+v", i, rr.Run, runs[i])
		}
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("valid runs errored: %v, %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil {
		t.Fatal("unknown experiment id did not error")
	}
}
