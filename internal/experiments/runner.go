package experiments

import (
	"runtime"
	"sync"
)

// Run identifies one experiment execution. Every runner is a pure
// function of (ID, Scale, Seed) — each run builds its own engine,
// topology, and emulator — so runs can execute concurrently without
// sharing any mutable state and still produce byte-identical results.
type Run struct {
	ID    string
	Scale Scale
	Seed  int64
}

// RunResult pairs a Run with its outcome.
type RunResult struct {
	Run    Run
	Result *Result
	Err    error
}

// RunAll executes runs across min(workers, len(runs)) goroutines and
// returns results in input order, regardless of completion order: the
// output for runs[i] is always at index i. workers <= 0 selects
// GOMAXPROCS. Determinism is unaffected by the worker count — each run
// is seeded independently — so RunAll(runs, 1) and RunAll(runs, N)
// yield identical results.
func RunAll(runs []Run, workers int) []RunResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	out := make([]RunResult, len(runs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = execute(runs[i])
			}
		}()
	}
	for i := range runs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

func execute(r Run) RunResult {
	entry, ok := Registry[r.ID]
	if !ok {
		return RunResult{Run: r, Err: &UnknownExperimentError{ID: r.ID, Suggestion: Suggest(r.ID)}}
	}
	res, err := entry.Run(r.Scale, r.Seed)
	return RunResult{Run: r, Result: res, Err: err}
}
