package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"bullet/internal/core"
	"bullet/internal/metrics"
	"bullet/internal/overlay"
	"bullet/internal/scenario"
	"bullet/internal/sim"
	"bullet/internal/streamer"
	"bullet/internal/topology"
)

// Membership-churn experiments: the paper's headline evaluation is not
// just static trees under lossy links — Bullet rides through *node*
// failures, with RanSub re-discovering peers and receivers
// re-installing Bloom filters elsewhere while orphans re-parent. These
// runs replay a deterministic schedule of crashes, restarts, and joins
// against both Bullet and the plain tree streamer (same topology, same
// tree, same schedule), so the series differ only by protocol.
//
// Bandwidth summaries are computed over the nodes still live at the
// end of the run: crashed nodes contribute zero forever, which would
// charge both protocols identically for the dead and hide the real
// difference — whether *survivors* keep receiving.

// churnSystem is what a churn variant deploys: a scenario membership
// plus the live-set introspection the summaries need.
type churnSystem interface {
	scenario.Membership
	LiveNodes() []int
}

// churnCompare runs the same churn schedule against Bullet and the
// plain tree streamer in two independent worlds built from the same
// seed, and reports both useful-bandwidth series plus survivor-based
// per-phase means. buildSched also returns the victim set (nodes the
// schedule crashes); the live descendants those victims orphan get
// their own orphan_* summaries — the sharpest protocol contrast, since
// Bullet re-parents them while the streamer lets them starve.
func churnCompare(name string, sc Scale, seed int64,
	buildTree func(w *world) (*overlay.Tree, error),
	buildSched func(g *topology.Graph, tree *overlay.Tree) (*scenario.Schedule, []int)) (*Result, error) {

	t1, t2 := dynPhases(sc)
	r := newResult(name)

	type deployFn func(w *world, tree *overlay.Tree, col *metrics.Collector) (churnSystem, error)
	variants := []struct {
		label  string
		deploy deployFn
	}{
		{"bullet", func(w *world, tree *overlay.Tree, col *metrics.Collector) (churnSystem, error) {
			return core.Deploy(w.net, tree, bulletConfig(sc, defaultRateKbps), col)
		}},
		{"stream", func(w *world, tree *overlay.Tree, col *metrics.Collector) (churnSystem, error) {
			return streamer.Deploy(w.net, tree, streamer.Config{
				RateKbps: defaultRateKbps, PacketSize: 1500, Start: sc.Start, Duration: sc.Duration,
			}, col)
		}},
	}
	for _, v := range variants {
		w, err := newWorld(sc, topology.MediumBandwidth, topology.NoLoss, seed)
		if err != nil {
			return nil, err
		}
		tree, err := buildTree(w)
		if err != nil {
			return nil, err
		}
		col := metrics.NewCollector(sim.Second)
		sys, err := v.deploy(w, tree, col)
		if err != nil {
			return nil, err
		}
		sched, victims := buildSched(w.g, tree)
		orphans := orphanedBy(tree, victims)
		sched.Install(&scenario.Env{Eng: w.eng, G: w.g, M: sys})
		w.run(sc.RunUntil)

		live := sys.LiveNodes()
		r.addSeries(v.label+"_useful", col.Series(metrics.Useful))
		pre := col.MeanOverNodes(live, t1-20*sim.Second, t1, metrics.Useful)
		during := col.MeanOverNodes(live, t1+5*sim.Second, t2, metrics.Useful)
		post := col.MeanOverNodes(live, t2+10*sim.Second, sc.RunUntil, metrics.Useful)
		r.Summary[v.label+"_before_kbps"] = pre
		r.Summary[v.label+"_during_kbps"] = during
		r.Summary[v.label+"_after_kbps"] = post
		if pre > 0 {
			r.Summary[v.label+"_recovery_ratio"] = post / pre
		}
		r.Summary[v.label+"_overall_kbps"] = col.MeanOverNodes(live, sc.Start+10*sim.Second, sc.RunUntil, metrics.Useful)
		r.Summary[v.label+"_live_nodes"] = float64(len(live))
		if len(orphans) > 0 {
			opre := col.MeanOverNodes(orphans, t1-20*sim.Second, t1, metrics.Useful)
			opost := col.MeanOverNodes(orphans, t2+10*sim.Second, sc.RunUntil, metrics.Useful)
			r.Summary[v.label+"_orphan_before_kbps"] = opre
			r.Summary[v.label+"_orphan_after_kbps"] = opost
			if opre > 0 {
				r.Summary[v.label+"_orphan_recovery_ratio"] = opost / opre
			}
		}
	}
	r.Summary["event_start_s"] = t1.ToSeconds()
	r.Summary["event_end_s"] = t2.ToSeconds()
	return r, nil
}

// orphanedBy returns the live descendants the victim set orphans in
// the (pre-churn) tree: every node below a victim that is not itself a
// victim, in sorted order.
func orphanedBy(tree *overlay.Tree, victims []int) []int {
	if len(victims) == 0 {
		return nil
	}
	isVictim := make(map[int]bool, len(victims))
	for _, v := range victims {
		isVictim[v] = true
	}
	seen := make(map[int]bool)
	var collect func(n int)
	collect = func(n int) {
		for _, c := range tree.Children(n) {
			if !seen[c] {
				seen[c] = true
				collect(c)
			}
		}
	}
	for _, v := range victims {
		collect(v)
	}
	var out []int
	for n := range seen {
		if !isVictim[n] {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// pickVictims selects every stride'th non-root participant in sorted
// order — a deterministic, tree-position-agnostic victim set.
func pickVictims(participants []int, root int, stride int) []int {
	var out []int
	i := 0
	for _, p := range participants {
		if p == root {
			continue
		}
		if i%stride == 0 {
			out = append(out, p)
		}
		i++
	}
	return out
}

// ChurnCrash25 is the mass-failure workload: 25% of the non-root
// overlay crashes at one instant mid-stream, and nobody comes back.
// Bullet's orphans re-parent and its mesh re-installs Bloom filters at
// live peers, so survivors recover their bandwidth; the streamer's
// orphaned subtrees starve for the rest of the run.
func ChurnCrash25(sc Scale, seed int64) (*Result, error) {
	return churnCompare("Churn: mass failure of 25% of the overlay", sc, seed,
		func(w *world) (*overlay.Tree, error) { return w.randomTree(sc) },
		func(g *topology.Graph, tree *overlay.Tree) (*scenario.Schedule, []int) {
			t1, _ := dynPhases(sc)
			victims := pickVictims(tree.Participants, tree.Root, 4)
			return scenario.New().At(t1, scenario.ChurnNodes(victims...)), victims
		})
}

// ChurnCrashHeal crashes the worst-case subtree root (the paper's
// "worst single failure" selection) mid-stream and restarts it at the
// two-thirds mark. Bullet re-parents the orphans within its failover
// delay and backfills the restarted node; the streamer's subtree
// starves during the outage and the restarted node rejoins with
// whatever keeps arriving — the outage data is gone.
func ChurnCrashHeal(sc Scale, seed int64) (*Result, error) {
	return churnCompare("Churn: worst-case subtree root crash and restart", sc, seed,
		func(w *world) (*overlay.Tree, error) { return w.randomTree(sc) },
		func(g *topology.Graph, tree *overlay.Tree) (*scenario.Schedule, []int) {
			t1, t2 := dynPhases(sc)
			victim, _ := tree.HeaviestChild(tree.Root)
			s := scenario.New()
			if victim < 0 {
				return s, nil
			}
			return s.At(t1, scenario.CrashNode(victim)).
				At(t2, scenario.RestartNode(victim)), []int{victim}
		})
}

// ChurnRolling is continuous membership churn: between the one-third
// and two-thirds marks, a new victim crashes at a fixed interval and
// each stays down for a sixth of the stream before restarting.
func ChurnRolling(sc Scale, seed int64) (*Result, error) {
	return churnCompare("Churn: rolling crash/restart wave", sc, seed,
		func(w *world) (*overlay.Tree, error) { return w.randomTree(sc) },
		func(g *topology.Graph, tree *overlay.Tree) (*scenario.Schedule, []int) {
			t1, t2 := dynPhases(sc)
			victims := pickVictims(tree.Participants, tree.Root, 6)
			if len(victims) == 0 {
				return scenario.New(), nil
			}
			interval := (t2 - t1) / sim.Duration(len(victims))
			return scenario.New().Churn(t1, interval, sc.Duration/6, victims...), victims
		})
}

// ChurnJoin is the flash-join workload: the overlay deploys over
// three quarters of the clients and the remaining quarter joins one by
// one between the one-third and two-thirds marks, each attached at the
// deterministic join point.
func ChurnJoin(sc Scale, seed int64) (*Result, error) {
	return churnCompare("Churn: late joiners attach mid-stream", sc, seed,
		func(w *world) (*overlay.Tree, error) {
			members := w.g.Clients[:len(w.g.Clients)*3/4]
			return overlay.Random(members, members[0], sc.TreeDegree,
				rand.New(rand.NewSource(w.seed^0x74726565)))
		},
		func(g *topology.Graph, tree *overlay.Tree) (*scenario.Schedule, []int) {
			t1, t2 := dynPhases(sc)
			var joiners []int
			for _, c := range g.Clients {
				if !tree.Contains(c) {
					joiners = append(joiners, c)
				}
			}
			s := scenario.New()
			if len(joiners) == 0 {
				return s, nil
			}
			interval := (t2 - t1) / sim.Duration(len(joiners))
			for i, j := range joiners {
				s.At(t1+sim.Duration(i)*interval, scenario.JoinNode(j))
			}
			return s, nil
		})
}

// ChurnXL is the scale-path smoke workload: a sustained mix of every
// membership operation at once. The overlay deploys over 7/8 of the
// clients; at the one-third mark 20% of the participants crash in one
// wave, then between the one-third and two-thirds marks the crashed
// nodes restart one by one while the held-out 1/8 of the clients join
// one by one. Every dense-state path is exercised together — mass
// repair iterating the whole participant table, tree surgery, peer
// teardown/re-peering, and table growth from joins. Run it at the xl
// scale (10,000-node topology, 400 participants) to prove the
// node-indexed data plane holds up beyond toy sizes; the schedule is
// derived from the participant count, so it composes with any scale.
func ChurnXL(sc Scale, seed int64) (*Result, error) {
	return churnCompare("Churn: sustained crash/restart/join mix (scale smoke)", sc, seed,
		func(w *world) (*overlay.Tree, error) {
			members := w.g.Clients[:len(w.g.Clients)*7/8]
			return overlay.Random(members, members[0], sc.TreeDegree,
				rand.New(rand.NewSource(w.seed^0x74726565)))
		},
		func(g *topology.Graph, tree *overlay.Tree) (*scenario.Schedule, []int) {
			t1, t2 := dynPhases(sc)
			victims := pickVictims(tree.Participants, tree.Root, 5)
			var joiners []int
			for _, c := range g.Clients {
				if !tree.Contains(c) {
					joiners = append(joiners, c)
				}
			}
			s := scenario.New()
			if len(victims) > 0 {
				s.At(t1, scenario.ChurnNodes(victims...))
				interval := (t2 - t1) / sim.Duration(len(victims)+1)
				for i, v := range victims {
					s.At(t1+sim.Duration(i+1)*interval, scenario.RestartNode(v))
				}
			}
			if len(joiners) > 0 {
				interval := (t2 - t1) / sim.Duration(len(joiners)+1)
				for i, j := range joiners {
					s.At(t1+sim.Duration(i+1)*interval, scenario.JoinNode(j))
				}
			}
			return s, victims
		})
}

func init() {
	// Self-check: every churn experiment must be registered (the
	// Registry literal lives in experiments.go, like the dyn-* ids).
	for _, id := range []string{"churn-crash25", "churn-crashheal", "churn-rolling", "churn-join", "churn-xl"} {
		if _, ok := Registry[id]; !ok {
			panic(fmt.Sprintf("experiments: %s missing from Registry", id))
		}
	}
}
