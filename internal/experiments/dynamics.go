package experiments

import (
	"fmt"

	"bullet/internal/core"
	"bullet/internal/metrics"
	"bullet/internal/overlay"
	"bullet/internal/scenario"
	"bullet/internal/sim"
	"bullet/internal/streamer"
	"bullet/internal/topology"
)

// Dynamic-network experiments. Bullet's headline claim is resilience
// when available bandwidth shifts underneath the overlay; these runs
// exercise it directly by replaying a deterministic scenario of link
// mutations (failures, throttles, oscillations, flash crowds) against
// both Bullet and the plain tree streamer over the *same* topology,
// tree, and schedule, so the series differ only by protocol.
//
// Each run remains a pure function of (scale, seed): scenarios are
// built from graph state at deploy time and installed as fixed-time
// engine events.

// dynPhases are the three measurement windows around the disturbance:
// the event starts at t1 = Start + Duration/3 and ends (where the
// scenario has an end) at t2 = Start + 2*Duration/3.
func dynPhases(sc Scale) (t1, t2 sim.Time) {
	return sc.Start + sc.Duration/3, sc.Start + 2*sc.Duration/3
}

// dynVictim picks the root child whose subtree is largest — the same
// "worst case" selection as the paper's failure experiments — and
// returns it with its degree-one access link.
func dynVictim(g *topology.Graph, tree *overlay.Tree) (victim, accessLink, descendants int) {
	victim, descendants = tree.HeaviestChild(tree.Root)
	if victim < 0 {
		return -1, -1, 0
	}
	return victim, g.AccessLink(victim), descendants
}

// dynCompare runs the same scenario against Bullet and the plain tree
// streamer in two independent worlds built from the same seed (hence
// identical topologies, link ids, and overlay trees), and reports both
// useful-bandwidth series plus per-phase means.
//
// build receives the graph and tree of a freshly deployed world and
// returns the scenario to install; it runs once per world, but since
// the worlds are identical at t=0 it must produce the same schedule.
func dynCompare(name string, sc Scale, seed int64,
	build func(g *topology.Graph, tree *overlay.Tree) *scenario.Schedule) (*Result, error) {

	t1, t2 := dynPhases(sc)
	r := newResult(name)

	type deployFn func(w *world, tree *overlay.Tree, col *metrics.Collector) error
	variants := []struct {
		label  string
		deploy deployFn
	}{
		{"bullet", func(w *world, tree *overlay.Tree, col *metrics.Collector) error {
			_, err := core.Deploy(w.net, tree, bulletConfig(sc, defaultRateKbps), col)
			return err
		}},
		{"stream", func(w *world, tree *overlay.Tree, col *metrics.Collector) error {
			_, err := streamer.Deploy(w.net, tree, streamer.Config{
				RateKbps: defaultRateKbps, PacketSize: 1500, Start: sc.Start, Duration: sc.Duration,
			}, col)
			return err
		}},
	}
	for _, v := range variants {
		w, err := newWorld(sc, topology.MediumBandwidth, topology.NoLoss, seed)
		if err != nil {
			return nil, err
		}
		tree, err := w.randomTree(sc)
		if err != nil {
			return nil, err
		}
		col := metrics.NewCollector(sim.Second)
		if err := v.deploy(w, tree, col); err != nil {
			return nil, err
		}
		build(w.g, tree).Install(&scenario.Env{Eng: w.eng, G: w.g})
		w.run(sc.RunUntil)

		r.addSeries(v.label+"_useful", col.Series(metrics.Useful))
		pre := col.MeanOver(t1-20*sim.Second, t1, metrics.Useful)
		during := col.MeanOver(t1+5*sim.Second, t2, metrics.Useful)
		post := col.MeanOver(t2+10*sim.Second, sc.RunUntil, metrics.Useful)
		r.Summary[v.label+"_before_kbps"] = pre
		r.Summary[v.label+"_during_kbps"] = during
		r.Summary[v.label+"_after_kbps"] = post
		if pre > 0 {
			r.Summary[v.label+"_recovery_ratio"] = post / pre
		}
		// Overall mean over the whole stream: data a protocol never
		// recovers (the streamer's outage losses) stays missing here,
		// while Bullet's mesh backfill makes the loss transient.
		r.Summary[v.label+"_overall_kbps"] = col.MeanOver(sc.Start+10*sim.Second, sc.RunUntil, metrics.Useful)
		st := w.net.Stats()
		r.Summary[v.label+"_link_down_drops"] = float64(st.LinkDownDrops)
		r.Summary[v.label+"_rerouted_packets"] = float64(st.ReroutedPackets)
	}
	r.Summary["event_start_s"] = t1.ToSeconds()
	r.Summary["event_end_s"] = t2.ToSeconds()
	return r, nil
}

// DynBottleneck throttles the worst-case subtree's access link to 15%
// of its capacity for the middle third of the stream, then restores it.
// Bullet's mesh keeps the victim's descendants fed and backfills the
// victim after restoration; the streamer's subtree starves.
func DynBottleneck(sc Scale, seed int64) (*Result, error) {
	return dynCompare("Dynamic: transient bottleneck on the worst-case subtree", sc, seed,
		func(g *topology.Graph, tree *overlay.Tree) *scenario.Schedule {
			t1, t2 := dynPhases(sc)
			_, lid, _ := dynVictim(g, tree)
			s := scenario.New()
			if lid < 0 {
				return s
			}
			orig := g.Links[lid].Kbps()
			return s.At(t1, scenario.SetBandwidth(lid, orig*0.15)).
				At(t2, scenario.SetBandwidth(lid, orig))
		})
}

// DynPartition fails the worst-case subtree root's access link outright
// for the middle third of the stream — a transient partition. During
// the outage the victim is physically unreachable, but with Bullet its
// overlay descendants keep receiving via mesh peers and the victim
// recovers the missed data after the link heals; the streamer's subtree
// permanently loses everything sent during the outage.
func DynPartition(sc Scale, seed int64) (*Result, error) {
	return dynCompare("Dynamic: transient partition of the worst-case subtree", sc, seed,
		func(g *topology.Graph, tree *overlay.Tree) *scenario.Schedule {
			t1, t2 := dynPhases(sc)
			_, lid, _ := dynVictim(g, tree)
			s := scenario.New()
			if lid < 0 {
				return s
			}
			return s.At(t1, scenario.FailLink(lid)).
				At(t2, scenario.RestoreLink(lid))
		})
}

// DynFlashCrowd models a flash crowd of background traffic saturating
// every receiver's access link: all client access links except the
// source's drop to 35% capacity for the middle third of the stream,
// ramping back to full over ten steps afterwards.
func DynFlashCrowd(sc Scale, seed int64) (*Result, error) {
	return dynCompare("Dynamic: flash-crowd congestion on receiver access links", sc, seed,
		func(g *topology.Graph, tree *overlay.Tree) *scenario.Schedule {
			t1, t2 := dynPhases(sc)
			// Record original capacities at build time (t=0 state).
			links := make([]int, 0, len(g.Clients))
			orig := make([]float64, 0, len(g.Clients))
			for _, c := range g.Clients {
				if c == tree.Root {
					continue
				}
				if lid := g.AccessLink(c); lid >= 0 {
					links = append(links, lid)
					orig = append(orig, g.Links[lid].Kbps())
				}
			}
			s := scenario.New()
			s.At(t1, scenario.Func(func(env *scenario.Env) {
				for i, lid := range links {
					env.G.SetBandwidth(lid, orig[i]*0.35)
				}
			}))
			// Congestion drains gradually as the crowd disperses.
			rampDur := sc.Duration / 6
			s.Ramp(t2, rampDur, 10, func(frac float64) scenario.Action {
				return scenario.Func(func(env *scenario.Env) {
					for i, lid := range links {
						env.G.SetBandwidth(lid, orig[i]*(0.35+0.65*frac))
					}
				})
			})
			return s
		})
}

// DynOscillate flaps the worst-case subtree's access link between 20%
// and full capacity on a fixed period for the middle third of the
// stream — the oscillating-bottleneck workload.
func DynOscillate(sc Scale, seed int64) (*Result, error) {
	return dynCompare("Dynamic: oscillating bottleneck on the worst-case subtree", sc, seed,
		func(g *topology.Graph, tree *overlay.Tree) *scenario.Schedule {
			t1, t2 := dynPhases(sc)
			_, lid, _ := dynVictim(g, tree)
			s := scenario.New()
			if lid < 0 {
				return s
			}
			orig := g.Links[lid].Kbps()
			period := sc.Duration / 13
			cycles := int((t2 - t1) / period)
			if cycles < 1 {
				cycles = 1
			}
			s.Oscillate(t1, period, cycles,
				scenario.SetBandwidth(lid, orig*0.2),
				scenario.SetBandwidth(lid, orig))
			// Leave the link at full capacity after the last cycle.
			s.At(t2, scenario.SetBandwidth(lid, orig))
			return s
		})
}

func init() {
	// Self-check: every dynamic experiment must be registered.
	for _, id := range []string{"dyn-bottleneck", "dyn-partition", "dyn-flashcrowd", "dyn-oscillate"} {
		if _, ok := Registry[id]; !ok {
			panic(fmt.Sprintf("experiments: %s missing from Registry", id))
		}
	}
}
