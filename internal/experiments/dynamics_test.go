package experiments

import "testing"

// Shape checks for the dynamic-network experiments. The headline
// recovery regression (Bullet recovers from a transient partition, the
// streamer does not) is pinned at the top level in golden_test.go; here
// we verify every dyn experiment produces both protocol series, sane
// phase summaries, and — where the scenario fails links — evidence that
// the dynamics machinery actually fired.
func TestDynExperimentsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale runs; skipped in -short")
	}
	for _, id := range []string{"dyn-bottleneck", "dyn-partition", "dyn-flashcrowd", "dyn-oscillate"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, err := Registry[id].Run(Small, 7)
			if err != nil {
				t.Fatal(err)
			}
			for _, label := range []string{"bullet_useful", "stream_useful"} {
				if len(r.Series[label]) == 0 {
					t.Fatalf("missing series %q", label)
				}
			}
			for _, proto := range []string{"bullet", "stream"} {
				for _, phase := range []string{"_before_kbps", "_during_kbps", "_after_kbps", "_overall_kbps"} {
					if v := r.Summary[proto+phase]; v <= 0 {
						t.Errorf("summary %s%s = %v, want > 0", proto, phase, v)
					}
				}
			}
			if r.Summary["event_start_s"] >= r.Summary["event_end_s"] {
				t.Errorf("event window [%v, %v] not ordered",
					r.Summary["event_start_s"], r.Summary["event_end_s"])
			}
			if id == "dyn-partition" {
				if r.Summary["bullet_rerouted_packets"] == 0 {
					t.Error("partition scenario never rerouted an in-flight packet")
				}
			}
			// Bullet must beat the streamer overall under every dynamic
			// scenario — the point of the mesh.
			if r.Summary["bullet_overall_kbps"] <= r.Summary["stream_overall_kbps"] {
				t.Errorf("bullet overall %.1f <= stream overall %.1f",
					r.Summary["bullet_overall_kbps"], r.Summary["stream_overall_kbps"])
			}
		})
	}
}
