package experiments

import (
	"strings"
	"testing"

	"bullet/internal/workload"
)

// The acceptance regression for the workload layer: under the
// identical fountain-coded file workload, Bullet completes the file on
// at least 95% of nodes before the plain streamer does — the mesh
// turns tree leftovers into completion-time wins, not just bandwidth.
func TestFileDistBulletCompletesBeforeStreamer(t *testing.T) {
	if testing.Short() {
		t.Skip("three full small-scale runs; skipped in -short")
	}
	r, err := FileDistCompare(Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary
	if frac := s["bullet_first_frac"]; frac < 0.95 {
		t.Errorf("bullet completes first on %.3f of nodes, want >= 0.95", frac)
	}
	if frac := s["bullet_completed_frac"]; frac < 0.95 {
		t.Errorf("bullet completed the file on only %.3f of receivers", frac)
	}
	// The per-node completion-time CDF is the experiment's product:
	// one entry per completed receiver, monotone non-decreasing.
	if len(r.CDF) == 0 {
		t.Fatal("result carries no completion CDF")
	}
	if want := int(s["bullet_completed_frac"] * (float64(Small.Clients) - 1)); len(r.CDF) != want {
		t.Errorf("CDF has %d entries, completed_frac implies %d", len(r.CDF), want)
	}
	for i := 1; i < len(r.CDF); i++ {
		if r.CDF[i] < r.CDF[i-1] {
			t.Fatalf("completion CDF not sorted at %d: %v < %v", i, r.CDF[i], r.CDF[i-1])
		}
	}
	// Completions happen while the stream runs, not at the edges.
	if r.CDF[0] <= Small.Start.ToSeconds() {
		t.Errorf("first completion at %.1fs precedes the stream start", r.CDF[0])
	}
	if last := r.CDF[len(r.CDF)-1]; last > Small.RunUntil.ToSeconds() {
		t.Errorf("last completion at %.1fs is after the run end", last)
	}
}

// Shape checks for the VBR comparison: all three series exist, phase
// summaries are sane, and Bullet beats the plain streamer overall
// under the identical bursty source.
func TestVBRStreamShape(t *testing.T) {
	if testing.Short() {
		t.Skip("three full small-scale runs; skipped in -short")
	}
	r, err := VBRStream(Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"bullet", "stream", "gossip"} {
		if len(r.Series[label+"_useful"]) == 0 {
			t.Fatalf("missing %s_useful series", label)
		}
		if r.Summary[label+"_on_kbps"] <= 0 {
			t.Errorf("%s_on_kbps = %v, want > 0", label, r.Summary[label+"_on_kbps"])
		}
	}
	if b, s := r.Summary["bullet_overall_kbps"], r.Summary["stream_overall_kbps"]; b <= s {
		t.Errorf("bullet overall %.1f Kbps not above streamer %.1f under VBR", b, s)
	}
	if !strings.Contains(r.Name, "VBR") {
		t.Errorf("unexpected result name %q", r.Name)
	}
}

// A FileWorkload on the registry path arms completion tracking
// through the public Deployment API; CBR leaves it off. (Cheap: no
// simulation run, just deploy-time wiring.)
func TestFileWorkloadSizing(t *testing.T) {
	wl := fileWorkloadFor(Small)
	// A quarter of the stream's emission budget, never degenerate.
	if wl.K < 50 {
		t.Fatalf("file k = %d, want >= 50", wl.K)
	}
	budget := Small.Duration.ToSeconds() * defaultRateKbps * 1000 / 8 / 1500
	if float64(wl.Target()) > budget/2 {
		t.Errorf("completion target %d exceeds half the emission budget %.0f", wl.Target(), budget)
	}
	if wl.Target() <= uint64(wl.K) {
		t.Errorf("target %d must exceed k=%d (reception overhead)", wl.Target(), wl.K)
	}
}

func TestNearestAndScaleSuggestions(t *testing.T) {
	// The generic engine behind experiment, scale, and protocol
	// suggestions.
	if got := Nearest("smal", ScaleNames()); got != "small" {
		t.Errorf("Nearest(smal) = %q, want small", got)
	}
	if got := Nearest("qqqqqq", ScaleNames()); got != "" {
		t.Errorf("Nearest(far-off) = %q, want no suggestion", got)
	}
	_, err := ScaleByName("mediun")
	use, ok := err.(*UnknownScaleError)
	if !ok {
		t.Fatalf("ScaleByName error type %T, want *UnknownScaleError", err)
	}
	if use.Suggestion != "medium" {
		t.Errorf("scale suggestion %q, want medium", use.Suggestion)
	}
	if !strings.Contains(err.Error(), `did you mean "medium"`) {
		t.Errorf("error %q missing did-you-mean", err)
	}
	// Suggest keeps working for experiment ids via the same engine.
	if got := Suggest("filedist-compar"); got != "filedist-compare" {
		t.Errorf("Suggest(filedist-compar) = %q", got)
	}
}

// Compile-time check that the experiment workloads satisfy the source
// contract used by the registry runners.
var (
	_ workload.Source    = workload.File{}
	_ workload.Completer = workload.File{}
	_ workload.Source    = workload.VBR{}
)
