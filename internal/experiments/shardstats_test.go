package experiments

import (
	"testing"

	"bullet/internal/netem"
)

// TestShardStatsAndCalibration runs Figure 7 sharded and checks the
// load-observability loop end to end: every shard reports its planned
// weight and measured load, the sink fires through world.run, and the
// measured event counts support a client-weight fit in the same decade
// as topology.DefaultClientWeight (which was derived from exactly this
// run shape — see the constant's comment).
func TestShardStatsAndCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale run; skipped in -short")
	}
	var sunk []netem.ShardStat
	var sunkGlobal uint64
	sc := Small
	sc.Shards = 4
	sc.ShardStatsSink = func(l netem.RunLoad) {
		sunk = append(sunk[:0], l.Shards...)
		sunkGlobal = l.GlobalEvents
	}
	w, _, _, err := fig7Run(sc, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := w.net.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("got %d shard stats, want 4", len(stats))
	}
	if len(sunk) != len(stats) {
		t.Fatalf("sink saw %d shards, ShardStats reports %d", len(sunk), len(stats))
	}
	totalNodes, totalClients := 0, 0
	for i, s := range stats {
		if s.Shard != i {
			t.Errorf("stat %d has Shard=%d", i, s.Shard)
		}
		if s.Events == 0 {
			t.Errorf("shard %d executed no events", i)
		}
		if s.Weight == 0 {
			t.Errorf("shard %d has no planned weight", i)
		}
		if sunk[i].Events != s.Events {
			t.Errorf("shard %d: sink saw %d events, final stats %d", i, sunk[i].Events, s.Events)
		}
		totalNodes += s.Nodes
		totalClients += s.Clients
	}
	if totalNodes != len(w.g.Nodes) || totalClients != len(w.g.Clients) {
		t.Fatalf("stats cover %d nodes / %d clients, world has %d / %d",
			totalNodes, totalClients, len(w.g.Nodes), len(w.g.Clients))
	}
	wgt, ok := netem.CalibrateClientWeight(stats)
	if !ok {
		t.Fatal("calibration failed on a real run")
	}
	// The measured ratio is noisy run to run but sits around 10^4 —
	// far above the 101:1 the balancer once assumed.
	if wgt < 1000 || wgt > 1000000 {
		t.Fatalf("calibrated client weight %d outside plausible band [1e3, 1e6]", wgt)
	}

	// Executed-event identity: sharding neither adds nor drops logical
	// events, so the sharded run's total — shard engines plus the global
	// engine — must equal a serial run's single-engine count exactly.
	// (Figure 7 schedules everything through per-node schedulers, so a
	// zero global-engine count here is legitimate.)
	load := w.net.RunLoad()
	if sunkGlobal != load.GlobalEvents {
		t.Errorf("sink saw %d global events, final load %d", sunkGlobal, load.GlobalEvents)
	}
	ws, _, _, err := fig7Run(Small, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	serial := ws.net.RunLoad()
	if serial.Shards != nil {
		t.Fatal("serial run reports shard stats")
	}
	if serial.TotalEvents() != load.TotalEvents() {
		t.Fatalf("event totals diverge: serial %d, sharded %d (shards %d + global %d)",
			serial.TotalEvents(), load.TotalEvents(),
			load.TotalEvents()-load.GlobalEvents, load.GlobalEvents)
	}
}
