package experiments

import (
	"bytes"
	"testing"

	"bullet/internal/sim"
)

// identityScale is Small with a shortened stream so the full
// experiment × shard-count matrix stays tractable: identity does not
// need steady state, only enough virtual time to exercise cross-shard
// traffic, scenario mutations, and churn.
func identityScale() Scale {
	sc := Small
	sc.Start = 10 * sim.Second
	sc.Duration = 40 * sim.Second
	sc.RunUntil = 60 * sim.Second
	return sc
}

// renderTSV runs one experiment and renders its full TSV output — the
// series tables, CDFs and summaries the CLI prints — which is the
// byte-identity surface the sharded engine must preserve.
func renderTSV(t *testing.T, id string, sc Scale, seed int64) string {
	t.Helper()
	r, err := Registry[id].Run(sc, seed)
	if err != nil {
		t.Fatalf("%s at %d shard(s): %v", id, sc.Shards, err)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	return buf.String()
}

// TestShardIdentityMatrix is the tentpole guarantee as a table: every
// registered experiment, run at 1, 2 and 8 shards, produces TSV output
// byte-identical to the serial (unsharded) run. Any divergence —
// event ordering, RNG draws, float accumulation order — shows up as a
// diff here.
func TestShardIdentityMatrix(t *testing.T) {
	ids := Names()
	if testing.Short() {
		// A cross-section in -short: plain figure, epidemic baselines,
		// link dynamics, and membership churn.
		ids = []string{"fig7", "fig13", "dyn-partition", "churn-crashheal"}
	}
	const seed = 11
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := renderTSV(t, id, identityScale(), seed)
			if serial == "" {
				t.Fatal("serial run produced no output")
			}
			for _, k := range []int{1, 2, 8} {
				sc := identityScale()
				sc.Shards = k
				if got := renderTSV(t, id, sc, seed); got != serial {
					t.Errorf("shards=%d: output differs from serial run", k)
				}
			}
		})
	}
}
