// Package experiments reproduces every table and figure of the Bullet
// paper's evaluation (§4). Each runner builds the topology, tree(s) and
// protocol deployment the paper describes, executes the run in the
// deterministic emulator, and returns labeled bandwidth-versus-time
// series plus run summaries in the shape the paper plots.
//
// Runners accept a Scale so the same experiment can execute at reduced
// scale (tests, benchmarks) or at the paper's full scale
// (20,000-node topologies, 1000 participants) from cmd/bullet-sim.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"bullet/internal/core"
	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/topology"
)

// Scale parameterizes experiment size.
type Scale struct {
	Name       string
	TopoNodes  int          // physical topology size
	Clients    int          // overlay participants
	Start      sim.Time     // when streaming begins
	Duration   sim.Duration // how long the source streams
	RunUntil   sim.Time     // total virtual run time
	TreeDegree int          // random tree degree bound

	// Shards is the number of parallel simulation shards the emulator
	// runs the experiment on (netem.Network.EnableShards). 0 or 1 means
	// serial execution; netem.AutoShardCount (-1) defers the choice to
	// topology.AutoShards. Any value yields byte-identical results; >1
	// trades goroutine/barrier overhead for wall-clock speedup on
	// multi-core hosts.
	Shards int

	// ShardStatsSink, when set, receives the cumulative executed-event
	// accounting — per-shard load counters plus the global engine's own
	// count — after every run segment of every world the experiment
	// builds (bullet-sim -shardstats wires this to a stderr table).
	// Serial runs report too, with no shard tables: their global count
	// is the total any sharded run of the same experiment must match.
	// Purely observational: it never affects simulation output.
	ShardStatsSink func(netem.RunLoad)
}

// The four standard scales.
var (
	// Small finishes in seconds of wall-clock; used by tests and benches.
	Small = Scale{Name: "small", TopoNodes: 1500, Clients: 40,
		Start: 20 * sim.Second, Duration: 130 * sim.Second, RunUntil: 150 * sim.Second, TreeDegree: 5}
	// Medium is an intermediate validation point.
	Medium = Scale{Name: "medium", TopoNodes: 5000, Clients: 150,
		Start: 50 * sim.Second, Duration: 250 * sim.Second, RunUntil: 300 * sim.Second, TreeDegree: 6}
	// XL sits between medium and the paper's full configuration: large
	// enough (10,000-node topology, 400 participants) that per-node
	// state management dominates a map-backed implementation, small
	// enough for CI to run it as a smoke test of the scale path.
	XL = Scale{Name: "xl", TopoNodes: 10000, Clients: 400,
		Start: 60 * sim.Second, Duration: 180 * sim.Second, RunUntil: 260 * sim.Second, TreeDegree: 8}
	// PaperScale mirrors the paper's ModelNet configuration: 20,000-node
	// INET topologies with 1000 participants, streaming from t=100s.
	PaperScale = Scale{Name: "paper", TopoNodes: 20000, Clients: 1000,
		Start: 100 * sim.Second, Duration: 300 * sim.Second, RunUntil: 400 * sim.Second, TreeDegree: 10}
	// Mega is the 100,000-node / 10,000-participant configuration — five
	// times the paper's topology and participant count, exercising the
	// hierarchical router (which engages above 50k nodes) and the
	// sharded runner at full tilt. The stream window is deliberately
	// short: at this scale the interesting costs are startup and
	// steady-state event throughput, not long-horizon protocol behavior,
	// and the short window keeps mega runnable as a CI smoke test.
	Mega = Scale{Name: "mega", TopoNodes: 100000, Clients: 10000,
		Start: 20 * sim.Second, Duration: 15 * sim.Second, RunUntil: 40 * sim.Second, TreeDegree: 10}
)

// ScaleNames returns the recognized scale names, smallest first.
func ScaleNames() []string { return []string{"small", "medium", "xl", "paper", "mega"} }

// ScaleByName resolves a scale name. Unknown names yield an
// UnknownScaleError carrying a did-you-mean suggestion.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "xl":
		return XL, nil
	case "paper":
		return PaperScale, nil
	case "mega":
		return Mega, nil
	}
	return Scale{}, &UnknownScaleError{Name: name, Suggestion: Nearest(name, ScaleNames())}
}

// Result is one experiment's output.
type Result struct {
	Name    string
	Series  map[string][]metrics.Point
	order   []string
	CDF     []float64
	Summary map[string]float64
	Notes   []string
}

func newResult(name string) *Result {
	return &Result{Name: name, Series: make(map[string][]metrics.Point), Summary: make(map[string]float64)}
}

func (r *Result) addSeries(label string, pts []metrics.Point) {
	r.Series[label] = pts
	r.order = append(r.order, label)
}

// SeriesLabels returns series labels in insertion order.
func (r *Result) SeriesLabels() []string { return r.order }

// MeanTail returns the mean Kbps of the labeled series over its final
// frac fraction of samples — the steady-state number quoted in
// EXPERIMENTS.md comparisons.
func (r *Result) MeanTail(label string, frac float64) float64 {
	pts := r.Series[label]
	if len(pts) == 0 {
		return 0
	}
	start := int(float64(len(pts)) * (1 - frac))
	var sum float64
	n := 0
	for _, p := range pts[start:] {
		sum += p.Kbps
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Print writes the result as TSV blocks: one series table, then the
// CDF (if any), then summary key/values.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Name)
	if len(r.order) > 0 {
		fmt.Fprintf(w, "time_s")
		for _, l := range r.order {
			fmt.Fprintf(w, "\t%s_kbps", l)
		}
		fmt.Fprintln(w)
		maxLen := 0
		for _, l := range r.order {
			if len(r.Series[l]) > maxLen {
				maxLen = len(r.Series[l])
			}
		}
		for i := 0; i < maxLen; i++ {
			var t float64
			for _, l := range r.order {
				if i < len(r.Series[l]) {
					t = r.Series[l][i].T
					break
				}
			}
			fmt.Fprintf(w, "%.0f", t)
			for _, l := range r.order {
				if i < len(r.Series[l]) {
					fmt.Fprintf(w, "\t%.1f", r.Series[l][i].Kbps)
				} else {
					fmt.Fprintf(w, "\t")
				}
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.CDF) > 0 {
		fmt.Fprintln(w, "# CDF (bandwidth_kbps -> fraction of nodes)")
		for i, v := range r.CDF {
			fmt.Fprintf(w, "%.1f\t%.4f\n", v, float64(i+1)/float64(len(r.CDF)))
		}
	}
	if len(r.Summary) > 0 {
		fmt.Fprintln(w, "# summary")
		keys := make([]string, 0, len(r.Summary))
		for k := range r.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s\t%.3f\n", k, r.Summary[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# note: %s\n", n)
	}
}

// world bundles one emulated network instance.
type world struct {
	eng       *sim.Engine
	net       *netem.Network
	g         *topology.Graph
	rt        *topology.Router
	seed      int64
	statsSink func(netem.RunLoad)
}

// newWorld generates a topology at the given scale/profile and wraps
// it in a fresh engine and emulator.
func newWorld(sc Scale, bw topology.BandwidthProfile, loss topology.LossProfile, seed int64) (*world, error) {
	cfg := topology.Sized(sc.TopoNodes, sc.Clients, bw)
	cfg.Loss = loss
	cfg.Seed = seed
	g, err := topology.Generate(cfg)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(seed)
	rt := topology.NewRouter(g)
	net := netem.New(eng, g, rt, netem.Config{})
	if sc.Shards > 1 || sc.Shards == netem.AutoShardCount {
		net.EnableShards(sc.Shards)
	}
	return &world{eng: eng, net: net, g: g, rt: rt, seed: seed, statsSink: sc.ShardStatsSink}, nil
}

// run executes the world's event loop to the given virtual time,
// through the emulator so sharded worlds run their parallel loop.
// All experiment runners must use this instead of w.eng.Run: driving
// the engine directly would strand events on shard heaps.
func (w *world) run(until sim.Time) {
	w.net.Run(until)
	if w.statsSink != nil {
		w.statsSink(w.net.RunLoad())
	}
}

func (w *world) randomTree(sc Scale) (*overlay.Tree, error) {
	return overlay.Random(w.g.Clients, w.g.Clients[0], sc.TreeDegree, rand.New(rand.NewSource(w.seed^0x74726565)))
}

func (w *world) bottleneckTree(packetSize float64) (*overlay.Tree, error) {
	return overlay.Bottleneck(w.rt, w.g.Clients, w.g.Clients[0], packetSize, 0)
}

// Runner is an experiment entry point.
type Runner func(sc Scale, seed int64) (*Result, error)

// Entry is one registered experiment: its runner plus a one-line
// description (shown by bullet-sim -list).
type Entry struct {
	Run  Runner
	Desc string
}

// Registry maps experiment IDs to entries, for cmd/bullet-sim.
var Registry = map[string]Entry{
	"table1":   {Table1, "topology generation statistics (Table 1)"},
	"fig6":     {Fig06, "bottleneck vs random tree bandwidth (Figure 6)"},
	"fig7":     {Fig07, "Bullet useful/raw bandwidth and overhead (Figure 7)"},
	"fig8":     {Fig08, "per-node useful bandwidth CDF (Figure 8)"},
	"fig9":     {Fig09, "Bullet vs bottleneck tree, low/high bandwidth (Figure 9)"},
	"fig10":    {Fig10, "disjoint-send ablation: non-disjoint relay (Figure 10)"},
	"fig11":    {Fig11, "Bullet vs push gossip vs anti-entropy (Figure 11)"},
	"fig12":    {Fig12, "low-bandwidth comparison run (Figure 12)"},
	"fig13":    {Fig13, "performance under 25% node failure (Figure 13)"},
	"fig14":    {Fig14, "performance under link loss (Figure 14)"},
	"fig15":    {Fig15, "Bullet vs best/worst streaming trees (Figure 15)"},
	"overcast": {OvercastComparison, "Overcast-style online tree vs offline bottleneck tree"},

	// Dynamic-network scenarios (see dynamics.go): Bullet vs the plain
	// tree streamer under runtime link mutations.
	"dyn-bottleneck": {DynBottleneck, "transit backbone degrades mid-run, Bullet vs streamer"},
	"dyn-partition":  {DynPartition, "network partition and heal, Bullet vs streamer"},
	"dyn-flashcrowd": {DynFlashCrowd, "flash-crowd bandwidth squeeze, Bullet vs streamer"},
	"dyn-oscillate":  {DynOscillate, "oscillating link failure, Bullet vs streamer"},

	// Membership-churn scenarios (see churn.go): crashes, restarts, and
	// joins replayed against Bullet and the plain tree streamer.
	// churn-xl is the scale-path smoke mix, designed to be run at the
	// xl scale (CI does).
	"churn-crash25":   {ChurnCrash25, "25% crash wave mid-stream, Bullet vs streamer"},
	"churn-crashheal": {ChurnCrashHeal, "crash wave with staggered restarts, Bullet vs streamer"},
	"churn-rolling":   {ChurnRolling, "rolling one-at-a-time churn, Bullet vs streamer"},
	"churn-join":      {ChurnJoin, "late join wave, Bullet vs streamer"},
	"churn-xl":        {ChurnXL, "sustained crash/restart/join mix (xl scale-path smoke)"},

	// Workload comparisons (see workloads.go): the identical non-CBR
	// workload — fountain-coded file distribution with completion
	// CDFs, or a bursty VBR stream — disseminated by Bullet, the plain
	// streamer, and push gossip.
	"filedist-compare": {FileDistCompare, "fountain-coded file distribution completion times"},
	"vbr-stream":       {VBRStream, "bursty on/off VBR stream, Bullet vs streamer"},

	// Adversary scenarios (see adversary.go): Bullet vs the plain tree
	// streamer under the identical seeded hostile-peer attack, honest
	// subset metrics only.
	"adv-freeride":    {AdvFreeride, "free-riders leech without serving, Bullet vs streamer"},
	"adv-liar":        {AdvLiar, "forged-ticket sender-selection poisoning, Bullet vs streamer"},
	"adv-cutvertex":   {AdvCutvertex, "targeted cut-vertex crash timing, Bullet vs streamer"},
	"adv-joinstorm":   {AdvJoinstorm, "seeded leave/rejoin flash crowds, Bullet vs streamer"},
	"adv-ballotstuff": {AdvBallotstuff, "RanSub ballot stuffing toward colluders, Bullet vs streamer"},
}

// Names returns registry keys in a stable order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

const defaultRateKbps = 600

// bulletConfig is the shared Bullet configuration for figure runs.
// The paper's sender/receiver list bound of 10 was chosen for
// 1000-participant runs; at reduced scales a 10-peer mesh over a few
// dozen nodes is over-connected and its per-node control overhead is
// disproportionate, so the mesh degree scales with participant count
// (reaching the paper's 10 at and above ~100 participants).
func bulletConfig(sc Scale, rateKbps float64) core.Config {
	cfg := core.DefaultConfig(rateKbps)
	cfg.Start = sc.Start
	cfg.Duration = sc.Duration
	cfg.TraceEvery = 100
	peers := sc.Clients / 10
	if peers < 4 {
		peers = 4
	}
	if peers > 10 {
		peers = 10
	}
	cfg.MaxSenders = peers
	cfg.MaxReceivers = peers
	return cfg
}
