package experiments

import "fmt"

// UnknownExperimentError reports an unrecognized experiment id,
// carrying the nearest registered id (by edit distance) when one is
// plausibly close.
type UnknownExperimentError struct {
	ID         string
	Suggestion string
}

func (e *UnknownExperimentError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("experiments: unknown experiment %q (did you mean %q?)", e.ID, e.Suggestion)
	}
	return fmt.Sprintf("experiments: unknown experiment %q", e.ID)
}

// UnknownScaleError reports an unrecognized scale name, carrying the
// nearest recognized name when one is plausibly close. Surfaced on
// bullet-sim stderr for -scale typos.
type UnknownScaleError struct {
	Name       string
	Suggestion string
}

func (e *UnknownScaleError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("experiments: unknown scale %q (did you mean %q?)", e.Name, e.Suggestion)
	}
	return fmt.Sprintf("experiments: unknown scale %q (have %v)", e.Name, ScaleNames())
}

// Suggest returns the registered experiment id nearest to id by
// Levenshtein distance, or "" when nothing is plausibly close.
func Suggest(id string) string { return Nearest(id, Names()) }

// Nearest returns the candidate nearest to name by Levenshtein
// distance, or "" when nothing is within a third of the name's length
// (rounded up, minimum 2) — far-off typos get no misleading guess.
// Ties break to the first candidate, so with sorted candidates the
// suggestion is deterministic. This is the shared did-you-mean engine
// behind experiment ids, scale names (ScaleByName), and protocol names
// (bullet.ProtocolByName).
func Nearest(name string, candidates []string) string {
	best, bestDist := "", -1
	for _, cand := range candidates {
		d := editDistance(name, cand)
		if bestDist < 0 || d < bestDist {
			best, bestDist = cand, d
		}
	}
	maxDist := (len(name) + 2) / 3
	if maxDist < 2 {
		maxDist = 2
	}
	if bestDist < 0 || bestDist > maxDist {
		return ""
	}
	return best
}

// editDistance is the classic two-row Levenshtein distance.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 0; i < len(a); i++ {
		cur[0] = i + 1
		for j := 0; j < len(b); j++ {
			cost := 1
			if a[i] == b[j] {
				cost = 0
			}
			m := prev[j] + cost            // substitute
			if d := prev[j+1] + 1; d < m { // delete
				m = d
			}
			if d := cur[j] + 1; d < m { // insert
				m = d
			}
			cur[j+1] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
