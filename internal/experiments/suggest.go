package experiments

import "fmt"

// UnknownExperimentError reports an unrecognized experiment id,
// carrying the nearest registered id (by edit distance) when one is
// plausibly close.
type UnknownExperimentError struct {
	ID         string
	Suggestion string
}

func (e *UnknownExperimentError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("experiments: unknown experiment %q (did you mean %q?)", e.ID, e.Suggestion)
	}
	return fmt.Sprintf("experiments: unknown experiment %q", e.ID)
}

// Suggest returns the registered experiment id nearest to id by
// Levenshtein distance, or "" when nothing is within a third of the
// id's length (rounded up, minimum 2) — far-off typos get no
// misleading guess. Ties break to the lexicographically first id, so
// the suggestion is deterministic.
func Suggest(id string) string {
	best, bestDist := "", -1
	for _, cand := range Names() {
		d := editDistance(id, cand)
		if bestDist < 0 || d < bestDist {
			best, bestDist = cand, d
		}
	}
	maxDist := (len(id) + 2) / 3
	if maxDist < 2 {
		maxDist = 2
	}
	if bestDist < 0 || bestDist > maxDist {
		return ""
	}
	return best
}

// editDistance is the classic two-row Levenshtein distance.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 0; i < len(a); i++ {
		cur[0] = i + 1
		for j := 0; j < len(b); j++ {
			cost := 1
			if a[i] == b[j] {
				cost = 0
			}
			m := prev[j] + cost            // substitute
			if d := prev[j+1] + 1; d < m { // delete
				m = d
			}
			if d := cur[j] + 1; d < m { // insert
				m = d
			}
			cur[j+1] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
