package experiments

import (
	"strings"
	"testing"
)

// The acceptance regression for the churn subsystem: crashing 25% of
// the overlay mid-stream, Bullet's surviving orphans recover useful
// bandwidth (re-parented within the failover delay, mesh backfills)
// while the plain streamer's orphaned subtrees starve for the rest of
// the run.
func TestChurnCrash25BulletRecoversStreamerDoesNot(t *testing.T) {
	if testing.Short() {
		t.Skip("two full small-scale runs; skipped in -short")
	}
	r, err := ChurnCrash25(Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary
	// A quarter of the 40-client overlay must actually have died.
	if s["bullet_live_nodes"] != 30 || s["stream_live_nodes"] != 30 {
		t.Fatalf("live nodes bullet=%v stream=%v, want 30/30",
			s["bullet_live_nodes"], s["stream_live_nodes"])
	}
	// Bullet's orphans recover at least their pre-crash bandwidth.
	if ratio := s["bullet_orphan_recovery_ratio"]; ratio < 0.95 {
		t.Errorf("bullet orphan recovery ratio %.3f, want >= 0.95", ratio)
	}
	// The streamer's orphans starve: under 10%% of their pre-crash rate.
	if s["stream_orphan_after_kbps"] > 0.1*s["stream_orphan_before_kbps"] {
		t.Errorf("stream orphans at %.1f Kbps after crash (%.1f before): expected starvation",
			s["stream_orphan_after_kbps"], s["stream_orphan_before_kbps"])
	}
	// Survivor-wide, Bullet holds its bandwidth too.
	if ratio := s["bullet_recovery_ratio"]; ratio < 0.95 {
		t.Errorf("bullet survivor recovery ratio %.3f, want >= 0.95", ratio)
	}
	// And head-to-head on the orphans, the gap is the whole point.
	if s["bullet_orphan_after_kbps"] < 4*s["stream_orphan_after_kbps"]+100 {
		t.Errorf("bullet orphans %.1f Kbps not clearly above stream orphans %.1f Kbps",
			s["bullet_orphan_after_kbps"], s["stream_orphan_after_kbps"])
	}
}

// Shape checks for every churn experiment, mirroring the dyn-* suite:
// both protocol series exist, phase summaries are sane, and Bullet
// beats the streamer overall under identical churn.
func TestChurnExperimentsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale runs; skipped in -short")
	}
	for _, id := range []string{"churn-crash25", "churn-crashheal", "churn-rolling", "churn-join"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, err := Registry[id].Run(Small, 7)
			if err != nil {
				t.Fatal(err)
			}
			for _, label := range []string{"bullet_useful", "stream_useful"} {
				if len(r.Series[label]) == 0 {
					t.Fatalf("missing series %q", label)
				}
			}
			for _, proto := range []string{"bullet", "stream"} {
				for _, phase := range []string{"_before_kbps", "_during_kbps", "_after_kbps", "_overall_kbps"} {
					if v := r.Summary[proto+phase]; v <= 0 {
						t.Errorf("summary %s%s = %v, want > 0", proto, phase, v)
					}
				}
				if r.Summary[proto+"_live_nodes"] <= 0 {
					t.Errorf("summary %s_live_nodes missing", proto)
				}
			}
			switch id {
			case "churn-crash25":
				// Nobody comes back after the mass failure.
				if r.Summary["bullet_live_nodes"] >= float64(Small.Clients) {
					t.Errorf("crash25 left %v live nodes of %d: nobody crashed?",
						r.Summary["bullet_live_nodes"], Small.Clients)
				}
			case "churn-crashheal", "churn-rolling", "churn-join":
				// Everyone is back (or joined) by the end of the run.
				if r.Summary["bullet_live_nodes"] != float64(Small.Clients) {
					t.Errorf("%s ended with %v live nodes, want %d",
						id, r.Summary["bullet_live_nodes"], Small.Clients)
				}
			}
			if r.Summary["bullet_overall_kbps"] <= r.Summary["stream_overall_kbps"] {
				t.Errorf("bullet overall %.1f <= stream overall %.1f",
					r.Summary["bullet_overall_kbps"], r.Summary["stream_overall_kbps"])
			}
		})
	}
}

// Churn runs are a pure function of (scale, seed): two executions of
// the same mass-failure experiment produce identical summaries.
func TestChurnDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("four full small-scale runs; skipped in -short")
	}
	a, err := ChurnCrash25(Small, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChurnCrash25(Small, 11)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Summary {
		if b.Summary[k] != v {
			t.Errorf("summary %q diverged: %v vs %v", k, v, b.Summary[k])
		}
	}
}

func TestSuggest(t *testing.T) {
	cases := []struct{ in, want string }{
		{"fig99", "fig9"},
		{"churn-crash", "churn-crash25"},
		{"dyn-partion", "dyn-partition"},
		{"tabel1", "table1"},
		{"completely-unrelated-nonsense", ""},
	}
	for _, c := range cases {
		if got := Suggest(c.in); got != c.want {
			t.Errorf("Suggest(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestUnknownExperimentErrorMessage(t *testing.T) {
	res := execute(Run{ID: "fig99", Scale: Small, Seed: 1})
	if res.Err == nil {
		t.Fatal("unknown experiment accepted")
	}
	ue, ok := res.Err.(*UnknownExperimentError)
	if !ok {
		t.Fatalf("wrong error type %T", res.Err)
	}
	if ue.Suggestion != "fig9" {
		t.Errorf("suggestion %q, want fig9", ue.Suggestion)
	}
	if want := `unknown experiment "fig99" (did you mean "fig9"?)`; !strings.Contains(res.Err.Error(), want) {
		t.Errorf("error %q missing %q", res.Err.Error(), want)
	}
}
