package experiments

import (
	"fmt"

	"bullet/internal/core"
	"bullet/internal/epidemic"
	"bullet/internal/metrics"
	"bullet/internal/sim"
	"bullet/internal/streamer"
	"bullet/internal/topology"
	"bullet/internal/workload"
)

// Workload experiments: the same non-CBR workload — a fountain-coded
// file or a bursty VBR stream — disseminated by Bullet, the plain tree
// streamer, and push gossip, so the results differ only by protocol.
// This is the paper's §2.1 framing made runnable: the mesh is a data
// *dissemination* structure, not just a streaming one, and a finite
// file with completion semantics separates the protocols far more
// sharply than steady-state bandwidth does.

// workloadCompare deploys Bullet, the plain streamer, and push gossip
// in three independent worlds built from the same seed (identical
// topologies, trees, and sources) with the identical workload, runs
// each to sc.RunUntil, and hands every (label, world, collector) to
// report. mkSource is called once per variant so stateful sources
// never leak state across runs.
func workloadCompare(sc Scale, seed int64, mkSource func() workload.Source,
	report func(label string, w *world, col *metrics.Collector)) error {

	variants := []struct {
		label  string
		deploy func(w *world, src workload.Source, col *metrics.Collector) error
	}{
		{"bullet", func(w *world, src workload.Source, col *metrics.Collector) error {
			tree, err := w.randomTree(sc)
			if err != nil {
				return err
			}
			cfg := bulletConfig(sc, defaultRateKbps)
			cfg.Workload = src
			_, err = core.Deploy(w.net, tree, cfg, col)
			return err
		}},
		{"stream", func(w *world, src workload.Source, col *metrics.Collector) error {
			tree, err := w.randomTree(sc)
			if err != nil {
				return err
			}
			_, err = streamer.Deploy(w.net, tree, streamer.Config{
				PacketSize: 1500, Start: sc.Start, Duration: sc.Duration, Workload: src,
			}, col)
			return err
		}},
		{"gossip", func(w *world, src workload.Source, col *metrics.Collector) error {
			// Gossip needs no tree; the source matches the trees' root
			// (the first client) so all three variants emit from the
			// same physical node.
			_, err := epidemic.DeployGossip(w.net, w.g.Clients, w.g.Clients[0], epidemic.GossipConfig{
				PacketSize: 1500, Start: sc.Start, Duration: sc.Duration, Fanout: 5, Workload: src,
			}, col)
			return err
		}},
	}
	for _, v := range variants {
		w, err := newWorld(sc, topology.MediumBandwidth, topology.NoLoss, seed)
		if err != nil {
			return err
		}
		col := metrics.NewCollector(sim.Second)
		if err := v.deploy(w, mkSource(), col); err != nil {
			return err
		}
		w.run(sc.RunUntil)
		report(v.label, w, col)
	}
	return nil
}

// fileWorkloadFor sizes the fountain-coded file to the scale: a
// quarter of the symbols the source emits over the stream duration, so
// a node at full stream rate completes early and stragglers still have
// the whole remaining stream to accumulate their (1+ε)k symbols.
func fileWorkloadFor(sc Scale) workload.File {
	pkts := sc.Duration.ToSeconds() * defaultRateKbps * 1000 / 8 / 1500
	k := int(pkts / 4)
	if k < 50 {
		k = 50
	}
	return workload.File{RateKbps: defaultRateKbps, PacketSize: 1500, K: k, Overhead: 0.15}
}

// FileDistCompare is the file-distribution shoot-out: the identical
// fountain-coded file (stream sequence = encoded-symbol ID, node done
// at (1+ε)k distinct receipts) disseminated by Bullet, the plain tree
// streamer, and push gossip. The result carries each variant's
// completion fraction and median time-to-finish, Bullet's full
// per-node completion CDF, and the head-to-head fraction of nodes
// Bullet finishes before the streamer — the headline the regression
// test pins at ≥95%.
func FileDistCompare(sc Scale, seed int64) (*Result, error) {
	wl := fileWorkloadFor(sc)
	r := newResult(fmt.Sprintf("File distribution: %d-block fountain-coded file, Bullet vs streamer vs gossip", wl.K))
	r.Summary["file_k"] = float64(wl.K)
	r.Summary["completion_target_pkts"] = float64(wl.Target())

	cols := make(map[string]*metrics.Collector)
	var clients []int
	err := workloadCompare(sc, seed, func() workload.Source { return wl },
		func(label string, w *world, col *metrics.Collector) {
			cols[label] = col
			clients = w.g.Clients // identical across same-seed worlds
			r.addSeries(label+"_useful", col.Series(metrics.Useful))
			cdf := col.CompletionCDF()
			// The source node never receives, so it is absent from the
			// CDF; fractions are over the receivers.
			receivers := len(clients) - 1
			r.Summary[label+"_completed_frac"] = float64(len(cdf)) / float64(receivers)
			if len(cdf) > 0 {
				r.Summary[label+"_median_completion_s"] = cdf[len(cdf)/2]
				r.Summary[label+"_last_completion_s"] = cdf[len(cdf)-1]
			}
		})
	if err != nil {
		return nil, err
	}
	r.CDF = cols["bullet"].CompletionCDF()
	r.Notes = append(r.Notes, "CDF block: Bullet per-node completion times (seconds)")

	// Head-to-head per node: Bullet "wins" a node when it completes
	// the file there and the rival either never does or does later.
	beats := func(a, b *metrics.Collector) float64 {
		wins, n := 0, 0
		for _, node := range clients {
			if node == clients[0] {
				continue // the source
			}
			n++
			at, ok := a.CompletionTime(node)
			bt, bok := b.CompletionTime(node)
			if ok && (!bok || at < bt) {
				wins++
			}
		}
		if n == 0 {
			return 0
		}
		return float64(wins) / float64(n)
	}
	r.Summary["bullet_first_frac"] = beats(cols["bullet"], cols["stream"])
	r.Summary["bullet_before_gossip_frac"] = beats(cols["bullet"], cols["gossip"])
	return r, nil
}

// vbrPhaseMeans splits a variant's per-bucket useful-bandwidth series
// into the workload's on- and off-phases and returns each phase's mean
// Kbps. The first cycle is skipped (slow-start ramp) and measurement
// stops at the stream end.
func vbrPhaseMeans(col *metrics.Collector, sc Scale, wl workload.VBR) (on, off float64) {
	periodSec := wl.Period.ToSeconds()
	onLen := periodSec * wl.Duty
	startSec := sc.Start.ToSeconds()
	endSec := (sc.Start + sc.Duration).ToSeconds()
	var onSum, offSum float64
	var onN, offN int
	for _, p := range col.Series(metrics.Useful) {
		if p.T < startSec+periodSec || p.T >= endSec {
			continue
		}
		pos := p.T - startSec
		for pos >= periodSec {
			pos -= periodSec
		}
		if pos < onLen {
			onSum += p.Kbps
			onN++
		} else {
			offSum += p.Kbps
			offN++
		}
	}
	if onN > 0 {
		on = onSum / float64(onN)
	}
	if offN > 0 {
		off = offSum / float64(offN)
	}
	return on, off
}

// VBRStream is the bursty-source shoot-out: an on/off variable-bit-rate
// stream (900 Kbps bursts, 150 Kbps troughs, five cycles over the
// stream) disseminated by Bullet, the plain streamer, and push gossip
// under identical conditions. Summaries report each variant's
// on-phase and off-phase delivered bandwidth: the interesting question
// is who actually sustains the bursts.
func VBRStream(sc Scale, seed int64) (*Result, error) {
	wl := workload.VBR{
		HighKbps: 900, LowKbps: 150, PacketSize: 1500,
		Period: sc.Duration / 5, Duty: 0.5, Phase: sc.Start,
	}
	r := newResult("VBR streaming: on/off bursty source, Bullet vs streamer vs gossip")
	r.Summary["vbr_high_kbps"] = wl.HighKbps
	r.Summary["vbr_low_kbps"] = wl.LowKbps
	r.Summary["vbr_period_s"] = wl.Period.ToSeconds()
	err := workloadCompare(sc, seed, func() workload.Source { return wl },
		func(label string, w *world, col *metrics.Collector) {
			r.addSeries(label+"_useful", col.Series(metrics.Useful))
			on, off := vbrPhaseMeans(col, sc, wl)
			r.Summary[label+"_on_kbps"] = on
			r.Summary[label+"_off_kbps"] = off
			r.Summary[label+"_overall_kbps"] = col.MeanOver(sc.Start+10*sim.Second, sc.RunUntil, metrics.Useful)
			r.Summary[label+"_dup_ratio"] = col.DuplicateRatio()
		})
	if err != nil {
		return nil, err
	}
	return r, nil
}

func init() {
	// Self-check: every workload experiment must be registered (the
	// Registry literal lives in experiments.go, like the dyn-* ids).
	for _, id := range []string{"filedist-compare", "vbr-stream"} {
		if _, ok := Registry[id]; !ok {
			panic(fmt.Sprintf("experiments: %s missing from Registry", id))
		}
	}
}
