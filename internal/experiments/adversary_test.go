package experiments

import (
	"fmt"
	"testing"
)

// advIDs is the locked model axis of the acceptance matrix, in
// registry order.
var advIDs = []string{"adv-freeride", "adv-liar", "adv-cutvertex", "adv-joinstorm", "adv-ballotstuff"}

// advSeeds is the locked seed axis. These seeds are part of the
// subsystem's acceptance contract: changing them (or the set of
// models) is a semantic change and must be called out in review.
var advSeeds = []int64{11, 17, 23, 31, 47}

// TestAdversaryAcceptanceMatrix locks the seeds × models matrix: every
// adversary model at every locked seed must produce TSV output that is
// byte-identical between the serial engine and a 4-shard run. Any
// adversary RNG draw made outside the global-engine context — or any
// hook that reads state written inside a shard window — diverges here.
func TestAdversaryAcceptanceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full seeds × models matrix skipped in -short (shard_identity covers a cross-section)")
	}
	for _, id := range advIDs {
		for _, seed := range advSeeds {
			id, seed := id, seed
			t.Run(fmt.Sprintf("%s/seed%d", id, seed), func(t *testing.T) {
				t.Parallel()
				serial := renderTSV(t, id, identityScale(), seed)
				if serial == "" {
					t.Fatal("serial run produced no output")
				}
				sc := identityScale()
				sc.Shards = 4
				if got := renderTSV(t, id, sc, seed); got != serial {
					t.Errorf("shards=4: output differs from serial run")
				}
			})
		}
	}
}

// TestAdvFreerideBulletGoodputFloor is the subsystem's headline
// assertion: with a quarter of the overlay free-riding, Bullet's
// honest nodes keep at least half of their clean-run goodput (the mesh
// routes recovery around the leeches) while the plain streamer's
// honest nodes fall below half (orphaned subtrees under free-riding
// interior nodes starve). The fleet is dormant before the strike, so
// the before-window is a true clean-run baseline.
func TestAdvFreerideBulletGoodputFloor(t *testing.T) {
	r, err := AdvFreeride(Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	bullet := r.Summary["bullet_honest_floor_ratio"]
	stream := r.Summary["stream_honest_floor_ratio"]
	if bullet < 0.5 {
		t.Errorf("bullet honest floor ratio %.3f < 0.5 (before %.0f -> after %.0f Kbps)",
			bullet, r.Summary["bullet_honest_before_kbps"], r.Summary["bullet_honest_after_kbps"])
	}
	if stream >= 0.5 {
		t.Errorf("streamer honest floor ratio %.3f >= 0.5: free-riding should starve streamer subtrees (before %.0f -> after %.0f Kbps)",
			stream, r.Summary["stream_honest_before_kbps"], r.Summary["stream_honest_after_kbps"])
	}
	if bullet <= stream {
		t.Errorf("bullet floor %.3f not above streamer floor %.3f", bullet, stream)
	}
}

// TestAdvSummariesPresent sanity-checks that every adversary run
// reports the honest-subset summary keys for both variants and a
// non-empty colluder set (cutvertex records its victims at strike).
func TestAdvSummariesPresent(t *testing.T) {
	for _, id := range advIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, err := Registry[id].Run(identityScale(), 7)
			if err != nil {
				t.Fatal(err)
			}
			for _, label := range []string{"bullet", "stream"} {
				for _, k := range []string{"_honest_before_kbps", "_honest_after_kbps", "_honest_min_kbps", "_colluders", "_live_nodes"} {
					if _, ok := r.Summary[label+k]; !ok {
						t.Errorf("summary missing %s%s", label, k)
					}
				}
				if r.Summary[label+"_colluders"] < 1 {
					t.Errorf("%s: no colluders recorded", label)
				}
			}
		})
	}
}
