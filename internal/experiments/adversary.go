package experiments

import (
	"fmt"

	"bullet/internal/adversary"
	"bullet/internal/core"
	"bullet/internal/metrics"
	"bullet/internal/overlay"
	"bullet/internal/scenario"
	"bullet/internal/sim"
	"bullet/internal/streamer"
	"bullet/internal/topology"
)

// Adversary experiments: a seeded fraction of the overlay turns
// hostile mid-stream and the honest remainder's goodput is compared
// across Bullet and the plain tree streamer under the *identical*
// attack (same topology, same tree, same compromised set, same strike
// instant). The fleet stays dormant until the strike, so the pre-event
// phase of every run is byte-identical to a clean run and the
// before/after ratio is a true clean-vs-attacked comparison.
//
// Summaries are computed over the honest subset only — colluders
// (including cut-vertex victims recorded at strike time) would
// otherwise drag both protocols down identically and hide whether the
// protocol protects the nodes that are playing by the rules.

// advSystem is what an adversary variant deploys: churn-style
// membership plus the adversary wiring.
type advSystem interface {
	churnSystem
	SetAdversary(f *adversary.Fleet)
	Compromise(nodes []int)
	Strike()
}

// advCompare runs the same adversary model against Bullet and the
// plain tree streamer in two independent worlds built from the same
// seed. The strike fires at the one-third mark; summaries use the
// churn phase windows so adversary and churn runs read the same way.
func advCompare(name string, sc Scale, seed int64, cfg adversary.Config) (*Result, error) {
	t1, t2 := dynPhases(sc)
	r := newResult(name)

	type deployFn func(w *world, tree *overlay.Tree, col *metrics.Collector) (advSystem, error)
	variants := []struct {
		label  string
		deploy deployFn
	}{
		{"bullet", func(w *world, tree *overlay.Tree, col *metrics.Collector) (advSystem, error) {
			return core.Deploy(w.net, tree, bulletConfig(sc, defaultRateKbps), col)
		}},
		{"stream", func(w *world, tree *overlay.Tree, col *metrics.Collector) (advSystem, error) {
			return streamer.Deploy(w.net, tree, streamer.Config{
				RateKbps: defaultRateKbps, PacketSize: 1500, Start: sc.Start, Duration: sc.Duration,
			}, col)
		}},
	}
	for _, v := range variants {
		w, err := newWorld(sc, topology.MediumBandwidth, topology.NoLoss, seed)
		if err != nil {
			return nil, err
		}
		tree, err := w.randomTree(sc)
		if err != nil {
			return nil, err
		}
		col := metrics.NewCollector(sim.Second)
		sys, err := v.deploy(w, tree, col)
		if err != nil {
			return nil, err
		}
		fleet := adversary.New(cfg, tree.Participants, tree.Root, w.seed)
		sys.SetAdversary(fleet)
		sched := scenario.New().At(t1, scenario.AdversaryAt())
		sched.Install(&scenario.Env{Eng: w.eng, G: w.g, M: sys, A: sys})
		w.run(sc.RunUntil)

		// Colluders are read after the run: cutvertex victims are only
		// recorded at strike time, from the live tree.
		live := sys.LiveNodes()
		honest := metrics.Excluding(live, fleet.Colluders())
		r.addSeries(v.label+"_useful", col.Series(metrics.Useful))
		pre := col.MeanOverNodes(honest, t1-20*sim.Second, t1, metrics.Useful)
		during := col.MeanOverNodes(honest, t1+5*sim.Second, t2, metrics.Useful)
		post := col.MeanOverNodes(honest, t2+10*sim.Second, sc.RunUntil, metrics.Useful)
		r.Summary[v.label+"_honest_before_kbps"] = pre
		r.Summary[v.label+"_honest_during_kbps"] = during
		r.Summary[v.label+"_honest_after_kbps"] = post
		if pre > 0 {
			r.Summary[v.label+"_honest_floor_ratio"] = post / pre
		}
		// The source never *receives*, so it would pin the min at zero.
		honestRecv := metrics.Excluding(honest, []int{tree.Root})
		r.Summary[v.label+"_honest_min_kbps"] = col.MinOverNodes(honestRecv, t2+10*sim.Second, sc.RunUntil, metrics.Useful)
		r.Summary[v.label+"_colluders"] = float64(len(fleet.Colluders()))
		r.Summary[v.label+"_live_nodes"] = float64(len(live))
	}
	r.Summary["event_start_s"] = t1.ToSeconds()
	r.Summary["event_end_s"] = t2.ToSeconds()
	return r, nil
}

// AdvFreeride: a quarter of the non-root overlay receives but never
// relays tree data nor serves mesh requests. Bullet's honest nodes
// route recovery around the leeches; streamer descendants of a
// free-riding interior node starve for the rest of the run.
func AdvFreeride(sc Scale, seed int64) (*Result, error) {
	return advCompare("Adversary: free-riders leech without serving", sc, seed,
		adversary.Config{Model: adversary.Freeride})
}

// AdvLiar: compromised nodes advertise forged summary tickets whose
// sequence range is disjoint from the real stream, so min-resemblance
// sender selection ranks them as the most useful peers — then they
// refuse to serve. Bullet's eviction and re-peering must shed them;
// the streamer has no mesh, so the model is an honest no-op there and
// the streamer columns double as the clean-run baseline.
func AdvLiar(sc Scale, seed int64) (*Result, error) {
	return advCompare("Adversary: forged-ticket sender-selection poisoning", sc, seed,
		adversary.Config{Model: adversary.Liar})
}

// AdvCutvertex: the attacker spends a seeded crash budget on the live
// tree's heaviest cut vertices — the nodes whose failure orphans the
// most descendants — all at one instant. Victims are chosen from the
// live overlay at strike time and recorded as colluders so the honest
// summaries exclude them.
func AdvCutvertex(sc Scale, seed int64) (*Result, error) {
	return advCompare("Adversary: targeted cut-vertex crash", sc, seed,
		adversary.Config{Model: adversary.Cutvertex})
}

// AdvJoinstorm: compromised nodes leave at the strike and rejoin
// after short seeded dwells — a coordinated flash crowd exercising
// repair and join churn at once.
func AdvJoinstorm(sc Scale, seed int64) (*Result, error) {
	return advCompare("Adversary: coordinated leave/rejoin flash crowd", sc, seed,
		adversary.Config{Model: adversary.Joinstorm})
}

// AdvBallotstuff: compromised nodes rewrite their RanSub collect
// ballots to advertise only colluders (with forged tickets and
// inflated descendant counts), biasing random subsets toward the
// colluding set. The streamer has no RanSub, so the model is an
// honest no-op there.
func AdvBallotstuff(sc Scale, seed int64) (*Result, error) {
	return advCompare("Adversary: RanSub ballot stuffing", sc, seed,
		adversary.Config{Model: adversary.Ballotstuff})
}

func init() {
	// Self-check: every adversary experiment must be registered (the
	// Registry literal lives in experiments.go, like the churn-* ids).
	for _, id := range []string{"adv-freeride", "adv-liar", "adv-cutvertex", "adv-joinstorm", "adv-ballotstuff"} {
		if _, ok := Registry[id]; !ok {
			panic(fmt.Sprintf("experiments: %s missing from Registry", id))
		}
	}
}
