package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The shape targets of DESIGN.md §3 at Small scale. These are the
// reproduction's acceptance tests.

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"small", "medium", "paper"} {
		sc, err := ScaleByName(n)
		if err != nil || sc.Name != n {
			t.Fatalf("ScaleByName(%q)=%+v,%v", n, sc, err)
		}
	}
	if _, err := ScaleByName("x"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "overcast",
		"dyn-bottleneck", "dyn-partition", "dyn-flashcrowd", "dyn-oscillate",
		"churn-crash25", "churn-crashheal", "churn-rolling", "churn-join",
		"churn-xl", "filedist-compare", "vbr-stream",
		"adv-freeride", "adv-liar", "adv-cutvertex", "adv-joinstorm",
		"adv-ballotstuff"}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("registry missing %q", id)
		}
	}
	if len(Names()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Names()), len(want))
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Notes) != 12 {
		t.Fatalf("want 12 range notes, got %d", len(r.Notes))
	}
	if r.Summary["generated.clients"] != float64(Small.Clients) {
		t.Fatalf("clients %v", r.Summary["generated.clients"])
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Client-Stub") {
		t.Fatal("print output missing link classes")
	}
}

func TestFig06Shape(t *testing.T) {
	r, err := Fig06(Small, 2)
	if err != nil {
		t.Fatal(err)
	}
	bn := r.MeanTail("bottleneck_tree", 0.4)
	rd := r.MeanTail("random_tree", 0.4)
	if bn <= rd {
		t.Fatalf("bottleneck tree %.0f <= random tree %.0f", bn, rd)
	}
	// At 1000 nodes the paper's random tree delivers <100 Kbps; a
	// 40-node random tree is far shallower, so only require that it
	// stays clearly below the 600 Kbps target.
	if rd > 450 {
		t.Fatalf("random tree %.0f implausibly high for a constrained stream", rd)
	}
}

func TestFig07Shape(t *testing.T) {
	r, err := Fig07(Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	useful := r.MeanTail("useful_total", 0.4)
	raw := r.MeanTail("raw_total", 0.4)
	parent := r.MeanTail("from_parent", 0.4)
	if useful < 150 {
		t.Fatalf("Bullet useful %.0f Kbps too low", useful)
	}
	if raw < useful {
		t.Fatal("raw below useful")
	}
	if raw > useful*1.4 {
		t.Fatalf("raw %.0f far above useful %.0f: wasted bandwidth", raw, useful)
	}
	if parent >= useful {
		t.Fatal("no perpendicular bandwidth: parent >= useful")
	}
	// The paper reports <10% duplicates at 1000 participants; at 40
	// participants each peer covers a tenth of the whole system and
	// parent-relay races are proportionally more frequent, so the
	// small-scale bound is looser. EXPERIMENTS.md records measured
	// values per scale.
	if r.Summary["duplicate_ratio"] > 0.25 {
		t.Fatalf("duplicate ratio %.3f", r.Summary["duplicate_ratio"])
	}
	if r.Summary["control_overhead_kbps"] > 60 {
		t.Fatalf("control overhead %.1f Kbps", r.Summary["control_overhead_kbps"])
	}
	if r.Summary["link_stress_avg"] < 1 || r.Summary["link_stress_avg"] > 4 {
		t.Fatalf("link stress %.2f outside plausible band", r.Summary["link_stress_avg"])
	}
}

func TestFig08Shape(t *testing.T) {
	r, err := Fig08(Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CDF) != Small.Clients {
		t.Fatalf("CDF has %d points, want %d", len(r.CDF), Small.Clients)
	}
	// The distribution must rise sharply: the median node should get a
	// solid share, and few nodes should be starved.
	median := r.CDF[len(r.CDF)/2]
	if median < 100 {
		t.Fatalf("median instantaneous bandwidth %.0f Kbps", median)
	}
	starved := 0
	for _, v := range r.CDF {
		if v < 50 {
			starved++
		}
	}
	if frac := float64(starved) / float64(len(r.CDF)); frac > 0.25 {
		t.Fatalf("%.0f%% of nodes starved", frac*100)
	}
}

func TestFig09Shape(t *testing.T) {
	r, err := Fig09(Small, 4)
	if err != nil {
		t.Fatal(err)
	}
	// At 40 participants the offline tree (global knowledge, shallow
	// chain) is near its best while Bullet pays fixed mesh overhead, so
	// the small-scale bound only requires Bullet to stay competitive;
	// the paper's up-to-2x advantage emerges at depth (medium/paper
	// scales, recorded in EXPERIMENTS.md).
	for _, bw := range []string{"low", "medium", "high"} {
		b := r.MeanTail("bullet_"+bw, 0.4)
		tr := r.MeanTail("bottleneck_tree_"+bw, 0.4)
		if b < tr*0.7 {
			t.Fatalf("%s: Bullet %.0f below 0.7x bottleneck tree %.0f", bw, b, tr)
		}
	}
	// The gap grows as bandwidth tightens.
	gapLow := r.MeanTail("bullet_low", 0.4) / max1(r.MeanTail("bottleneck_tree_low", 0.4))
	gapHigh := r.MeanTail("bullet_high", 0.4) / max1(r.MeanTail("bottleneck_tree_high", 0.4))
	if gapLow < gapHigh*0.8 {
		t.Fatalf("advantage does not grow under constraint: low gap %.2f vs high gap %.2f", gapLow, gapHigh)
	}
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}

func TestFig10Shape(t *testing.T) {
	r10, err := Fig10(Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := Fig07(Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	// On the medium topology at small scale both variants can saturate
	// the stream, so allow a small tolerance; the disjoint strategy's
	// advantage under constrained child links is asserted by the
	// low-bandwidth ablation in internal/core and the ablation benches.
	with := r7.MeanTail("useful_total", 0.4)
	without := r10.MeanTail("useful_total", 0.4)
	if without > with*1.05 {
		t.Fatalf("non-disjoint %.0f beat disjoint %.0f by more than tolerance", without, with)
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(Small, 5)
	if err != nil {
		t.Fatal(err)
	}
	bullet := r.MeanTail("bullet_useful", 0.4)
	gossip := r.MeanTail("gossip_useful", 0.4)
	ae := r.MeanTail("antientropy_useful", 0.4)
	// The paper's +60% margin is at 100 participants on a 5000-node
	// topology; at 40 participants the anti-entropy baseline (which
	// streams over the *global-knowledge* bottleneck tree) is close to
	// its best, so the small-scale bound tolerates near-parity
	// (EXPERIMENTS.md records the tie and why).
	if bullet < gossip*0.85 || bullet < ae*0.85 {
		t.Fatalf("Bullet %.0f fell >15%% behind gossip %.0f / anti-entropy %.0f", bullet, gossip, ae)
	}
	// Epidemics waste bandwidth: raw well above useful for gossip.
	gRaw := r.MeanTail("gossip_raw", 0.4)
	if gRaw < gossip*1.2 {
		t.Fatalf("gossip raw %.0f not clearly above useful %.0f", gRaw, gossip)
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12(Small, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, bw := range []string{"medium", "low"} {
		b := r.MeanTail("bullet_"+bw, 0.4)
		tr := r.MeanTail("bottleneck_tree_"+bw, 0.4)
		if b < tr {
			t.Fatalf("lossy %s: Bullet %.0f below tree %.0f", bw, b, tr)
		}
	}
}

func TestFig13Fig14Shape(t *testing.T) {
	r13, err := Fig13(Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	r14, err := Fig14(Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r13.Summary["failed_node_descendants"] < 1 {
		t.Skip("tree draw gave the root no child with descendants")
	}
	// Both runs keep delivering after the failure; recovery-enabled
	// retains at least as much bandwidth as recovery-disabled.
	after13 := r13.Summary["useful_after_kbps"]
	after14 := r14.Summary["useful_after_kbps"]
	before13 := r13.Summary["useful_before_kbps"]
	if after13 < before13*0.3 {
		t.Fatalf("fig13: collapse after failure: %.0f -> %.0f", before13, after13)
	}
	if after14 < after13*0.85 {
		t.Fatalf("fig14 recovery (%.0f) worse than no recovery (%.0f)", after14, after13)
	}
}

func TestFig15Shape(t *testing.T) {
	r, err := Fig15(Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	bullet := r.MeanTail("bullet", 0.4)
	good := r.MeanTail("good_tree", 0.4)
	worst := r.MeanTail("worst_tree", 0.4)
	if bullet <= good {
		t.Fatalf("Bullet %.0f did not beat the good tree %.0f", bullet, good)
	}
	if good < worst {
		t.Fatalf("good tree %.0f below worst tree %.0f", good, worst)
	}
	// With an unconstrained source Bullet approaches the full rate.
	if r.Summary["bullet_unconstrained_kbps"] < 1000 {
		t.Fatalf("unconstrained Bullet only %.0f Kbps of 1500", r.Summary["bullet_unconstrained_kbps"])
	}
}

func TestOvercastShape(t *testing.T) {
	r, err := OvercastComparison(Small, 9)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.Summary["overcast_to_offline_ratio"]
	if ratio <= 0 || ratio > 1.1 {
		t.Fatalf("overcast/offline ratio %.2f outside (0, 1.1]", ratio)
	}
}

func TestResultPrintSeries(t *testing.T) {
	r := newResult("x")
	r.addSeries("a", nil)
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "a_kbps") {
		t.Fatal("series header missing")
	}
}
