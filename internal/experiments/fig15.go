package experiments

import (
	"math/rand"

	"bullet/internal/core"
	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/streamer"
	"bullet/internal/topology"
)

// planetLab builds the §4.7 PlanetLab-style wide-area topology: 47
// participants, a source in Europe behind a constrained access link
// (cs.unibo.it's congested outbound in the paper), 10 further European
// nodes, and 36 well-provisioned US nodes across two coasts, joined by
// a transatlantic backbone. constrainedRoot=false models the paper's
// follow-up where the constrained source is replaced by a
// well-connected US host.
func planetLab(constrainedRoot bool, seed int64) (*topology.Graph, int, error) {
	b := topology.NewBuilder()
	rng := rand.New(rand.NewSource(seed ^ 0x706c616e))
	ms := func(f float64) sim.Duration { return sim.Duration(f * float64(sim.Millisecond)) }

	// Backbone: one European hub, two US hubs (east/west).
	eu := b.AddNode(topology.Transit, 0, 0)
	usEast := b.AddNode(topology.Transit, 40, 0)
	usWest := b.AddNode(topology.Transit, 70, 0)
	b.AddLink(eu, usEast, topology.TransitTransit, 155000, ms(40), 0) // transatlantic
	b.AddLink(usEast, usWest, topology.TransitTransit, 622000, ms(30), 0)

	// Root in Europe. The constrained variant throttles its access
	// link to ~1 Mbps (cannot even source the 1.5 Mbps stream alone).
	root := b.AddNode(topology.Client, -2, 1)
	rootKbps := 1000.0
	if !constrainedRoot {
		rootKbps = 20000
	}
	b.AddLink(root, eu, topology.ClientStub, rootKbps, ms(2), 0)

	// 10 European nodes: modest academic links of the era.
	for i := 0; i < 10; i++ {
		c := b.AddNode(topology.Client, -1+rng.Float64()*4, -2+rng.Float64()*4)
		b.AddLink(c, eu, topology.ClientStub, 1500+rng.Float64()*2000, ms(2+rng.Float64()*12), 0)
	}
	// 36 US nodes split across the two hubs. PlanetLab sites are
	// heterogeneous: most are well provisioned, but roughly a fifth
	// sit behind constrained access links — these are the nodes the
	// "worst" tree deliberately places near the root, throttling their
	// subtrees, and the "good" tree pushes to the leaves.
	for i := 0; i < 36; i++ {
		hub := usEast
		x := 38.0
		if i%2 == 1 {
			hub = usWest
			x = 68
		}
		kbps := 6000 + rng.Float64()*6000
		if i%5 == 0 {
			kbps = 700 + rng.Float64()*800 // constrained site
		}
		c := b.AddNode(topology.Client, x+rng.Float64()*6, -3+rng.Float64()*6)
		b.AddLink(c, hub, topology.ClientStub, kbps, ms(2+rng.Float64()*20), 0)
	}
	g, err := b.Build()
	return g, root, err
}

// Fig15 reproduces Figure 15: on the PlanetLab-style topology with a
// bandwidth-constrained European source streaming 1.5 Mbps, Bullet
// over a random tree versus TFRC streaming over the handcrafted "good"
// tree (high measured bandwidth near the root) and "worst" tree. The
// summary also records the unconstrained-source control: Bullet
// reaches the full rate when the source is well connected.
func Fig15(sc Scale, seed int64) (*Result, error) {
	const rate = 1500
	r := newResult("Figure 15: PlanetLab-style constrained-source streaming")

	type deployment struct {
		label string
		run   func(w *world, g *topology.Graph, root int, col *metrics.Collector) error
	}
	mkWorld := func(constrained bool) (*world, *topology.Graph, int, error) {
		g, root, err := planetLab(constrained, seed)
		if err != nil {
			return nil, nil, 0, err
		}
		eng := sim.NewEngine(seed)
		rt := topology.NewRouter(g)
		net := netem.New(eng, g, rt, netem.Config{})
		if sc.Shards > 1 || sc.Shards == netem.AutoShardCount {
			net.EnableShards(sc.Shards)
		}
		w := &world{eng: eng, net: net, g: g, rt: rt, seed: seed}
		return w, g, root, nil
	}

	deployBullet := func(w *world, g *topology.Graph, root int, col *metrics.Collector) error {
		tree, err := overlay.Random(reorderRootFirst(g.Clients, root), root, 4,
			rand.New(rand.NewSource(seed^0x66313562)))
		if err != nil {
			return err
		}
		cfg := bulletConfig(sc, rate)
		_, err = core.Deploy(w.net, tree, cfg, col)
		return err
	}
	deployTree := func(good bool) func(w *world, g *topology.Graph, root int, col *metrics.Collector) error {
		return func(w *world, g *topology.Graph, root int, col *metrics.Collector) error {
			// The paper handcrafted trees from pathload measurements;
			// the static estimator plays that role, with the root's
			// three children chosen best-first or worst-first.
			tree, err := overlay.Handcrafted(w.rt, g.Clients, root, 1500, 3, good)
			if err != nil {
				return err
			}
			_, err = streamer.Deploy(w.net, tree, streamer.Config{
				RateKbps: rate, PacketSize: 1500, Start: sc.Start, Duration: sc.Duration,
			}, col)
			return err
		}
	}

	for _, d := range []deployment{
		{"bullet", deployBullet},
		{"good_tree", deployTree(true)},
		{"worst_tree", deployTree(false)},
	} {
		w, g, root, err := mkWorld(true)
		if err != nil {
			return nil, err
		}
		col := metrics.NewCollector(sim.Second)
		if err := d.run(w, g, root, col); err != nil {
			return nil, err
		}
		w.run(sc.RunUntil)
		r.addSeries(d.label, col.Series(metrics.Useful))
	}

	// Unconstrained-source control (in-text: Bullet achieves the full
	// 1.5 Mbps on the high-bandwidth topology).
	w, g, root, err := mkWorld(false)
	if err != nil {
		return nil, err
	}
	col := metrics.NewCollector(sim.Second)
	if err := deployBullet(w, g, root, col); err != nil {
		return nil, err
	}
	w.run(sc.RunUntil)
	tail := sc.Start + sim.Duration(0.5*float64(sc.Duration))
	r.Summary["bullet_unconstrained_kbps"] = col.MeanOver(tail, sc.RunUntil, metrics.Useful)
	return r, nil
}

// reorderRootFirst returns participants with root moved to the front
// (overlay.Random treats the first element's position irrelevantly but
// root must be a member).
func reorderRootFirst(participants []int, root int) []int {
	out := make([]int, 0, len(participants))
	out = append(out, root)
	for _, p := range participants {
		if p != root {
			out = append(out, p)
		}
	}
	return out
}
