package experiments

import (
	"fmt"

	"bullet/internal/core"
	"bullet/internal/epidemic"
	"bullet/internal/metrics"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/streamer"
	"bullet/internal/topology"
)

// Table1 reports the bandwidth ranges of the paper's Table 1 and
// verifies them against a sampled generated topology.
func Table1(sc Scale, seed int64) (*Result, error) {
	r := newResult("Table 1: bandwidth ranges for link types (Kbps)")
	for _, p := range []topology.BandwidthProfile{topology.LowBandwidth, topology.MediumBandwidth, topology.HighBandwidth} {
		for _, cls := range []topology.LinkClass{topology.ClientStub, topology.StubStub, topology.TransitStub, topology.TransitTransit} {
			rg := p.Ranges[cls]
			r.Notes = append(r.Notes, fmt.Sprintf("%s / %s: %g-%g", p.Name, cls, rg.Lo, rg.Hi))
		}
	}
	w, err := newWorld(sc, topology.MediumBandwidth, topology.NoLoss, seed)
	if err != nil {
		return nil, err
	}
	counts := w.g.LinkClassCounts()
	r.Summary["generated.nodes"] = float64(len(w.g.Nodes))
	r.Summary["generated.links"] = float64(len(w.g.Links))
	r.Summary["generated.clients"] = float64(len(w.g.Clients))
	for cls, c := range counts {
		r.Summary["links."+cls.String()] = float64(c)
	}
	return r, nil
}

// Fig06 reproduces Figure 6: TFRC streaming of 600 Kbps over the
// offline bottleneck bandwidth tree versus a random tree (medium
// bandwidth topology).
func Fig06(sc Scale, seed int64) (*Result, error) {
	r := newResult("Figure 6: streaming over bottleneck vs random tree")
	type variant struct {
		label  string
		random bool
	}
	for _, v := range []variant{{"bottleneck_tree", false}, {"random_tree", true}} {
		w, err := newWorld(sc, topology.MediumBandwidth, topology.NoLoss, seed)
		if err != nil {
			return nil, err
		}
		var tree *overlay.Tree
		if v.random {
			tree, err = w.randomTree(sc)
		} else {
			tree, err = w.bottleneckTree(1500)
		}
		if err != nil {
			return nil, err
		}
		col := metrics.NewCollector(sim.Second)
		if _, err := streamer.Deploy(w.net, tree, streamer.Config{
			RateKbps: defaultRateKbps, PacketSize: 1500, Start: sc.Start, Duration: sc.Duration,
		}, col); err != nil {
			return nil, err
		}
		w.run(sc.RunUntil)
		r.addSeries(v.label, col.Series(metrics.Useful))
	}
	return r, nil
}

// fig7Run executes the Figure 7 configuration (Bullet over a random
// tree, medium bandwidth) and returns the system and collector.
func fig7Run(sc Scale, seed int64, mutate func(*core.Config)) (*world, *core.System, *metrics.Collector, error) {
	w, err := newWorld(sc, topology.MediumBandwidth, topology.NoLoss, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	tree, err := w.randomTree(sc)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := bulletConfig(sc, defaultRateKbps)
	if mutate != nil {
		mutate(&cfg)
	}
	col := metrics.NewCollector(sim.Second)
	sys, err := core.Deploy(w.net, tree, cfg, col)
	if err != nil {
		return nil, nil, nil, err
	}
	w.run(sc.RunUntil)
	return w, sys, col, nil
}

// Fig07 reproduces Figure 7: Bullet over a random tree — raw total,
// useful total, and from-parent bandwidth over time, plus the in-text
// summaries (≈30 Kbps control overhead, link stress ≈1.5 avg / 22 max,
// <10% duplicates).
func Fig07(sc Scale, seed int64) (*Result, error) {
	w, sys, col, err := fig7Run(sc, seed, nil)
	if err != nil {
		return nil, err
	}
	r := newResult("Figure 7: Bullet over a random tree")
	r.addSeries("raw_total", col.Series(metrics.Raw))
	r.addSeries("useful_total", col.Series(metrics.Useful))
	r.addSeries("from_parent", col.Series(metrics.Parent))
	r.Summary["control_overhead_kbps"] = sys.ControlOverheadKbps()
	r.Summary["duplicate_ratio"] = col.DuplicateRatio()
	avg, max := w.net.LinkStress()
	r.Summary["link_stress_avg"] = avg
	r.Summary["link_stress_max"] = float64(max)
	r.Summary["mean_senders"] = sys.MeanSenders()
	return r, nil
}

// Fig08 reproduces Figure 8: the CDF of instantaneous per-node
// bandwidth late in the Figure 7 run (the paper samples t=430 s of a
// 500 s run; at other scales the same 0.8 fraction of the run is used).
func Fig08(sc Scale, seed int64) (*Result, error) {
	_, _, col, err := fig7Run(sc, seed, nil)
	if err != nil {
		return nil, err
	}
	r := newResult("Figure 8: CDF of instantaneous achieved bandwidth")
	at := sc.Start + sim.Duration(0.8*float64(sc.Duration))
	r.CDF = col.CDFAt(at, metrics.Useful)
	r.Summary["sample_time_s"] = at.ToSeconds()
	return r, nil
}

// Fig09 reproduces Figure 9: Bullet versus the bottleneck bandwidth
// tree across low, medium and high bandwidth topologies.
func Fig09(sc Scale, seed int64) (*Result, error) {
	return bulletVsTree(sc, seed, topology.NoLoss, "Figure 9: Bullet vs bottleneck tree (lossless)")
}

// Fig12 reproduces Figure 12: the same comparison on lossy topologies
// (§4.5 loss model).
func Fig12(sc Scale, seed int64) (*Result, error) {
	return bulletVsTree(sc, seed, topology.PaperLoss, "Figure 12: Bullet vs bottleneck tree (lossy)")
}

func bulletVsTree(sc Scale, seed int64, loss topology.LossProfile, name string) (*Result, error) {
	r := newResult(name)
	for _, bw := range []topology.BandwidthProfile{topology.HighBandwidth, topology.MediumBandwidth, topology.LowBandwidth} {
		// Bullet over a random tree.
		w, err := newWorld(sc, bw, loss, seed)
		if err != nil {
			return nil, err
		}
		tree, err := w.randomTree(sc)
		if err != nil {
			return nil, err
		}
		col := metrics.NewCollector(sim.Second)
		if _, err := core.Deploy(w.net, tree, bulletConfig(sc, defaultRateKbps), col); err != nil {
			return nil, err
		}
		w.run(sc.RunUntil)
		r.addSeries("bullet_"+bw.Name, col.Series(metrics.Useful))

		// TFRC streaming over the offline bottleneck tree.
		w2, err := newWorld(sc, bw, loss, seed)
		if err != nil {
			return nil, err
		}
		btree, err := w2.bottleneckTree(1500)
		if err != nil {
			return nil, err
		}
		col2 := metrics.NewCollector(sim.Second)
		if _, err := streamer.Deploy(w2.net, btree, streamer.Config{
			RateKbps: defaultRateKbps, PacketSize: 1500, Start: sc.Start, Duration: sc.Duration,
		}, col2); err != nil {
			return nil, err
		}
		w2.run(sc.RunUntil)
		r.addSeries("bottleneck_tree_"+bw.Name, col2.Series(metrics.Useful))
	}
	return r, nil
}

// Fig10 reproduces Figure 10: Bullet with the disjoint transmission
// strategy disabled (parents attempt to send everything to every
// child). Compare with Figure 7; the paper reports ≈25% lower useful
// bandwidth.
func Fig10(sc Scale, seed int64) (*Result, error) {
	_, sys, col, err := fig7Run(sc, seed, func(c *core.Config) { c.DisjointSend = false })
	if err != nil {
		return nil, err
	}
	r := newResult("Figure 10: non-disjoint transmission ablation")
	r.addSeries("raw_total", col.Series(metrics.Raw))
	r.addSeries("useful_total", col.Series(metrics.Useful))
	r.addSeries("from_parent", col.Series(metrics.Parent))
	r.Summary["duplicate_ratio"] = col.DuplicateRatio()
	r.Summary["mean_senders"] = sys.MeanSenders()
	return r, nil
}

// Fig11 reproduces Figure 11: Bullet versus push gossiping and
// streaming with anti-entropy recovery. The paper uses a 5000-node
// topology with 100 participants, a 900 Kbps source, and no physical
// link losses; scales below the paper's shrink both proportionally.
func Fig11(sc Scale, seed int64) (*Result, error) {
	fsc := sc
	if fsc.TopoNodes > 5000 {
		fsc.TopoNodes = 5000
	}
	if fsc.Clients > 100 {
		fsc.Clients = 100
	}
	const rate = 900
	r := newResult("Figure 11: Bullet vs epidemic approaches")

	// Bullet over a random tree.
	w, err := newWorld(fsc, topology.MediumBandwidth, topology.NoLoss, seed)
	if err != nil {
		return nil, err
	}
	tree, err := w.randomTree(fsc)
	if err != nil {
		return nil, err
	}
	col := metrics.NewCollector(sim.Second)
	if _, err := core.Deploy(w.net, tree, bulletConfig(fsc, rate), col); err != nil {
		return nil, err
	}
	w.run(fsc.RunUntil)
	r.addSeries("bullet_raw", col.Series(metrics.Raw))
	r.addSeries("bullet_useful", col.Series(metrics.Useful))

	// Push gossiping.
	w2, err := newWorld(fsc, topology.MediumBandwidth, topology.NoLoss, seed)
	if err != nil {
		return nil, err
	}
	col2 := metrics.NewCollector(sim.Second)
	if _, err := epidemic.DeployGossip(w2.net, w2.g.Clients, w2.g.Clients[0], epidemic.GossipConfig{
		RateKbps: rate, PacketSize: 1500, Start: fsc.Start, Duration: fsc.Duration, Fanout: 5,
	}, col2); err != nil {
		return nil, err
	}
	w2.run(fsc.RunUntil)
	r.addSeries("gossip_raw", col2.Series(metrics.Raw))
	r.addSeries("gossip_useful", col2.Series(metrics.Useful))

	// Streaming over the bottleneck tree with anti-entropy recovery.
	w3, err := newWorld(fsc, topology.MediumBandwidth, topology.NoLoss, seed)
	if err != nil {
		return nil, err
	}
	btree, err := w3.bottleneckTree(1500)
	if err != nil {
		return nil, err
	}
	col3 := metrics.NewCollector(sim.Second)
	if _, err := epidemic.DeployAntiEntropy(w3.net, btree, epidemic.AntiEntropyConfig{
		RateKbps: rate, PacketSize: 1500, Start: fsc.Start, Duration: fsc.Duration,
		Epoch: 20 * sim.Second, Peers: 5,
	}, col3); err != nil {
		return nil, err
	}
	w3.run(fsc.RunUntil)
	r.addSeries("antientropy_raw", col3.Series(metrics.Raw))
	r.addSeries("antientropy_useful", col3.Series(metrics.Useful))
	return r, nil
}

// failureRun executes the Figures 13/14 configuration: Bullet over a
// random tree; at half the stream duration, the root child with the
// most descendants fails (the paper's worst single failure: 110 of
// 1000 descendants).
func failureRun(sc Scale, seed int64, detection bool) (*Result, error) {
	w, err := newWorld(sc, topology.MediumBandwidth, topology.NoLoss, seed)
	if err != nil {
		return nil, err
	}
	tree, err := w.randomTree(sc)
	if err != nil {
		return nil, err
	}
	cfg := bulletConfig(sc, defaultRateKbps)
	cfg.RanSub.FailureDetection = detection
	col := metrics.NewCollector(sim.Second)
	sys, err := core.Deploy(w.net, tree, cfg, col)
	if err != nil {
		return nil, err
	}
	victim, best := tree.HeaviestChild(tree.Root)
	failAt := sc.Start + sc.Duration/2
	if victim >= 0 {
		w.eng.At(failAt, func() { sys.Fail(victim) })
	}
	w.run(sc.RunUntil)
	name := "Figure 13: worst-case failure, no RanSub recovery"
	if detection {
		name = "Figure 14: worst-case failure, RanSub recovery enabled"
	}
	r := newResult(name)
	r.addSeries("bandwidth_received", col.Series(metrics.Raw))
	r.addSeries("useful_total", col.Series(metrics.Useful))
	r.addSeries("from_parent", col.Series(metrics.Parent))
	r.Summary["failed_node_descendants"] = float64(best)
	r.Summary["fail_time_s"] = failAt.ToSeconds()
	pre := col.MeanOver(failAt-30*sim.Second, failAt, metrics.Useful)
	post := col.MeanOver(failAt+20*sim.Second, sc.RunUntil, metrics.Useful)
	r.Summary["useful_before_kbps"] = pre
	r.Summary["useful_after_kbps"] = post
	return r, nil
}

// Fig13 reproduces Figure 13 (failure with RanSub recovery disabled).
func Fig13(sc Scale, seed int64) (*Result, error) { return failureRun(sc, seed, false) }

// Fig14 reproduces Figure 14 (failure with RanSub recovery enabled).
func Fig14(sc Scale, seed int64) (*Result, error) { return failureRun(sc, seed, true) }

// OvercastComparison reproduces the §4.2 in-text claim: dynamically
// constructed Overcast-like trees never achieved more than ~75% of the
// offline bottleneck algorithm's bandwidth.
func OvercastComparison(sc Scale, seed int64) (*Result, error) {
	r := newResult("Overcast-like online tree vs offline bottleneck tree")
	var ratios []float64
	for i := int64(0); i < 3; i++ {
		w, err := newWorld(sc, topology.MediumBandwidth, topology.NoLoss, seed+i)
		if err != nil {
			return nil, err
		}
		root := w.g.Clients[0]
		ombt, err := overlay.Bottleneck(w.rt, w.g.Clients, root, 1500, 0)
		if err != nil {
			return nil, err
		}
		oc, err := overlay.Overcast(w.rt, w.g.Clients, root, 1500, sc.TreeDegree)
		if err != nil {
			return nil, err
		}
		a := overlay.BottleneckRate(w.rt, ombt, 1500)
		b := overlay.BottleneckRate(w.rt, oc, 1500)
		if a > 0 {
			ratios = append(ratios, b/a)
		}
	}
	var sum float64
	for _, x := range ratios {
		sum += x
	}
	r.Summary["overcast_to_offline_ratio"] = sum / float64(len(ratios))
	r.Summary["trials"] = float64(len(ratios))
	return r, nil
}
