// Package nodeset provides the dense node-indexed state containers
// every protocol engine keeps its per-node bookkeeping in. Simulation
// node ids are small dense integers (topology generation hands them out
// sequentially), so per-node state belongs in slices indexed by id, not
// in Go maps: no hashing on the hot path, no per-entry allocation, and
// — crucially for the determinism contract — iteration is always in
// ascending id order, so map iteration order can never leak into the
// simulation.
//
// Three containers cover the patterns the engines need:
//
//   - Set: a bitset over node ids (liveness, membership, presence).
//   - Table[T]: a slice-backed map from node id to T with an embedded
//     presence Set.
//   - SeqWindow: a pooled open-addressed map from stream sequence
//     number to sim.Time, replacing the map[uint64]sim.Time patterns
//     (per-peer sentSince, per-node arrival stamps) that dominated
//     allocation profiles at paper scale.
package nodeset

import "math/bits"

// Set is a bitset over non-negative dense ids. The zero value is an
// empty set ready for use.
type Set struct {
	words []uint64
	count int
}

// Add inserts id and reports whether it was absent. id must be >= 0.
func (s *Set) Add(id int) bool {
	w := id >> 6
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	mask := uint64(1) << (uint(id) & 63)
	if s.words[w]&mask != 0 {
		return false
	}
	s.words[w] |= mask
	s.count++
	return true
}

// Remove deletes id and reports whether it was present. Out-of-range
// (including negative) ids are absent.
func (s *Set) Remove(id int) bool {
	if id < 0 {
		return false
	}
	w := id >> 6
	if w >= len(s.words) {
		return false
	}
	mask := uint64(1) << (uint(id) & 63)
	if s.words[w]&mask == 0 {
		return false
	}
	s.words[w] &^= mask
	s.count--
	return true
}

// Contains reports whether id is in the set. Out-of-range (including
// negative) ids are absent.
func (s *Set) Contains(id int) bool {
	if id < 0 {
		return false
	}
	w := id >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(id)&63)) != 0
}

// Len returns the number of ids in the set.
func (s *Set) Len() int { return s.count }

// Clear empties the set, keeping the backing storage.
func (s *Set) Clear() {
	clear(s.words)
	s.count = 0
}

// Range calls fn for every id in ascending order; fn returning false
// stops the iteration. Mutating the set during Range is unsupported.
func (s *Set) Range(fn func(id int) bool) {
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !fn(w<<6 + b) {
				return
			}
			word &^= 1 << uint(b)
		}
	}
}

// AppendIDs appends the ids in ascending order to dst and returns it.
func (s *Set) AppendIDs(dst []int) []int {
	s.Range(func(id int) bool {
		dst = append(dst, id)
		return true
	})
	return dst
}

// IDs returns the ids in ascending order (nil when empty).
func (s *Set) IDs() []int {
	if s.count == 0 {
		return nil
	}
	return s.AppendIDs(make([]int, 0, s.count))
}

// Table is a slice-backed map from non-negative dense ids to T.
// The zero value is an empty table ready for use. Lookups are O(1)
// slice indexing; iteration is always in ascending id order.
type Table[T any] struct {
	vals []T
	set  Set
}

// Put stores v under id (id >= 0), growing the table as needed.
func (t *Table[T]) Put(id int, v T) {
	for id >= len(t.vals) {
		var zero T
		t.vals = append(t.vals, zero)
	}
	t.vals[id] = v
	t.set.Add(id)
}

// Get returns the value stored under id and whether one is present.
func (t *Table[T]) Get(id int) (T, bool) {
	if !t.set.Contains(id) {
		var zero T
		return zero, false
	}
	return t.vals[id], true
}

// At returns the value stored under id, or the zero value when absent.
func (t *Table[T]) At(id int) T {
	if !t.set.Contains(id) {
		var zero T
		return zero
	}
	return t.vals[id]
}

// Contains reports whether id has an entry.
func (t *Table[T]) Contains(id int) bool { return t.set.Contains(id) }

// Delete removes id's entry (zeroing the slot so references are
// released) and reports whether one was present.
func (t *Table[T]) Delete(id int) bool {
	if !t.set.Remove(id) {
		return false
	}
	var zero T
	t.vals[id] = zero
	return true
}

// Len returns the number of entries.
func (t *Table[T]) Len() int { return t.set.Len() }

// Range calls fn for every (id, value) pair in ascending id order; fn
// returning false stops the iteration. Mutating the table during Range
// is unsupported (like Set.Range): a Delete ahead of the iteration
// position can still be visited, with a zeroed value. Snapshot with
// IDs first when the walk must mutate.
func (t *Table[T]) Range(fn func(id int, v T) bool) {
	t.set.Range(func(id int) bool { return fn(id, t.vals[id]) })
}

// AppendIDs appends the present ids in ascending order to dst.
func (t *Table[T]) AppendIDs(dst []int) []int { return t.set.AppendIDs(dst) }

// IDs returns the present ids in ascending order (nil when empty).
func (t *Table[T]) IDs() []int { return t.set.IDs() }
