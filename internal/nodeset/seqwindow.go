package nodeset

import (
	"sync"

	"bullet/internal/sim"
)

// SeqWindow is an open-addressed map from stream sequence number to
// sim.Time, tuned for the windowed, mostly-contiguous sequence ranges
// protocol engines track (recently-sent stamps, arrival times): the
// probe position is the sequence itself, so consecutive sequences land
// in consecutive slots with essentially no collisions. Backing storage
// is reused across Clear and, via the package pool, across peerings —
// steady-state operation allocates nothing.
//
// The zero value is usable; NewSeqWindow (paired with Release) draws
// from the pool.
type SeqWindow struct {
	keys    []uint64 // seq+1; 0 = empty slot
	vals    []sim.Time
	n       int
	scratch []uint64
}

const seqWindowMinCap = 64 // power of two

// NewSeqWindow returns an empty window, reusing pooled storage.
func NewSeqWindow() *SeqWindow {
	if w, ok := seqWindowPool.Get().(*SeqWindow); ok && w != nil {
		return w
	}
	return &SeqWindow{}
}

var seqWindowPool = sync.Pool{New: func() any { return &SeqWindow{} }}

// Release clears w and returns its storage to the pool. The caller
// must not use w afterwards.
func (w *SeqWindow) Release() {
	w.Clear()
	seqWindowPool.Put(w)
}

// Len returns the number of entries.
func (w *SeqWindow) Len() int { return w.n }

// Clear removes every entry, keeping the backing storage.
func (w *SeqWindow) Clear() {
	if w.n > 0 {
		clear(w.keys)
		w.n = 0
	}
}

func (w *SeqWindow) grow() {
	newCap := seqWindowMinCap
	if len(w.keys) > 0 {
		newCap = len(w.keys) * 2
	}
	oldKeys, oldVals := w.keys, w.vals
	w.keys = make([]uint64, newCap)
	w.vals = make([]sim.Time, newCap)
	w.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			w.Set(k-1, oldVals[i])
		}
	}
}

// Set stores t under seq. seq must be below math.MaxUint64 (keys are
// stored as seq+1 with 0 as the empty-slot sentinel); stream sequence
// numbers count up from 0, so the guard never fires in practice.
func (w *SeqWindow) Set(seq uint64, t sim.Time) {
	if seq == ^uint64(0) {
		panic("nodeset: SeqWindow does not support seq == MaxUint64")
	}
	// Keep load factor below 3/4 so probe chains stay short.
	if 4*(w.n+1) > 3*len(w.keys) {
		w.grow()
	}
	mask := uint64(len(w.keys) - 1)
	i := seq & mask
	for {
		k := w.keys[i]
		if k == 0 {
			w.keys[i] = seq + 1
			w.vals[i] = t
			w.n++
			return
		}
		if k == seq+1 {
			w.vals[i] = t
			return
		}
		i = (i + 1) & mask
	}
}

// Get returns the time stored under seq and whether seq is present.
func (w *SeqWindow) Get(seq uint64) (sim.Time, bool) {
	if w.n == 0 {
		return 0, false
	}
	mask := uint64(len(w.keys) - 1)
	i := seq & mask
	for {
		k := w.keys[i]
		if k == 0 {
			return 0, false
		}
		if k == seq+1 {
			return w.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// Contains reports whether seq is present.
func (w *SeqWindow) Contains(seq uint64) bool {
	_, ok := w.Get(seq)
	return ok
}

// Delete removes seq, backward-shifting the probe chain so lookups
// never need tombstones. It reports whether seq was present.
func (w *SeqWindow) Delete(seq uint64) bool {
	if w.n == 0 {
		return false
	}
	mask := uint64(len(w.keys) - 1)
	i := seq & mask
	for {
		k := w.keys[i]
		if k == 0 {
			return false
		}
		if k == seq+1 {
			break
		}
		i = (i + 1) & mask
	}
	// Backward-shift deletion: walk the chain after i, moving back any
	// entry whose home position precedes the hole.
	j := i
	for {
		j = (j + 1) & mask
		k := w.keys[j]
		if k == 0 {
			break
		}
		home := (k - 1) & mask
		if ((j - home) & mask) >= ((j - i) & mask) {
			w.keys[i] = k
			w.vals[i] = w.vals[j]
			i = j
		}
	}
	w.keys[i] = 0
	w.n--
	return true
}

// Range calls fn for every (seq, time) entry in unspecified order; fn
// returning false stops the iteration. The window must not be mutated
// during Range (use DeleteOlder for the delete-while-scanning pattern).
func (w *SeqWindow) Range(fn func(seq uint64, t sim.Time) bool) {
	if w.n == 0 {
		return
	}
	for i, k := range w.keys {
		if k != 0 {
			if !fn(k-1, w.vals[i]) {
				return
			}
		}
	}
}

// DeleteOlder removes every entry whose time is strictly before cutoff.
func (w *SeqWindow) DeleteOlder(cutoff sim.Time) {
	if w.n == 0 {
		return
	}
	w.scratch = w.scratch[:0]
	for i, k := range w.keys {
		if k != 0 && w.vals[i] < cutoff {
			w.scratch = append(w.scratch, k-1)
		}
	}
	for _, seq := range w.scratch {
		w.Delete(seq)
	}
}

// DeleteBelow removes every entry whose sequence is strictly below lo.
func (w *SeqWindow) DeleteBelow(lo uint64) {
	if w.n == 0 {
		return
	}
	w.scratch = w.scratch[:0]
	for _, k := range w.keys {
		if k != 0 && k-1 < lo {
			w.scratch = append(w.scratch, k-1)
		}
	}
	for _, seq := range w.scratch {
		w.Delete(seq)
	}
}
