package nodeset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"bullet/internal/sim"
)

func TestSetBasics(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Contains(0) || s.Contains(-1) {
		t.Fatal("zero set not empty")
	}
	for _, id := range []int{0, 63, 64, 1000, 5} {
		if !s.Add(id) {
			t.Fatalf("Add(%d) reported duplicate", id)
		}
	}
	if s.Add(63) {
		t.Fatal("duplicate Add reported new")
	}
	if s.Len() != 5 {
		t.Fatalf("Len=%d want 5", s.Len())
	}
	if got := s.IDs(); !reflect.DeepEqual(got, []int{0, 5, 63, 64, 1000}) {
		t.Fatalf("IDs=%v", got)
	}
	if !s.Remove(63) || s.Remove(63) || s.Remove(-7) || s.Remove(99999) {
		t.Fatal("Remove semantics broken")
	}
	if s.Contains(63) || !s.Contains(64) {
		t.Fatal("Contains after Remove broken")
	}
	s.Clear()
	if s.Len() != 0 || s.Contains(0) {
		t.Fatal("Clear did not empty the set")
	}
}

// Iteration must be ascending — this is the determinism contract every
// engine relies on in place of sort.Ints over map keys.
func TestSetRangeAscendingMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Set
	want := make([]int, 0, 200)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		id := rng.Intn(4096)
		if !seen[id] {
			seen[id] = true
			want = append(want, id)
		}
		s.Add(id)
	}
	sort.Ints(want)
	got := s.AppendIDs(nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Range order diverges from sorted ids\n got %v\nwant %v", got, want)
	}
	// Early stop.
	n := 0
	s.Range(func(int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("Range early stop visited %d", n)
	}
}

func TestTableBasics(t *testing.T) {
	var tb Table[string]
	if _, ok := tb.Get(3); ok || tb.Len() != 0 {
		t.Fatal("zero table not empty")
	}
	tb.Put(3, "three")
	tb.Put(0, "zero")
	tb.Put(300, "big")
	if v, ok := tb.Get(3); !ok || v != "three" {
		t.Fatalf("Get(3)=%q,%v", v, ok)
	}
	if tb.At(4) != "" || tb.At(-1) != "" {
		t.Fatal("At on absent id not zero")
	}
	tb.Put(3, "replaced")
	if tb.Len() != 3 || tb.At(3) != "replaced" {
		t.Fatal("Put replace broken")
	}
	var ids []int
	var vals []string
	tb.Range(func(id int, v string) bool { ids = append(ids, id); vals = append(vals, v); return true })
	if !reflect.DeepEqual(ids, []int{0, 3, 300}) || !reflect.DeepEqual(vals, []string{"zero", "replaced", "big"}) {
		t.Fatalf("Range gave %v %v", ids, vals)
	}
	if !tb.Delete(3) || tb.Delete(3) || tb.Contains(3) {
		t.Fatal("Delete semantics broken")
	}
	if got := tb.IDs(); !reflect.DeepEqual(got, []int{0, 300}) {
		t.Fatalf("IDs=%v", got)
	}
}

// Deleted slots must be zeroed so pointer references are released.
func TestTableDeleteReleasesValue(t *testing.T) {
	var tb Table[*int]
	x := 7
	tb.Put(2, &x)
	tb.Delete(2)
	tb.set.Add(2) // peek: re-mark present without Put
	if tb.At(2) != nil {
		t.Fatal("Delete left the pointer in the slot")
	}
}

func TestSeqWindowAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := NewSeqWindow()
	defer w.Release()
	ref := map[uint64]sim.Time{}
	// Mixed workload over a sliding window, like sentSince/arrivals.
	for i := 0; i < 20000; i++ {
		seq := uint64(rng.Intn(3000))
		switch rng.Intn(4) {
		case 0, 1:
			tm := sim.Time(rng.Int63n(1 << 40))
			w.Set(seq, tm)
			ref[seq] = tm
		case 2:
			got, ok := w.Get(seq)
			want, wok := ref[seq]
			if ok != wok || got != want {
				t.Fatalf("Get(%d)=(%d,%v) want (%d,%v)", seq, got, ok, want, wok)
			}
		case 3:
			if w.Delete(seq) != (func() bool { _, ok := ref[seq]; return ok })() {
				t.Fatalf("Delete(%d) mismatch", seq)
			}
			delete(ref, seq)
		}
		if w.Len() != len(ref) {
			t.Fatalf("Len=%d want %d", w.Len(), len(ref))
		}
	}
	// Full contents must match.
	got := map[uint64]sim.Time{}
	w.Range(func(seq uint64, tm sim.Time) bool { got[seq] = tm; return true })
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("contents diverge: %d vs %d entries", len(got), len(ref))
	}
}

func TestSeqWindowDeleteOlderAndBelow(t *testing.T) {
	w := NewSeqWindow()
	defer w.Release()
	for seq := uint64(0); seq < 100; seq++ {
		w.Set(seq, sim.Time(seq)*sim.Second)
	}
	w.DeleteOlder(30 * sim.Second)
	if w.Len() != 70 {
		t.Fatalf("after DeleteOlder Len=%d want 70", w.Len())
	}
	if w.Contains(29) || !w.Contains(30) {
		t.Fatal("DeleteOlder boundary wrong (must be strictly-before)")
	}
	w.DeleteBelow(50)
	if w.Len() != 50 || w.Contains(49) || !w.Contains(50) {
		t.Fatalf("DeleteBelow wrong: len=%d", w.Len())
	}
	w.Clear()
	if w.Len() != 0 || w.Contains(60) {
		t.Fatal("Clear did not empty window")
	}
}

func TestSeqWindowReuseFromPool(t *testing.T) {
	w := NewSeqWindow()
	for seq := uint64(0); seq < 500; seq++ {
		w.Set(seq, sim.Time(seq))
	}
	w.Release()
	w2 := NewSeqWindow()
	defer w2.Release()
	if w2.Len() != 0 {
		t.Fatal("pooled window not cleared")
	}
	for seq := uint64(1000); seq < 1100; seq++ {
		w2.Set(seq, 1)
	}
	if w2.Len() != 100 || w2.Contains(5) {
		t.Fatal("pooled window retains stale entries")
	}
}

func BenchmarkSeqWindowSetDelete(b *testing.B) {
	b.ReportAllocs()
	w := NewSeqWindow()
	defer w.Release()
	for i := 0; i < b.N; i++ {
		seq := uint64(i)
		w.Set(seq, sim.Time(i))
		if seq >= 128 {
			w.Delete(seq - 128)
		}
	}
}

func BenchmarkSetRange(b *testing.B) {
	b.ReportAllocs()
	var s Set
	for i := 0; i < 1024; i += 3 {
		s.Add(i)
	}
	n := 0
	for i := 0; i < b.N; i++ {
		s.Range(func(int) bool { n++; return true })
	}
	_ = n
}

// Probe chains that wrap around the end of the table are the boundary
// case of open addressing: sequences whose home slot is the last index
// collide into slot 0, and backward-shift deletion must compute chain
// distances modulo the capacity to pull them back correctly.
func TestSeqWindowProbeWrapAroundBoundary(t *testing.T) {
	w := NewSeqWindow()
	defer w.Release()
	// Fill to just below the grow threshold with sequences that all
	// home at the last slot (seq % 64 == 63), forcing a probe chain
	// that wraps: 63 -> 0 -> 1 -> ...
	seqs := []uint64{63, 127, 191, 255, 319}
	for i, s := range seqs {
		w.Set(s, sim.Time(i+1))
	}
	// Deleting the chain head leaves a hole at the boundary slot; every
	// wrapped entry must remain reachable afterwards.
	if !w.Delete(63) {
		t.Fatal("chain head not present")
	}
	for i, s := range seqs[1:] {
		got, ok := w.Get(s)
		if !ok || got != sim.Time(i+2) {
			t.Fatalf("seq %d lost after boundary deletion: (%v, %v)", s, got, ok)
		}
	}
	// Delete from the middle of the wrapped chain too.
	if !w.Delete(191) {
		t.Fatal("mid-chain entry not present")
	}
	for _, s := range []uint64{127, 255, 319} {
		if !w.Contains(s) {
			t.Fatalf("seq %d lost after mid-chain deletion", s)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
}
