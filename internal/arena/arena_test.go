package arena

import (
	"testing"
	"unsafe"
)

type widget struct {
	id   int
	data []byte
}

func TestZeroValueUsable(t *testing.T) {
	var a Arena[int]
	p := a.Get()
	if p == nil || *p != 0 {
		t.Fatalf("Get from zero arena = %v, want pointer to 0", p)
	}
	if a.Live() != 1 {
		t.Fatalf("Live = %d, want 1", a.Live())
	}
}

func TestPutZeroesAndReusesLIFO(t *testing.T) {
	var a Arena[widget]
	p1 := a.Get()
	p2 := a.Get()
	p1.id, p1.data = 7, []byte{1, 2, 3}
	p2.id = 9
	a.Put(p1)
	a.Put(p2)
	// LIFO: the most recently retired value comes back first.
	if got := a.Get(); got != p2 {
		t.Fatalf("Get after Put(p1), Put(p2) = %p, want p2 %p", got, p2)
	}
	if got := a.Get(); got != p1 {
		t.Fatalf("second Get = %p, want p1 %p", got, p1)
	}
	// Put zeroed the values, dropping payload references.
	if p1.id != 0 || p1.data != nil {
		t.Fatalf("recycled value not zeroed: %+v", *p1)
	}
}

func TestChunkGrowthAndStability(t *testing.T) {
	var a Arena[widget]
	ptrs := make([]*widget, 0, 3*chunkSize)
	for i := 0; i < 3*chunkSize; i++ {
		p := a.Get()
		p.id = i
		ptrs = append(ptrs, p)
	}
	if a.Allocated() != 3*chunkSize {
		t.Fatalf("Allocated = %d, want %d", a.Allocated(), 3*chunkSize)
	}
	// Pointers remain stable and distinct across chunk growth.
	for i, p := range ptrs {
		if p.id != i {
			t.Fatalf("ptrs[%d].id = %d: pointer moved or aliased", i, p.id)
		}
	}
	if a.Live() != 3*chunkSize {
		t.Fatalf("Live = %d, want %d", a.Live(), 3*chunkSize)
	}
	for _, p := range ptrs {
		a.Put(p)
	}
	if a.Live() != 0 {
		t.Fatalf("Live after freeing all = %d, want 0", a.Live())
	}
	// Churn within the freed set allocates no new chunks.
	for i := 0; i < 10*chunkSize; i++ {
		a.Put(a.Get())
	}
	if a.Allocated() != 3*chunkSize {
		t.Fatalf("churn grew the arena: Allocated = %d, want %d", a.Allocated(), 3*chunkSize)
	}
}

func TestChunkLocality(t *testing.T) {
	// Consecutive Gets from a fresh chunk are adjacent in memory — the
	// property the hot paths rely on for cache locality. Both pointers
	// reference the same chunk slice, so the subtraction is
	// well-defined.
	var a Arena[uint64]
	p1, p2 := a.Get(), a.Get()
	d := uintptr(unsafe.Pointer(p2)) - uintptr(unsafe.Pointer(p1))
	if d != unsafe.Sizeof(uint64(0)) {
		t.Fatalf("consecutive values %d bytes apart, want %d", d, unsafe.Sizeof(uint64(0)))
	}
}
