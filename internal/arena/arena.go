// Package arena provides chunked, owner-local allocators for the
// high-churn value types on the simulation hot path (netem in-flight
// packets, TFRC feedback reports, scheduler event bodies).
//
// An Arena[T] hands out stable pointers into fixed-size chunks it
// allocates as needed, and recycles freed values through a LIFO free
// list. Compared to allocating each value individually on the Go heap:
//
//   - values of one arena pack into contiguous chunks, so an owner's
//     working set (one shard's in-flight packets, one engine's event
//     bodies) stays on its own cache lines instead of being interleaved
//     with every other allocation of the process;
//   - the LIFO free list re-issues the most recently retired value
//     first — the one still warm in cache;
//   - steady-state churn performs zero heap allocations and produces
//     zero garbage: chunks are retained for the arena's lifetime.
//
// An Arena is deliberately not goroutine-safe. Ownership follows the
// sharded runner's single-writer discipline: each arena belongs to
// exactly one shard context (or one engine, or one endpoint) and is
// only touched by events executing there. Values may migrate between
// owners — a packet handed off across shards retires into the arena of
// the shard it was delivered on — as long as every Get and Put runs on
// the owning shard; arenas only ever grow, so drift is harmless.
//
// The zero Arena is ready to use.
package arena

// chunkSize is the number of T values per chunk. 256 keeps chunks
// within a few pages for the hot-path structs (tens of bytes each)
// while amortizing the per-chunk allocation to irrelevance.
const chunkSize = 256

// Arena is a chunked allocator with a free list. The zero value is an
// empty arena ready for Get.
type Arena[T any] struct {
	free []*T // retired values, reused LIFO
	cur  []T  // newest chunk, issued front to back
	next int  // next unissued index in cur
	live int  // values issued and not yet Put
	allo int  // values ever backed by chunks
}

// Get returns a zeroed *T: the most recently freed value if one is
// available, otherwise the next slot of the current chunk (allocating
// a fresh chunk when it is full). The pointer is stable for the
// arena's lifetime.
func (a *Arena[T]) Get() *T {
	a.live++
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free = a.free[:n-1]
		return p
	}
	if a.next == len(a.cur) {
		a.cur = make([]T, chunkSize)
		a.next = 0
		a.allo += chunkSize
	}
	p := &a.cur[a.next]
	a.next++
	return p
}

// Put zeroes *p and returns it to the free list. p must have come from
// an arena of the same T (not necessarily this one — see the package
// comment on ownership drift) and must not be used afterwards. Zeroing
// here drops any pointers the value carried, so retired values never
// retain payloads.
func (a *Arena[T]) Put(p *T) {
	var zero T
	*p = zero
	a.free = append(a.free, p)
	a.live--
}

// Live returns the number of values currently issued (Get minus Put).
// Put of values issued by a different arena can make this negative;
// it is an observability counter, never an input to behavior.
func (a *Arena[T]) Live() int { return a.live }

// Allocated returns the number of values this arena has backed with
// chunk storage over its lifetime (its capacity footprint, in values).
func (a *Arena[T]) Allocated() int { return a.allo }
