// Package epidemic implements the two §4.4 comparison systems:
//
//   - Push gossiping (lpbcast-like): no tree; every node forwards each
//     non-duplicate packet, as soon as it arrives, to a fixed number of
//     peers chosen uniformly at random from its view. The source sends
//     fresh packets to random nodes at the target rate.
//
//   - Streaming with anti-entropy recovery (pbcast-like): nodes stream
//     over a distribution tree and periodically gossip with random
//     peers, exchanging FIFO Bloom filter digests; a peer responds
//     with packets missing from the digest.
//
// As in the paper's conservative setup, both techniques are granted
// full group membership, reuse Bullet's Bloom filters and TFRC
// transport, use 5 gossip targets per round (experimentally best
// there), and a 20 s anti-entropy epoch so TFRC can ramp up.
//
// Per-node state is nodeset-backed: participants live in dense
// node-id-indexed tables, and the lazily-opened per-peer repair flows
// are slices indexed by participant position (the same index the
// uniform random peer draw produces), so the per-packet push path
// neither hashes nor allocates.
package epidemic

import (
	"fmt"
	"math/rand"

	"bullet/internal/adversary"
	"bullet/internal/bloom"
	"bullet/internal/member"
	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/nodeset"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/transport"
	"bullet/internal/workload"
	"bullet/internal/workset"
)

// GossipConfig controls a push-gossip run.
type GossipConfig struct {
	RateKbps   float64
	PacketSize int
	Start      sim.Time
	Duration   sim.Duration
	// Fanout is how many random peers each packet is pushed to
	// (paper: 5 performs best with lowest overhead).
	Fanout int
	// Workload overrides the default constant-bit-rate source (nil
	// streams CBR at RateKbps/PacketSize).
	Workload workload.Source
	// Sink, when set, observes every per-node first-copy delivery.
	Sink workload.Sink
}

// flowSlots holds a node's lazily-opened per-peer flows, indexed by
// participant position (the index the uniform random peer draw
// yields). The slice grows as the participant list grows (late joins).
type flowSlots []*transport.Flow

func (s flowSlots) at(i int) *transport.Flow {
	if i >= len(s) {
		return nil
	}
	return s[i]
}

func (s *flowSlots) set(i int, f *transport.Flow) {
	for i >= len(*s) {
		*s = append(*s, nil)
	}
	(*s)[i] = f
}

type gossipNode struct {
	ep    *transport.Endpoint
	id    int
	seen  *workset.Set
	flows flowSlots
	rng   *rand.Rand
}

// GossipSystem is a deployed push-gossip overlay.
type GossipSystem struct {
	participants []int
	cfg          GossipConfig
	col          *metrics.Collector
	src          workload.Source

	nodes   nodeset.Table[*gossipNode]
	net     *netem.Network
	source  int
	dead    nodeset.Set
	epoch   int
	stopped bool

	// adv, when non-nil, is the attached hostile-peer fleet (see
	// adversary.go).
	adv *adversary.Fleet
}

// DeployGossip wires gossip nodes over the participant set (full
// membership, as the paper conservatively assumes).
func DeployGossip(net *netem.Network, participants []int, source int, cfg GossipConfig, col *metrics.Collector) (*GossipSystem, error) {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 5
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 1500
	}
	if cfg.Workload == nil && cfg.RateKbps <= 0 {
		return nil, fmt.Errorf("epidemic: rate %v", cfg.RateKbps)
	}
	sys := &GossipSystem{
		participants: append([]int(nil), participants...),
		cfg:          cfg,
		col:          col,
		net:          net,
		source:       source,
		src:          workload.Default(cfg.Workload, cfg.RateKbps, cfg.PacketSize),
	}
	workload.InstallCompletion(sys.src, col)
	for _, id := range participants {
		n := &gossipNode{
			ep:   transport.NewEndpoint(net, id),
			id:   id,
			seen: workset.New(),
			rng:  net.Engine().RNG(int64(id)*31337 + 0x676f73),
		}
		col.Track(id)
		id := id
		n.ep.OnData(func(from int, seq uint64, size int) { sys.onData(id, from, seq, size) })
		sys.nodes.Put(id, n)
	}
	// Source pump: packet generation is owned by the workload layer,
	// scheduled on the source node's own scheduler.
	end := cfg.Start + cfg.Duration
	srcNode := sys.nodes.At(source)
	sched := srcNode.ep.Scheduler()
	workload.Pump(sched, sys.src, cfg.Start,
		func() bool { return sched.Now() >= end || sys.stopped },
		func(seq uint64, size int) {
			srcNode.seen.Add(seq)
			sys.push(srcNode, seq, size)
		})
	return sys, nil
}

// Workload returns the source driving this deployment's packet
// generation (the configured one, or the default CBR).
func (sys *GossipSystem) Workload() workload.Source { return sys.src }

// push forwards a packet to Fanout random peers over per-peer TFRC
// flows (created lazily and reused).
func (sys *GossipSystem) push(n *gossipNode, seq uint64, size int) {
	for i := 0; i < sys.cfg.Fanout; i++ {
		pi := n.rng.Intn(len(sys.participants))
		peer := sys.participants[pi]
		if peer == n.id {
			continue
		}
		f := n.flows.at(pi)
		if f == nil {
			var err error
			f, err = n.ep.OpenFlow(peer, sys.cfg.PacketSize)
			if err != nil {
				continue
			}
			n.flows.set(pi, f)
		}
		f.TrySend(seq, size)
	}
}

func (sys *GossipSystem) onData(id, from int, seq uint64, size int) {
	n := sys.nodes.At(id)
	now := n.ep.Scheduler().Now()
	sys.col.Add(now, id, metrics.Raw, size)
	if n.seen.Add(seq) {
		sys.col.Add(now, id, metrics.Useful, size)
		if s := sys.cfg.Sink; s != nil {
			s.Deliver(now, id, seq)
		}
		if !sys.refusesServe(id) {
			sys.push(n, seq, size)
		}
	} else {
		sys.col.Add(now, id, metrics.Duplicate, size)
	}
}

// Collector returns the metrics sink.
func (sys *GossipSystem) Collector() *metrics.Collector { return sys.col }

// MemberEpoch returns the number of membership changes applied so far.
func (sys *GossipSystem) MemberEpoch() int { return sys.epoch }

// Live reports whether id is a current non-crashed participant.
func (sys *GossipSystem) Live(id int) bool {
	return sys.nodes.Contains(id) && !sys.dead.Contains(id)
}

// LiveNodes returns current non-crashed participant ids sorted.
func (sys *GossipSystem) LiveNodes() []int { return member.LiveTableIDs(&sys.nodes, &sys.dead) }

// Crash fails node id; peers keep pushing to it (membership is static
// gossip state) and those packets are lost. The source cannot crash.
func (sys *GossipSystem) Crash(id int) error {
	n, ok := sys.nodes.Get(id)
	if !ok {
		return fmt.Errorf("epidemic: node %d is not a participant", id)
	}
	if sys.dead.Contains(id) {
		return fmt.Errorf("epidemic: node %d already crashed", id)
	}
	if id == sys.source {
		return fmt.Errorf("epidemic: cannot crash the source %d", id)
	}
	n.ep.Fail()
	sys.dead.Add(id)
	sys.epoch++
	return nil
}

// Restart brings a crashed gossip node back; its flows reopen lazily.
func (sys *GossipSystem) Restart(id int) error {
	n, ok := sys.nodes.Get(id)
	if !ok || !sys.dead.Contains(id) {
		return fmt.Errorf("epidemic: node %d is not crashed", id)
	}
	n.ep.Restart()
	clear(n.flows) // Fail closed them; reopen lazily
	sys.dead.Remove(id)
	sys.epoch++
	return nil
}

// Join adds a brand-new gossip participant; every node's future random
// peer choices may select it.
func (sys *GossipSystem) Join(id int) error {
	if sys.nodes.Contains(id) {
		if sys.dead.Contains(id) {
			return fmt.Errorf("epidemic: node %d crashed; use Restart", id)
		}
		return fmt.Errorf("epidemic: node %d is already a participant", id)
	}
	n := &gossipNode{
		ep:   transport.NewEndpoint(sys.net, id),
		id:   id,
		seen: workset.New(),
		rng:  sys.net.Engine().RNG(int64(id)*31337 + 0x676f73),
	}
	sys.col.Track(id)
	n.ep.OnData(func(from int, seq uint64, size int) { sys.onData(id, from, seq, size) })
	sys.nodes.Put(id, n)
	sys.participants = append(sys.participants, id)
	sys.epoch++
	return nil
}

// Stop tears the deployment down.
func (sys *GossipSystem) Stop() {
	if sys.stopped {
		return
	}
	sys.stopped = true
	member.StopTable(&sys.nodes, &sys.dead, func(id int) { sys.nodes.At(id).ep.Fail() })
}

// ---------------------------------------------------------------------

// AntiEntropyConfig controls a streaming + anti-entropy run.
type AntiEntropyConfig struct {
	RateKbps   float64
	PacketSize int
	Start      sim.Time
	Duration   sim.Duration
	// Epoch is the anti-entropy round length (paper: 20 s so TFRC has
	// time to ramp).
	Epoch sim.Duration
	// Peers is how many random peers are gossiped with per round
	// (paper: 5).
	Peers int
	// Window bounds the FIFO Bloom filter population.
	Window uint64
	// Workload overrides the default constant-bit-rate source (nil
	// streams CBR at RateKbps/PacketSize).
	Workload workload.Source
	// Sink, when set, observes every per-node first-copy delivery.
	Sink workload.Sink
}

// aeDigestMsg carries a node's FIFO Bloom digest to a random peer.
type aeDigestMsg struct {
	filter    *bloom.Filter
	low, high uint64
}

type aeNode struct {
	ep       *transport.Endpoint
	id       int
	parent   int
	children []int
	seen     *workset.Set
	// flows holds tree + repair flows, indexed by participant position
	// (see AntiEntropySystem.pindex).
	flows   flowSlots
	rng     *rand.Rand
	roundFn func() // cached aeRound closure: one alloc per node, not per epoch

	// roundDead marks that the periodic round chain ended because a
	// tick fired while the node was crashed. Restart re-arms the chain
	// only then, so a crash/restart cycle never leaves two concurrent
	// round loops running.
	roundDead bool
}

// AntiEntropySystem is a deployed streaming + anti-entropy overlay.
type AntiEntropySystem struct {
	participants []int
	tree         *overlay.Tree
	cfg          AntiEntropyConfig
	col          *metrics.Collector
	src          workload.Source

	nodes nodeset.Table[*aeNode]
	// pindex maps node id -> position in participants, the per-node
	// flow-slot index.
	pindex     nodeset.Table[int]
	net        *netem.Network
	dead       nodeset.Set
	epoch      int
	joinDegree int
	stopped    bool

	// adv, when non-nil, is the attached hostile-peer fleet (see
	// adversary.go).
	adv *adversary.Fleet
}

// DeployAntiEntropy wires tree streaming plus random-peer anti-entropy
// repair over full membership.
func DeployAntiEntropy(net *netem.Network, tree *overlay.Tree, cfg AntiEntropyConfig, col *metrics.Collector) (*AntiEntropySystem, error) {
	if cfg.Peers <= 0 {
		cfg.Peers = 5
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 20 * sim.Second
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 1500
	}
	if cfg.Window == 0 {
		cfg.Window = 2000
	}
	if cfg.Workload == nil && cfg.RateKbps <= 0 {
		return nil, fmt.Errorf("epidemic: rate %v", cfg.RateKbps)
	}
	sys := &AntiEntropySystem{
		participants: append([]int(nil), tree.Participants...),
		tree:         tree,
		cfg:          cfg,
		col:          col,
		net:          net,
		src:          workload.Default(cfg.Workload, cfg.RateKbps, cfg.PacketSize),
	}
	workload.InstallCompletion(sys.src, col)
	for i, id := range sys.participants {
		sys.pindex.Put(id, i)
	}
	for _, id := range tree.Participants {
		parent := -1
		if p, ok := tree.Parent(id); ok {
			parent = p
		}
		n := &aeNode{
			ep:       transport.NewEndpoint(net, id),
			id:       id,
			parent:   parent,
			children: tree.Children(id),
			seen:     workset.New(),
			rng:      net.Engine().RNG(int64(id)*271828 + 0x6165),
		}
		col.Track(id)
		for _, c := range n.children {
			f, err := n.ep.OpenFlow(c, cfg.PacketSize)
			if err != nil {
				return nil, err
			}
			n.flows.set(sys.pindex.At(c), f)
		}
		id := id
		n.ep.OnData(func(from int, seq uint64, size int) { sys.onData(id, from, seq, size) })
		n.ep.OnControl(func(from int, payload any, size int) { sys.onControl(id, from, payload) })
		sys.nodes.Put(id, n)
		// Anti-entropy rounds, de-phased per node, on the node's own
		// scheduler.
		n.roundFn = func() { sys.aeRound(id) }
		jitter := sim.Duration(n.rng.Int63n(int64(cfg.Epoch)))
		n.ep.Scheduler().Schedule(cfg.Epoch+jitter, n.roundFn)
	}
	if sys.joinDegree = tree.MaxDegree(); sys.joinDegree < 2 {
		sys.joinDegree = 2
	}
	// Source pump: packet generation is owned by the workload layer,
	// scheduled on the root node's own scheduler.
	end := cfg.Start + cfg.Duration
	root := sys.nodes.At(tree.Root)
	sched := root.ep.Scheduler()
	workload.Pump(sched, sys.src, cfg.Start,
		func() bool { return sched.Now() >= end || sys.stopped },
		func(seq uint64, size int) {
			root.seen.Add(seq)
			sys.forward(root, seq, size)
		})
	return sys, nil
}

// forward pushes the packet to every tree child.
func (sys *AntiEntropySystem) forward(n *aeNode, seq uint64, size int) {
	for _, c := range n.children {
		if f := n.flows.at(sys.pindex.At(c)); f != nil {
			f.TrySend(seq, size)
		}
	}
}

// Workload returns the source driving this deployment's packet
// generation (the configured one, or the default CBR).
func (sys *AntiEntropySystem) Workload() workload.Source { return sys.src }

func (sys *AntiEntropySystem) onData(id, from int, seq uint64, size int) {
	n := sys.nodes.At(id)
	now := n.ep.Scheduler().Now()
	sys.col.Add(now, id, metrics.Raw, size)
	if from == n.parent {
		sys.col.Add(now, id, metrics.Parent, size)
	}
	if !n.seen.Add(seq) {
		sys.col.Add(now, id, metrics.Duplicate, size)
		return
	}
	sys.col.Add(now, id, metrics.Useful, size)
	if s := sys.cfg.Sink; s != nil {
		s.Deliver(now, id, seq)
	}
	if !sys.refusesRelay(id) {
		sys.forward(n, seq, size)
	}
}

// aeRound sends this node's digest to a few random peers.
func (sys *AntiEntropySystem) aeRound(id int) {
	n := sys.nodes.At(id)
	if n.ep.Failed() {
		n.roundDead = true
		return
	}
	// Maintain the FIFO window.
	if hi := n.seen.High(); hi > sys.cfg.Window {
		n.seen.TrimBelow(hi - sys.cfg.Window)
	}
	filter := bloom.NewForCapacity(int(sys.cfg.Window), 0.03)
	n.seen.ForRange(n.seen.Low(), n.seen.High(), func(seq uint64) bool {
		filter.Add(seq)
		return true
	})
	for i := 0; i < sys.cfg.Peers; i++ {
		peer := sys.participants[n.rng.Intn(len(sys.participants))]
		if peer == id {
			continue
		}
		n.ep.SendControl(peer, &aeDigestMsg{filter: filter, low: n.seen.Low(), high: n.seen.High()}, filter.SizeBytes()+24)
	}
	n.ep.Scheduler().ScheduleAfter(sys.cfg.Epoch, n.roundFn)
}

// onControl answers digests with missing packets (last-in-first-out,
// like pbcast's most-recent-first retransmission).
func (sys *AntiEntropySystem) onControl(id, from int, payload any) {
	m, ok := payload.(*aeDigestMsg)
	if !ok {
		return
	}
	if sys.refusesServe(id) {
		return // hostile: never answer a repair digest
	}
	n := sys.nodes.At(id)
	pi, ok := sys.pindex.Get(from)
	if !ok {
		return // digest from a non-participant: ignore
	}
	f := n.flows.at(pi)
	if f == nil {
		var err error
		f, err = n.ep.OpenFlow(from, sys.cfg.PacketSize)
		if err != nil {
			return
		}
		n.flows.set(pi, f)
	}
	// Serve from newest to oldest until the flow budget runs out.
	var pendingHi uint64
	if h := n.seen.High(); h > 0 {
		pendingHi = h
	}
	lo := m.low
	if n.seen.Low() > lo {
		lo = n.seen.Low()
	}
	for seq := pendingHi; seq+1 > lo; seq-- {
		if !n.seen.Held(seq) {
			continue
		}
		if m.filter.Contains(seq) {
			continue
		}
		if !f.TrySend(seq, sys.cfg.PacketSize) {
			break
		}
		if seq == 0 {
			break
		}
	}
}

// ---------------------------------------------------------------------
// Anti-entropy membership runtime. Crashes orphan the subtree like the
// plain streamer, but the epidemic repair path lets survivors (and a
// restarted node, whose digests advertise what it kept) re-converge.
// ---------------------------------------------------------------------

// Collector returns the metrics sink.
func (sys *AntiEntropySystem) Collector() *metrics.Collector { return sys.col }

// MemberEpoch returns the number of membership changes applied so far.
func (sys *AntiEntropySystem) MemberEpoch() int { return sys.epoch }

// Live reports whether id is a current non-crashed participant.
func (sys *AntiEntropySystem) Live(id int) bool {
	return sys.nodes.Contains(id) && !sys.dead.Contains(id)
}

// LiveNodes returns current non-crashed participant ids sorted.
func (sys *AntiEntropySystem) LiveNodes() []int { return member.LiveTableIDs(&sys.nodes, &sys.dead) }

// Crash fails node id; its subtree stops receiving the stream but
// survivors' anti-entropy rounds continue. The source cannot crash.
func (sys *AntiEntropySystem) Crash(id int) error {
	n, ok := sys.nodes.Get(id)
	if !ok {
		return fmt.Errorf("epidemic: node %d is not a participant", id)
	}
	if sys.dead.Contains(id) {
		return fmt.Errorf("epidemic: node %d already crashed", id)
	}
	if id == sys.tree.Root {
		return fmt.Errorf("epidemic: cannot crash the source %d", id)
	}
	n.ep.Fail()
	sys.dead.Add(id)
	sys.epoch++
	return nil
}

// Restart brings a crashed node back in place: flows to children
// reopen, repair flows reopen lazily, and its anti-entropy rounds
// resume (backfilling what it missed from random peers).
func (sys *AntiEntropySystem) Restart(id int) error {
	n, ok := sys.nodes.Get(id)
	if !ok || !sys.dead.Contains(id) {
		return fmt.Errorf("epidemic: node %d is not crashed", id)
	}
	n.ep.Restart()
	clear(n.flows)
	for _, c := range n.children {
		f, err := n.ep.OpenFlow(c, sys.cfg.PacketSize)
		if err != nil {
			return err
		}
		n.flows.set(sys.pindex.At(c), f)
	}
	sys.dead.Remove(id)
	sys.epoch++
	// Re-arm the round chain only if it actually ended while the node
	// was down; otherwise the pre-crash timer is still pending and will
	// resume on its own.
	if n.roundDead {
		n.roundDead = false
		n.ep.Scheduler().ScheduleAfter(sys.cfg.Epoch, n.roundFn)
	}
	return nil
}

// connected reports whether n and every tree ancestor up to the root
// is live (see streamer.System.connected).
func (sys *AntiEntropySystem) connected(n int) bool {
	return sys.tree.ConnectedToRoot(n, func(x int) bool { return !sys.dead.Contains(x) })
}

// Join attaches a brand-new participant at the deterministic join point
// and starts its anti-entropy rounds.
func (sys *AntiEntropySystem) Join(id int) error {
	if sys.nodes.Contains(id) {
		if sys.dead.Contains(id) {
			return fmt.Errorf("epidemic: node %d crashed; use Restart", id)
		}
		return fmt.Errorf("epidemic: node %d is already a participant", id)
	}
	ap := sys.tree.AttachPoint(sys.joinDegree, sys.connected)
	if ap < 0 {
		return fmt.Errorf("epidemic: no live attach point for node %d", id)
	}
	if err := sys.tree.Attach(id, ap); err != nil {
		return err
	}
	n := &aeNode{
		ep:     transport.NewEndpoint(sys.net, id),
		id:     id,
		parent: ap,
		seen:   workset.New(),
		rng:    sys.net.Engine().RNG(int64(id)*271828 + 0x6165),
	}
	sys.col.Track(id)
	n.ep.OnData(func(from int, seq uint64, size int) { sys.onData(id, from, seq, size) })
	n.ep.OnControl(func(from int, payload any, size int) { sys.onControl(id, from, payload) })
	sys.nodes.Put(id, n)
	sys.pindex.Put(id, len(sys.participants))
	sys.participants = append(sys.participants, id)
	n.roundFn = func() { sys.aeRound(id) }
	jitter := sim.Duration(n.rng.Int63n(int64(sys.cfg.Epoch)))
	n.ep.Scheduler().ScheduleAfter(sys.cfg.Epoch+jitter, n.roundFn)
	// Wire the parent's stream flow to the newcomer.
	pn := sys.nodes.At(ap)
	pn.children = sys.tree.Children(ap)
	f, err := pn.ep.OpenFlow(id, sys.cfg.PacketSize)
	if err != nil {
		return err
	}
	pn.flows.set(sys.pindex.At(id), f)
	sys.epoch++
	return nil
}

// Stop tears the deployment down.
func (sys *AntiEntropySystem) Stop() {
	if sys.stopped {
		return
	}
	sys.stopped = true
	member.StopTable(&sys.nodes, &sys.dead, func(id int) { sys.nodes.At(id).ep.Fail() })
}
