// Package epidemic implements the two §4.4 comparison systems:
//
//   - Push gossiping (lpbcast-like): no tree; every node forwards each
//     non-duplicate packet, as soon as it arrives, to a fixed number of
//     peers chosen uniformly at random from its view. The source sends
//     fresh packets to random nodes at the target rate.
//
//   - Streaming with anti-entropy recovery (pbcast-like): nodes stream
//     over a distribution tree and periodically gossip with random
//     peers, exchanging FIFO Bloom filter digests; a peer responds
//     with packets missing from the digest.
//
// As in the paper's conservative setup, both techniques are granted
// full group membership, reuse Bullet's Bloom filters and TFRC
// transport, use 5 gossip targets per round (experimentally best
// there), and a 20 s anti-entropy epoch so TFRC can ramp up.
package epidemic

import (
	"fmt"
	"math/rand"

	"bullet/internal/bloom"
	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/transport"
	"bullet/internal/workset"
)

// GossipConfig controls a push-gossip run.
type GossipConfig struct {
	RateKbps   float64
	PacketSize int
	Start      sim.Time
	Duration   sim.Duration
	// Fanout is how many random peers each packet is pushed to
	// (paper: 5 performs best with lowest overhead).
	Fanout int
}

type gossipNode struct {
	ep    *transport.Endpoint
	id    int
	seen  *workset.Set
	flows map[int]*transport.Flow
	rng   *rand.Rand
}

// GossipSystem is a deployed push-gossip overlay.
type GossipSystem struct {
	Nodes        map[int]*gossipNode
	participants []int
	cfg          GossipConfig
	col          *metrics.Collector
	eng          *sim.Engine
}

// DeployGossip wires gossip nodes over the participant set (full
// membership, as the paper conservatively assumes).
func DeployGossip(net *netem.Network, participants []int, source int, cfg GossipConfig, col *metrics.Collector) (*GossipSystem, error) {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 5
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 1500
	}
	if cfg.RateKbps <= 0 {
		return nil, fmt.Errorf("epidemic: rate %v", cfg.RateKbps)
	}
	sys := &GossipSystem{
		Nodes:        make(map[int]*gossipNode),
		participants: append([]int(nil), participants...),
		cfg:          cfg,
		col:          col,
		eng:          net.Engine(),
	}
	for _, id := range participants {
		n := &gossipNode{
			ep:    transport.NewEndpoint(net, id),
			id:    id,
			seen:  workset.New(),
			flows: make(map[int]*transport.Flow),
			rng:   net.Engine().RNG(int64(id)*31337 + 0x676f73),
		}
		col.Track(id)
		id := id
		n.ep.OnData(func(from int, seq uint64, size int) { sys.onData(id, from, seq, size) })
		sys.Nodes[id] = n
	}
	bytesPerSec := cfg.RateKbps * 1000 / 8
	interval := sim.Duration(float64(cfg.PacketSize) / bytesPerSec * float64(sim.Second))
	end := cfg.Start + cfg.Duration
	var seq uint64
	src := sys.Nodes[source]
	var pump func()
	pump = func() {
		if sys.eng.Now() >= end {
			return
		}
		src.seen.Add(seq)
		sys.push(src, seq, cfg.PacketSize)
		seq++
		sys.eng.ScheduleAfter(interval, pump)
	}
	sys.eng.Schedule(cfg.Start, pump)
	return sys, nil
}

// push forwards a packet to Fanout random peers over per-peer TFRC
// flows (created lazily and reused).
func (sys *GossipSystem) push(n *gossipNode, seq uint64, size int) {
	for i := 0; i < sys.cfg.Fanout; i++ {
		peer := sys.participants[n.rng.Intn(len(sys.participants))]
		if peer == n.id {
			continue
		}
		f := n.flows[peer]
		if f == nil {
			var err error
			f, err = n.ep.OpenFlow(peer, sys.cfg.PacketSize)
			if err != nil {
				continue
			}
			n.flows[peer] = f
		}
		f.TrySend(seq, size)
	}
}

func (sys *GossipSystem) onData(id, from int, seq uint64, size int) {
	n := sys.Nodes[id]
	now := sys.eng.Now()
	sys.col.Add(now, id, metrics.Raw, size)
	if n.seen.Add(seq) {
		sys.col.Add(now, id, metrics.Useful, size)
		sys.push(n, seq, size)
	} else {
		sys.col.Add(now, id, metrics.Duplicate, size)
	}
}

// ---------------------------------------------------------------------

// AntiEntropyConfig controls a streaming + anti-entropy run.
type AntiEntropyConfig struct {
	RateKbps   float64
	PacketSize int
	Start      sim.Time
	Duration   sim.Duration
	// Epoch is the anti-entropy round length (paper: 20 s so TFRC has
	// time to ramp).
	Epoch sim.Duration
	// Peers is how many random peers are gossiped with per round
	// (paper: 5).
	Peers int
	// Window bounds the FIFO Bloom filter population.
	Window uint64
}

// aeDigestMsg carries a node's FIFO Bloom digest to a random peer.
type aeDigestMsg struct {
	filter    *bloom.Filter
	low, high uint64
}

type aeNode struct {
	ep       *transport.Endpoint
	id       int
	parent   int
	children []int
	seen     *workset.Set
	flows    map[int]*transport.Flow // tree + repair flows
	rng      *rand.Rand
	roundFn  func() // cached aeRound closure: one alloc per node, not per epoch
}

// AntiEntropySystem is a deployed streaming + anti-entropy overlay.
type AntiEntropySystem struct {
	Nodes        map[int]*aeNode
	participants []int
	tree         *overlay.Tree
	cfg          AntiEntropyConfig
	col          *metrics.Collector
	eng          *sim.Engine
}

// DeployAntiEntropy wires tree streaming plus random-peer anti-entropy
// repair over full membership.
func DeployAntiEntropy(net *netem.Network, tree *overlay.Tree, cfg AntiEntropyConfig, col *metrics.Collector) (*AntiEntropySystem, error) {
	if cfg.Peers <= 0 {
		cfg.Peers = 5
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 20 * sim.Second
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 1500
	}
	if cfg.Window == 0 {
		cfg.Window = 2000
	}
	if cfg.RateKbps <= 0 {
		return nil, fmt.Errorf("epidemic: rate %v", cfg.RateKbps)
	}
	sys := &AntiEntropySystem{
		Nodes:        make(map[int]*aeNode),
		participants: append([]int(nil), tree.Participants...),
		tree:         tree,
		cfg:          cfg,
		col:          col,
		eng:          net.Engine(),
	}
	for _, id := range tree.Participants {
		parent := -1
		if p, ok := tree.Parent(id); ok {
			parent = p
		}
		n := &aeNode{
			ep:       transport.NewEndpoint(net, id),
			id:       id,
			parent:   parent,
			children: tree.Children(id),
			seen:     workset.New(),
			flows:    make(map[int]*transport.Flow),
			rng:      net.Engine().RNG(int64(id)*271828 + 0x6165),
		}
		col.Track(id)
		for _, c := range n.children {
			f, err := n.ep.OpenFlow(c, cfg.PacketSize)
			if err != nil {
				return nil, err
			}
			n.flows[c] = f
		}
		id := id
		n.ep.OnData(func(from int, seq uint64, size int) { sys.onData(id, from, seq, size) })
		n.ep.OnControl(func(from int, payload any, size int) { sys.onControl(id, from, payload) })
		sys.Nodes[id] = n
		// Anti-entropy rounds, de-phased per node.
		n.roundFn = func() { sys.aeRound(id) }
		jitter := sim.Duration(n.rng.Int63n(int64(cfg.Epoch)))
		sys.eng.Schedule(cfg.Epoch+jitter, n.roundFn)
	}
	bytesPerSec := cfg.RateKbps * 1000 / 8
	interval := sim.Duration(float64(cfg.PacketSize) / bytesPerSec * float64(sim.Second))
	end := cfg.Start + cfg.Duration
	var seq uint64
	root := sys.Nodes[tree.Root]
	var pump func()
	pump = func() {
		if sys.eng.Now() >= end {
			return
		}
		root.seen.Add(seq)
		for _, c := range root.children {
			root.flows[c].TrySend(seq, cfg.PacketSize)
		}
		seq++
		sys.eng.ScheduleAfter(interval, pump)
	}
	sys.eng.Schedule(cfg.Start, pump)
	return sys, nil
}

func (sys *AntiEntropySystem) onData(id, from int, seq uint64, size int) {
	n := sys.Nodes[id]
	now := sys.eng.Now()
	sys.col.Add(now, id, metrics.Raw, size)
	if from == n.parent {
		sys.col.Add(now, id, metrics.Parent, size)
	}
	if !n.seen.Add(seq) {
		sys.col.Add(now, id, metrics.Duplicate, size)
		return
	}
	sys.col.Add(now, id, metrics.Useful, size)
	for _, c := range n.children {
		n.flows[c].TrySend(seq, size)
	}
}

// aeRound sends this node's digest to a few random peers.
func (sys *AntiEntropySystem) aeRound(id int) {
	n := sys.Nodes[id]
	if n.ep.Failed() {
		return
	}
	// Maintain the FIFO window.
	if hi := n.seen.High(); hi > sys.cfg.Window {
		n.seen.TrimBelow(hi - sys.cfg.Window)
	}
	filter := bloom.NewForCapacity(int(sys.cfg.Window), 0.03)
	n.seen.ForRange(n.seen.Low(), n.seen.High(), func(seq uint64) bool {
		filter.Add(seq)
		return true
	})
	for i := 0; i < sys.cfg.Peers; i++ {
		peer := sys.participants[n.rng.Intn(len(sys.participants))]
		if peer == id {
			continue
		}
		n.ep.SendControl(peer, &aeDigestMsg{filter: filter, low: n.seen.Low(), high: n.seen.High()}, filter.SizeBytes()+24)
	}
	sys.eng.ScheduleAfter(sys.cfg.Epoch, n.roundFn)
}

// onControl answers digests with missing packets (last-in-first-out,
// like pbcast's most-recent-first retransmission).
func (sys *AntiEntropySystem) onControl(id, from int, payload any) {
	m, ok := payload.(*aeDigestMsg)
	if !ok {
		return
	}
	n := sys.Nodes[id]
	f := n.flows[from]
	if f == nil {
		var err error
		f, err = n.ep.OpenFlow(from, sys.cfg.PacketSize)
		if err != nil {
			return
		}
		n.flows[from] = f
	}
	// Serve from newest to oldest until the flow budget runs out.
	var pendingHi uint64
	if h := n.seen.High(); h > 0 {
		pendingHi = h
	}
	lo := m.low
	if n.seen.Low() > lo {
		lo = n.seen.Low()
	}
	for seq := pendingHi; seq+1 > lo; seq-- {
		if !n.seen.Held(seq) {
			continue
		}
		if m.filter.Contains(seq) {
			continue
		}
		if !f.TrySend(seq, sys.cfg.PacketSize) {
			break
		}
		if seq == 0 {
			break
		}
	}
}
