package epidemic

// Minimal adversary wiring for the epidemic baselines: only Freeride
// has a surface here (stop re-forwarding gossip pushes / stop serving
// anti-entropy digests); the tree- and RanSub-targeted models are
// honest no-ops. Both systems accept the same scenario actions as the
// main protocols so an identical attack schedule can run against them.

import "bullet/internal/adversary"

// SetAdversary attaches fleet to the gossip deployment.
func (sys *GossipSystem) SetAdversary(f *adversary.Fleet) {
	if f == nil || f.Model() == adversary.None {
		sys.adv = nil
		return
	}
	sys.adv = f
}

// Adversary returns the attached fleet, or nil.
func (sys *GossipSystem) Adversary() *adversary.Fleet { return sys.adv }

// Compromise adds nodes to the fleet's colluder set.
func (sys *GossipSystem) Compromise(nodes []int) {
	if sys.adv != nil {
		sys.adv.Compromise(nodes)
	}
}

// Strike activates the fleet; freeriders stop re-forwarding pushes.
func (sys *GossipSystem) Strike() {
	if sys.adv != nil {
		sys.adv.Activate()
	}
}

func (sys *GossipSystem) refusesServe(id int) bool {
	return sys.adv != nil && sys.adv.RefusesServe(id)
}

// SetAdversary attaches fleet to the anti-entropy deployment.
func (sys *AntiEntropySystem) SetAdversary(f *adversary.Fleet) {
	if f == nil || f.Model() == adversary.None {
		sys.adv = nil
		return
	}
	sys.adv = f
}

// Adversary returns the attached fleet, or nil.
func (sys *AntiEntropySystem) Adversary() *adversary.Fleet { return sys.adv }

// Compromise adds nodes to the fleet's colluder set.
func (sys *AntiEntropySystem) Compromise(nodes []int) {
	if sys.adv != nil {
		sys.adv.Compromise(nodes)
	}
}

// Strike activates the fleet; freeriders stop relaying to children
// and stop answering digests.
func (sys *AntiEntropySystem) Strike() {
	if sys.adv != nil {
		sys.adv.Activate()
	}
}

func (sys *AntiEntropySystem) refusesServe(id int) bool {
	return sys.adv != nil && sys.adv.RefusesServe(id)
}

func (sys *AntiEntropySystem) refusesRelay(id int) bool {
	return sys.adv != nil && sys.adv.RefusesRelay(id)
}
