package epidemic

import (
	"math/rand"
	"testing"

	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/topology"
)

func world(t *testing.T, seed int64, clients int) (*sim.Engine, *netem.Network, *topology.Graph, *topology.Router) {
	t.Helper()
	g, err := topology.Generate(topology.Config{
		TransitDomains: 2, TransitPerDomain: 3,
		StubDomains: 10, StubDomainSize: 5,
		Clients: clients, Bandwidth: topology.MediumBandwidth, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	rt := topology.NewRouter(g)
	return eng, netem.New(eng, g, rt, netem.Config{}), g, rt
}

func TestGossipDisseminates(t *testing.T) {
	eng, net, g, _ := world(t, 1, 25)
	col := metrics.NewCollector(sim.Second)
	_, err := DeployGossip(net, g.Clients, g.Clients[0], GossipConfig{
		RateKbps: 300, PacketSize: 1500, Start: 0, Duration: 60 * sim.Second,
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(70 * sim.Second)
	useful := col.MeanOver(20*sim.Second, 70*sim.Second, metrics.Useful)
	if useful < 100 {
		t.Fatalf("gossip delivered only %.0f Kbps of a 300 Kbps stream", useful)
	}
}

func TestGossipProducesDuplicates(t *testing.T) {
	// The paper's point: epidemics waste bandwidth on duplicates —
	// with fanout 5 over 25 nodes, raw should clearly exceed useful.
	eng, net, g, _ := world(t, 2, 25)
	col := metrics.NewCollector(sim.Second)
	if _, err := DeployGossip(net, g.Clients, g.Clients[0], GossipConfig{
		RateKbps: 300, PacketSize: 1500, Start: 0, Duration: 60 * sim.Second,
	}, col); err != nil {
		t.Fatal(err)
	}
	eng.Run(70 * sim.Second)
	if col.DuplicateRatio() < 0.2 {
		t.Fatalf("gossip duplicate ratio %.3f suspiciously low", col.DuplicateRatio())
	}
}

func TestGossipRejectsZeroRate(t *testing.T) {
	_, net, g, _ := world(t, 3, 10)
	col := metrics.NewCollector(sim.Second)
	if _, err := DeployGossip(net, g.Clients, g.Clients[0], GossipConfig{}, col); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestAntiEntropyRecoversLosses(t *testing.T) {
	// Streaming over a poor random tree loses data; anti-entropy must
	// recover a meaningful amount beyond what the tree delivers.
	run := func(epoch sim.Duration, peers int) (useful, parent float64) {
		eng, net, g, _ := world(t, 4, 25)
		tree, err := overlay.Random(g.Clients, g.Clients[0], 4, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		col := metrics.NewCollector(sim.Second)
		if _, err := DeployAntiEntropy(net, tree, AntiEntropyConfig{
			RateKbps: 600, PacketSize: 1500, Start: 0, Duration: 120 * sim.Second,
			Epoch: epoch, Peers: peers,
		}, col); err != nil {
			t.Fatal(err)
		}
		eng.Run(120 * sim.Second)
		return col.MeanOver(40*sim.Second, 120*sim.Second, metrics.Useful),
			col.MeanOver(40*sim.Second, 120*sim.Second, metrics.Parent)
	}
	useful, parent := run(20*sim.Second, 5)
	if useful <= parent {
		t.Fatalf("anti-entropy recovered nothing: useful %.0f <= parent %.0f", useful, parent)
	}
}

func TestAntiEntropyDefaults(t *testing.T) {
	eng, net, g, _ := world(t, 5, 15)
	tree, _ := overlay.Random(g.Clients, g.Clients[0], 4, rand.New(rand.NewSource(5)))
	col := metrics.NewCollector(sim.Second)
	sys, err := DeployAntiEntropy(net, tree, AntiEntropyConfig{
		RateKbps: 300, PacketSize: 0, Start: 0, Duration: 30 * sim.Second,
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	if sys.cfg.Peers != 5 || sys.cfg.Epoch != 20*sim.Second || sys.cfg.PacketSize != 1500 {
		t.Fatalf("defaults not applied: %+v", sys.cfg)
	}
	eng.Run(40 * sim.Second)
	if col.Total(metrics.Useful) == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestAntiEntropyRejectsZeroRate(t *testing.T) {
	_, net, g, _ := world(t, 6, 10)
	tree, _ := overlay.Random(g.Clients, g.Clients[0], 4, rand.New(rand.NewSource(6)))
	col := metrics.NewCollector(sim.Second)
	if _, err := DeployAntiEntropy(net, tree, AntiEntropyConfig{}, col); err == nil {
		t.Fatal("zero rate accepted")
	}
}
