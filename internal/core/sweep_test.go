package core

import (
	"fmt"
	"testing"

	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/topology"
	"math/rand"
)

// TestSweep explores freshness delay and recovery window; diagnostic
// only (run with -run Sweep -v).
func TestSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	for _, peers := range []int{4, 6, 8, 10} {
		for _, fd := range []sim.Duration{2 * sim.Second, 6 * sim.Second} {
			win := uint64(2000)
			g, err := topology.Generate(func() topology.Config {
				c := topology.Sized(1500, 40, topology.LowBandwidth)
				c.Seed = 4
				return c
			}())
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.NewEngine(4)
			rt := topology.NewRouter(g)
			net := netem.New(eng, g, rt, netem.Config{})
			tree, err := overlay.Random(g.Clients, g.Clients[0], 5, rand.New(rand.NewSource(4^0x74726565)))
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(600)
			cfg.Start = 20 * sim.Second
			cfg.Duration = 130 * sim.Second
			cfg.FreshnessDelay = fd
			cfg.RecoveryWindow = win
			cfg.MaxSenders = peers
			cfg.MaxReceivers = peers
			col := metrics.NewCollector(sim.Second)
			sys, err := Deploy(net, tree, cfg, col)
			if err != nil {
				t.Fatal(err)
			}
			eng.Run(150 * sim.Second)
			fmt.Printf("peers=%d fd=%v win=%d useful=%.0f parent=%.0f dup=%.3f ctrl=%.1f\n",
				peers, fd.ToSeconds(), win,
				col.MeanOver(70*sim.Second, 150*sim.Second, metrics.Useful),
				col.MeanOver(70*sim.Second, 150*sim.Second, metrics.Parent),
				col.DuplicateRatio(), sys.ControlOverheadKbps())
		}
	}
}
