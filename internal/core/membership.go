package core

// Membership runtime for Bullet: crash, restart, and join of overlay
// participants while the stream runs. This is the mechanism behind the
// paper's node-failure evaluation — RanSub waves skip dead peers, the
// distribution tree deterministically re-parents orphans one level up,
// and receivers re-install their Bloom filters at live peers once a
// crashed sender is detected.
//
// Every operation is deterministic: repairs run at fixed virtual-time
// offsets from the crash, iterate nodes in ascending id order, and
// draw no randomness, so a churn run remains a pure function of
// (config, seed, schedule).

import (
	"fmt"

	"bullet/internal/bloom"
	"bullet/internal/member"
	"bullet/internal/sim"
)

// FailoverDelay is how long after a crash the failure is considered
// detected: tree surgery and mesh peer teardown run this much virtual
// time after Crash. It models the paper's detection latency (RanSub
// epoch timeouts, TFRC feedback silence) as a fixed constant.
const FailoverDelay = 2 * sim.Second

// MemberEpoch returns the number of membership changes (crashes,
// restarts, joins) applied so far.
func (sys *System) MemberEpoch() int { return sys.memberEpoch }

// Live reports whether id is a current, non-crashed participant.
func (sys *System) Live(id int) bool {
	return sys.nodes.Contains(id) && !sys.dead.Contains(id) && sys.tree.Contains(id)
}

// LiveNodes returns the ids of current non-crashed participants in
// sorted order.
func (sys *System) LiveNodes() []int {
	out := make([]int, 0, sys.nodes.Len())
	sys.nodes.Range(func(id int, _ *Node) bool {
		if sys.Live(id) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// Crash fails node id mid-run: its endpoint goes down immediately and,
// FailoverDelay later, the failure is detected — the tree re-parents
// its orphaned children to the nearest live ancestor and every live
// node tears down mesh state involving it. The source (tree root)
// cannot crash.
func (sys *System) Crash(id int) error {
	n, ok := sys.nodes.Get(id)
	if !ok {
		return fmt.Errorf("core: node %d is not a participant", id)
	}
	if sys.dead.Contains(id) {
		return fmt.Errorf("core: node %d already crashed", id)
	}
	if id == sys.tree.Root {
		return fmt.Errorf("core: cannot crash the source (tree root %d)", id)
	}
	n.ep.Fail()
	sys.dead.Add(id)
	sys.memberEpoch++
	// The detection callback belongs to *this* crash: if the node was
	// restarted (fresh *Node in the table) and crashed again before
	// this timer fires, the newer crash's own callback owns the repair
	// — firing here early would violate the fixed detection delay.
	sys.eng.ScheduleAfter(FailoverDelay, func() {
		if sys.dead.Contains(id) && sys.nodes.At(id) == n {
			sys.repair(id)
		}
	})
	return nil
}

// repair performs failure detection's aftermath for a crashed node:
// deterministic orphan re-parenting plus mesh teardown at every live
// node. Called once per crash (or synchronously by Restart when the
// node comes back before detection fires).
func (sys *System) repair(id int) {
	if !sys.tree.Contains(id) {
		return
	}
	p, _ := sys.tree.Parent(id)
	promoted, err := sys.tree.ReparentChildren(id)
	if err != nil {
		return // root: unreachable, Crash refuses it
	}
	parentLive := !sys.dead.Contains(p)
	if pn, ok := sys.nodes.Get(p); ok && parentLive {
		pn.removeChild(id)
	}
	for _, c := range promoted {
		cn, ok := sys.nodes.Get(c)
		if !ok {
			continue
		}
		cn.parent = p
		cn.agent.SetParent(p)
		if sys.dead.Contains(c) {
			// The orphan itself is dead: its own repair will promote
			// its subtree again, so don't wire flows to it.
			continue
		}
		if pn, ok := sys.nodes.Get(p); ok && parentLive {
			pn.addChild(c)
		}
	}
	// Every live node drops the dead peer from its mesh and re-installs
	// Bloom filters at the survivors, in ascending id order.
	sys.nodes.Range(func(nid int, n *Node) bool {
		if nid != id && !sys.dead.Contains(nid) {
			n.dropDeadPeer(id)
		}
		return true
	})
}

// Restart brings a crashed node back as a fresh participant: empty
// working set, new endpoint, re-attached at the deterministic join
// point. If the crash had not been detected yet the repair runs first,
// so the stale tree position is cleaned up before the rejoin.
func (sys *System) Restart(id int) error {
	if !sys.dead.Contains(id) {
		return fmt.Errorf("core: node %d is not crashed", id)
	}
	if sys.tree.Contains(id) {
		sys.repair(id)
	}
	sys.dead.Remove(id)
	if err := sys.join(id); err != nil {
		// No live attach point right now (e.g. every neighbor is itself
		// crashed and undetected). The node stays crashed so a later
		// Restart can retry.
		sys.dead.Add(id)
		return err
	}
	return nil
}

// Join adds a brand-new participant mid-run, attached at the
// deterministic join point (first breadth-first live node with spare
// degree). The id must name a topology node that is not currently a
// live participant; a crashed node must use Restart instead.
func (sys *System) Join(id int) error {
	if sys.dead.Contains(id) {
		return fmt.Errorf("core: node %d crashed; use Restart", id)
	}
	if sys.tree.Contains(id) {
		return fmt.Errorf("core: node %d is already a participant", id)
	}
	return sys.join(id)
}

// connected reports whether n and every tree ancestor up to the root
// is live — a join point must actually receive the stream, not merely
// be alive inside a dead, not-yet-repaired subtree.
func (sys *System) connected(n int) bool {
	return sys.tree.ConnectedToRoot(n, func(x int) bool { return !sys.dead.Contains(x) })
}

func (sys *System) join(id int) error {
	ap := sys.tree.AttachPoint(sys.joinDegree, sys.connected)
	if ap < 0 {
		return fmt.Errorf("core: no live attach point for node %d", id)
	}
	if err := sys.tree.Attach(id, ap); err != nil {
		return err
	}
	if err := sys.addNode(id); err != nil {
		return err
	}
	sys.nodes.At(ap).addChild(id)
	sys.memberEpoch++
	return nil
}

// Stop tears the deployment down: the source halts and every live
// endpoint goes offline. The world (and any other deployment in it)
// keeps running.
func (sys *System) Stop() {
	if sys.stopped {
		return
	}
	sys.stopped = true
	// Quiesce the RanSub root first: its epoch/timeout timers would
	// otherwise re-arm forever even with every endpoint down.
	if root, ok := sys.nodes.Get(sys.tree.Root); ok {
		root.agent.Stop()
	}
	member.StopTable(&sys.nodes, &sys.dead, func(id int) { sys.nodes.At(id).ep.Fail() })
}

// Stopped reports whether Stop was called.
func (sys *System) Stopped() bool { return sys.stopped }

// ---------------------------------------------------------------------
// Per-node wiring updates
// ---------------------------------------------------------------------

// removeChild forgets a tree child: its flow closes and the RanSub
// agent stops waiting for its collects.
func (n *Node) removeChild(c int) {
	for i, ci := range n.children {
		if ci.node == c {
			ci.flow.Close()
			n.children = append(n.children[:i], n.children[i+1:]...)
			break
		}
	}
	n.agent.RemoveChild(c)
}

// addChild wires a new tree child: fresh flow, default sending/limiting
// factors (refined at the next RanSub epoch), RanSub membership.
func (n *Node) addChild(c int) {
	if n.findChild(c) != nil {
		return
	}
	f, err := n.ep.OpenFlow(c, n.sys.cfg.PacketSize)
	if err != nil {
		return
	}
	f.TraceEvery = n.sys.cfg.TraceEvery
	n.children = append(n.children, &childInfo{node: c, flow: f, lf: 1.0,
		filter: bloom.NewForCapacity(4096, 0.01)})
	n.agent.AddChild(c)
}

// dropDeadPeer removes a crashed node from this node's mesh state:
// senders holding our Bloom filter, receivers we were serving, and any
// pending peering handshake. A freed sender slot triggers row
// reassignment, a refresh to the surviving senders (the "Bloom filter
// re-install"), and an immediate attempt to fill the slot from the
// latest RanSub set.
func (n *Node) dropDeadPeer(id int) {
	if rf := n.removeReceiver(id); rf != nil {
		rf.flow.Close()
		releaseReceiver(rf)
	}
	if n.pending == id {
		n.pending = -1
	}
	if !n.removeSender(id) {
		return
	}
	n.reassignRows()
	n.sendRefreshes()
	n.maybeRequestPeer()
}
