package core

import (
	"math/rand"
	"testing"

	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/streamer"
	"bullet/internal/topology"
)

type testWorld struct {
	eng  *sim.Engine
	net  *netem.Network
	g    *topology.Graph
	rt   *topology.Router
	tree *overlay.Tree
}

func buildWorld(t *testing.T, seed int64, clients int, bw topology.BandwidthProfile, loss topology.LossProfile) *testWorld {
	t.Helper()
	g, err := topology.Generate(topology.Config{
		TransitDomains: 2, TransitPerDomain: 3,
		StubDomains: 12, StubDomainSize: 5,
		Clients: clients, Bandwidth: bw, Loss: loss, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	rt := topology.NewRouter(g)
	net := netem.New(eng, g, rt, netem.Config{})
	tree, err := overlay.Random(g.Clients, g.Clients[0], 5, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{eng: eng, net: net, g: g, rt: rt, tree: tree}
}

func runBullet(t *testing.T, w *testWorld, cfg Config, until sim.Duration) (*System, *metrics.Collector) {
	t.Helper()
	col := metrics.NewCollector(sim.Second)
	sys, err := Deploy(w.net, w.tree, cfg, col)
	if err != nil {
		t.Fatal(err)
	}
	w.eng.Run(until)
	return sys, col
}

func TestBulletDeliversStream(t *testing.T) {
	w := buildWorld(t, 1, 40, topology.MediumBandwidth, topology.NoLoss)
	cfg := DefaultConfig(600)
	cfg.Start = 20 * sim.Second
	cfg.Duration = 160 * sim.Second
	sys, col := runBullet(t, w, cfg, 180*sim.Second)
	useful := col.MeanOver(60*sim.Second, 180*sim.Second, metrics.Useful)
	if useful < 200 {
		t.Fatalf("Bullet useful bandwidth %.0f Kbps too low", useful)
	}
	if useful > 620 {
		t.Fatalf("useful bandwidth %.0f exceeds source rate", useful)
	}
	if sys.MeanSenders() < 1 {
		t.Fatalf("mesh did not form: mean senders %.2f", sys.MeanSenders())
	}
}

func TestBulletBeatsTreeStreamingOnRandomTree(t *testing.T) {
	// The paper's core claim at reduced scale: Bullet over a random
	// tree far exceeds plain streaming over the same random tree on a
	// constrained topology (Figure 7 vs Figure 6's random-tree line).
	runPlain := func() float64 {
		w := buildWorld(t, 2, 40, topology.MediumBandwidth, topology.NoLoss)
		col := metrics.NewCollector(sim.Second)
		_, err := streamer.Deploy(w.net, w.tree, streamer.Config{
			RateKbps: 600, PacketSize: 1500, Start: 20 * sim.Second, Duration: 160 * sim.Second,
		}, col)
		if err != nil {
			t.Fatal(err)
		}
		w.eng.Run(180 * sim.Second)
		return col.MeanOver(60*sim.Second, 180*sim.Second, metrics.Useful)
	}
	runMesh := func() float64 {
		w := buildWorld(t, 2, 40, topology.MediumBandwidth, topology.NoLoss)
		cfg := DefaultConfig(600)
		cfg.Start = 20 * sim.Second
		cfg.Duration = 160 * sim.Second
		_, col := runBullet(t, w, cfg, 180*sim.Second)
		return col.MeanOver(60*sim.Second, 180*sim.Second, metrics.Useful)
	}
	plain, mesh := runPlain(), runMesh()
	if mesh < plain*1.2 {
		t.Fatalf("Bullet %.0f Kbps did not beat plain streaming %.0f Kbps by 20%%", mesh, plain)
	}
}

func TestBulletDuplicateRatioLow(t *testing.T) {
	w := buildWorld(t, 3, 40, topology.MediumBandwidth, topology.NoLoss)
	cfg := DefaultConfig(600)
	cfg.Start = 20 * sim.Second
	cfg.Duration = 160 * sim.Second
	_, col := runBullet(t, w, cfg, 180*sim.Second)
	if r := col.DuplicateRatio(); r > 0.15 {
		t.Fatalf("duplicate ratio %.3f; paper reports <10%%", r)
	}
}

func TestBulletControlOverheadBounded(t *testing.T) {
	w := buildWorld(t, 4, 40, topology.MediumBandwidth, topology.NoLoss)
	cfg := DefaultConfig(600)
	cfg.Start = 10 * sim.Second
	cfg.Duration = 110 * sim.Second
	sys, _ := runBullet(t, w, cfg, 120*sim.Second)
	kbps := sys.ControlOverheadKbps()
	if kbps <= 0 {
		t.Fatal("no control traffic recorded")
	}
	if kbps > 60 {
		t.Fatalf("control overhead %.1f Kbps per node; paper reports ~30", kbps)
	}
}

func TestDisjointSendAblation(t *testing.T) {
	// Figure 10: disabling the disjoint strategy costs bandwidth.
	run := func(disjoint bool) float64 {
		w := buildWorld(t, 5, 40, topology.LowBandwidth, topology.NoLoss)
		cfg := DefaultConfig(600)
		cfg.Start = 20 * sim.Second
		cfg.Duration = 160 * sim.Second
		cfg.DisjointSend = disjoint
		_, col := runBullet(t, w, cfg, 180*sim.Second)
		return col.MeanOver(80*sim.Second, 180*sim.Second, metrics.Useful)
	}
	with, without := run(true), run(false)
	if with <= without {
		t.Fatalf("disjoint send (%.0f Kbps) did not outperform non-disjoint (%.0f Kbps)", with, without)
	}
}

func TestBulletSurvivesWorstCaseFailure(t *testing.T) {
	// Figures 13/14: fail a child of the root. With RanSub failure
	// detection on, descendants keep receiving data through peers.
	w := buildWorld(t, 6, 40, topology.MediumBandwidth, topology.NoLoss)
	cfg := DefaultConfig(600)
	cfg.Start = 10 * sim.Second
	cfg.Duration = 190 * sim.Second
	col := metrics.NewCollector(sim.Second)
	sys, err := Deploy(w.net, w.tree, cfg, col)
	if err != nil {
		t.Fatal(err)
	}
	kids := w.tree.Children(w.tree.Root)
	var victim int
	best := -1
	for _, k := range kids {
		if d := w.tree.Descendants(k); d > best {
			best, victim = d, k
		}
	}
	if best < 3 {
		t.Skip("no root child with enough descendants in this draw")
	}
	w.eng.At(100*sim.Second, func() { sys.Fail(victim) })
	w.eng.Run(200 * sim.Second)

	var descendants []int
	for _, p := range w.tree.Participants {
		if p != victim && w.tree.IsDescendant(victim, p) {
			descendants = append(descendants, p)
		}
	}
	// Average descendant bandwidth after the failure must remain a
	// solid fraction of the pre-failure level (paper: negligible
	// disruption with recovery on).
	meanOver := func(nodes []int, from, to sim.Time) float64 {
		var sum float64
		var cnt int
		for _, nd := range nodes {
			s := col.NodeSeries(nd, metrics.Useful)
			for i := int(from / sim.Second); i < int(to/sim.Second) && i < len(s); i++ {
				sum += s[i].Kbps
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	before := meanOver(descendants, 60*sim.Second, 100*sim.Second)
	after := meanOver(descendants, 130*sim.Second, 200*sim.Second)
	if before == 0 {
		t.Fatal("descendants received nothing before failure")
	}
	if after < before*0.4 {
		t.Fatalf("descendants dropped from %.0f to %.0f Kbps after failure (>60%% loss)", before, after)
	}
}

func TestModRowsReduceDuplicates(t *testing.T) {
	run := func(rows bool) float64 {
		w := buildWorld(t, 7, 35, topology.MediumBandwidth, topology.NoLoss)
		cfg := DefaultConfig(600)
		cfg.Start = 10 * sim.Second
		cfg.Duration = 110 * sim.Second
		cfg.ModRows = rows
		_, col := runBullet(t, w, cfg, 120*sim.Second)
		return col.DuplicateRatio()
	}
	with, without := run(true), run(false)
	if with > without {
		t.Fatalf("row partitioning increased duplicates: %.3f vs %.3f", with, without)
	}
}

func TestSenderListBounded(t *testing.T) {
	w := buildWorld(t, 8, 30, topology.MediumBandwidth, topology.NoLoss)
	cfg := DefaultConfig(600)
	cfg.MaxSenders = 3
	cfg.MaxReceivers = 4
	cfg.Start = 10 * sim.Second
	cfg.Duration = 110 * sim.Second
	sys, _ := runBullet(t, w, cfg, 120*sim.Second)
	sys.nodes.Range(func(id int, n *Node) bool {
		if len(n.senders) > 3 {
			t.Fatalf("node %d has %d senders (max 3)", id, len(n.senders))
		}
		if len(n.receivers) > 4 {
			t.Fatalf("node %d has %d receivers (max 4)", id, len(n.receivers))
		}
		for _, si := range n.senders {
			if si.node == id || si.node == n.parent {
				t.Fatalf("node %d peered with self or parent", id)
			}
		}
		return true
	})
}

func TestRowAssignmentsDistinct(t *testing.T) {
	w := buildWorld(t, 9, 30, topology.MediumBandwidth, topology.NoLoss)
	cfg := DefaultConfig(600)
	cfg.Start = 10 * sim.Second
	cfg.Duration = 110 * sim.Second
	sys, _ := runBullet(t, w, cfg, 120*sim.Second)
	sys.nodes.Range(func(id int, n *Node) bool {
		mods := make(map[int]bool)
		for _, si := range n.senders {
			if si.mod < 0 || si.mod >= len(n.senders) {
				t.Fatalf("node %d sender mod %d out of range [0,%d)", id, si.mod, len(n.senders))
			}
			if mods[si.mod] {
				t.Fatalf("node %d assigned duplicate mod %d", id, si.mod)
			}
			mods[si.mod] = true
		}
		return true
	})
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rate accepted")
	}
	bad2 := DefaultConfig(600)
	bad2.Duration = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero duration accepted")
	}
	ok := DefaultConfig(600)
	ok.PacketSize = 0
	if err := ok.Validate(); err != nil || ok.PacketSize != 1500 {
		t.Fatalf("defaults not filled: %v ps=%d", err, ok.PacketSize)
	}
}

func TestLinkStressTracing(t *testing.T) {
	w := buildWorld(t, 10, 30, topology.MediumBandwidth, topology.NoLoss)
	cfg := DefaultConfig(600)
	cfg.Start = 10 * sim.Second
	cfg.Duration = 110 * sim.Second
	cfg.TraceEvery = 100
	runBullet(t, w, cfg, 120*sim.Second)
	avg, max := w.net.LinkStress()
	if avg < 1 {
		t.Fatalf("avg link stress %.2f < 1", avg)
	}
	if max < 1 {
		t.Fatal("no traced packets crossed any link")
	}
	if avg > 5 {
		t.Fatalf("avg link stress %.2f implausibly high (paper ~1.5)", avg)
	}
}
