package core

// Adversary wiring: a deployed adversary.Fleet attaches to the system
// through SetAdversary and stays dormant until a scenario's
// AdversaryAt action calls Strike. All hostile randomness comes from
// the fleet's seeded stream, drawn only here (global-engine context:
// scenario actions and membership churn run between shard windows);
// the per-node hooks that run inside shard windows — serving guards,
// ticket lookups, ballot rewrites — only read state written before
// the window barrier, so sharded adversarial runs stay byte-identical
// to serial.

import (
	"bullet/internal/adversary"
	"bullet/internal/ransub"
	"bullet/internal/sketch"
)

// SetAdversary attaches fleet to the deployment and arms the per-node
// hooks its model needs. Passing nil (or a None fleet) leaves the
// system untouched. Must be called before the run starts or from
// global-engine context.
func (sys *System) SetAdversary(f *adversary.Fleet) {
	if f == nil || f.Model() == adversary.None {
		sys.adv = nil
		return
	}
	sys.adv = f
	sys.nodes.Range(func(_ int, n *Node) bool {
		sys.armAdversary(n)
		return true
	})
}

// Adversary returns the attached fleet, or nil.
func (sys *System) Adversary() *adversary.Fleet { return sys.adv }

// refusesServe gates every mesh/recovery serving path. One nil check
// on the clean path: a run without an adversary executes identically
// to one where this hook never existed.
func (sys *System) refusesServe(id int) bool {
	return sys.adv != nil && sys.adv.RefusesServe(id)
}

// refusesRelay gates the Figure 5 disjoint send to tree children.
func (sys *System) refusesRelay(id int) bool {
	return sys.adv != nil && sys.adv.RefusesRelay(id)
}

// armAdversary installs the model's per-node hooks. Hooks go on every
// node and check hostility at call time, so CompromiseNodes can extend
// the colluder set mid-run without re-wiring.
func (sys *System) armAdversary(n *Node) {
	switch sys.adv.Model() {
	case adversary.Liar:
		real := n.agent.TicketFn
		n.agent.TicketFn = func() *sketch.Ticket {
			if t := sys.forgedTicket(n.id); t != nil {
				return t
			}
			return real()
		}
	case adversary.Ballotstuff:
		n.agent.StuffFn = func(set []ransub.Entry, desc int) ([]ransub.Entry, int) {
			return sys.stuffBallot(n.id, set, desc)
		}
	}
}

// forgedTicket returns the hostile summary ticket for id, or nil when
// id should behave honestly. Read from shard windows; written only at
// Strike/Compromise on the global engine.
func (sys *System) forgedTicket(id int) *sketch.Ticket {
	if sys.adv == nil || !sys.adv.Hostile(id) {
		return nil
	}
	t, _ := sys.fakeTickets.Get(id)
	return t
}

// forgeTickets fabricates, for every colluder lacking one, a summary
// ticket populated from a sequence range no real packet ever uses
// (≥ 2^40). Its resemblance to any honest working set is ~0, so
// min-resemblance sender selection (§3.3) ranks the colluder first —
// the lie that poisons peering. Idempotent per colluder; tickets are
// immutable once forged so sharing the pointer across ballots and
// shard windows is safe.
func (sys *System) forgeTickets() {
	f := sys.adv
	for _, id := range f.Colluders() {
		if sys.fakeTickets.Contains(id) {
			continue
		}
		t := sketch.NewTicket(sys.perms)
		base := uint64(1)<<40 + uint64(id)<<20
		k := 64 + f.Stream().Intn(id, 64)
		for i := 0; i < k; i++ {
			t.Add(base + uint64(f.Stream().Intn(id, 1<<18)))
		}
		sys.fakeTickets.Put(id, t)
	}
}

// stuffBallot is the Ballotstuff collect-path rewrite: a hostile
// node replaces its subtree's honest ballot with colluder entries
// carrying forged tickets and inflates its descendant count, so
// Compact's population weighting drives colluders into every random
// subset above it. Deterministic: colluder choice depends only on
// (slot, node id).
func (sys *System) stuffBallot(id int, set []ransub.Entry, desc int) ([]ransub.Entry, int) {
	f := sys.adv
	if f == nil || f.Model() != adversary.Ballotstuff || !f.Hostile(id) {
		return set, desc
	}
	cols := f.Colluders()
	if len(cols) == 0 {
		return set, desc
	}
	out := make([]ransub.Entry, len(set))
	for i := range set {
		c := cols[(i+id)%len(cols)]
		if t, ok := sys.fakeTickets.Get(c); ok {
			out[i] = ransub.Entry{Node: c, Ticket: t}
		} else {
			out[i] = set[i]
		}
	}
	return out, desc*4 + 4
}

// Compromise adds nodes to the fleet's colluder set (scenario action
// CompromiseNodes). No-op without an attached fleet.
func (sys *System) Compromise(nodes []int) {
	if sys.adv == nil {
		return
	}
	sys.adv.Compromise(nodes)
	if sys.adv.Active() {
		switch sys.adv.Model() {
		case adversary.Liar, adversary.Ballotstuff:
			sys.forgeTickets()
		}
	}
}

// Strike activates the fleet (scenario action AdversaryAt). The
// leeching models flip their serving guards; Liar and Ballotstuff
// additionally forge tickets; Cutvertex crashes the heaviest live cut
// vertices within its budget; Joinstorm fires an oscillation burst —
// calling Strike again repeats the burst (and re-crashes recovered
// cut vertices), so a schedule of AdversaryAt actions is a sustained
// attack.
func (sys *System) Strike() {
	f := sys.adv
	if f == nil || f.Model() == adversary.None {
		return
	}
	f.Activate()
	switch f.Model() {
	case adversary.Liar, adversary.Ballotstuff:
		sys.forgeTickets()
	case adversary.Cutvertex:
		victims := adversary.CutSet(sys.tree, sys.Live, f.Budget())
		f.Compromise(victims)
		for _, v := range victims {
			_ = sys.Crash(v)
		}
	case adversary.Joinstorm:
		sys.joinstormBurst()
	}
}

// joinstormBurst crashes every live colluder now and schedules its
// rejoin a seeded dwell later. Colluders iterate in ascending id
// order and all draws come from the fleet stream, so the burst is a
// pure function of (seed, schedule).
func (sys *System) joinstormBurst() {
	f := sys.adv
	for _, id := range f.Colluders() {
		if !sys.Live(id) {
			continue
		}
		if err := sys.Crash(id); err != nil {
			continue
		}
		node := id
		sys.eng.ScheduleAfter(f.Dwell(id), func() { _ = sys.Restart(node) })
	}
}
