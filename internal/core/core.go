// Package core implements Bullet itself (§3 of the paper): an overlay
// mesh layered on top of an arbitrary distribution tree. Each node
// receives a parent stream chosen disjointly by the Figure 5 send
// routine, locates peers holding missing data through RanSub summary
// tickets, installs Bloom filters at those peers, and recovers
// disjoint rows of the sequence matrix (Figure 4) from each of them in
// parallel. Peering relationships are continuously re-evaluated
// (§3.4): wasteful or useless senders and under-benefiting receivers
// are dropped to make room for trial peers.
//
// Per-node and per-peer state is nodeset-backed (see CONTRIBUTING):
// the participant table and dead set are dense node-id-indexed, the
// small per-node peer lists (children, senders, receivers) are slices
// in deterministic order — children in tree order, peers ascending by
// node id — and the per-sequence timestamps (arrival stamps, per-peer
// recently-sent windows) live in pooled SeqWindows. No map iteration
// order can leak into the simulation, and the packet-rate paths do not
// hash or allocate.
package core

import (
	"math"
	"math/rand"

	"bullet/internal/adversary"
	"bullet/internal/bloom"
	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/nodeset"
	"bullet/internal/overlay"
	"bullet/internal/ransub"
	"bullet/internal/sim"
	"bullet/internal/sketch"
	"bullet/internal/transport"
	"bullet/internal/workload"
	"bullet/internal/workset"
)

// Control message types exchanged between Bullet peers.

// peerRequestMsg asks a node discovered via RanSub to become one of the
// requester's senders; it carries the requester's current Bloom filter
// and recovery range.
type peerRequestMsg struct {
	filter    *bloom.Filter
	low, high uint64
}

type peerAcceptMsg struct{}
type peerRejectMsg struct{}

// filterRefreshMsg is the periodic receiver -> sender update: fresh
// Bloom filter, recovery range, the sender's assigned matrix row, and
// the receiver's total received bytes since the last refresh (used by
// sender-side eviction).
type filterRefreshMsg struct {
	filter    *bloom.Filter
	low, high uint64
	mod, rows int
	recvBytes uint64
}

// peerDropMsg tears down a peering. bySender is true when the sender
// side drops one of its receivers, false when a receiver drops one of
// its senders.
type peerDropMsg struct {
	bySender bool
}

const smallMsgSize = 16

// childInfo is the per-child state of the Figure 5 disjoint send
// routine.
type childInfo struct {
	node      int
	flow      *transport.Flow
	sf        float64       // sending factor from RanSub descendants
	lf        float64       // limiting factor
	sentOwned uint64        // packets owned this epoch
	filter    *bloom.Filter // what we know the child already has
}

// senderInfo is receiver-side state about one of our sending peers.
type senderInfo struct {
	node        int
	mod         int
	usefulPkts  uint64
	dupPkts     uint64
	usefulBytes uint64
}

// recvPeerInfo is sender-side state about one of our receiving peers.
// Candidates are kept in two queues: holes are sequences within the
// receiver's advertised (Low, High) range — known gaps, served
// immediately — while fresh are sequences beyond High, served in
// arrival order once they pass the freshness gate.
// seqQueue is a FIFO of sequence numbers consumed from the front by
// index. Consuming via front-reslicing (q = q[1:]) abandons the
// backing array one element at a time, so every rebuild re-grows the
// queue from whatever capacity survived — at sustained stream rates
// that was one of the largest steady-state allocation sources in the
// process. Tracking a head index instead reuses the array forever.
type seqQueue struct {
	buf  []uint64
	head int
}

func (q *seqQueue) reset()        { q.buf = q.buf[:0]; q.head = 0 }
func (q *seqQueue) push(s uint64) { q.buf = append(q.buf, s) }
func (q *seqQueue) len() int      { return len(q.buf) - q.head }
func (q *seqQueue) peek() uint64  { return q.buf[q.head] }

// popFront consumes the front element, rewinding to the array start
// once the queue empties so pushes re-fill it from offset zero.
func (q *seqQueue) popFront() {
	q.head++
	if q.head == len(q.buf) {
		q.reset()
	}
}

type recvPeerInfo struct {
	node      int
	flow      *transport.Flow
	filter    *bloom.Filter
	low, high uint64
	mod, rows int
	holes     seqQueue
	fresh     seqQueue
	sentSince *nodeset.SeqWindow // recently sent: seq -> send time (pooled)
	sentBytes uint64             // bytes sent in current eval window
	recvBytes uint64             // receiver's reported total, last refresh
}

// Node is one Bullet participant.
type Node struct {
	sys    *System
	id     int
	ep     *transport.Endpoint
	parent int
	// children holds per-child disjoint-send state in distribution-tree
	// order (the order tree.Children reported at wiring time, plus
	// runtime additions appended) — the iteration order of the Figure 5
	// routine, which shared transport budgets make behaviourally
	// significant.
	children []*childInfo
	agent    *ransub.Agent
	rng      *rand.Rand

	// Cached tick closures: allocated once at deploy so periodic
	// rescheduling through Engine.ScheduleAfter is allocation-free.
	pumpFn    func()
	refreshFn func()
	evalFn    func()

	// rebuildQueue's ForRange visitor, bound once here with the active
	// receiver passed through rbRf: the per-refresh closure used to be
	// one of the last steady-state allocations on the control path.
	rbFn func(seq uint64) bool
	rbRf *recvPeerInfo

	// candScratch backs maybeRequestPeer's candidate filtering; reused
	// across calls, grown once to the RanSub set size.
	candScratch []ransub.Entry

	ws       *workset.Set
	ticket   *sketch.Ticket
	filter   *bloom.Filter
	arrivals *nodeset.SeqWindow // when each held seq arrived (freshness gate)

	// senders and receivers are kept sorted ascending by peer node id:
	// every walk that used to sort map keys now just ranges the slice,
	// with identical (deterministic) order and no allocation.
	senders   []*senderInfo
	receivers []*recvPeerInfo
	pending   int // node we sent a peerRequest to; -1 if none
	lastSet   []ransub.Entry

	epochPkts     uint64 // new packets this epoch (sizes lf delta)
	lfDelta       float64
	recvWindow    uint64 // all data bytes since last refresh
	totalOwnDrops uint64 // packets no child could own

	// Duplicate attribution diagnostics.
	dupFromParent uint64
	dupFromPeer   uint64
	dupOther      uint64

	// Pump diagnostics: relationships × ticks with nothing eligible to
	// send vs. stopped by the TFRC budget.
	pumpIdle    uint64
	pumpBlocked uint64

	refreshCount uint64 // refresh ticks seen, for rotation cadence
}

// findChild returns the child entry for node id, or nil. Child lists
// are bounded by the tree degree, so a linear scan beats hashing.
func (n *Node) findChild(id int) *childInfo {
	for _, ci := range n.children {
		if ci.node == id {
			return ci
		}
	}
	return nil
}

// findSender returns the sender entry for peer id, or nil.
func (n *Node) findSender(id int) *senderInfo {
	for _, si := range n.senders {
		if si.node == id {
			return si
		}
	}
	return nil
}

// addSender inserts si keeping the list sorted by node id.
func (n *Node) addSender(si *senderInfo) {
	i := len(n.senders)
	for i > 0 && n.senders[i-1].node > si.node {
		i--
	}
	n.senders = append(n.senders, nil)
	copy(n.senders[i+1:], n.senders[i:])
	n.senders[i] = si
}

// removeSender deletes the sender entry for peer id, preserving order,
// and reports whether one was present.
func (n *Node) removeSender(id int) bool {
	for i, si := range n.senders {
		if si.node == id {
			n.senders = append(n.senders[:i], n.senders[i+1:]...)
			return true
		}
	}
	return false
}

// findReceiver returns the receiver entry for peer id, or nil.
func (n *Node) findReceiver(id int) *recvPeerInfo {
	for _, rf := range n.receivers {
		if rf.node == id {
			return rf
		}
	}
	return nil
}

// addReceiver inserts rf keeping the list sorted by node id.
func (n *Node) addReceiver(rf *recvPeerInfo) {
	i := len(n.receivers)
	for i > 0 && n.receivers[i-1].node > rf.node {
		i--
	}
	n.receivers = append(n.receivers, nil)
	copy(n.receivers[i+1:], n.receivers[i:])
	n.receivers[i] = rf
}

// removeReceiver deletes and returns the receiver entry for peer id
// (nil if absent), preserving order.
func (n *Node) removeReceiver(id int) *recvPeerInfo {
	for i, rf := range n.receivers {
		if rf.node == id {
			n.receivers = append(n.receivers[:i], n.receivers[i+1:]...)
			return rf
		}
	}
	return nil
}

// releaseReceiver returns a dropped receiver's pooled state.
func releaseReceiver(rf *recvPeerInfo) {
	if rf.sentSince != nil {
		rf.sentSince.Release()
		rf.sentSince = nil
	}
}

// System is a deployed Bullet overlay.
type System struct {
	cfg   Config
	net   *netem.Network
	eng   *sim.Engine
	tree  *overlay.Tree
	col   *metrics.Collector
	perms *sketch.Permutations
	src   workload.Source

	// nodes is the dense participant table; dead marks crashed nodes
	// whose failure may not yet be repaired (see membership.go).
	// memberEpoch counts membership changes; joinDegree bounds the tree
	// degree used when re-attaching orphans' replacements and late
	// joiners.
	nodes       nodeset.Table[*Node]
	dead        nodeset.Set
	memberEpoch int
	joinDegree  int
	stopped     bool

	// adv, when non-nil, is the attached hostile-peer fleet;
	// fakeTickets holds the forged summary tickets of Liar/Ballotstuff
	// colluders (written only from global-engine context, see
	// adversary.go).
	adv         *adversary.Fleet
	fakeTickets nodeset.Table[*sketch.Ticket]
}

// Deploy instantiates Bullet on every participant of tree, wires
// RanSub, and schedules the source. Measurements go to col.
func Deploy(net *netem.Network, tree *overlay.Tree, cfg Config, col *metrics.Collector) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys := &System{
		cfg:   cfg,
		net:   net,
		eng:   net.Engine(),
		tree:  tree,
		col:   col,
		perms: sketch.NewPermutations(sketch.DefaultEntries, net.Engine().Seed()^0x6d77),
		src:   workload.Default(cfg.Workload, cfg.StreamRateKbps, cfg.PacketSize),
	}
	workload.InstallCompletion(sys.src, col)
	for _, id := range tree.Participants {
		if err := sys.addNode(id); err != nil {
			return nil, err
		}
	}
	if sys.joinDegree = tree.MaxDegree(); sys.joinDegree < 2 {
		sys.joinDegree = 2
	}
	// Kick off RanSub at the root, then the stream.
	root := sys.nodes.At(tree.Root)
	root.agent.Start()
	sys.scheduleSource(root)
	return sys, nil
}

// Tree returns the underlying distribution tree.
func (sys *System) Tree() *overlay.Tree { return sys.tree }

// Collector returns the metrics sink.
func (sys *System) Collector() *metrics.Collector { return sys.col }

// Node returns the participant instance for id and whether one exists
// (crashed nodes included).
func (sys *System) Node(id int) (*Node, bool) { return sys.nodes.Get(id) }

func (sys *System) addNode(id int) error {
	parent := -1
	if p, ok := sys.tree.Parent(id); ok {
		parent = p
	}
	ep := transport.NewEndpoint(sys.net, id)
	sched := ep.Scheduler()
	kids := sys.tree.Children(id)
	n := &Node{
		sys:      sys,
		id:       id,
		ep:       ep,
		parent:   parent,
		children: make([]*childInfo, 0, len(kids)),
		rng:      sched.RNG(int64(id)*7919 + 0x42756c6c),
		ws:       workset.New(),
		ticket:   sketch.NewTicket(sys.perms),
		filter:   bloom.NewForCapacity(int(sys.cfg.RecoveryWindow), sys.cfg.BloomFPRate),
		arrivals: nodeset.NewSeqWindow(),
		pending:  -1,
		lfDelta:  0.01,
	}
	sys.col.Track(id)
	for _, c := range kids {
		f, err := ep.OpenFlow(c, sys.cfg.PacketSize)
		if err != nil {
			return err
		}
		f.TraceEvery = sys.cfg.TraceEvery
		n.children = append(n.children, &childInfo{node: c, flow: f, lf: 1.0,
			filter: bloom.NewForCapacity(4096, 0.01)})
	}
	n.agent = ransub.NewAgent(ep, sys.cfg.RanSub, parent, kids)
	n.agent.TicketFn = func() *sketch.Ticket { return n.ticket }
	n.agent.OnDistribute = n.onDistribute
	ep.OnData(n.onData)
	ep.OnControl(n.onControl)
	// Periodic maintenance, de-phased per node to avoid lockstep.
	n.pumpFn = n.pumpTick
	n.refreshFn = n.refreshTick
	n.evalFn = n.evalTick
	n.rbFn = n.rebuildVisit
	// Relative scheduling: at deploy (virtual time zero) this is
	// identical to absolute, and it lets addNode serve late joiners.
	jitter := sim.Duration(n.rng.Int63n(int64(sys.cfg.FilterRefresh)))
	sched.ScheduleAfter(sys.cfg.FilterRefresh+jitter, n.refreshFn)
	sched.ScheduleAfter(sys.cfg.EvalInterval+jitter, n.evalFn)
	sched.ScheduleAfter(sys.cfg.PumpInterval+jitter%sys.cfg.PumpInterval, n.pumpFn)
	if sys.adv != nil {
		sys.armAdversary(n) // late joiners get the model's hooks too
	}
	sys.nodes.Put(id, n)
	return nil
}

// scheduleSource drives the root's packet generation through the
// shared workload pump: every generated packet enters the Figure 5
// relay path via ingest, whatever source produced it.
func (sys *System) scheduleSource(root *Node) {
	end := sys.cfg.Start + sys.cfg.Duration
	sched := root.ep.Scheduler()
	workload.Pump(sched, sys.src, sys.cfg.Start,
		func() bool { return sched.Now() >= end || root.ep.Failed() || sys.stopped },
		func(seq uint64, size int) { root.ingest(seq, size) })
}

// Workload returns the source driving this deployment's packet
// generation (the configured one, or the default CBR).
func (sys *System) Workload() workload.Source { return sys.src }

// Fail crashes node id (endpoint down, all timers inert).
func (sys *System) Fail(id int) {
	if n, ok := sys.nodes.Get(id); ok {
		n.ep.Fail()
	}
}

// ControlOverheadKbps returns the mean per-node control send rate over
// the elapsed run.
func (sys *System) ControlOverheadKbps() float64 {
	secs := sys.eng.Now().ToSeconds()
	if secs == 0 || sys.nodes.Len() == 0 {
		return 0
	}
	var total uint64
	sys.nodes.Range(func(_ int, n *Node) bool {
		_, out := n.ep.ControlBytes()
		total += out
		return true
	})
	return float64(total) * 8 / 1000 / secs / float64(sys.nodes.Len())
}

// MeanSenders returns the average current sender-list size (mesh
// health diagnostic).
func (sys *System) MeanSenders() float64 {
	if sys.nodes.Len() == 0 {
		return 0
	}
	var total int
	sys.nodes.Range(func(_ int, n *Node) bool {
		total += len(n.senders)
		return true
	})
	return float64(total) / float64(sys.nodes.Len())
}

// ---------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------

// onData handles a data packet from the parent stream or a peer.
func (n *Node) onData(from int, seq uint64, size int) {
	now := n.ep.Scheduler().Now()
	col := n.sys.col
	col.Add(now, n.id, metrics.Raw, size)
	if from == n.parent {
		col.Add(now, n.id, metrics.Parent, size)
	}
	n.recvWindow += uint64(size)
	si := n.findSender(from)
	if n.ws.Contains(seq) {
		col.Add(now, n.id, metrics.Duplicate, size)
		switch {
		case from == n.parent:
			n.dupFromParent++
		case si != nil:
			n.dupFromPeer++
		default:
			n.dupOther++
		}
		if si != nil {
			si.dupPkts++
		}
		return
	}
	if si != nil {
		si.usefulPkts++
		si.usefulBytes += uint64(size)
	}
	col.Add(now, n.id, metrics.Useful, size)
	if s := n.sys.cfg.Sink; s != nil {
		s.Deliver(now, n.id, seq)
	}
	// Every first-copy packet — from the parent stream or recovered
	// from a peer — is relayed through the Figure 5 routine: a parent
	// that recovers a packet serves it to its children (§3.2).
	n.ingest(seq, size)
}

// ingest records a newly received (or source-generated) packet and
// propagates it: disjoint send to children, candidate queues of peers.
func (n *Node) ingest(seq uint64, size int) {
	n.ws.Add(seq)
	n.ticket.Add(seq)
	n.filter.Add(seq)
	n.arrivals.Set(seq, n.ep.Scheduler().Now())
	n.epochPkts++
	n.feedReceivers(seq)
	n.disjointSend(seq, size)
}

// feedReceivers enqueues seq at every receiving peer whose row and
// filter admit it.
func (n *Node) feedReceivers(seq uint64) {
	if n.sys.refusesServe(n.id) {
		return
	}
	for _, rf := range n.receivers {
		if seq < rf.low {
			continue
		}
		if rf.rows > 1 && workset.RowOf(seq, rf.rows) != rf.mod {
			continue
		}
		if rf.filter != nil && rf.filter.Contains(seq) {
			continue
		}
		if seq <= rf.high {
			rf.holes.push(seq)
		} else {
			rf.fresh.push(seq)
		}
	}
}

// disjointSend is the Figure 5 send routine: assign ownership of the
// packet to the child whose sent proportion is farthest below its
// sending factor, then offer the packet to other children according to
// their limiting factors, transferring ownership if the owner's
// transport refuses.
func (n *Node) disjointSend(seq uint64, size int) {
	if len(n.children) == 0 || n.sys.refusesRelay(n.id) {
		return
	}
	if !n.sys.cfg.DisjointSend {
		// Figure 10 ablation: attempt to send everything to everyone.
		for _, ci := range n.children {
			if ci.filter.Contains(seq) {
				continue
			}
			if ci.flow.TrySend(seq, size) {
				ci.filter.Add(seq)
			}
		}
		return
	}
	var total uint64
	for _, ci := range n.children {
		total += ci.sentOwned
	}
	// Owner: maximize sf_i - sent_i/total.
	var owner *childInfo
	best := math.Inf(-1)
	for _, ci := range n.children {
		prop := 0.0
		if total > 0 {
			prop = float64(ci.sentOwned) / float64(total)
		}
		if margin := ci.sf - prop; margin > best {
			best = margin
			owner = ci
		}
	}
	sent := false
	if owner != nil && owner.flow.TrySend(seq, size) {
		owner.sentOwned++
		owner.filter.Add(seq)
		sent = true
	}
	for _, ci := range n.children {
		if ci == owner && sent {
			continue
		}
		if ci.filter.Contains(seq) {
			continue
		}
		should := false
		if !sent {
			should = true // ownership transfer
		} else {
			// Test for available bandwidth: forward the lf_i fraction
			// of the stream deterministically by sequence number.
			interval := uint64(math.Round(1 / ci.lf))
			if interval < 1 {
				interval = 1
			}
			if seq%interval == 0 {
				should = true
			}
		}
		if !should {
			continue
		}
		if ci.flow.TrySend(seq, size) {
			if !sent {
				ci.sentOwned++ // received ownership
			} else {
				ci.lf = math.Min(1, ci.lf+n.lfDelta)
			}
			ci.filter.Add(seq)
			sent = true
		} else if sent {
			ci.lf = math.Max(n.lfDelta, ci.lf-n.lfDelta)
		}
	}
	if !sent {
		// No child could own the packet: it stays recoverable from this
		// node's working set (served to peers on request).
		n.totalOwnDrops++
	}
}

// ---------------------------------------------------------------------
// RanSub epoch handling and peer discovery
// ---------------------------------------------------------------------

func (n *Node) onDistribute(epoch int, set []ransub.Entry) {
	n.lastSet = set
	n.epochHousekeeping()
	n.maybeRequestPeer()
}

// epochHousekeeping updates sending factors from fresh descendant
// counts and resets per-epoch ownership proportions.
func (n *Node) epochHousekeeping() {
	if len(n.children) > 0 {
		total := 0
		for _, ci := range n.children {
			total += n.agent.ChildSubtreeSize(ci.node)
		}
		for _, ci := range n.children {
			if total > 0 {
				ci.sf = float64(n.agent.ChildSubtreeSize(ci.node)) / float64(total)
			} else {
				ci.sf = 1 / float64(len(n.children))
			}
			ci.sentOwned = 0
			ci.filter.Reset()
		}
	}
	// "One more packet per epoch": scale lf adjustments to the epoch's
	// traffic volume.
	if n.epochPkts > 0 {
		n.lfDelta = 1 / math.Max(20, float64(n.epochPkts))
	}
	n.epochPkts = 0
}

// maybeRequestPeer fills a free sender slot with the best candidate of
// the latest RanSub set.
func (n *Node) maybeRequestPeer() {
	if len(n.senders) >= n.sys.cfg.MaxSenders || n.pending >= 0 || len(n.lastSet) == 0 {
		return
	}
	candidates := n.candScratch[:0]
	for _, e := range n.lastSet {
		if e.Node == n.id || e.Node == n.parent {
			continue
		}
		if n.sys.dead.Contains(e.Node) {
			continue // skip peers known to have crashed
		}
		if n.findSender(e.Node) != nil {
			continue
		}
		candidates = append(candidates, e)
	}
	n.candScratch = candidates[:0]
	if len(candidates) == 0 {
		return
	}
	var chosen ransub.Entry
	if n.sys.cfg.MinResemblance {
		best := math.Inf(1)
		for _, e := range candidates {
			r := 1.0
			if e.Ticket != nil {
				r = sketch.Resemblance(n.ticket, e.Ticket)
			}
			if r < best {
				best = r
				chosen = e
			}
		}
	} else {
		chosen = candidates[n.rng.Intn(len(candidates))]
	}
	n.pending = chosen.Node
	msg := &peerRequestMsg{filter: n.filter.Clone(), low: n.ws.Low(), high: n.ws.High()}
	n.ep.SendControl(chosen.Node, msg, n.filter.SizeBytes()+24)
}

// ---------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------

func (n *Node) onControl(from int, payload any, size int) {
	if n.agent.HandleControl(from, payload) {
		return
	}
	switch m := payload.(type) {
	case *peerRequestMsg:
		n.onPeerRequest(from, m)
	case *peerAcceptMsg:
		n.onPeerAccept(from)
	case *peerRejectMsg:
		if n.pending == from {
			n.pending = -1
		}
	case *filterRefreshMsg:
		n.onFilterRefresh(from, m)
	case *peerDropMsg:
		n.onPeerDrop(from, m)
	}
}

// onPeerRequest: a prospective receiver asks us to serve it.
func (n *Node) onPeerRequest(from int, m *peerRequestMsg) {
	if n.findReceiver(from) != nil {
		n.ep.SendControl(from, &peerAcceptMsg{}, smallMsgSize)
		return
	}
	if len(n.receivers) >= n.sys.cfg.MaxReceivers || from == n.id {
		n.ep.SendControl(from, &peerRejectMsg{}, smallMsgSize)
		return
	}
	flow, err := n.ep.OpenFlow(from, n.sys.cfg.PacketSize)
	if err != nil {
		n.ep.SendControl(from, &peerRejectMsg{}, smallMsgSize)
		return
	}
	flow.TraceEvery = n.sys.cfg.TraceEvery
	rf := &recvPeerInfo{
		node: from, flow: flow, filter: m.filter,
		low: m.low, high: m.high, rows: 1, mod: 0,
		sentSince: nodeset.NewSeqWindow(),
	}
	n.addReceiver(rf)
	n.rebuildQueue(rf)
	n.ep.SendControl(from, &peerAcceptMsg{}, smallMsgSize)
}

// onPeerAccept: a candidate agreed to serve us.
func (n *Node) onPeerAccept(from int) {
	if n.pending == from {
		n.pending = -1
	}
	if n.findSender(from) != nil {
		return
	}
	if len(n.senders) >= n.sys.cfg.MaxSenders {
		// Filled up while the request was in flight.
		n.ep.SendControl(from, &peerDropMsg{bySender: false}, smallMsgSize)
		return
	}
	n.addSender(&senderInfo{node: from, mod: -1}) // gets a free row
	n.reassignRows()
	n.sendRefreshes()
}

// reassignRows keeps each sender on a distinct row of the Figure 4
// sequence matrix (s = current sender count) while changing as few
// existing assignments as possible, so membership churn does not
// momentarily overlap every sender's row. The sender list is sorted by
// node id, so conflict resolution order is deterministic.
func (n *Node) reassignRows() {
	s := len(n.senders)
	used := make([]bool, s)
	var conflicted []*senderInfo
	for _, si := range n.senders {
		if si.mod >= 0 && si.mod < s && !used[si.mod] {
			used[si.mod] = true
		} else {
			conflicted = append(conflicted, si)
		}
	}
	next := 0
	for _, si := range conflicted {
		for used[next] {
			next++
		}
		si.mod = next
		used[next] = true
	}
}

// sendRefreshes pushes a fresh filter/range/row assignment to every
// sender.
func (n *Node) sendRefreshes() {
	rows := len(n.senders)
	if !n.sys.cfg.ModRows {
		rows = 1
	}
	for _, si := range n.senders {
		mod := si.mod
		if !n.sys.cfg.ModRows {
			mod = 0
		}
		msg := &filterRefreshMsg{
			filter: n.filter.Clone(),
			low:    n.ws.Low(), high: n.ws.High(),
			mod: mod, rows: rows,
			recvBytes: n.recvWindow,
		}
		n.ep.SendControl(si.node, msg, n.filter.SizeBytes()+32)
	}
}

// onFilterRefresh: one of our receivers updated its filter and range.
func (n *Node) onFilterRefresh(from int, m *filterRefreshMsg) {
	rf := n.findReceiver(from)
	if rf == nil {
		return
	}
	rowChanged := m.mod != rf.mod || m.rows != rf.rows
	rf.filter = m.filter
	rf.low, rf.high = m.low, m.high
	rf.mod, rf.rows = m.mod, m.rows
	rf.recvBytes = m.recvBytes
	// Forget suppressed sends old enough that the receiver's fresh
	// filter has had time to reflect them; keep recent (in-flight)
	// entries so a refresh does not trigger resends. Lost peer packets
	// therefore retry after about one refresh cycle.
	rf.sentSince.DeleteOlder(n.ep.Scheduler().Now() - 2*sim.Second)
	n.rebuildQueue(rf)
	if rowChanged {
		// Row handoff: the filter in this refresh cannot reflect what
		// the previous row holder still has in flight, so serving the
		// inherited holes now would duplicate them. Defer them to the
		// next refresh, whose filter will be conclusive.
		rf.holes.reset()
	}
}

// rebuildQueue rescans the working set for packets the receiver is
// missing in its row and range.
func (n *Node) rebuildQueue(rf *recvPeerInfo) {
	rf.holes.reset()
	rf.fresh.reset()
	n.rbRf = rf
	n.ws.ForRange(rf.low, n.ws.High(), n.rbFn)
	n.rbRf = nil
}

// rebuildVisit is rebuildQueue's per-seq visitor, reached through the
// pre-bound n.rbFn with the receiver under scan in n.rbRf.
func (n *Node) rebuildVisit(seq uint64) bool {
	rf := n.rbRf
	if rf.rows > 1 && workset.RowOf(seq, rf.rows) != rf.mod {
		return true
	}
	if rf.filter != nil && rf.filter.Contains(seq) {
		return true
	}
	if rf.sentSince.Contains(seq) {
		return true
	}
	if seq <= rf.high {
		rf.holes.push(seq)
	} else {
		rf.fresh.push(seq)
	}
	return true
}

// onPeerDrop tears down one side of a peering.
func (n *Node) onPeerDrop(from int, m *peerDropMsg) {
	if m.bySender {
		// Our sender dropped us.
		if n.removeSender(from) {
			n.reassignRows()
			n.sendRefreshes()
		}
		return
	}
	// Our receiver dropped us.
	if rf := n.removeReceiver(from); rf != nil {
		rf.flow.Close()
		releaseReceiver(rf)
	}
}

// ---------------------------------------------------------------------
// Periodic maintenance
// ---------------------------------------------------------------------

// pumpTick drains each receiver's candidate queue within the flow's
// TFRC budget. Receivers are walked in ascending peer id order (the
// list is maintained sorted): shared emulated resources (link queues,
// budgets) make iteration order behaviourally significant, so runs are
// a pure function of (config, seed).
func (n *Node) pumpTick() {
	if n.ep.Failed() {
		return
	}
	if !n.sys.refusesServe(n.id) {
		for _, rf := range n.receivers {
			n.pumpReceiver(rf)
		}
	}
	n.ep.Scheduler().ScheduleAfter(n.sys.cfg.PumpInterval, n.pumpFn)
}

func (n *Node) pumpReceiver(rf *recvPeerInfo) {
	if rf.holes.len() == 0 && rf.fresh.len() == 0 {
		n.pumpIdle++
	}
	// Known holes first: the receiver has told us it lacks these.
	if !n.drainQueue(rf, &rf.holes, false) {
		n.pumpBlocked++
		return
	}
	// Then fresh data, in arrival order, behind the freshness gate.
	if !n.drainQueue(rf, &rf.fresh, true) {
		n.pumpBlocked++
	}
}

// drainQueue serves candidates from q within the flow budget. It
// returns false when the budget ran out.
func (n *Node) drainQueue(rf *recvPeerInfo, q *seqQueue, gated bool) bool {
	size := n.sys.cfg.PacketSize
	now := n.ep.Scheduler().Now()
	for q.len() > 0 {
		seq := q.peek()
		if !n.ws.Held(seq) {
			q.popFront()
			continue
		}
		// Freshness gate: packets beyond the receiver's advertised High
		// are served only once the parent stream has had its chance.
		// The fresh queue is in arrival order, so the tail is fresher.
		if gated {
			arrived, _ := n.arrivals.Get(seq)
			if now-arrived < n.sys.cfg.FreshnessDelay {
				return true
			}
		}
		if rf.sentSince.Contains(seq) {
			q.popFront()
			continue
		}
		if rf.filter != nil && rf.filter.Contains(seq) {
			q.popFront()
			continue
		}
		if !rf.flow.TrySend(seq, size) {
			return false // out of budget; keep the queue
		}
		q.popFront()
		rf.sentSince.Set(seq, now)
		rf.sentBytes += uint64(size)
	}
	return true
}

// rotateRows advances every sender's matrix row by one (Figure 4-b:
// "the receiver requests different rows from senders" as the range
// advances). Rotation keeps rows disjoint at any instant while letting
// holes left by a weak or poorly-stocked sender be covered by a
// different sender in the next cycle — without it, a node's coverage
// of row i could never exceed its single row-i sender's coverage.
func (n *Node) rotateRows() {
	s := len(n.senders)
	if s <= 1 {
		return
	}
	for _, si := range n.senders {
		si.mod = (si.mod + 1) % s
	}
}

// refreshTick slides the recovery window, rebuilds the filter and
// ticket, rotates row assignments, and updates all senders.
func (n *Node) refreshTick() {
	if n.ep.Failed() {
		return
	}
	n.slideWindow()
	n.refreshCount++
	// Rotate on alternate refreshes: often enough that holes left by a
	// weak sender reach a different sender well within the recovery
	// window, rare enough that in-flight packets from the previous
	// assignment seldom collide with the new one.
	if n.sys.cfg.ModRows && n.refreshCount%2 == 0 {
		n.rotateRows()
	}
	n.sendRefreshes()
	n.recvWindow = 0
	n.ep.Scheduler().ScheduleAfter(n.sys.cfg.FilterRefresh, n.refreshFn)
}

// slideWindow trims the working set to the recovery window and
// rebuilds the Bloom filter and summary ticket over the survivors.
func (n *Node) slideWindow() {
	if n.ws.Empty() {
		return
	}
	hi := n.ws.High()
	if hi > n.sys.cfg.RecoveryWindow {
		n.ws.TrimBelow(hi - n.sys.cfg.RecoveryWindow)
		n.arrivals.DeleteBelow(n.ws.Low())
	}
	n.filter.Reset()
	n.ticket.Reset()
	n.ws.ForRange(n.ws.Low(), hi, func(seq uint64) bool {
		n.filter.Add(seq)
		n.ticket.Add(seq)
		return true
	})
}

// evalTick is §3.4: re-evaluate senders (drop wasteful or least useful)
// and receivers (drop the one benefiting least).
func (n *Node) evalTick() {
	if n.ep.Failed() {
		return
	}
	if n.sys.cfg.Eviction {
		n.evalSenders()
		n.evalReceivers()
	}
	n.ep.Scheduler().ScheduleAfter(n.sys.cfg.EvalInterval, n.evalFn)
}

const minEvalSample = 20 // packets before a sender can be judged

func (n *Node) evalSenders() {
	if len(n.senders) == 0 {
		return
	}
	var drop *senderInfo
	// First: any sender above the duplicate threshold (ties broken by
	// node id for determinism — the list is sorted ascending).
	for _, si := range n.senders {
		total := si.usefulPkts + si.dupPkts
		if total >= minEvalSample &&
			float64(si.dupPkts)/float64(total) > n.sys.cfg.DuplicateThreshold {
			if drop == nil || si.dupPkts > drop.dupPkts {
				drop = si
			}
		}
	}
	// Otherwise, when the list is full, the least useful sender makes
	// room for a trial slot.
	if drop == nil && len(n.senders) >= n.sys.cfg.MaxSenders {
		for _, si := range n.senders {
			if drop == nil || si.usefulBytes < drop.usefulBytes {
				drop = si
			}
		}
	}
	if drop != nil {
		n.removeSender(drop.node)
		n.ep.SendControl(drop.node, &peerDropMsg{bySender: false}, smallMsgSize)
		n.reassignRows()
		n.sendRefreshes()
	}
	for _, si := range n.senders {
		si.usefulPkts, si.dupPkts, si.usefulBytes = 0, 0, 0
	}
	// A freed slot is refilled from the most recent RanSub set.
	n.maybeRequestPeer()
}

func (n *Node) evalReceivers() {
	if len(n.receivers) < n.sys.cfg.MaxReceivers {
		for _, rf := range n.receivers {
			rf.sentBytes = 0
		}
		return
	}
	// Drop the receiver acquiring the least portion of its bandwidth
	// through us (ties broken by node id for determinism — the list is
	// sorted ascending).
	var drop *recvPeerInfo
	worst := math.Inf(1)
	for _, rf := range n.receivers {
		portion := float64(rf.sentBytes) / math.Max(1, float64(rf.recvBytes))
		if portion < worst {
			worst = portion
			drop = rf
		}
	}
	if drop != nil {
		drop.flow.Close()
		n.removeReceiver(drop.node)
		releaseReceiver(drop)
		n.ep.SendControl(drop.node, &peerDropMsg{bySender: true}, smallMsgSize)
	}
	for _, rf := range n.receivers {
		rf.sentBytes = 0
	}
}
