package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// mkNode builds a bare node with the given sender IDs and mods, for
// unit-testing row assignment logic without a network. Senders are
// inserted via addSender so the list ordering invariant (ascending by
// node id) holds, whatever order the map yields.
func mkNode(mods map[int]int) *Node {
	n := &Node{}
	ids := make([]int, 0, len(mods))
	for id := range mods {
		ids = append(ids, id)
	}
	// Insert in reverse sorted order to exercise the sorted insert.
	sort.Sort(sort.Reverse(sort.IntSlice(ids)))
	for _, id := range ids {
		n.addSender(&senderInfo{node: id, mod: mods[id]})
	}
	return n
}

func assertPermutation(t *testing.T, n *Node) {
	t.Helper()
	s := len(n.senders)
	seen := make(map[int]bool)
	prev := -1
	for _, si := range n.senders {
		if si.node <= prev {
			t.Fatalf("sender list not sorted: %d after %d", si.node, prev)
		}
		prev = si.node
		if si.mod < 0 || si.mod >= s {
			t.Fatalf("sender %d mod %d out of [0,%d)", si.node, si.mod, s)
		}
		if seen[si.mod] {
			t.Fatalf("duplicate mod %d", si.mod)
		}
		seen[si.mod] = true
	}
}

func TestReassignRowsFromScratch(t *testing.T) {
	n := mkNode(map[int]int{10: -1, 20: -1, 30: -1})
	n.reassignRows()
	assertPermutation(t, n)
}

func TestReassignRowsStability(t *testing.T) {
	// Existing valid assignments must be preserved; only the new
	// sender (mod -1) gets a row.
	n := mkNode(map[int]int{10: 0, 20: 2, 30: 1, 40: -1})
	n.reassignRows()
	assertPermutation(t, n)
	if n.findSender(10).mod != 0 || n.findSender(20).mod != 2 || n.findSender(30).mod != 1 {
		t.Fatalf("stable mods changed: %v %v %v",
			n.findSender(10).mod, n.findSender(20).mod, n.findSender(30).mod)
	}
	if n.findSender(40).mod != 3 {
		t.Fatalf("new sender got mod %d, want 3", n.findSender(40).mod)
	}
}

func TestReassignRowsAfterShrink(t *testing.T) {
	// Dropping the sender with mod 0 from {0,1,2} leaves mods {1,2}
	// over a 2-row space; exactly one sender must be remapped.
	n := mkNode(map[int]int{20: 1, 30: 2})
	n.reassignRows()
	assertPermutation(t, n)
	// The sender whose mod was in range (1) must be untouched.
	if n.findSender(20).mod != 1 {
		t.Fatalf("in-range mod changed to %d", n.findSender(20).mod)
	}
	if n.findSender(30).mod != 0 {
		t.Fatalf("out-of-range sender remapped to %d, want 0", n.findSender(30).mod)
	}
}

// Property: reassignRows always yields a permutation of 0..s-1 and
// never changes an assignment that was already valid and unconflicted
// (lowest-id wins conflicts).
func TestReassignRowsProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		n := &Node{}
		for i, m := range raw {
			n.addSender(&senderInfo{node: 100 + i, mod: int(m % 16)})
		}
		n.reassignRows()
		s := len(n.senders)
		seen := make(map[int]bool)
		for _, si := range n.senders {
			if si.mod < 0 || si.mod >= s || seen[si.mod] {
				return false
			}
			seen[si.mod] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestRotateRowsPreservesPermutation(t *testing.T) {
	n := mkNode(map[int]int{10: 0, 20: 1, 30: 2, 40: 3})
	before := map[int]int{}
	for _, si := range n.senders {
		before[si.node] = si.mod
	}
	n.rotateRows()
	assertPermutation(t, n)
	for _, si := range n.senders {
		if si.mod != (before[si.node]+1)%4 {
			t.Fatalf("sender %d rotated %d -> %d", si.node, before[si.node], si.mod)
		}
	}
}

func TestRotateRowsSingleSenderNoop(t *testing.T) {
	n := mkNode(map[int]int{10: 0})
	n.rotateRows()
	if n.findSender(10).mod != 0 {
		t.Fatal("single sender rotated")
	}
}

// The sorted-insert/find/remove helpers back every peer-list operation;
// pin their invariants directly.
func TestSenderListHelpers(t *testing.T) {
	n := &Node{}
	for _, id := range []int{5, 1, 9, 3, 7} {
		n.addSender(&senderInfo{node: id})
	}
	want := []int{1, 3, 5, 7, 9}
	for i, si := range n.senders {
		if si.node != want[i] {
			t.Fatalf("senders[%d]=%d want %d", i, si.node, want[i])
		}
	}
	if n.findSender(3) == nil || n.findSender(4) != nil {
		t.Fatal("findSender broken")
	}
	if !n.removeSender(5) || n.removeSender(5) {
		t.Fatal("removeSender broken")
	}
	if len(n.senders) != 4 || n.findSender(5) != nil {
		t.Fatal("removal left stale state")
	}
	for i, si := range n.senders {
		if si.node != []int{1, 3, 7, 9}[i] {
			t.Fatalf("order broken after removal: %d at %d", si.node, i)
		}
	}
}
