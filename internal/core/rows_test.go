package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mkNode builds a bare node with the given sender IDs and mods, for
// unit-testing row assignment logic without a network.
func mkNode(mods map[int]int) *Node {
	n := &Node{senders: make(map[int]*senderInfo)}
	for id, mod := range mods {
		n.senders[id] = &senderInfo{node: id, mod: mod}
	}
	return n
}

func assertPermutation(t *testing.T, n *Node) {
	t.Helper()
	s := len(n.senders)
	seen := make(map[int]bool)
	for id, si := range n.senders {
		if si.mod < 0 || si.mod >= s {
			t.Fatalf("sender %d mod %d out of [0,%d)", id, si.mod, s)
		}
		if seen[si.mod] {
			t.Fatalf("duplicate mod %d", si.mod)
		}
		seen[si.mod] = true
	}
}

func TestReassignRowsFromScratch(t *testing.T) {
	n := mkNode(map[int]int{10: -1, 20: -1, 30: -1})
	n.reassignRows()
	assertPermutation(t, n)
}

func TestReassignRowsStability(t *testing.T) {
	// Existing valid assignments must be preserved; only the new
	// sender (mod -1) gets a row.
	n := mkNode(map[int]int{10: 0, 20: 2, 30: 1, 40: -1})
	n.reassignRows()
	assertPermutation(t, n)
	if n.senders[10].mod != 0 || n.senders[20].mod != 2 || n.senders[30].mod != 1 {
		t.Fatalf("stable mods changed: %v %v %v",
			n.senders[10].mod, n.senders[20].mod, n.senders[30].mod)
	}
	if n.senders[40].mod != 3 {
		t.Fatalf("new sender got mod %d, want 3", n.senders[40].mod)
	}
}

func TestReassignRowsAfterShrink(t *testing.T) {
	// Dropping the sender with mod 0 from {0,1,2} leaves mods {1,2}
	// over a 2-row space; exactly one sender must be remapped.
	n := mkNode(map[int]int{20: 1, 30: 2})
	n.reassignRows()
	assertPermutation(t, n)
	// The sender whose mod was in range (1) must be untouched.
	if n.senders[20].mod != 1 {
		t.Fatalf("in-range mod changed to %d", n.senders[20].mod)
	}
	if n.senders[30].mod != 0 {
		t.Fatalf("out-of-range sender remapped to %d, want 0", n.senders[30].mod)
	}
}

// Property: reassignRows always yields a permutation of 0..s-1 and
// never changes an assignment that was already valid and unconflicted
// (lowest-id wins conflicts).
func TestReassignRowsProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		n := &Node{senders: make(map[int]*senderInfo)}
		for i, m := range raw {
			n.senders[100+i] = &senderInfo{node: 100 + i, mod: int(m % 16)}
		}
		n.reassignRows()
		s := len(n.senders)
		seen := make(map[int]bool)
		for _, si := range n.senders {
			if si.mod < 0 || si.mod >= s || seen[si.mod] {
				return false
			}
			seen[si.mod] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestRotateRowsPreservesPermutation(t *testing.T) {
	n := mkNode(map[int]int{10: 0, 20: 1, 30: 2, 40: 3})
	before := map[int]int{}
	for id, si := range n.senders {
		before[id] = si.mod
	}
	n.rotateRows()
	assertPermutation(t, n)
	for id, si := range n.senders {
		if si.mod != (before[id]+1)%4 {
			t.Fatalf("sender %d rotated %d -> %d", id, before[id], si.mod)
		}
	}
}

func TestRotateRowsSingleSenderNoop(t *testing.T) {
	n := mkNode(map[int]int{10: 0})
	n.rotateRows()
	if n.senders[10].mod != 0 {
		t.Fatal("single sender rotated")
	}
}
