package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/topology"
)

// TestFDSweep is a diagnostic for the freshness gate on the medium
// profile (the fig7 configuration); run with -run FDSweep -v.
func TestFDSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	for _, fd := range []sim.Duration{6 * sim.Second, 11 * sim.Second, 16 * sim.Second} {
		c := topology.Sized(1500, 40, topology.MediumBandwidth)
		c.Seed = 3
		g, err := topology.Generate(c)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine(3)
		rt := topology.NewRouter(g)
		net := netem.New(eng, g, rt, netem.Config{})
		tree, err := overlay.Random(g.Clients, g.Clients[0], 5, rand.New(rand.NewSource(3^0x74726565)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(600)
		cfg.Start = 20 * sim.Second
		cfg.Duration = 130 * sim.Second
		cfg.MaxSenders, cfg.MaxReceivers = 4, 4
		cfg.FreshnessDelay = fd
		col := metrics.NewCollector(sim.Second)
		sys, err := Deploy(net, tree, cfg, col)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(150 * sim.Second)
		var dupP, dupS uint64
		sys.nodes.Range(func(_ int, n *Node) bool {
			dupP += n.dupFromParent
			dupS += n.dupFromPeer
			return true
		})
		fmt.Printf("fd=%v useful=%.0f dup=%.3f dupParent=%d dupPeer=%d\n",
			fd.ToSeconds(),
			col.MeanOver(70*sim.Second, 150*sim.Second, metrics.Useful),
			col.DuplicateRatio(), dupP, dupS)
	}
}
