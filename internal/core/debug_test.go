package core

import (
	"fmt"
	"testing"

	"bullet/internal/metrics"
	"bullet/internal/sim"
	"bullet/internal/topology"
)

// TestDebugDump is a diagnostic, not an assertion; run with -run Debug -v.
func TestDebugDump(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	for _, disjoint := range []bool{true, false} {
		w := buildWorld(t, 5, 40, topology.MediumBandwidth, topology.NoLoss)
		cfg := DefaultConfig(600)
		cfg.MaxSenders = 4
		cfg.MaxReceivers = 4
		cfg.Start = 20 * sim.Second
		cfg.Duration = 160 * sim.Second
		cfg.DisjointSend = disjoint
		col := metrics.NewCollector(sim.Second)
		sys, err := Deploy(w.net, w.tree, cfg, col)
		if err != nil {
			t.Fatal(err)
		}
		w.eng.Run(180 * sim.Second)
		useful := col.MeanOver(80*sim.Second, 180*sim.Second, metrics.Useful)
		parent := col.MeanOver(80*sim.Second, 180*sim.Second, metrics.Parent)
		raw := col.MeanOver(80*sim.Second, 180*sim.Second, metrics.Raw)
		var drops, q, sentBytes uint64
		var dupP, dupS, dupO uint64
		var nsend, nrecv int
		sys.nodes.Range(func(_ int, n *Node) bool {
			drops += n.totalOwnDrops
			dupP += n.dupFromParent
			dupS += n.dupFromPeer
			dupO += n.dupOther
			nsend += len(n.senders)
			nrecv += len(n.receivers)
			for _, rf := range n.receivers {
				q += uint64(rf.holes.len() + rf.fresh.len())
				sentBytes += rf.sentBytes
			}
			return true
		})
		st := w.net.Stats()
		var peerRate, childRate float64
		var npeer, nchild int
		sys.nodes.Range(func(_ int, n *Node) bool {
			for _, rf := range n.receivers {
				peerRate += rf.flow.Rate() * 8 / 1000
				npeer++
			}
			for _, ci := range n.children {
				childRate += ci.flow.Rate() * 8 / 1000
				nchild++
			}
			return true
		})
		fmt.Printf("disjoint=%v useful=%.0f parent=%.0f raw=%.0f dup=%.3f senders=%.1f recvs=%.1f ownDrops=%d queued=%d congDrops=%d lossDrops=%d ctrl=%.1fKbps peerRate=%.0f childRate=%.0f\n",
			disjoint, useful, parent, raw, col.DuplicateRatio(),
			float64(nsend)/40, float64(nrecv)/40, drops, q,
			st.CongestionDrops, st.RandomLossDrops, sys.ControlOverheadKbps(),
			peerRate/float64(max(1, npeer)), childRate/float64(max(1, nchild)))
		// Flow-rate histogram and busiest-link utilization.
		buckets := map[string]int{}
		slowStart := 0
		sys.nodes.Range(func(_ int, n *Node) bool {
			for _, rf := range n.receivers {
				kbps := rf.flow.Rate() * 8 / 1000
				switch {
				case kbps < 10:
					buckets["<10"]++
				case kbps < 30:
					buckets["10-30"]++
				case kbps < 100:
					buckets["30-100"]++
				default:
					buckets[">=100"]++
				}
				if rf.flow.RTT() > 0.3 {
					slowStart++ // mislabeled: counts high-RTT flows
				}
			}
			return true
		})
		var worstUtil float64
		for i := range w.g.Links {
			ab, ba := w.net.LinkUtilization(i)
			u := float64(ab+ba) * 8 / 1000 / 160 / (2 * w.g.Links[i].Kbps())
			if u > worstUtil {
				worstUtil = u
			}
		}
		var idle, blocked uint64
		var cov float64
		sys.nodes.Range(func(_ int, n *Node) bool {
			idle += n.pumpIdle
			blocked += n.pumpBlocked
			span := n.ws.High() - n.ws.Low() + 1
			if span > 0 {
				cov += float64(n.ws.Len()) / float64(span)
			}
			return true
		})
		fmt.Printf("  flows: %v highRTT=%d worstLinkUtil=%.2f dupParent=%d dupPeer=%d dupOther=%d pumpIdle=%d pumpBlocked=%d meanCoverage=%.2f\n",
			buckets, slowStart, worstUtil, dupP, dupS, dupO, idle, blocked, cov/40)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
