package core

import (
	"fmt"

	"bullet/internal/ransub"
	"bullet/internal/sim"
	"bullet/internal/workload"
)

// Config controls a Bullet deployment. Defaults mirror the paper's
// implementation (§3): 10-entry RanSub sets every 5 s, at most 10
// senders and 10 receivers per node, 5 s Bloom filter refresh, peer
// evaluation every few RanSub epochs, 50% duplicate eviction threshold.
type Config struct {
	// StreamRateKbps is the source's target streaming rate.
	StreamRateKbps float64
	// PacketSize is the application payload per packet (bytes).
	PacketSize int
	// Workload overrides the default constant-bit-rate source: packet
	// generation (sequence, size, emission time) is delegated to it.
	// nil streams CBR at StreamRateKbps/PacketSize — byte-identical to
	// the pre-workload-layer pump.
	Workload workload.Source
	// Sink, when set, observes every per-node first-copy delivery
	// (duplicates never reach it).
	Sink workload.Sink
	// Start is when the source begins streaming (RanSub runs from 0).
	Start sim.Time
	// Duration is how long the source streams.
	Duration sim.Duration

	// MaxSenders bounds the peers a node receives from (default 10).
	MaxSenders int
	// MaxReceivers bounds the peers a node sends to (default 10).
	MaxReceivers int
	// RanSub configures the underlying random-subset service.
	RanSub ransub.Config
	// FilterRefresh is how often receivers re-send Bloom filters and
	// ranges to their senders (paper default 5 s).
	FilterRefresh sim.Duration
	// EvalInterval is how often peering relationships are re-evaluated
	// ("every few RanSub epochs"; default 2 epochs).
	EvalInterval sim.Duration
	// DuplicateThreshold is the duplicate fraction above which a
	// sender is dropped (default 0.5).
	DuplicateThreshold float64
	// RecoveryWindow is how many recent sequence numbers a node keeps
	// recoverable (working set + Bloom filter population bound).
	RecoveryWindow uint64
	// BloomFPRate is the target false-positive rate for the working
	// set filter sized at RecoveryWindow elements.
	BloomFPRate float64
	// PumpInterval is how often per-peer send queues are drained.
	PumpInterval sim.Duration
	// FreshnessDelay gates serving packets *beyond* a receiver's
	// advertised High: a peer serves such fresh packets only after
	// holding them this long, giving the receiver's parent stream
	// first chance and avoiding duplicate races. Holes within the
	// advertised (Low, High) range are served immediately. Defaults to
	// FilterRefresh + 1s.
	FreshnessDelay sim.Duration
	// TraceEvery samples every Nth stream sequence for link-stress
	// accounting (0 disables).
	TraceEvery uint64

	// Ablation switches (all true in real Bullet).

	// DisjointSend enables the Figure 5 disjoint data send routine;
	// when false, parents try to send every packet to every child
	// (the Figure 10 "non-disjoint" ablation).
	DisjointSend bool
	// ModRows enables the Figure 4 sequence-matrix row partitioning
	// across senders; when false, senders serve the whole range.
	ModRows bool
	// MinResemblance enables choosing the RanSub candidate with the
	// lowest summary-ticket resemblance; when false, a uniformly
	// random candidate is chosen.
	MinResemblance bool
	// Eviction enables §3.4 sender/receiver re-evaluation.
	Eviction bool
}

// DefaultConfig returns the paper's operating point for a given
// streaming rate.
func DefaultConfig(rateKbps float64) Config {
	return Config{
		StreamRateKbps:     rateKbps,
		PacketSize:         1500,
		Duration:           300 * sim.Second,
		MaxSenders:         10,
		MaxReceivers:       10,
		RanSub:             ransub.DefaultConfig(),
		FilterRefresh:      5 * sim.Second,
		EvalInterval:       10 * sim.Second,
		DuplicateThreshold: 0.5,
		RecoveryWindow:     2000,
		BloomFPRate:        0.03,
		PumpInterval:       10 * sim.Millisecond,
		TraceEvery:         0,
		DisjointSend:       true,
		ModRows:            true,
		MinResemblance:     true,
		Eviction:           true,
	}
}

// Validate fills defaults and rejects impossible settings.
func (c *Config) Validate() error {
	if c.Workload == nil && c.StreamRateKbps <= 0 {
		return fmt.Errorf("core: stream rate %v Kbps", c.StreamRateKbps)
	}
	if c.PacketSize <= 0 {
		c.PacketSize = 1500
	}
	if c.MaxSenders <= 0 {
		c.MaxSenders = 10
	}
	if c.MaxReceivers <= 0 {
		c.MaxReceivers = 10
	}
	if c.FilterRefresh <= 0 {
		c.FilterRefresh = 5 * sim.Second
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 10 * sim.Second
	}
	if c.DuplicateThreshold <= 0 || c.DuplicateThreshold > 1 {
		c.DuplicateThreshold = 0.5
	}
	if c.RecoveryWindow == 0 {
		c.RecoveryWindow = 2000
	}
	if c.BloomFPRate <= 0 || c.BloomFPRate >= 1 {
		c.BloomFPRate = 0.03
	}
	if c.PumpInterval <= 0 {
		c.PumpInterval = 10 * sim.Millisecond
	}
	if c.FreshnessDelay <= 0 {
		c.FreshnessDelay = c.FilterRefresh + sim.Second
	}
	if c.Duration <= 0 {
		return fmt.Errorf("core: duration %v", c.Duration)
	}
	return nil
}
