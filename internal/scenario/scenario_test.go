package scenario

import (
	"testing"

	"bullet/internal/sim"
	"bullet/internal/topology"
)

func testEnv(t *testing.T) (*Env, int) {
	t.Helper()
	b := topology.NewBuilder()
	a := b.AddNode(topology.Stub, 0, 0)
	c := b.AddNode(topology.Stub, 1, 0)
	lid := b.AddLink(a, c, topology.StubStub, 1000, sim.Millisecond, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &Env{Eng: sim.NewEngine(1), G: g}, lid
}

func TestScheduleFiresInTimeOrder(t *testing.T) {
	env, lid := testEnv(t)
	var order []string
	s := New().
		At(20*sim.Second, Func(func(*Env) { order = append(order, "b") })).
		At(10*sim.Second, FailLink(lid), Func(func(*Env) { order = append(order, "a") })).
		At(20*sim.Second, Func(func(*Env) { order = append(order, "c") })).
		At(30*sim.Second, RestoreLink(lid), Func(func(*Env) { order = append(order, "d") }))
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	s.Install(env)

	env.Eng.Run(15 * sim.Second)
	if !env.G.Links[lid].Down {
		t.Fatal("link not down after the 10s event")
	}
	env.Eng.Run(40 * sim.Second)
	if env.G.Links[lid].Down {
		t.Fatal("link still down after the 30s event")
	}
	// Same-instant events (b, c) fire in insertion order.
	want := "abcd"
	got := ""
	for _, o := range order {
		got += o
	}
	if got != want {
		t.Errorf("event order %q, want %q", got, want)
	}
}

func TestRampBandwidth(t *testing.T) {
	env, lid := testEnv(t)
	var samples []float64
	s := New().RampBandwidth(lid, 10*sim.Second, 10*sim.Second, 4, 4000, 2000)
	// Sample the capacity just after each ramp step.
	for i := 0; i <= 4; i++ {
		at := 10*sim.Second + sim.Duration(i)*2500*sim.Millisecond + sim.Millisecond
		s.At(at, Func(func(env *Env) { samples = append(samples, env.G.Links[lid].Kbps()) }))
	}
	s.Install(env)
	env.Eng.Run(25 * sim.Second)

	want := []float64{4000, 3500, 3000, 2500, 2000}
	if len(samples) != len(want) {
		t.Fatalf("got %d samples, want %d", len(samples), len(want))
	}
	for i, w := range want {
		if samples[i] != w {
			t.Errorf("step %d: %g Kbps, want %g", i, samples[i], w)
		}
	}
}

func TestOscillate(t *testing.T) {
	env, lid := testEnv(t)
	var states []bool
	s := New().Oscillate(10*sim.Second, 10*sim.Second, 3, FailLink(lid), RestoreLink(lid))
	for i := 0; i < 6; i++ {
		at := 10*sim.Second + sim.Duration(i)*5*sim.Second + sim.Second
		s.At(at, Func(func(env *Env) { states = append(states, env.G.Links[lid].Down) }))
	}
	s.Install(env)
	env.Eng.Run(60 * sim.Second)

	want := []bool{true, false, true, false, true, false}
	if len(states) != len(want) {
		t.Fatalf("got %d states, want %d", len(states), len(want))
	}
	for i, w := range want {
		if states[i] != w {
			t.Errorf("half-period %d: down=%v, want %v", i, states[i], w)
		}
	}
}

func TestEmptyScheduleInstallsNothing(t *testing.T) {
	env, _ := testEnv(t)
	New().Install(env)
	if p := env.Eng.Pending(); p != 0 {
		t.Fatalf("empty schedule queued %d events", p)
	}
}

// Installing the same schedule into two independent worlds applies
// identical mutations to each: the intended pattern for comparing
// protocols under the same dynamics.
func TestInstallIntoTwoWorlds(t *testing.T) {
	env1, lid := testEnv(t)
	env2, _ := testEnv(t)
	s := New().At(5*sim.Second, FailLink(lid), SetLoss(lid, 0.5))
	s.Install(env1)
	s.Install(env2)
	env1.Eng.Run(10 * sim.Second)
	env2.Eng.Run(10 * sim.Second)
	for i, env := range []*Env{env1, env2} {
		l := &env.G.Links[lid]
		if !l.Down || l.Loss != 0.5 {
			t.Errorf("world %d: down=%v loss=%g, want true/0.5", i+1, l.Down, l.Loss)
		}
	}
}

// fakeMembership records churn operations for assertion.
type fakeMembership struct {
	crashes, restarts, joins []int
}

func (f *fakeMembership) Crash(n int) error   { f.crashes = append(f.crashes, n); return nil }
func (f *fakeMembership) Restart(n int) error { f.restarts = append(f.restarts, n); return nil }
func (f *fakeMembership) Join(n int) error    { f.joins = append(f.joins, n); return nil }

func TestMembershipActions(t *testing.T) {
	env, _ := testEnv(t)
	m := &fakeMembership{}
	env.M = m
	New().
		At(10*sim.Second, CrashNode(7)).
		At(20*sim.Second, ChurnNodes(1, 2, 3)).
		At(30*sim.Second, RestartNode(7)).
		At(40*sim.Second, JoinNode(9)).
		Install(env)
	env.Eng.Run(60 * sim.Second)
	if len(m.crashes) != 4 || m.crashes[0] != 7 || m.crashes[1] != 1 || m.crashes[3] != 3 {
		t.Fatalf("crashes %v, want [7 1 2 3]", m.crashes)
	}
	if len(m.restarts) != 1 || m.restarts[0] != 7 {
		t.Fatalf("restarts %v, want [7]", m.restarts)
	}
	if len(m.joins) != 1 || m.joins[0] != 9 {
		t.Fatalf("joins %v, want [9]", m.joins)
	}
}

// Without a Membership in the Env, membership actions are no-ops: the
// schedule installs and runs without panicking.
func TestMembershipActionsNilM(t *testing.T) {
	env, lid := testEnv(t)
	New().
		At(5*sim.Second, CrashNode(7), FailLink(lid)).
		At(10*sim.Second, RestartNode(7), JoinNode(8), ChurnNodes(1, 2)).
		Install(env)
	env.Eng.Run(20 * sim.Second)
	if !env.G.Links[lid].Down {
		t.Fatal("link action did not fire alongside nil-M membership actions")
	}
}

func TestChurnBuilder(t *testing.T) {
	env, _ := testEnv(t)
	m := &fakeMembership{}
	env.M = m
	var times []sim.Time
	s := New()
	s.Churn(10*sim.Second, 5*sim.Second, 7*sim.Second, 1, 2, 3)
	if s.Len() != 6 {
		t.Fatalf("churn of 3 nodes scheduled %d events, want 6", s.Len())
	}
	s.At(60*sim.Second, Func(func(env *Env) { times = append(times, env.Eng.Now()) }))
	s.Install(env)
	env.Eng.Run(70 * sim.Second)
	if len(m.crashes) != 3 || len(m.restarts) != 3 {
		t.Fatalf("crashes %v restarts %v, want 3 each", m.crashes, m.restarts)
	}
	// Order: node i crashes at 10+5i and restarts 7s later.
	want := []int{1, 2, 3}
	for i, n := range want {
		if m.crashes[i] != n || m.restarts[i] != n {
			t.Fatalf("churn order: crashes %v restarts %v", m.crashes, m.restarts)
		}
	}
	// downFor <= 0: no restarts scheduled.
	s2 := New().Churn(0, sim.Second, 0, 4, 5)
	if s2.Len() != 2 {
		t.Fatalf("no-restart churn scheduled %d events, want 2", s2.Len())
	}
}

// fakeAdversary records adversary operations for assertion.
type fakeAdversary struct {
	compromised []int
	strikes     int
	log         *[]string
}

func (f *fakeAdversary) Compromise(nodes []int) {
	f.compromised = append(f.compromised, nodes...)
	if f.log != nil {
		*f.log = append(*f.log, "compromise")
	}
}

func (f *fakeAdversary) Strike() {
	f.strikes++
	if f.log != nil {
		*f.log = append(*f.log, "strike")
	}
}

func TestAdversaryActions(t *testing.T) {
	env, _ := testEnv(t)
	a := &fakeAdversary{}
	env.A = a
	nodes := []int{4, 5}
	New().
		At(10*sim.Second, CompromiseNodes(nodes...)).
		At(20*sim.Second, AdversaryAt()).
		At(40*sim.Second, AdversaryAt()).
		Install(env)
	nodes[0] = 99 // CompromiseNodes must have copied its argument
	env.Eng.Run(50 * sim.Second)
	if want := []int{4, 5}; len(a.compromised) != 2 || a.compromised[0] != want[0] || a.compromised[1] != want[1] {
		t.Fatalf("compromised %v, want %v", a.compromised, want)
	}
	if a.strikes != 2 {
		t.Fatalf("strikes = %d, want 2", a.strikes)
	}
}

func TestAdversaryActionsNilA(t *testing.T) {
	env, _ := testEnv(t)
	New().
		At(10*sim.Second, CompromiseNodes(1), AdversaryAt()).
		Install(env)
	env.Eng.Run(20 * sim.Second) // must not panic with A == nil
}

// TestSameInstantActionsFireInInsertionOrder pins the tie-break that
// makes mixed schedules deterministic: when adversary, churn, and
// link actions share one timestamp, they fire in the order they were
// added to the schedule — across events and within one event's action
// batch — regardless of action family.
func TestSameInstantActionsFireInInsertionOrder(t *testing.T) {
	env, lid := testEnv(t)
	var log []string
	m := &fakeMembership{}
	a := &fakeAdversary{log: &log}
	env.M, env.A = m, a
	mark := func(s string) Action {
		return Func(func(*Env) { log = append(log, s) })
	}
	const at = 25 * sim.Second
	New().
		At(at, CompromiseNodes(3)).
		At(at, CrashNode(3), mark("crash")).
		At(at, AdversaryAt()).
		At(at, FailLink(lid), mark("fail-link")).
		At(at, AdversaryAt()).
		Install(env)
	env.Eng.Run(30 * sim.Second)
	want := []string{"compromise", "crash", "strike", "fail-link", "strike"}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log %v, want %v", log, want)
		}
	}
	if len(m.crashes) != 1 || m.crashes[0] != 3 {
		t.Fatalf("crashes %v, want [3]", m.crashes)
	}
}
