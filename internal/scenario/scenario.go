// Package scenario provides declarative schedules of timed network
// events — link failures and repairs, bandwidth/latency/loss changes,
// partitions, ramps, and periodic oscillations — that replay
// deterministically on the simulation engine.
//
// A Schedule is built up-front from pure data (times and actions), then
// installed once on an engine/graph pair. Because every event is
// scheduled at install time with a fixed virtual timestamp and the
// engine fires same-instant events in scheduling order, a run with a
// scenario remains a pure function of (config, seed, schedule). An
// empty schedule installs nothing and leaves the run byte-identical to
// one without a scenario.
//
//	s := scenario.New().
//	    At(30*sim.Second, scenario.FailLink(lid)).
//	    At(60*sim.Second, scenario.RestoreLink(lid)).
//	    RampBandwidth(other, 80*sim.Second, 20*sim.Second, 10, 4000, 1000)
//	s.Install(&scenario.Env{Eng: eng, G: g})
package scenario

import (
	"sort"

	"bullet/internal/sim"
	"bullet/internal/topology"
)

// Membership is the overlay-churn half of a scenario environment:
// anything that can crash, restart, and admit participants at runtime
// (a deployed protocol system, or a fan-out over several of them).
// Implementations must be deterministic; errors (e.g. crashing an
// already-crashed node) are reported to the caller of the membership
// operation and ignored by scenario actions.
type Membership interface {
	Crash(node int) error
	Restart(node int) error
	Join(node int) error
}

// Adversary is the hostile-peer half of a scenario environment:
// anything that can extend a compromised set and fire an attack (a
// deployed protocol system with an attached adversary fleet, or a
// fan-out over several). Implementations must be deterministic; a
// deployment without a configured adversary treats both as no-ops.
type Adversary interface {
	Compromise(nodes []int)
	Strike()
}

// Env is what actions act upon: the simulation engine that carries
// virtual time, the graph whose link state network actions mutate, and
// (optionally) the deployment membership churn actions act on and the
// adversary fleet attack actions drive. A nil M makes every membership
// action a no-op, and a nil A every adversary action, so link-only
// schedules work unchanged.
type Env struct {
	Eng *sim.Engine
	G   *topology.Graph
	M   Membership
	A   Adversary
}

// Action is one atomic network mutation. Actions must be deterministic:
// they may read and mutate Env state but must not consult wall-clock
// time or unseeded randomness.
type Action func(env *Env)

// FailLink takes the link down (routing avoids it; traversing packets
// are dropped).
func FailLink(link int) Action {
	return func(env *Env) { env.G.FailLink(link) }
}

// RestoreLink brings a failed link back up.
func RestoreLink(link int) Action {
	return func(env *Env) { env.G.RestoreLink(link) }
}

// SetBandwidth sets the link capacity in Kbps (per direction).
// kbps <= 0 is ignored; use FailLink to take a link out of service.
func SetBandwidth(link int, kbps float64) Action {
	return func(env *Env) { env.G.SetBandwidth(link, kbps) }
}

// ScaleBandwidth multiplies the link capacity by factor.
func ScaleBandwidth(link int, factor float64) Action {
	return func(env *Env) { env.G.ScaleBandwidth(link, factor) }
}

// SetLatency sets the link propagation delay.
func SetLatency(link int, d sim.Duration) Action {
	return func(env *Env) { env.G.SetLatency(link, d) }
}

// SetLoss sets the link's independent per-packet loss probability.
func SetLoss(link int, loss float64) Action {
	return func(env *Env) { env.G.SetLoss(link, loss) }
}

// Partition cuts the node set off from the rest of the network by
// failing every crossing link.
func Partition(nodes ...int) Action {
	ns := append([]int(nil), nodes...)
	return func(env *Env) { env.G.Partition(ns) }
}

// Heal restores every link failed by Partition.
func Heal() Action {
	return func(env *Env) { env.G.Heal() }
}

// Func wraps an arbitrary deterministic function as an Action, for
// mutations the stock vocabulary does not cover.
func Func(fn func(env *Env)) Action { return fn }

// CrashNode crashes an overlay participant mid-run (no-op without a
// Membership in the Env). What happens next is protocol-defined:
// Bullet re-parents the orphans and re-installs Bloom filters at live
// peers after its failover delay; the plain streamer's subtree simply
// starves.
func CrashNode(node int) Action {
	return func(env *Env) {
		if env.M != nil {
			_ = env.M.Crash(node)
		}
	}
}

// RestartNode brings a crashed participant back (no-op without a
// Membership in the Env).
func RestartNode(node int) Action {
	return func(env *Env) {
		if env.M != nil {
			_ = env.M.Restart(node)
		}
	}
}

// JoinNode admits a brand-new participant mid-run (no-op without a
// Membership in the Env).
func JoinNode(node int) Action {
	return func(env *Env) {
		if env.M != nil {
			_ = env.M.Join(node)
		}
	}
}

// ChurnNodes crashes the whole node set at one instant — the paper's
// mass-failure workload (e.g. "kill 25% of the overlay mid-stream").
func ChurnNodes(nodes ...int) Action {
	ns := append([]int(nil), nodes...)
	return func(env *Env) {
		if env.M == nil {
			return
		}
		for _, n := range ns {
			_ = env.M.Crash(n)
		}
	}
}

// CompromiseNodes adds the nodes to the adversary's colluder set
// (no-op without an Adversary in the Env). Compromising is silent:
// behavior only turns hostile once AdversaryAt strikes.
func CompromiseNodes(nodes ...int) Action {
	ns := append([]int(nil), nodes...)
	return func(env *Env) {
		if env.A != nil {
			env.A.Compromise(ns)
		}
	}
}

// AdversaryAt fires the configured adversary's strike (no-op without
// an Adversary in the Env). Leeching models flip hostile and stay so;
// for the crash-timing models each strike is one attack wave, so
// scheduling several AdversaryAt actions sustains the assault.
func AdversaryAt() Action {
	return func(env *Env) {
		if env.A != nil {
			env.A.Strike()
		}
	}
}

// event is one scheduled batch of actions.
type event struct {
	at      sim.Time
	seq     int // insertion order; tie-break for same-instant events
	actions []Action
}

// Schedule is an ordered set of timed events. The zero value is not
// usable; construct with New. Builder methods return the schedule for
// chaining and may be called in any order: Install sorts events by
// (time, insertion order).
type Schedule struct {
	events []event
}

// New returns an empty schedule.
func New() *Schedule { return &Schedule{} }

// Len returns the number of scheduled events (an applied ramp or
// oscillation counts each step).
func (s *Schedule) Len() int { return len(s.events) }

// At schedules the actions to run atomically at virtual time t.
func (s *Schedule) At(t sim.Time, actions ...Action) *Schedule {
	s.events = append(s.events, event{at: t, seq: len(s.events), actions: actions})
	return s
}

// Ramp schedules steps+1 events evenly spread over [start, start+dur];
// the i'th event applies fn(i/steps), so frac runs 0..1 inclusive. Use
// it for gradual changes (bandwidth drains, latency creep).
func (s *Schedule) Ramp(start sim.Time, dur sim.Duration, steps int, fn func(frac float64) Action) *Schedule {
	if steps < 1 {
		steps = 1
	}
	for i := 0; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		s.At(start+sim.Duration(float64(dur)*frac), fn(frac))
	}
	return s
}

// RampBandwidth linearly ramps the link's capacity from fromKbps to
// toKbps over [start, start+dur] in the given number of steps. Ramping
// to 0 stops at the last positive step (zero capacity is ignored by
// SetBandwidth); schedule a FailLink to cut the link entirely.
func (s *Schedule) RampBandwidth(link int, start sim.Time, dur sim.Duration, steps int, fromKbps, toKbps float64) *Schedule {
	return s.Ramp(start, dur, steps, func(frac float64) Action {
		return SetBandwidth(link, fromKbps+(toKbps-fromKbps)*frac)
	})
}

// Oscillate alternates between action a (applied at start and every
// full period after) and action b (applied half a period later), for
// the given number of cycles. Use it for flapping links or oscillating
// bottlenecks:
//
//	s.Oscillate(60*sim.Second, 20*sim.Second, 5,
//	    scenario.SetBandwidth(lid, 500), scenario.SetBandwidth(lid, 4000))
func (s *Schedule) Oscillate(start sim.Time, period sim.Duration, cycles int, a, b Action) *Schedule {
	for c := 0; c < cycles; c++ {
		t := start + sim.Duration(c)*period
		s.At(t, a)
		s.At(t+period/2, b)
	}
	return s
}

// Churn schedules a rolling crash/restart wave: starting at start, one
// node of nodes crashes every interval (in the given order), and each
// crashed node restarts downFor after its crash. With downFor <= 0
// nodes never come back. Composes freely with link dynamics on the
// same schedule.
func (s *Schedule) Churn(start sim.Time, interval, downFor sim.Duration, nodes ...int) *Schedule {
	for i, n := range nodes {
		at := start + sim.Duration(i)*interval
		s.At(at, CrashNode(n))
		if downFor > 0 {
			s.At(at+downFor, RestartNode(n))
		}
	}
	return s
}

// Install schedules every event on the environment's engine. Events
// fire in (time, insertion order); an event scheduled in the past runs
// at the current instant. Install may be called once per schedule per
// run; installing the same schedule into several independent worlds
// (e.g. a Bullet run and a baseline run over identical topologies) is
// the intended way to compare protocols under identical dynamics.
func (s *Schedule) Install(env *Env) {
	evs := append([]event(nil), s.events...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
	for i := range evs {
		ev := evs[i]
		env.Eng.Schedule(ev.at, func() {
			for _, a := range ev.actions {
				a(env)
			}
		})
	}
}
