// Package workset tracks the set of stream sequence numbers a node has
// received over a sliding window (§3.1): the working set backs the
// node's Bloom filter, its summary ticket, and the (Low, High) recovery
// range it advertises to sending peers. It also implements the Figure 4
// sequence matrix: partitioning the sequence space by "mod rows" across
// senders so peers transmit disjoint data.
package workset

// Set is a windowed set of sequence numbers.
type Set struct {
	have map[uint64]struct{}
	low  uint64 // smallest retained (inclusive); seqs below are forgotten
	max  uint64 // largest ever added
	any  bool
	cnt  uint64 // total distinct adds, including trimmed
}

// New creates an empty working set.
func New() *Set {
	return &Set{have: make(map[uint64]struct{})}
}

// Add records seq; it returns true if seq was new (not currently held
// and not below the trimmed window).
func (s *Set) Add(seq uint64) bool {
	if s.any && seq < s.low {
		return false // below the window: treated as already seen
	}
	if _, ok := s.have[seq]; ok {
		return false
	}
	s.have[seq] = struct{}{}
	s.cnt++
	if !s.any || seq > s.max {
		s.max = seq
	}
	s.any = true
	return true
}

// Contains reports whether seq is held or below the retained window
// (sequences below Low are assumed delivered/expired).
func (s *Set) Contains(seq uint64) bool {
	if s.any && seq < s.low {
		return true
	}
	_, ok := s.have[seq]
	return ok
}

// Held reports whether seq is actually retained (servable to a peer).
func (s *Set) Held(seq uint64) bool {
	_, ok := s.have[seq]
	return ok
}

// Len returns the number of retained sequences.
func (s *Set) Len() int { return len(s.have) }

// Total returns the number of distinct sequences ever added.
func (s *Set) Total() uint64 { return s.cnt }

// Low returns the smallest retained sequence bound.
func (s *Set) Low() uint64 { return s.low }

// High returns the largest sequence ever added (0 if empty).
func (s *Set) High() uint64 {
	if !s.any {
		return 0
	}
	return s.max
}

// Empty reports whether nothing has ever been added.
func (s *Set) Empty() bool { return !s.any }

// TrimBelow drops all sequences < lo, advancing the window. Bullet
// trims items no longer needed for reconstruction so Bloom filter
// population stays bounded.
func (s *Set) TrimBelow(lo uint64) {
	if lo <= s.low {
		return
	}
	for seq := range s.have {
		if seq < lo {
			delete(s.have, seq)
		}
	}
	s.low = lo
}

// ForRange calls fn for every *held* sequence in [lo, hi] in ascending
// order; fn returning false stops iteration.
func (s *Set) ForRange(lo, hi uint64, fn func(seq uint64) bool) {
	if s.any && lo < s.low {
		lo = s.low
	}
	for seq := lo; seq <= hi; seq++ {
		if _, ok := s.have[seq]; ok {
			if !fn(seq) {
				return
			}
		}
		if seq == ^uint64(0) {
			return
		}
	}
}

// MissingInRange counts sequences in [lo, hi] not held and not below
// the window.
func (s *Set) MissingInRange(lo, hi uint64) int {
	if s.any && lo < s.low {
		lo = s.low
	}
	n := 0
	for seq := lo; seq <= hi; seq++ {
		if _, ok := s.have[seq]; !ok {
			n++
		}
		if seq == ^uint64(0) {
			break
		}
	}
	return n
}

// RowOf returns the matrix row (Figure 4) that sequence seq belongs to
// when the space is split across `senders` rows.
func RowOf(seq uint64, senders int) int {
	if senders <= 0 {
		return 0
	}
	return int(seq % uint64(senders))
}
