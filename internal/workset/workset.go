// Package workset tracks the set of stream sequence numbers a node has
// received over a sliding window (§3.1): the working set backs the
// node's Bloom filter, its summary ticket, and the (Low, High) recovery
// range it advertises to sending peers. It also implements the Figure 4
// sequence matrix: partitioning the sequence space by "mod rows" across
// senders so peers transmit disjoint data.
package workset

import "math/bits"

// Set is a windowed set of sequence numbers, stored as a dense bitmap
// anchored at a word-aligned base. Sequence windows are contiguous and
// bounded — TrimBelow keeps the retained span within the recovery
// window — so a bitmap holds the whole set in a few kilobytes and
// turns the hot-path membership tests and range scans into bit
// operations instead of map probes. The bitmap covers [base, base +
// 64*len(words)); bits outside [low, max] are always zero.
type Set struct {
	words []uint64
	base  uint64 // sequence of bit 0; multiple of 64, base <= all held
	low   uint64 // smallest retained (inclusive); seqs below are forgotten
	max   uint64 // largest ever added
	n     int    // retained count (set bits)
	any   bool
	cnt   uint64 // total distinct adds, including trimmed
}

// New creates an empty working set.
func New() *Set {
	return &Set{}
}

func (s *Set) bit(seq uint64) (word, mask uint64, in bool) {
	if seq < s.base {
		return 0, 0, false
	}
	idx := seq - s.base
	if idx >= uint64(len(s.words))*64 {
		return 0, 0, false
	}
	return idx >> 6, 1 << (idx & 63), true
}

// ensure grows or re-anchors the bitmap so seq is addressable. The
// base only moves down to cover a late add above low; trimmed space at
// the front is reclaimed by rebasing when it exceeds the live span.
func (s *Set) ensure(seq uint64) (word, mask uint64) {
	if !s.any {
		s.base = seq &^ 63
	} else if seq < s.base {
		// Out-of-order add below the anchor: prepend words.
		newBase := seq &^ 63
		shift := (s.base - newBase) >> 6
		s.words = append(s.words, make([]uint64, shift)...)
		copy(s.words[shift:], s.words[:len(s.words)-int(shift)])
		for i := uint64(0); i < shift; i++ {
			s.words[i] = 0
		}
		s.base = newBase
	} else if lw := s.low &^ 63; lw > s.base {
		if off := lw - s.base; off>>6 >= uint64(len(s.words))/2 && off >= 128 {
			// Rebase: discard fully-trimmed words at the front.
			w := off >> 6
			copy(s.words, s.words[w:])
			tail := s.words[len(s.words)-int(w):]
			for i := range tail {
				tail[i] = 0
			}
			s.base += off
		}
	}
	idx := seq - s.base
	for idx >= uint64(len(s.words))*64 {
		grow := len(s.words)
		if grow < 4 {
			grow = 4
		}
		s.words = append(s.words, make([]uint64, grow)...)
	}
	return idx >> 6, 1 << (idx & 63)
}

// Add records seq; it returns true if seq was new (not currently held
// and not below the trimmed window).
func (s *Set) Add(seq uint64) bool {
	if s.any && seq < s.low {
		return false // below the window: treated as already seen
	}
	if w, m, in := s.bit(seq); in && s.words[w]&m != 0 {
		return false
	}
	w, m := s.ensure(seq)
	s.words[w] |= m
	s.n++
	s.cnt++
	if !s.any || seq > s.max {
		s.max = seq
	}
	s.any = true
	return true
}

// Contains reports whether seq is held or below the retained window
// (sequences below Low are assumed delivered/expired).
func (s *Set) Contains(seq uint64) bool {
	if s.any && seq < s.low {
		return true
	}
	w, m, in := s.bit(seq)
	return in && s.words[w]&m != 0
}

// Held reports whether seq is actually retained (servable to a peer).
func (s *Set) Held(seq uint64) bool {
	w, m, in := s.bit(seq)
	return in && s.words[w]&m != 0
}

// Len returns the number of retained sequences.
func (s *Set) Len() int { return s.n }

// Total returns the number of distinct sequences ever added.
func (s *Set) Total() uint64 { return s.cnt }

// Low returns the smallest retained sequence bound.
func (s *Set) Low() uint64 { return s.low }

// High returns the largest sequence ever added (0 if empty).
func (s *Set) High() uint64 {
	if !s.any {
		return 0
	}
	return s.max
}

// Empty reports whether nothing has ever been added.
func (s *Set) Empty() bool { return !s.any }

// TrimBelow drops all sequences < lo, advancing the window. Bullet
// trims items no longer needed for reconstruction so Bloom filter
// population stays bounded.
func (s *Set) TrimBelow(lo uint64) {
	if lo <= s.low {
		return
	}
	if s.any && lo > s.base {
		end := lo - s.base
		if cap := uint64(len(s.words)) * 64; end > cap {
			end = cap
		}
		for w := uint64(0); w < end>>6; w++ {
			s.n -= bits.OnesCount64(s.words[w])
			s.words[w] = 0
		}
		if rem := end & 63; rem != 0 {
			w, m := end>>6, uint64(1)<<rem-1
			s.n -= bits.OnesCount64(s.words[w] & m)
			s.words[w] &^= m
		}
	}
	s.low = lo
}

// ForRange calls fn for every *held* sequence in [lo, hi] in ascending
// order; fn returning false stops iteration.
func (s *Set) ForRange(lo, hi uint64, fn func(seq uint64) bool) {
	if !s.any {
		return
	}
	if lo < s.low {
		lo = s.low
	}
	if lo < s.base {
		lo = s.base
	}
	if hi > s.max {
		hi = s.max
	}
	if lo > hi {
		return
	}
	w := (lo - s.base) >> 6
	cur := s.words[w] &^ (1<<((lo-s.base)&63) - 1)
	last := (hi - s.base) >> 6
	for {
		if w == last {
			cur &= ^uint64(0) >> (63 - (hi-s.base)&63)
		}
		for cur != 0 {
			b := uint64(bits.TrailingZeros64(cur))
			cur &= cur - 1
			if !fn(s.base + w<<6 + b) {
				return
			}
		}
		if w == last {
			return
		}
		w++
		cur = s.words[w]
	}
}

// MissingInRange counts sequences in [lo, hi] not held and not below
// the window.
func (s *Set) MissingInRange(lo, hi uint64) int {
	if s.any && lo < s.low {
		lo = s.low
	}
	if lo > hi {
		return 0
	}
	span := hi - lo + 1 // no overflow: lo > 0 whenever hi is ^uint64(0)-adjacent in practice
	if span == 0 {      // lo == 0 && hi == ^uint64(0)
		span = ^uint64(0)
	}
	return int(span) - s.heldCount(lo, hi)
}

// heldCount counts held sequences in [lo, hi].
func (s *Set) heldCount(lo, hi uint64) int {
	if !s.any {
		return 0
	}
	if lo < s.base {
		lo = s.base
	}
	if hi > s.max {
		hi = s.max
	}
	if lo > hi {
		return 0
	}
	w := (lo - s.base) >> 6
	last := (hi - s.base) >> 6
	first := s.words[w] &^ (1<<((lo-s.base)&63) - 1)
	if w == last {
		return bits.OnesCount64(first & (^uint64(0) >> (63 - (hi-s.base)&63)))
	}
	n := bits.OnesCount64(first)
	for i := w + 1; i < last; i++ {
		n += bits.OnesCount64(s.words[i])
	}
	return n + bits.OnesCount64(s.words[last]&(^uint64(0)>>(63-(hi-s.base)&63)))
}

// RowOf returns the matrix row (Figure 4) that sequence seq belongs to
// when the space is split across `senders` rows.
func RowOf(seq uint64, senders int) int {
	if senders <= 0 {
		return 0
	}
	return int(seq % uint64(senders))
}
