package workset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddContains(t *testing.T) {
	s := New()
	if !s.Add(5) {
		t.Fatal("first add returned false")
	}
	if s.Add(5) {
		t.Fatal("duplicate add returned true")
	}
	if !s.Contains(5) || s.Contains(6) {
		t.Fatal("contains wrong")
	}
	if s.Len() != 1 || s.Total() != 1 {
		t.Fatalf("len=%d total=%d", s.Len(), s.Total())
	}
}

func TestHighLow(t *testing.T) {
	s := New()
	s.Add(10)
	s.Add(3)
	s.Add(7)
	if s.High() != 10 {
		t.Fatalf("high=%d", s.High())
	}
	if s.Low() != 0 {
		t.Fatalf("low=%d", s.Low())
	}
	s.TrimBelow(5)
	if s.Low() != 5 {
		t.Fatalf("low after trim=%d", s.Low())
	}
	if s.Held(3) {
		t.Fatal("trimmed seq still held")
	}
	if !s.Contains(3) {
		t.Fatal("below-window seq should count as seen")
	}
	if s.Add(2) {
		t.Fatal("add below window succeeded")
	}
}

func TestForRangeOrdered(t *testing.T) {
	s := New()
	for _, v := range []uint64{9, 2, 4, 8, 3} {
		s.Add(v)
	}
	var got []uint64
	s.ForRange(0, 100, func(seq uint64) bool {
		got = append(got, seq)
		return true
	})
	want := []uint64{2, 3, 4, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestForRangeEarlyStop(t *testing.T) {
	s := New()
	for i := uint64(0); i < 10; i++ {
		s.Add(i)
	}
	n := 0
	s.ForRange(0, 9, func(uint64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop failed: n=%d", n)
	}
}

func TestMissingInRange(t *testing.T) {
	s := New()
	s.Add(0)
	s.Add(2)
	s.Add(4)
	if m := s.MissingInRange(0, 4); m != 2 {
		t.Fatalf("missing=%d want 2", m)
	}
	s.TrimBelow(2)
	// Below-window sequences are not counted missing.
	if m := s.MissingInRange(0, 4); m != 1 {
		t.Fatalf("missing after trim=%d want 1", m)
	}
}

func TestRowOf(t *testing.T) {
	if RowOf(17, 5) != 2 {
		t.Fatalf("RowOf(17,5)=%d", RowOf(17, 5))
	}
	if RowOf(17, 0) != 0 {
		t.Fatal("RowOf with zero senders should be 0")
	}
}

// Property: every sequence belongs to exactly one row, and the rows
// partition any contiguous range evenly (within one).
func TestRowPartitionProperty(t *testing.T) {
	f := func(senders uint8, span uint8) bool {
		s := int(senders%10) + 1
		n := int(span) + s
		counts := make([]int, s)
		for seq := 0; seq < n; seq++ {
			counts[RowOf(uint64(seq), s)]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add/Contains behaves like a set over the untrimmed window.
func TestSetSemanticsProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		s := New()
		ref := make(map[uint64]bool)
		for _, x := range xs {
			v := uint64(x)
			added := s.Add(v)
			if added == ref[v] {
				return false // Add must return true exactly when new
			}
			ref[v] = true
		}
		for v := range ref {
			if !s.Contains(v) {
				return false
			}
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySet(t *testing.T) {
	s := New()
	if !s.Empty() || s.High() != 0 || s.Contains(0) {
		t.Fatal("empty set misbehaves")
	}
}
