package workload

import (
	"math"
	"sort"

	"bullet/internal/sim"
)

// CBR emits fixed-size packets at a constant bit rate — the classic
// streaming workload, byte-identical to the private source pumps the
// protocols carried before this package existed.
type CBR struct {
	RateKbps   float64
	PacketSize int
}

// Name implements Source.
func (CBR) Name() string { return "cbr" }

// Next implements Source.
func (c CBR) Next(now sim.Time, seq uint64) (int, sim.Duration, bool) {
	return c.PacketSize, Interval(c.RateKbps, c.PacketSize), true
}

// VBR alternates deterministically between a high ("on") and a low
// ("off") bit rate on a fixed period — the bursty variable-bit-rate
// workload. With LowKbps = 0 the off phase is silent (pure on/off);
// otherwise it emits at the low rate. The phase boundary is evaluated
// at each emission instant, so the pattern is a pure function of
// virtual time.
type VBR struct {
	HighKbps   float64
	LowKbps    float64
	PacketSize int
	// Period is the full on+off cycle length (default 10 s).
	Period sim.Duration
	// Duty is the fraction of each period spent at HighKbps
	// (default 0.5).
	Duty float64
	// Phase is the cycle origin — typically the stream start, so the
	// burst pattern is anchored to the workload, not to t=0.
	Phase sim.Time
}

// Name implements Source.
func (VBR) Name() string { return "vbr" }

// Next implements Source.
func (v VBR) Next(now sim.Time, seq uint64) (int, sim.Duration, bool) {
	period := v.Period
	if period <= 0 {
		period = 10 * sim.Second
	}
	duty := v.Duty
	if duty <= 0 || duty > 1 {
		duty = 0.5
	}
	pos := (now - v.Phase) % period
	if pos < 0 {
		pos += period
	}
	onLen := sim.Duration(float64(period) * duty)
	if pos < onLen {
		return v.PacketSize, Interval(v.HighKbps, v.PacketSize), true
	}
	if v.LowKbps <= 0 {
		// Silent until the next on-phase starts.
		return 0, period - pos, true
	}
	return v.PacketSize, Interval(v.LowKbps, v.PacketSize), true
}

// File is the finite digital-fountain workload of §2.1: a file of K
// source blocks is erasure-coded (LT or Tornado, see internal/codec)
// and the stream's sequence number doubles as the encoded-symbol ID.
// No receiver needs any specific packet — a node completes the file at
// Target() = ceil((1+Overhead)·K) distinct receipts, which the metrics
// collector records per node (see Collector.CompletionCDF). The source
// is rateless: it emits fresh symbols at RateKbps until the stream
// duration ends, or until Total symbols when a cap is set.
type File struct {
	RateKbps   float64
	PacketSize int // encoded-symbol wire size
	K          int // source blocks in the file
	// Overhead is the reception overhead ε (default 0.15): decode
	// succeeds with high probability at (1+ε)·K distinct symbols.
	Overhead float64
	// Total optionally caps emitted symbols (0 = bounded only by the
	// stream duration).
	Total uint64
}

// Name implements Source.
func (File) Name() string { return "file" }

// Target implements Completer: distinct receipts for a full decode.
func (f File) Target() uint64 {
	eps := f.Overhead
	if eps <= 0 {
		eps = 0.15
	}
	return uint64(math.Ceil((1 + eps) * float64(f.K)))
}

// Next implements Source.
func (f File) Next(now sim.Time, seq uint64) (int, sim.Duration, bool) {
	if f.Total > 0 && seq >= f.Total {
		return 0, 0, false
	}
	return f.PacketSize, Interval(f.RateKbps, f.PacketSize), true
}

// RateStep is one entry of a MultiRate schedule: from At onward the
// source emits at RateKbps.
type RateStep struct {
	At       sim.Time
	RateKbps float64
}

// MultiRate emits fixed-size packets at a rate that changes on a
// schedule. Steps apply in time order; the first step's rate also
// covers any time before it. MultiRate composes with
// internal/scenario: a scenario action may append a step mid-run —
//
//	src := workload.NewMultiRate(1500,
//	    workload.RateStep{At: 0, RateKbps: 600})
//	sched.At(60*sim.Second, scenario.Func(func(env *scenario.Env) {
//	    src.SetRateAt(env.Eng.Now(), 1200)
//	}))
//
// — because the pump re-reads the schedule at every emission. Steps
// must only ever be appended at or after the current virtual time, so
// the run stays a pure function of (config, seed, schedule).
type MultiRate struct {
	PacketSize int
	steps      []RateStep
}

// NewMultiRate builds a schedule-driven source; steps may be given in
// any order.
func NewMultiRate(packetSize int, steps ...RateStep) *MultiRate {
	m := &MultiRate{PacketSize: packetSize, steps: append([]RateStep(nil), steps...)}
	sort.SliceStable(m.steps, func(i, j int) bool { return m.steps[i].At < m.steps[j].At })
	return m
}

// SetRateAt appends a rate change effective from at onward.
func (m *MultiRate) SetRateAt(at sim.Time, kbps float64) {
	m.steps = append(m.steps, RateStep{At: at, RateKbps: kbps})
	sort.SliceStable(m.steps, func(i, j int) bool { return m.steps[i].At < m.steps[j].At })
}

// RateAt returns the rate in effect at time t.
func (m *MultiRate) RateAt(t sim.Time) float64 {
	if len(m.steps) == 0 {
		return 0
	}
	rate := m.steps[0].RateKbps
	for _, s := range m.steps {
		if s.At > t {
			break
		}
		rate = s.RateKbps
	}
	return rate
}

// Name implements Source.
func (*MultiRate) Name() string { return "multirate" }

// Next implements Source. A step with a non-positive rate pauses the
// stream: emission stays silent until the next scheduled step with a
// positive rate, so pause/resume schedules (and scenario-driven
// SetRateAt pauses whose resume step is already scheduled) work. Only
// when no future positive-rate step exists does the stream end for
// good.
func (m *MultiRate) Next(now sim.Time, seq uint64) (int, sim.Duration, bool) {
	rate := m.RateAt(now)
	if rate <= 0 {
		for _, s := range m.steps {
			if s.At > now && s.RateKbps > 0 {
				return 0, s.At - now, true
			}
		}
		return 0, 0, false
	}
	return m.PacketSize, Interval(rate, m.PacketSize), true
}
