// Package workload is the payload-agnostic source layer of the
// simulator: it owns packet generation — which sequence numbers exist,
// how large they are, and when they are emitted — so that every
// protocol (Bullet, the plain streamer, push gossip, anti-entropy)
// disseminates the *same* workload instead of each hardwiring its own
// constant-rate pump. The paper motivates the mesh with data
// dissemination in general (§2.1): digital-fountain file distribution
// as much as constant-rate streaming. This package provides both, plus
// bursty and schedule-driven variable rates.
//
// Sources must be pure functions of (config, seed): Next may consult
// only its receiver's configuration and its arguments, never
// wall-clock time or unseeded randomness, so a run remains a pure
// function of (config, seed) end to end.
package workload

import (
	"bullet/internal/metrics"
	"bullet/internal/sim"
)

// Source generates a run's packet stream. For emission index seq at
// virtual time now it returns the payload size in bytes and the gap
// until the next emission. A size of 0 emits nothing at this instant
// (the pump just waits gap — how on/off sources express silence), and
// ok=false ends the stream for good (finite workloads).
type Source interface {
	// Name identifies the workload kind ("cbr", "vbr", "file", ...).
	Name() string
	// Next returns the seq'th emission: payload size, the gap until
	// the next emission, and whether the stream continues.
	Next(now sim.Time, seq uint64) (size int, gap sim.Duration, ok bool)
}

// Sink observes per-node workload delivery: Deliver fires once per
// node per distinct packet, at first receipt. Protocols invoke it on
// the first-copy path only — duplicates never reach the sink.
type Sink interface {
	Deliver(now sim.Time, node int, seq uint64)
}

// Completer is implemented by finite workloads: Target is the number
// of distinct packets at which a node has the whole object (for
// fountain-coded files, ceil((1+ε)·k) symbols — no specific packet is
// ever required).
type Completer interface {
	Target() uint64
}

// Interval converts a bit rate and packet size to the emission gap of
// a constant-rate source. This is the one shared, rounding-stable
// bytesPerSec→interval conversion: every protocol's pre-workload pump
// computed exactly this float64 expression privately, so Interval is
// pinned by test to stay bit-identical to it — any drift here shifts
// every golden trace.
func Interval(rateKbps float64, packetSize int) sim.Duration {
	bytesPerSec := rateKbps * 1000 / 8
	interval := sim.Duration(float64(packetSize) / bytesPerSec * float64(sim.Second))
	if interval < sim.Microsecond {
		interval = sim.Microsecond
	}
	return interval
}

// Default returns src unchanged, or a CBR source at the given rate and
// packet size when src is nil — the pre-workload-layer behaviour every
// protocol defaults to, keeping legacy configs byte-identical.
func Default(src Source, rateKbps float64, packetSize int) Source {
	if src != nil {
		return src
	}
	return CBR{RateKbps: rateKbps, PacketSize: packetSize}
}

// InstallCompletion arms col's per-node completion tracking when src
// is a finite workload (a Completer); streaming sources leave the
// collector untouched. Call at deploy time, before the run.
func InstallCompletion(src Source, col *metrics.Collector) {
	if c, ok := src.(Completer); ok {
		col.SetCompletionTarget(c.Target())
	}
}

// Pump drives src on eng — the scheduler of the node that owns the
// source (its shard engine in a sharded run): the first tick fires at
// start, and every tick re-schedules the next one after the gap the
// source returns. stop is the protocol's end condition (duration
// elapsed, source endpoint failed, deployment stopped) and is
// consulted at each tick before the source is; emit hands each
// generated packet to the protocol's ingestion path. The tick order —
// stop check, emit, re-schedule — is exactly the order of the private
// pumps this replaces, so a CBR source reproduces their event sequence
// bit-for-bit.
func Pump(eng sim.Scheduler, src Source, start sim.Time, stop func() bool, emit func(seq uint64, size int)) {
	var seq uint64
	var tick func()
	tick = func() {
		if stop() {
			return
		}
		size, gap, ok := src.Next(eng.Now(), seq)
		if !ok {
			return
		}
		if size > 0 {
			emit(seq, size)
			seq++
		}
		if gap < sim.Microsecond {
			// Guard against zero/negative gaps from misconfigured
			// sources: a same-instant reschedule would spin forever.
			gap = sim.Microsecond
		}
		eng.ScheduleAfter(gap, tick)
	}
	eng.Schedule(start, tick)
}
