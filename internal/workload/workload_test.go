package workload

import (
	"testing"

	"bullet/internal/sim"
)

// legacyInterval is the exact float64 expression each protocol's
// private pump used before this package existed (core.scheduleSource,
// the streamer/gossip/anti-entropy source pumps). Interval must stay
// bit-identical to it forever: golden traces depend on the rounding.
func legacyInterval(rateKbps float64, packetSize int) sim.Duration {
	bytesPerSec := rateKbps * 1000 / 8
	interval := sim.Duration(float64(packetSize) / bytesPerSec * float64(sim.Second))
	if interval < sim.Microsecond {
		interval = sim.Microsecond
	}
	return interval
}

func TestIntervalPinnedValues(t *testing.T) {
	cases := []struct {
		rateKbps float64
		size     int
		want     sim.Duration
	}{
		// 600 Kbps / 1500 B: the stock experiment configuration —
		// exactly 20 ms, no rounding.
		{600, 1500, 20 * sim.Millisecond},
		// 900 Kbps / 1500 B: Figure 11's rate — 13.333... ms truncates.
		{900, 1500, 13_333_333},
		// 666 Kbps / 1500 B: non-terminating division truncates.
		{666, 1500, 18_018_018},
		// 800 Kbps / 1400 B: the filedist example operating point.
		{800, 1400, 14 * sim.Millisecond},
		// Absurd rate: clamped to the emulator's 1 µs floor.
		{1e9, 1500, sim.Microsecond},
	}
	for _, c := range cases {
		if got := Interval(c.rateKbps, c.size); got != c.want {
			t.Errorf("Interval(%v, %d) = %d, want %d", c.rateKbps, c.size, got, c.want)
		}
	}
}

// TestIntervalMatchesLegacyPumps sweeps the configuration space and
// requires bit-identical agreement with the four retired private
// conversions — the rounding-stability contract.
func TestIntervalMatchesLegacyPumps(t *testing.T) {
	rates := []float64{8, 56, 100, 300, 473.5, 600, 666, 900, 1200, 5000, 1e6, 3e9}
	sizes := []int{64, 512, 1000, 1400, 1500, 9000}
	for _, r := range rates {
		for _, s := range sizes {
			if got, want := Interval(r, s), legacyInterval(r, s); got != want {
				t.Fatalf("Interval(%v, %d) = %d, legacy pump computed %d", r, s, got, want)
			}
		}
	}
}

func TestCBRNext(t *testing.T) {
	src := CBR{RateKbps: 600, PacketSize: 1500}
	for seq := uint64(0); seq < 3; seq++ {
		size, gap, ok := src.Next(sim.Time(seq)*20*sim.Millisecond, seq)
		if !ok || size != 1500 || gap != 20*sim.Millisecond {
			t.Fatalf("CBR.Next(seq=%d) = (%d, %d, %v), want (1500, 20ms, true)", seq, size, gap, ok)
		}
	}
}

func TestVBROnOffPhases(t *testing.T) {
	src := VBR{HighKbps: 800, LowKbps: 0, PacketSize: 1000,
		Period: 10 * sim.Second, Duty: 0.5, Phase: 5 * sim.Second}
	// On phase: 5s..10s after Phase.
	size, gap, ok := src.Next(6*sim.Second, 0)
	if !ok || size != 1000 || gap != Interval(800, 1000) {
		t.Fatalf("on-phase Next = (%d, %d, %v)", size, gap, ok)
	}
	// Off phase with LowKbps=0: silent until the next cycle.
	size, gap, ok = src.Next(12*sim.Second, 10)
	if !ok || size != 0 || gap != 3*sim.Second {
		t.Fatalf("off-phase Next = (%d, %d, %v), want (0, 3s, true)", size, gap, ok)
	}
	// Off phase with a low rate emits at the low rate.
	slow := src
	slow.LowKbps = 100
	size, gap, ok = slow.Next(12*sim.Second, 10)
	if !ok || size != 1000 || gap != Interval(100, 1000) {
		t.Fatalf("low-rate off-phase Next = (%d, %d, %v)", size, gap, ok)
	}
}

func TestFileTargetAndCap(t *testing.T) {
	f := File{RateKbps: 600, PacketSize: 1500, K: 1000, Overhead: 0.15}
	if got := f.Target(); got != 1150 {
		t.Errorf("Target() = %d, want 1150", got)
	}
	if got := (File{K: 100}).Target(); got != 115 { // default ε = 0.15
		t.Errorf("default-overhead Target() = %d, want 115", got)
	}
	capped := File{RateKbps: 600, PacketSize: 1500, K: 10, Total: 3}
	if _, _, ok := capped.Next(0, 2); !ok {
		t.Error("Next(seq=2) under Total=3 should continue")
	}
	if _, _, ok := capped.Next(0, 3); ok {
		t.Error("Next(seq=3) under Total=3 should end the stream")
	}
}

func TestMultiRateSchedule(t *testing.T) {
	m := NewMultiRate(1500,
		RateStep{At: 60 * sim.Second, RateKbps: 1200},
		RateStep{At: 0, RateKbps: 600})
	if got := m.RateAt(10 * sim.Second); got != 600 {
		t.Errorf("RateAt(10s) = %v, want 600", got)
	}
	if got := m.RateAt(60 * sim.Second); got != 1200 {
		t.Errorf("RateAt(60s) = %v, want 1200", got)
	}
	m.SetRateAt(90*sim.Second, 300)
	if got := m.RateAt(100 * sim.Second); got != 300 {
		t.Errorf("RateAt(100s) after SetRateAt = %v, want 300", got)
	}
	size, gap, ok := m.Next(5*sim.Second, 0)
	if !ok || size != 1500 || gap != Interval(600, 1500) {
		t.Fatalf("Next = (%d, %d, %v)", size, gap, ok)
	}
}

// A zero-rate step pauses the stream until the next positive-rate
// step; only a schedule with no positive rate left ends it.
func TestMultiRatePauseAndResume(t *testing.T) {
	m := NewMultiRate(1500,
		RateStep{At: 0, RateKbps: 600},
		RateStep{At: 60 * sim.Second, RateKbps: 0},
		RateStep{At: 120 * sim.Second, RateKbps: 600})
	size, gap, ok := m.Next(70*sim.Second, 100)
	if !ok || size != 0 || gap != 50*sim.Second {
		t.Fatalf("paused Next = (%d, %d, %v), want (0, 50s, true)", size, gap, ok)
	}
	if size, _, ok := m.Next(120*sim.Second, 100); !ok || size != 1500 {
		t.Fatalf("resumed Next = (%d, _, %v), want (1500, _, true)", size, ok)
	}
	// Trailing zero rate with nothing scheduled after it ends the
	// stream.
	tail := NewMultiRate(1500,
		RateStep{At: 0, RateKbps: 600},
		RateStep{At: 60 * sim.Second, RateKbps: 0})
	if _, _, ok := tail.Next(61*sim.Second, 100); ok {
		t.Fatal("trailing zero-rate schedule should end the stream")
	}
	// End-to-end through the pump: packets stop during the pause and
	// resume after it.
	eng := sim.NewEngine(1)
	var times []sim.Time
	m2 := NewMultiRate(1500,
		RateStep{At: 0, RateKbps: 600},
		RateStep{At: 1 * sim.Second, RateKbps: 0},
		RateStep{At: 3 * sim.Second, RateKbps: 600})
	Pump(eng, m2, 0,
		func() bool { return eng.Now() >= 4*sim.Second },
		func(seq uint64, size int) { times = append(times, eng.Now()) })
	eng.Run(10 * sim.Second)
	var paused, resumed int
	for _, at := range times {
		if at >= 1*sim.Second && at < 3*sim.Second {
			paused++
		}
		if at >= 3*sim.Second {
			resumed++
		}
	}
	if paused != 0 {
		t.Errorf("%d emissions during the pause", paused)
	}
	if resumed == 0 {
		t.Error("no emissions after the schedule resumed")
	}
}

// TestPumpMatchesLegacyLoop drives a CBR source through Pump and
// checks the emission schedule is exactly the legacy pump's: first
// packet at start, one every interval, none at or beyond the stop
// condition.
func TestPumpMatchesLegacyLoop(t *testing.T) {
	eng := sim.NewEngine(1)
	var emissions []sim.Time
	var seqs []uint64
	start := 5 * sim.Second
	end := 5*sim.Second + 100*sim.Millisecond // 5 packets at 20 ms
	Pump(eng, CBR{RateKbps: 600, PacketSize: 1500}, start,
		func() bool { return eng.Now() >= end },
		func(seq uint64, size int) {
			if size != 1500 {
				t.Fatalf("size = %d", size)
			}
			emissions = append(emissions, eng.Now())
			seqs = append(seqs, seq)
		})
	eng.Run(20 * sim.Second)
	if len(emissions) != 5 {
		t.Fatalf("got %d emissions, want 5", len(emissions))
	}
	for i, at := range emissions {
		want := start + sim.Duration(i)*20*sim.Millisecond
		if at != want {
			t.Errorf("emission %d at %d, want %d", i, at, want)
		}
		if seqs[i] != uint64(i) {
			t.Errorf("emission %d carries seq %d", i, seqs[i])
		}
	}
}

// TestPumpFiniteSource: a File with a Total cap ends the stream early.
func TestPumpFiniteSource(t *testing.T) {
	eng := sim.NewEngine(1)
	n := 0
	Pump(eng, File{RateKbps: 600, PacketSize: 1500, K: 2, Total: 3}, 0,
		func() bool { return false },
		func(seq uint64, size int) { n++ })
	eng.Run(10 * sim.Second)
	if n != 3 {
		t.Fatalf("finite source emitted %d packets, want 3", n)
	}
}

// TestPumpSilentEmission: a size-0 Next waits without consuming a
// sequence number (the VBR off phase).
func TestPumpSilentEmission(t *testing.T) {
	eng := sim.NewEngine(1)
	src := VBR{HighKbps: 600, LowKbps: 0, PacketSize: 1500,
		Period: 2 * sim.Second, Duty: 0.5}
	var seqs []uint64
	var last sim.Time
	Pump(eng, src, 0,
		func() bool { return eng.Now() >= 4*sim.Second },
		func(seq uint64, size int) { seqs = append(seqs, seq); last = eng.Now() })
	eng.Run(10 * sim.Second)
	// Two on-phases of 1 s at 20 ms intervals: 50 packets each; the
	// off phases emit nothing and sequence numbers stay contiguous.
	if len(seqs) != 100 {
		t.Fatalf("got %d emissions, want 100", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("emission %d carries seq %d: silence must not consume seqs", i, s)
		}
	}
	// The second on-phase spans 2s..3s; its last packet goes at 2.98s.
	if want := 2*sim.Second + 980*sim.Millisecond; last != want {
		t.Errorf("last emission at %d, want %d", last, want)
	}
}
