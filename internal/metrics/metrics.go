// Package metrics collects the measurements the Bullet paper plots:
// per-node achieved bandwidth over time split into raw (all data
// received), useful (first-copy data), from-parent, and duplicate
// bytes, plus CDF snapshots of instantaneous bandwidth (Figure 8) and
// run-level summaries (duplicate ratio, control overhead).
package metrics

import (
	"math"
	"sort"

	"bullet/internal/nodeset"
	"bullet/internal/sim"
)

// Kind selects a byte counter category.
type Kind int

const (
	// Useful counts bytes of packets received for the first time.
	Useful Kind = iota
	// Raw counts all data bytes received, including duplicates.
	Raw
	// Parent counts data bytes received from the tree parent.
	Parent
	// Duplicate counts bytes of packets already held.
	Duplicate
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Useful:
		return "useful"
	case Raw:
		return "raw"
	case Parent:
		return "from-parent"
	case Duplicate:
		return "duplicate"
	}
	return "unknown"
}

type nodeSeries struct {
	buckets [numKinds][]uint64

	// Completion tracking (armed by SetCompletionTarget): distinct
	// useful packets received, and when the count hit the target.
	usefulPkts  uint64
	completedAt sim.Time
	completed   bool
}

// Collector accumulates byte counts into fixed-width time buckets.
// Per-node series live in a dense node-id-indexed table, so the
// per-packet Add path is an O(1) slice index and every aggregate walks
// nodes in ascending id order (the deterministic float-aggregation
// order the TSV goldens pin).
// In a sharded run a collector is written concurrently by all shards:
// Add only ever touches the per-node series of the executing shard's
// own nodes (pre-registered via Track at deploy, so the table never
// grows mid-run), and there is deliberately no cross-node mutable
// aggregate on the Add path — maxima and sums are computed on demand
// at read time, which happens only between runs or at barriers.
type Collector struct {
	bucket sim.Duration
	nodes  nodeset.Table[*nodeSeries]

	// target is the distinct-packet count at which a node completes a
	// finite workload (0 = streaming, no completion semantics).
	target uint64
}

// NewCollector creates a collector with the given bucket width
// (typically one second).
func NewCollector(bucket sim.Duration) *Collector {
	if bucket <= 0 {
		bucket = sim.Second
	}
	return &Collector{bucket: bucket}
}

// Bucket returns the bucket width.
func (c *Collector) Bucket() sim.Duration { return c.bucket }

// Track pre-registers a node so averages include it even if it never
// receives a byte.
func (c *Collector) Track(node int) {
	if !c.nodes.Contains(node) {
		c.nodes.Put(node, &nodeSeries{})
	}
}

// SetCompletionTarget arms per-node completion tracking: a node
// completes when its Useful (first-copy) packet count reaches pkts —
// the finite-workload semantics of fountain-coded file distribution,
// where any pkts distinct symbols decode the object. Every protocol
// records exactly one Useful Add per distinct packet, so the counter
// is the distinct-receipt count. Call before the run; a target of 0
// disables tracking (the streaming default).
func (c *Collector) SetCompletionTarget(pkts uint64) { c.target = pkts }

// CompletionTarget returns the armed target (0 = none).
func (c *Collector) CompletionTarget() uint64 { return c.target }

// CompletionTime returns when node received its target'th distinct
// packet, and whether it has yet.
func (c *Collector) CompletionTime(node int) (sim.Time, bool) {
	ns := c.nodes.At(node)
	if ns == nil || !ns.completed {
		return 0, false
	}
	return ns.completedAt, true
}

// Completed returns how many tracked nodes have finished the workload.
func (c *Collector) Completed() int {
	n := 0
	c.nodes.Range(func(_ int, ns *nodeSeries) bool {
		if ns.completed {
			n++
		}
		return true
	})
	return n
}

// CompletionCDF returns the sorted per-node completion times in
// seconds, over the nodes that completed — the time-to-finish curve
// finite-workload experiments plot. Nodes that never completed are
// absent; compare len(CompletionCDF()) against Nodes() for the
// completion fraction.
func (c *Collector) CompletionCDF() []float64 {
	var out []float64
	c.nodes.Range(func(_ int, ns *nodeSeries) bool {
		if ns.completed {
			out = append(out, ns.completedAt.ToSeconds())
		}
		return true
	})
	sort.Float64s(out)
	return out
}

// Add records size bytes of the given kind for node at time now.
func (c *Collector) Add(now sim.Time, node int, k Kind, size int) {
	ns := c.nodes.At(node)
	if ns == nil {
		ns = &nodeSeries{}
		c.nodes.Put(node, ns)
	}
	if c.target > 0 && k == Useful {
		ns.usefulPkts++
		if ns.usefulPkts == c.target {
			ns.completedAt, ns.completed = now, true
		}
	}
	idx := int(now / c.bucket)
	s := ns.buckets[k]
	for len(s) <= idx {
		s = append(s, 0)
	}
	s[idx] += uint64(size)
	ns.buckets[k] = s
}

// Point is one sample of a bandwidth-versus-time series.
type Point struct {
	T    float64 // bucket start, seconds
	Kbps float64 // mean across nodes
	Std  float64 // standard deviation across nodes
}

// maxIdx returns the highest populated bucket index across all nodes
// and kinds (-1 when nothing was recorded). Computed on demand so the
// per-packet Add path carries no cross-node shared write.
func (c *Collector) maxIdx() int {
	max := -1
	c.nodes.Range(func(_ int, ns *nodeSeries) bool {
		for k := Kind(0); k < numKinds; k++ {
			if n := len(ns.buckets[k]); n-1 > max {
				max = n - 1
			}
		}
		return true
	})
	return max
}

// Series returns the across-node mean (and standard deviation) of
// per-node bandwidth of the given kind for every bucket, in Kbps —
// the series plotted in Figures 6, 7 and 9-15.
func (c *Collector) Series(k Kind) []Point {
	n := c.nodes.Len()
	if n == 0 {
		return nil
	}
	maxIdx := c.maxIdx()
	bucketSec := c.bucket.ToSeconds()
	out := make([]Point, maxIdx+1)
	for i := 0; i <= maxIdx; i++ {
		var sum, sumsq float64
		c.nodes.Range(func(_ int, ns *nodeSeries) bool {
			var v float64
			if i < len(ns.buckets[k]) {
				v = float64(ns.buckets[k][i]) * 8 / 1000 / bucketSec // Kbps
			}
			sum += v
			sumsq += v * v
			return true
		})
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		out[i] = Point{T: float64(i) * bucketSec, Kbps: mean, Std: math.Sqrt(variance)}
	}
	return out
}

// NodeSeries returns one node's bandwidth series of the given kind.
func (c *Collector) NodeSeries(node int, k Kind) []Point {
	ns := c.nodes.At(node)
	if ns == nil {
		return nil
	}
	maxIdx := c.maxIdx()
	bucketSec := c.bucket.ToSeconds()
	out := make([]Point, maxIdx+1)
	for i := 0; i <= maxIdx; i++ {
		var v float64
		if i < len(ns.buckets[k]) {
			v = float64(ns.buckets[k][i]) * 8 / 1000 / bucketSec
		}
		out[i] = Point{T: float64(i) * bucketSec, Kbps: v}
	}
	return out
}

// CDFAt returns the sorted per-node instantaneous bandwidths (Kbps) of
// kind k in the bucket containing time t — Figure 8's CDF data.
func (c *Collector) CDFAt(t sim.Time, k Kind) []float64 {
	idx := int(t / c.bucket)
	bucketSec := c.bucket.ToSeconds()
	var out []float64
	c.nodes.Range(func(_ int, ns *nodeSeries) bool {
		var v float64
		if idx >= 0 && idx < len(ns.buckets[k]) {
			v = float64(ns.buckets[k][idx]) * 8 / 1000 / bucketSec
		}
		out = append(out, v)
		return true
	})
	sort.Float64s(out)
	return out
}

// MeanOver returns the across-node, across-bucket mean bandwidth in
// Kbps of kind k over [from, to).
func (c *Collector) MeanOver(from, to sim.Time, k Kind) float64 {
	lo, hi, ok := c.bucketRange(from, to)
	if !ok || c.nodes.Len() == 0 {
		return 0
	}
	// One running sum over (node, bucket) in ascending order — float
	// addition order is part of the determinism contract, so this must
	// accumulate exactly like the pre-refactor collector.
	var sum float64
	c.nodes.Range(func(_ int, ns *nodeSeries) bool {
		for i := lo; i < hi; i++ {
			if i < len(ns.buckets[k]) {
				sum += float64(ns.buckets[k][i])
			}
		}
		return true
	})
	return c.meanKbps(sum, lo, hi, c.nodes.Len())
}

// MeanOverNodes is MeanOver restricted to the given node ids — used by
// churn experiments to measure survivors separately from crashed
// nodes. Ids never tracked contribute zero, like tracked nodes that
// never received a byte. Callers must pass nodes in a deterministic
// order (float aggregation order is behaviourally significant).
func (c *Collector) MeanOverNodes(nodes []int, from, to sim.Time, k Kind) float64 {
	lo, hi, ok := c.bucketRange(from, to)
	if !ok || len(nodes) == 0 {
		return 0
	}
	var sum float64
	for _, id := range nodes {
		ns := c.nodes.At(id)
		if ns == nil {
			continue
		}
		for i := lo; i < hi; i++ {
			if i < len(ns.buckets[k]) {
				sum += float64(ns.buckets[k][i])
			}
		}
	}
	return c.meanKbps(sum, lo, hi, len(nodes))
}

// MinOverNodes returns the smallest per-node mean bandwidth in Kbps
// of kind k over [from, to) among the given nodes — the goodput floor
// the worst-off node in the set actually sees, which a mean can hide.
// Untracked nodes count as zero. Returns 0 for an empty node list or
// window.
func (c *Collector) MinOverNodes(nodes []int, from, to sim.Time, k Kind) float64 {
	lo, hi, ok := c.bucketRange(from, to)
	if !ok || len(nodes) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, id := range nodes {
		var sum float64
		if ns := c.nodes.At(id); ns != nil {
			for i := lo; i < hi; i++ {
				if i < len(ns.buckets[k]) {
					sum += float64(ns.buckets[k][i])
				}
			}
		}
		if m := c.meanKbps(sum, lo, hi, 1); m < min {
			min = m
		}
	}
	return min
}

// Excluding returns nodes minus excluded, preserving order — the
// honest-subset filter for adversarial runs (pass a deployment's
// colluders as excluded). Neither input is mutated.
func Excluding(nodes, excluded []int) []int {
	if len(excluded) == 0 {
		return append([]int(nil), nodes...)
	}
	drop := make(map[int]bool, len(excluded))
	for _, id := range excluded {
		drop[id] = true
	}
	out := make([]int, 0, len(nodes))
	for _, id := range nodes { // input order preserved: no map iteration
		if !drop[id] {
			out = append(out, id)
		}
	}
	return out
}

// bucketRange clips [from, to) to populated buckets.
func (c *Collector) bucketRange(from, to sim.Time) (lo, hi int, ok bool) {
	lo, hi = int(from/c.bucket), int(to/c.bucket)
	if m := c.maxIdx(); hi > m+1 {
		hi = m + 1
	}
	return lo, hi, hi > lo
}

func (c *Collector) meanKbps(sum float64, lo, hi, nodes int) float64 {
	return sum * 8 / 1000 / c.bucket.ToSeconds() / float64(hi-lo) / float64(nodes)
}

// Total returns the total bytes of kind k across all nodes.
func (c *Collector) Total(k Kind) uint64 {
	var sum uint64
	c.nodes.Range(func(_ int, ns *nodeSeries) bool { // integer sum: order-independent
		for _, v := range ns.buckets[k] {
			sum += v
		}
		return true
	})
	return sum
}

// DuplicateRatio returns duplicate bytes / raw bytes (the paper reports
// <10% for Bullet).
func (c *Collector) DuplicateRatio() float64 {
	raw := c.Total(Raw)
	if raw == 0 {
		return 0
	}
	return float64(c.Total(Duplicate)) / float64(raw)
}

// Nodes returns the number of tracked nodes.
func (c *Collector) Nodes() int { return c.nodes.Len() }
