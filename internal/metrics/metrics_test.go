package metrics

import (
	"testing"

	"bullet/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	c := NewCollector(sim.Second)
	// Node 1 receives 125000 bytes in second 0 => 1000 Kbps.
	c.Add(500*sim.Millisecond, 1, Useful, 125000)
	c.Add(1500*sim.Millisecond, 1, Useful, 62500) // 500 Kbps in second 1
	s := c.Series(Useful)
	if len(s) != 2 {
		t.Fatalf("series length %d", len(s))
	}
	if s[0].Kbps != 1000 || s[1].Kbps != 500 {
		t.Fatalf("series %+v", s)
	}
	if s[0].T != 0 || s[1].T != 1 {
		t.Fatalf("timestamps %+v", s)
	}
}

func TestSeriesMeanAcrossNodes(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 1, Useful, 125000) // 1000 Kbps
	c.Add(0, 2, Useful, 0)      // 0 Kbps (explicit zero via Track)
	c.Track(2)
	s := c.Series(Useful)
	if s[0].Kbps != 500 {
		t.Fatalf("mean %v want 500", s[0].Kbps)
	}
	if s[0].Std != 500 {
		t.Fatalf("std %v want 500", s[0].Std)
	}
}

func TestTrackIncludesSilentNodes(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Track(1)
	c.Track(2)
	c.Add(0, 1, Useful, 125000)
	if got := c.Series(Useful)[0].Kbps; got != 500 {
		t.Fatalf("mean with silent node %v", got)
	}
	if c.Nodes() != 2 {
		t.Fatalf("nodes=%d", c.Nodes())
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(10*sim.Second, 1, Useful, 125000)
	c.Add(10*sim.Second, 2, Useful, 62500)
	c.Track(3)
	cdf := c.CDFAt(10*sim.Second+500*sim.Millisecond, Useful)
	if len(cdf) != 3 {
		t.Fatalf("cdf size %d", len(cdf))
	}
	if cdf[0] != 0 || cdf[1] != 500 || cdf[2] != 1000 {
		t.Fatalf("cdf %v", cdf)
	}
}

func TestMeanOver(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 1, Raw, 125000)
	c.Add(sim.Second, 1, Raw, 125000)
	c.Add(2*sim.Second, 1, Raw, 0)
	got := c.MeanOver(0, 2*sim.Second, Raw)
	if got != 1000 {
		t.Fatalf("MeanOver=%v want 1000", got)
	}
	if c.MeanOver(5*sim.Second, 4*sim.Second, Raw) != 0 {
		t.Fatal("inverted range should be 0")
	}
}

func TestDuplicateRatio(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 1, Raw, 1000)
	c.Add(0, 1, Duplicate, 100)
	if r := c.DuplicateRatio(); r != 0.1 {
		t.Fatalf("ratio %v", r)
	}
	empty := NewCollector(sim.Second)
	if empty.DuplicateRatio() != 0 {
		t.Fatal("empty ratio nonzero")
	}
}

func TestTotals(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 1, Parent, 10)
	c.Add(3*sim.Second, 2, Parent, 20)
	if c.Total(Parent) != 30 {
		t.Fatalf("total %d", c.Total(Parent))
	}
}

func TestNodeSeries(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 7, Useful, 125000)
	c.Add(sim.Second, 8, Useful, 125000)
	s := c.NodeSeries(7, Useful)
	if len(s) != 2 || s[0].Kbps != 1000 || s[1].Kbps != 0 {
		t.Fatalf("node series %+v", s)
	}
	if c.NodeSeries(99, Useful) != nil {
		t.Fatal("series for unknown node")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Useful: "useful", Raw: "raw", Parent: "from-parent", Duplicate: "duplicate"} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}
