package metrics

import (
	"testing"

	"bullet/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	c := NewCollector(sim.Second)
	// Node 1 receives 125000 bytes in second 0 => 1000 Kbps.
	c.Add(500*sim.Millisecond, 1, Useful, 125000)
	c.Add(1500*sim.Millisecond, 1, Useful, 62500) // 500 Kbps in second 1
	s := c.Series(Useful)
	if len(s) != 2 {
		t.Fatalf("series length %d", len(s))
	}
	if s[0].Kbps != 1000 || s[1].Kbps != 500 {
		t.Fatalf("series %+v", s)
	}
	if s[0].T != 0 || s[1].T != 1 {
		t.Fatalf("timestamps %+v", s)
	}
}

func TestSeriesMeanAcrossNodes(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 1, Useful, 125000) // 1000 Kbps
	c.Add(0, 2, Useful, 0)      // 0 Kbps (explicit zero via Track)
	c.Track(2)
	s := c.Series(Useful)
	if s[0].Kbps != 500 {
		t.Fatalf("mean %v want 500", s[0].Kbps)
	}
	if s[0].Std != 500 {
		t.Fatalf("std %v want 500", s[0].Std)
	}
}

func TestTrackIncludesSilentNodes(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Track(1)
	c.Track(2)
	c.Add(0, 1, Useful, 125000)
	if got := c.Series(Useful)[0].Kbps; got != 500 {
		t.Fatalf("mean with silent node %v", got)
	}
	if c.Nodes() != 2 {
		t.Fatalf("nodes=%d", c.Nodes())
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(10*sim.Second, 1, Useful, 125000)
	c.Add(10*sim.Second, 2, Useful, 62500)
	c.Track(3)
	cdf := c.CDFAt(10*sim.Second+500*sim.Millisecond, Useful)
	if len(cdf) != 3 {
		t.Fatalf("cdf size %d", len(cdf))
	}
	if cdf[0] != 0 || cdf[1] != 500 || cdf[2] != 1000 {
		t.Fatalf("cdf %v", cdf)
	}
}

func TestMeanOver(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 1, Raw, 125000)
	c.Add(sim.Second, 1, Raw, 125000)
	c.Add(2*sim.Second, 1, Raw, 0)
	got := c.MeanOver(0, 2*sim.Second, Raw)
	if got != 1000 {
		t.Fatalf("MeanOver=%v want 1000", got)
	}
	if c.MeanOver(5*sim.Second, 4*sim.Second, Raw) != 0 {
		t.Fatal("inverted range should be 0")
	}
}

func TestDuplicateRatio(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 1, Raw, 1000)
	c.Add(0, 1, Duplicate, 100)
	if r := c.DuplicateRatio(); r != 0.1 {
		t.Fatalf("ratio %v", r)
	}
	empty := NewCollector(sim.Second)
	if empty.DuplicateRatio() != 0 {
		t.Fatal("empty ratio nonzero")
	}
}

func TestTotals(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 1, Parent, 10)
	c.Add(3*sim.Second, 2, Parent, 20)
	if c.Total(Parent) != 30 {
		t.Fatalf("total %d", c.Total(Parent))
	}
}

func TestNodeSeries(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Add(0, 7, Useful, 125000)
	c.Add(sim.Second, 8, Useful, 125000)
	s := c.NodeSeries(7, Useful)
	if len(s) != 2 || s[0].Kbps != 1000 || s[1].Kbps != 0 {
		t.Fatalf("node series %+v", s)
	}
	if c.NodeSeries(99, Useful) != nil {
		t.Fatal("series for unknown node")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Useful: "useful", Raw: "raw", Parent: "from-parent", Duplicate: "duplicate"} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}

// Window-edge behavior of MeanOver: degenerate, empty, and
// out-of-range windows must all return 0 rather than NaN or panic.
func TestMeanOverWindowEdges(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Track(1)
	c.Track(2)
	c.Add(0, 1, Useful, 125000)            // 1000 Kbps in bucket 0
	c.Add(5*sim.Second, 2, Useful, 250000) // 2000 Kbps in bucket 5

	// start == end: zero-width window.
	if got := c.MeanOver(3*sim.Second, 3*sim.Second, Useful); got != 0 {
		t.Errorf("zero-width window = %v, want 0", got)
	}
	// Inverted window.
	if got := c.MeanOver(10*sim.Second, 2*sim.Second, Useful); got != 0 {
		t.Errorf("inverted window = %v, want 0", got)
	}
	// Entirely beyond the recorded data: clamped to nothing.
	if got := c.MeanOver(100*sim.Second, 200*sim.Second, Useful); got != 0 {
		t.Errorf("out-of-range window = %v, want 0", got)
	}
	// Window covering only empty buckets between the two samples.
	if got := c.MeanOver(sim.Second, 5*sim.Second, Useful); got != 0 {
		t.Errorf("empty-bucket window = %v, want 0", got)
	}
	// A window extending past the last bucket clamps to recorded data:
	// bucket 5 holds 2000 Kbps on one of two nodes -> 1000 Kbps mean.
	if got := c.MeanOver(5*sim.Second, 60*sim.Second, Useful); got != 1000 {
		t.Errorf("clamped window = %v, want 1000", got)
	}
	// Full window: 1000 + 2000 Kbps over 6 buckets and 2 nodes.
	want := 3000.0 / 6 / 2
	if got := c.MeanOver(0, 6*sim.Second, Useful); got != want {
		t.Errorf("full window = %v, want %v", got, want)
	}
}

// An empty collector (no tracked nodes, no samples) reports 0 for any
// window.
func TestMeanOverEmptyCollector(t *testing.T) {
	c := NewCollector(sim.Second)
	if got := c.MeanOver(0, 10*sim.Second, Useful); got != 0 {
		t.Errorf("empty collector = %v, want 0", got)
	}
	if got := c.MeanOver(0, 0, Raw); got != 0 {
		t.Errorf("empty collector zero window = %v, want 0", got)
	}
	if c.Nodes() != 0 {
		t.Errorf("empty collector tracks %d nodes", c.Nodes())
	}
}

func TestMeanOverNodes(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Track(1)
	c.Track(2)
	c.Track(3)
	c.Add(0, 1, Useful, 125000) // 1000 Kbps
	c.Add(0, 2, Useful, 250000) // 2000 Kbps

	// Subset mean over one bucket.
	if got := c.MeanOverNodes([]int{1, 2}, 0, sim.Second, Useful); got != 1500 {
		t.Errorf("subset mean = %v, want 1500", got)
	}
	// A node with no bytes dilutes the mean.
	if got := c.MeanOverNodes([]int{1, 3}, 0, sim.Second, Useful); got != 500 {
		t.Errorf("diluted mean = %v, want 500", got)
	}
	// Unknown ids contribute zero instead of panicking.
	if got := c.MeanOverNodes([]int{1, 99}, 0, sim.Second, Useful); got != 500 {
		t.Errorf("unknown-id mean = %v, want 500", got)
	}
	// Empty node set and degenerate windows.
	if got := c.MeanOverNodes(nil, 0, sim.Second, Useful); got != 0 {
		t.Errorf("nil node set = %v, want 0", got)
	}
	if got := c.MeanOverNodes([]int{1}, sim.Second, sim.Second, Useful); got != 0 {
		t.Errorf("zero-width window = %v, want 0", got)
	}
	// Consistency with MeanOver when the set is all tracked nodes.
	all := c.MeanOver(0, sim.Second, Useful)
	if got := c.MeanOverNodes([]int{1, 2, 3}, 0, sim.Second, Useful); got != all {
		t.Errorf("MeanOverNodes(all) = %v, MeanOver = %v", got, all)
	}
}

func TestMinOverNodes(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Track(1)
	c.Track(2)
	c.Track(3)
	c.Add(0, 1, Useful, 125000) // 1000 Kbps
	c.Add(0, 2, Useful, 250000) // 2000 Kbps
	c.Add(0, 3, Useful, 62500)  // 500 Kbps

	if got := c.MinOverNodes([]int{1, 2, 3}, 0, sim.Second, Useful); got != 500 {
		t.Errorf("min = %v, want 500", got)
	}
	if got := c.MinOverNodes([]int{1, 2}, 0, sim.Second, Useful); got != 1000 {
		t.Errorf("subset min = %v, want 1000", got)
	}
	// Unknown ids count as zero — a starved node must not be hidden.
	if got := c.MinOverNodes([]int{1, 99}, 0, sim.Second, Useful); got != 0 {
		t.Errorf("unknown-id min = %v, want 0", got)
	}
	// Empty node set and degenerate windows.
	if got := c.MinOverNodes(nil, 0, sim.Second, Useful); got != 0 {
		t.Errorf("nil node set = %v, want 0", got)
	}
	if got := c.MinOverNodes([]int{1}, sim.Second, sim.Second, Useful); got != 0 {
		t.Errorf("zero-width window = %v, want 0", got)
	}
	// A single node's min equals its mean.
	if got, want := c.MinOverNodes([]int{2}, 0, sim.Second, Useful), c.MeanOverNodes([]int{2}, 0, sim.Second, Useful); got != want {
		t.Errorf("single-node min = %v, mean = %v", got, want)
	}
}

func TestExcluding(t *testing.T) {
	nodes := []int{5, 1, 9, 3, 7}
	got := Excluding(nodes, []int{9, 5, 42})
	if want := []int{1, 3, 7}; !equalInts(got, want) {
		t.Errorf("Excluding = %v, want %v", got, want)
	}
	// Nil exclusion copies rather than aliasing the input.
	cp := Excluding(nodes, nil)
	if !equalInts(cp, nodes) {
		t.Errorf("Excluding(nil) = %v, want %v", cp, nodes)
	}
	cp[0] = -1
	if nodes[0] != 5 {
		t.Error("Excluding aliased its input slice")
	}
	if got := Excluding(nil, []int{1}); len(got) != 0 {
		t.Errorf("Excluding(nil nodes) = %v, want empty", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompletionTracking(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Track(1)
	c.Track(2)
	c.Track(3)
	c.SetCompletionTarget(3)
	if got := c.CompletionTarget(); got != 3 {
		t.Fatalf("CompletionTarget = %d, want 3", got)
	}
	// Node 1 completes at t=5s on its third Useful packet; duplicates
	// and raw bytes never count.
	c.Add(1*sim.Second, 1, Useful, 1500)
	c.Add(2*sim.Second, 1, Duplicate, 1500)
	c.Add(3*sim.Second, 1, Raw, 1500)
	c.Add(4*sim.Second, 1, Useful, 1500)
	if _, done := c.CompletionTime(1); done {
		t.Fatal("node 1 completed after 2 useful packets, target is 3")
	}
	c.Add(5*sim.Second, 1, Useful, 1500)
	at, done := c.CompletionTime(1)
	if !done || at != 5*sim.Second {
		t.Fatalf("CompletionTime(1) = (%v, %v), want (5s, true)", at, done)
	}
	// Extra packets do not move the completion time.
	c.Add(9*sim.Second, 1, Useful, 1500)
	if at, _ := c.CompletionTime(1); at != 5*sim.Second {
		t.Errorf("completion time moved to %v after extra packets", at)
	}
	// Node 2 completes later; node 3 never does.
	c.Add(6*sim.Second, 2, Useful, 100)
	c.Add(7*sim.Second, 2, Useful, 100)
	c.Add(8*sim.Second, 2, Useful, 100)
	if got := c.Completed(); got != 2 {
		t.Errorf("Completed = %d, want 2", got)
	}
	cdf := c.CompletionCDF()
	if len(cdf) != 2 || cdf[0] != 5 || cdf[1] != 8 {
		t.Errorf("CompletionCDF = %v, want [5 8]", cdf)
	}
	if _, done := c.CompletionTime(3); done {
		t.Error("node 3 should not have completed")
	}
	if _, done := c.CompletionTime(99); done {
		t.Error("untracked node should not have completed")
	}
}

func TestCompletionDisabledByDefault(t *testing.T) {
	c := NewCollector(sim.Second)
	for i := 0; i < 10; i++ {
		c.Add(sim.Time(i)*sim.Second, 1, Useful, 1500)
	}
	if got := c.Completed(); got != 0 {
		t.Errorf("Completed = %d without a target, want 0", got)
	}
	if cdf := c.CompletionCDF(); len(cdf) != 0 {
		t.Errorf("CompletionCDF = %v without a target, want empty", cdf)
	}
}
