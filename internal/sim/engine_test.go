package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30*Millisecond, func() { got = append(got, 3) })
	e.At(10*Millisecond, func() { got = append(got, 1) })
	e.At(20*Millisecond, func() { got = append(got, 2) })
	e.Run(Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Millisecond, func() { got = append(got, i) })
	}
	e.Run(Second)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(10*Millisecond, func() { fired = true })
	tm.Cancel()
	e.Run(Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("cancelled timer not stopped")
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(250*Millisecond, func() { at = e.Now() })
	e.Run(Second)
	if at != 250*Millisecond {
		t.Fatalf("After fired at %v, want 250ms", at)
	}
	if e.Now() != Second {
		t.Fatalf("clock advanced to %v, want until=1s", e.Now())
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tick Timer
	tick = e.Every(100*Millisecond, func() {
		n++
		if n == 5 {
			tick.Cancel()
		}
	})
	e.Run(10 * Second)
	if n != 5 {
		t.Fatalf("Every fired %d times, want 5", n)
	}
}

func TestEngineRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(2*Second, func() { fired++ })
	e.Run(Second)
	if fired != 0 {
		t.Fatal("event past until fired")
	}
	e.Run(3 * Second)
	if fired != 1 {
		t.Fatal("event not fired on extended run")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10*Millisecond, func() { fired++; e.Stop() })
	e.At(20*Millisecond, func() { fired++ })
	e.Run(Second)
	if fired != 1 {
		t.Fatalf("Stop did not halt run; fired=%d", fired)
	}
}

func TestEngineSchedulingInPast(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(10*Millisecond, func() {
		e.At(5*Millisecond, func() { order = append(order, "past") })
		e.At(10*Millisecond, func() { order = append(order, "now") })
	})
	e.Run(Second)
	if len(order) != 2 || order[0] != "past" || order[1] != "now" {
		t.Fatalf("past-scheduled events mishandled: %v", order)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewEngine(42).RNG(7)
	b := NewEngine(42).RNG(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed,id) produced different streams")
		}
	}
	c := NewEngine(42).RNG(8)
	same := 0
	d := NewEngine(42).RNG(7)
	for i := 0; i < 100; i++ {
		if c.Int63() == d.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct ids produced correlated streams (%d collisions)", same)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5)=%v", Seconds(1.5))
	}
	if got := (2500 * Millisecond).ToSeconds(); got != 2.5 {
		t.Fatalf("ToSeconds=%v", got)
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(99)
		var times []Time
		for _, d := range delays {
			e.At(Time(d)*Microsecond, func() { times = append(times, e.Now()) })
		}
		e.Run(Time(1 << 40))
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 25; i++ {
		e.At(Time(i)*Millisecond, func() {})
	}
	e.Run(Second)
	if e.Fired() != 25 {
		t.Fatalf("Fired=%d want 25", e.Fired())
	}
}

// Regression: a live periodic timer must not report Stopped between
// ticks. The old implementation cleared the underlying event's callback
// during each fire, so Stopped flickered true mid-series.
func TestEveryStoppedMidSeries(t *testing.T) {
	e := NewEngine(1)
	var tick Timer
	var mid []bool
	tick = e.Every(100*Millisecond, func() {
		mid = append(mid, tick.Stopped())
	})
	e.At(450*Millisecond, func() {
		if tick.Stopped() {
			t.Error("live periodic timer reported Stopped between ticks")
		}
	})
	e.Run(500 * Millisecond)
	for i, s := range mid {
		if s {
			t.Fatalf("tick %d observed Stopped()=true during a live series", i)
		}
	}
	if len(mid) != 5 {
		t.Fatalf("fired %d ticks, want 5", len(mid))
	}
	tick.Cancel()
	if !tick.Stopped() {
		t.Fatal("cancelled periodic timer not Stopped")
	}
}

// Cancelling a periodic timer from inside its own callback must stop
// the series immediately (no further re-arm).
func TestEveryCancelDuringFire(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tick Timer
	tick = e.Every(10*Millisecond, func() {
		n++
		tick.Cancel()
	})
	e.Run(Second)
	if n != 1 {
		t.Fatalf("series fired %d times after self-cancel, want 1", n)
	}
	if !tick.Stopped() {
		t.Fatal("self-cancelled timer not Stopped")
	}
}

// A one-shot timer reports Stopped from within its own callback (it is
// already firing and will not fire again), matching historical behavior.
func TestOneShotStoppedDuringFire(t *testing.T) {
	e := NewEngine(1)
	var tm Timer
	stopped := false
	tm = e.At(Millisecond, func() { stopped = tm.Stopped() })
	e.Run(Second)
	if !stopped {
		t.Fatal("one-shot timer not Stopped during its own fire")
	}
	if !tm.Stopped() {
		t.Fatal("fired one-shot timer not Stopped afterwards")
	}
}

// Stale handles must stay safe no-ops after their slot is recycled:
// Cancel on an old generation must not kill the new occupant.
func TestTimerStaleHandleAfterSlotReuse(t *testing.T) {
	e := NewEngine(1)
	old := e.At(Millisecond, func() {})
	e.Run(2 * Millisecond) // fires; slot freed
	if !old.Stopped() {
		t.Fatal("fired timer not Stopped")
	}
	fired := false
	fresh := e.At(10*Millisecond, func() { fired = true }) // reuses the slot
	old.Cancel()                                           // stale: must not affect fresh
	if fresh.Stopped() {
		t.Fatal("stale Cancel affected the slot's new occupant")
	}
	e.Run(Second)
	if !fired {
		t.Fatal("new timer did not fire after stale Cancel")
	}
	var zero Timer
	if !zero.Stopped() {
		t.Fatal("zero Timer must report Stopped")
	}
	zero.Cancel() // must not panic
}

// Schedule and ScheduleArg interleave with At in strict (time, seq)
// order.
func TestScheduleAndScheduleArgOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(5*Millisecond, func() { got = append(got, 0) })
	e.ScheduleArg(5*Millisecond, func(a any) { got = append(got, a.(int)) }, 1)
	e.At(5*Millisecond, func() { got = append(got, 2) })
	e.ScheduleAfter(5*Millisecond, func() { got = append(got, 3) })
	e.Run(Second)
	for i := 0; i < 4; i++ {
		if got[i] != i {
			t.Fatalf("mixed scheduling not FIFO at same instant: %v", got)
		}
	}
}

// Two engines with the same seed executing the same workload must agree
// exactly on clock, fired count, and RNG draws.
func TestEngineGoldenDeterminism(t *testing.T) {
	trace := func() (uint64, Time, int64) {
		e := NewEngine(42)
		rng := e.RNG(7)
		var sum int64
		for i := 0; i < 500; i++ {
			d := Duration(rng.Int63n(int64(Second)))
			e.Schedule(e.Now()+d, func() { sum += int64(e.Now()) })
		}
		e.Every(33*Millisecond, func() { sum++ })
		end := e.Run(2 * Second)
		return e.Fired(), end, sum
	}
	f1, t1, s1 := trace()
	f2, t2, s2 := trace()
	if f1 != f2 || t1 != t2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%d,%v,%d) vs (%d,%v,%d)", f1, t1, s1, f2, t2, s2)
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks. BenchmarkEngineSchedule is the headline
// allocation-free scheduler number: the seed implementation cost ~3
// allocations per event (heap-allocated event, container/heap
// interface boxing, Timer handle); the value-heap scheduler costs zero
// in steady state.
// ---------------------------------------------------------------------

func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Time(i%1000)*Microsecond, fn)
		if e.Pending() >= 1024 {
			e.Run(e.Now() + Second)
		}
	}
	e.Run(1 << 62)
}

func BenchmarkEngineScheduleArg(b *testing.B) {
	e := NewEngine(1)
	var sink int
	fn := func(a any) { sink += a.(int) }
	arg := any(1) // pre-boxed: steady-state events allocate nothing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(e.Now()+Time(i%1000)*Microsecond, fn, arg)
		if e.Pending() >= 1024 {
			e.Run(e.Now() + Second)
		}
	}
	e.Run(1 << 62)
	_ = sink
}

func BenchmarkEngineAtTimer(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Time(i%1000)*Microsecond, fn)
		if e.Pending() >= 1024 {
			e.Run(e.Now() + Second)
		}
	}
	e.Run(1 << 62)
}

func BenchmarkEngineEvery(b *testing.B) {
	e := NewEngine(1)
	n := 0
	e.Every(Millisecond, func() { n++ })
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(Time(b.N) * Millisecond)
	b.StopTimer()
	if n < b.N {
		b.Fatalf("fired %d ticks, want >= %d", n, b.N)
	}
}

// TestCalendarHorizonOrdering schedules events across both sides of
// the ring window — including deep overflow-heap territory — out of
// order, and checks they fire in exact (time, scheduling) order. This
// pins the overflow migration path: events start on the heap, move
// into the ring as the clock advances, and must interleave perfectly
// with events pushed straight into their buckets.
func TestCalendarHorizonOrdering(t *testing.T) {
	e := NewEngine(1)
	times := []Time{
		500 * Millisecond, // overflow at push time
		1 * Millisecond,
		200 * Millisecond, // overflow at push time
		133 * Millisecond,
		10 * Second, // deep overflow
		134 * Millisecond,
		135 * Millisecond,
		2 * Millisecond,
		100 * Microsecond,
		500 * Millisecond, // duplicate instant: fires after index 0
	}
	var got []int
	for i, at := range times {
		i := i
		e.Schedule(at, func() { got = append(got, i) })
	}
	e.Run(20 * Second)
	want := []int{8, 1, 7, 3, 5, 6, 2, 0, 9, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestCalendarMigrationTieOrder creates an exact-time tie between an
// event that waited on the overflow heap and one pushed directly into
// the ring once the window reached that slot. The overflow event was
// scheduled first, so it must fire first.
func TestCalendarMigrationTieOrder(t *testing.T) {
	e := NewEngine(1)
	const at = 200 * Millisecond
	var got []string
	e.Schedule(at, func() { got = append(got, "early") }) // overflow now
	e.Schedule(150*Millisecond, func() {
		// at is now inside the ring window: direct bucket push, and
		// its fresh seq must order it after the migrated twin.
		e.Schedule(at, func() { got = append(got, "late") })
	})
	e.Run(Second)
	if len(got) != 2 || got[0] != "early" || got[1] != "late" {
		t.Fatalf("tie order %v, want [early late]", got)
	}
}

// TestCalendarClockJumps runs the engine across idle gaps much larger
// than the ring window (Run to a far target with nothing pending, then
// AdvanceTo further still) and checks scheduling keeps working with
// the window re-based far from slot zero.
func TestCalendarClockJumps(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Run(5 * Second) // empty run: clock lands on the target
	if e.Now() != 5*Second {
		t.Fatalf("now = %v after empty run, want 5s", e.Now())
	}
	e.AdvanceTo(90 * Second)
	e.Schedule(e.Now()+3*Millisecond, func() { fired++ })
	e.Schedule(e.Now()+400*Millisecond, func() { fired++ }) // overflow
	e.Schedule(e.Now(), func() { fired++ })                 // current instant
	e.Run(100 * Second)
	if fired != 3 {
		t.Fatalf("fired %d events after clock jumps, want 3", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}
