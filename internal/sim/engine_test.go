package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30*Millisecond, func() { got = append(got, 3) })
	e.At(10*Millisecond, func() { got = append(got, 1) })
	e.At(20*Millisecond, func() { got = append(got, 2) })
	e.Run(Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Millisecond, func() { got = append(got, i) })
	}
	e.Run(Second)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(10*Millisecond, func() { fired = true })
	tm.Cancel()
	e.Run(Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("cancelled timer not stopped")
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(250*Millisecond, func() { at = e.Now() })
	e.Run(Second)
	if at != 250*Millisecond {
		t.Fatalf("After fired at %v, want 250ms", at)
	}
	if e.Now() != Second {
		t.Fatalf("clock advanced to %v, want until=1s", e.Now())
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tick *Timer
	tick = e.Every(100*Millisecond, func() {
		n++
		if n == 5 {
			tick.Cancel()
		}
	})
	e.Run(10 * Second)
	if n != 5 {
		t.Fatalf("Every fired %d times, want 5", n)
	}
}

func TestEngineRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(2*Second, func() { fired++ })
	e.Run(Second)
	if fired != 0 {
		t.Fatal("event past until fired")
	}
	e.Run(3 * Second)
	if fired != 1 {
		t.Fatal("event not fired on extended run")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10*Millisecond, func() { fired++; e.Stop() })
	e.At(20*Millisecond, func() { fired++ })
	e.Run(Second)
	if fired != 1 {
		t.Fatalf("Stop did not halt run; fired=%d", fired)
	}
}

func TestEngineSchedulingInPast(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(10*Millisecond, func() {
		e.At(5*Millisecond, func() { order = append(order, "past") })
		e.At(10*Millisecond, func() { order = append(order, "now") })
	})
	e.Run(Second)
	if len(order) != 2 || order[0] != "past" || order[1] != "now" {
		t.Fatalf("past-scheduled events mishandled: %v", order)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewEngine(42).RNG(7)
	b := NewEngine(42).RNG(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed,id) produced different streams")
		}
	}
	c := NewEngine(42).RNG(8)
	same := 0
	d := NewEngine(42).RNG(7)
	for i := 0; i < 100; i++ {
		if c.Int63() == d.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct ids produced correlated streams (%d collisions)", same)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5)=%v", Seconds(1.5))
	}
	if got := (2500 * Millisecond).ToSeconds(); got != 2.5 {
		t.Fatalf("ToSeconds=%v", got)
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(99)
		var times []Time
		for _, d := range delays {
			e.At(Time(d)*Microsecond, func() { times = append(times, e.Now()) })
		}
		e.Run(Time(1 << 40))
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 25; i++ {
		e.At(Time(i)*Millisecond, func() {})
	}
	e.Run(Second)
	if e.Fired() != 25 {
		t.Fatalf("Fired=%d want 25", e.Fired())
	}
}
