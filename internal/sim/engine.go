// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, so a
// run is a pure function of the initial configuration and RNG seeds.
// All protocol code in this repository (netem, TFRC, RanSub, Bullet)
// executes inside engine callbacks on a single goroutine.
package sim

import (
	"container/heap"
	"math/rand"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a virtual time span in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts a floating point number of seconds to a Duration.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// ToSeconds converts a Time or Duration to floating point seconds.
func (t Time) ToSeconds() float64 { return float64(t) / float64(Second) }

// Timer is a handle for a scheduled event. Cancel prevents the callback
// from running if it has not fired yet. For periodic timers created with
// Every, Cancel stops the whole series.
type Timer struct {
	ev        *event
	cancelled bool
}

// Cancel stops the timer. It is safe to call multiple times and after
// the event has fired.
func (t *Timer) Cancel() {
	if t == nil {
		return
	}
	t.cancelled = true
	if t.ev != nil {
		t.ev.fn = nil
	}
}

// Stopped reports whether the timer was cancelled or has fired (and,
// for periodic timers, will not fire again).
func (t *Timer) Stopped() bool {
	return t == nil || t.cancelled || t.ev == nil || t.ev.fn == nil
}

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-instant events
	fn  func()
	idx int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	seed    int64
	fired   uint64
}

// NewEngine returns an engine with the clock at zero. The seed is used
// to derive per-entity RNG streams via RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the master seed the engine was constructed with.
func (e *Engine) Seed() int64 { return e.seed }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including
// cancelled timers that have not been popped yet).
func (e *Engine) Pending() int { return len(e.events) }

// RNG derives a deterministic random stream for the given entity id.
// Distinct ids yield independent streams; the same (seed, id) pair
// always yields the same stream.
func (e *Engine) RNG(id int64) *rand.Rand {
	// splitmix64-style mixing of seed and id.
	z := uint64(e.seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) runs the event at the current time, after already-queued
// same-instant events. Returns a cancellable Timer.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run every period, starting after the first
// period elapses. The returned Timer cancels the whole series.
func (e *Engine) Every(period Duration, fn func()) *Timer {
	t := &Timer{}
	var tick func()
	tick = func() {
		fn()
		if !t.cancelled {
			t.ev = e.At(e.now+period, tick).ev
		}
	}
	t.ev = e.At(e.now+period, tick).ev
	return t
}

// Run executes events until the queue drains, the clock passes until,
// or Stop is called. It returns the time of the last executed event.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.events)
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }
