// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, so a
// run is a pure function of the initial configuration and RNG seeds.
// All protocol code in this repository (netem, TFRC, RanSub, Bullet)
// executes inside engine callbacks on a single goroutine.
//
// # Scheduler internals
//
// The queue is a 4-ary min-heap of value-type events ordered by
// (time, sequence). Events live inline in the heap slice — no per-event
// heap allocation, no index bookkeeping (cancellation is lazy, so the
// heap never removes from the middle). A 4-ary layout halves tree depth
// versus a binary heap and keeps each sift's child scan inside one or
// two cache lines.
//
// Cancellable timers are handled through a slot table with generation
// counters: At/After/Every allocate a slot from a free list and return a
// value-type Timer naming (slot, generation). Cancel and Stopped check
// the generation, so stale handles are always safe no-ops. The hot
// fire-and-forget paths (Schedule, ScheduleArg) skip the slot table
// entirely; ScheduleArg additionally avoids per-event closures by
// carrying a caller-owned argument to a reusable callback.
//
// Periodic timers created with Every re-arm in place: the period is
// stored in the event itself and the engine re-pushes the fired event
// with a fresh sequence number, so a periodic series costs zero
// allocations per tick after setup.
package sim

import "math/rand"

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a virtual time span in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts a floating point number of seconds to a Duration.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// ToSeconds converts a Time or Duration to floating point seconds.
func (t Time) ToSeconds() float64 { return float64(t) / float64(Second) }

// Timer is a handle for a scheduled event. Cancel prevents the callback
// from running if it has not fired yet. For periodic timers created with
// Every, Cancel stops the whole series. The zero Timer is valid: Cancel
// is a no-op and Stopped reports true.
type Timer struct {
	e    *Engine
	slot int32
	gen  uint64
}

// Cancel stops the timer. It is safe to call multiple times, after the
// event has fired, and on the zero Timer.
func (t Timer) Cancel() {
	if t.e == nil {
		return
	}
	s := &t.e.slots[t.slot]
	if s.gen == t.gen && !s.done {
		s.cancelled = true
	}
}

// Stopped reports whether the timer was cancelled or has fired and will
// not fire again. A periodic timer reports stopped only after Cancel:
// between ticks it is live.
func (t Timer) Stopped() bool {
	if t.e == nil {
		return true
	}
	s := &t.e.slots[t.slot]
	if s.gen != t.gen {
		return true // slot recycled: that timer finished long ago
	}
	return s.done || s.cancelled
}

// event is a value-type queue entry. Exactly one of fn and afn is set.
type event struct {
	at     Time
	seq    uint64   // tie-break: FIFO among same-instant events
	slot   int32    // timer slot index, or noSlot for fire-and-forget
	period Duration // > 0: periodic, re-armed after each fire
	fn     func()
	afn    func(any)
	arg    any
}

const noSlot = int32(-1)

// timerSlot tracks the liveness of one outstanding Timer handle.
type timerSlot struct {
	gen       uint64
	done      bool
	cancelled bool
}

// Engine is a deterministic discrete-event scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	heap    []event // 4-ary min-heap ordered by (at, seq)
	seq     uint64
	stopped bool
	seed    int64
	fired   uint64

	slots []timerSlot
	free  []int32 // free slot indices
}

// NewEngine returns an engine with the clock at zero. The seed is used
// to derive per-entity RNG streams via RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the master seed the engine was constructed with.
func (e *Engine) Seed() int64 { return e.seed }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including
// cancelled timers that have not been popped yet).
func (e *Engine) Pending() int { return len(e.heap) }

// RNG derives a deterministic random stream for the given entity id.
// Distinct ids yield independent streams; the same (seed, id) pair
// always yields the same stream.
func (e *Engine) RNG(id int64) *rand.Rand {
	// splitmix64-style mixing of seed and id.
	z := uint64(e.seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// ---------------------------------------------------------------------
// 4-ary value heap.
// ---------------------------------------------------------------------

func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and sifts it up.
func (e *Engine) push(ev event) {
	h := append(e.heap, ev)
	e.heap = h
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(&ev, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// pop removes and returns the minimum event.
func (e *Engine) pop() event {
	h := e.heap
	min := h[0]
	n := len(h) - 1
	ev := h[n]
	h[n] = event{} // release fn/arg references
	h = h[:n]
	e.heap = h
	if n == 0 {
		return min
	}
	// Sift ev down from the root.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if evLess(&h[j], &h[m]) {
				m = j
			}
		}
		if !evLess(&h[m], &ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
	return min
}

// ---------------------------------------------------------------------
// Timer slot table.
// ---------------------------------------------------------------------

// allocSlot takes a slot from the free list (or grows the table) and
// returns a live handle for it.
func (e *Engine) allocSlot() (int32, uint64) {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		idx = int32(len(e.slots))
		e.slots = append(e.slots, timerSlot{})
	}
	s := &e.slots[idx]
	s.gen++
	s.done = false
	s.cancelled = false
	return idx, s.gen
}

// freeSlot marks the slot finished and returns it to the free list.
// Outstanding Timer handles keep matching gen until reuse, at which
// point the generation bump invalidates them.
func (e *Engine) freeSlot(idx int32) {
	e.slots[idx].done = true
	e.free = append(e.free, idx)
}

// ---------------------------------------------------------------------
// Scheduling API.
// ---------------------------------------------------------------------

// clamp maps past times to the current instant: scheduling in the past
// runs the event at the current time, after already-queued same-instant
// events (FIFO by sequence number).
func (e *Engine) clamp(t Time) Time {
	if t < e.now {
		return e.now
	}
	return t
}

// At schedules fn to run at absolute time t and returns a cancellable
// Timer. Callers that never cancel should prefer Schedule, which skips
// the timer slot table.
func (e *Engine) At(t Time, fn func()) Timer {
	slot, gen := e.allocSlot()
	e.push(event{at: e.clamp(t), seq: e.seq, slot: slot, fn: fn})
	e.seq++
	return Timer{e: e, slot: slot, gen: gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run every period, starting after the first
// period elapses. The returned Timer cancels the whole series. The
// series re-arms in place: no allocation per tick.
func (e *Engine) Every(period Duration, fn func()) Timer {
	slot, gen := e.allocSlot()
	e.push(event{at: e.clamp(e.now + period), seq: e.seq, slot: slot, period: period, fn: fn})
	e.seq++
	return Timer{e: e, slot: slot, gen: gen}
}

// Schedule runs fn at absolute time t with no cancellation handle.
// This is the allocation-free fast path for fire-and-forget events.
func (e *Engine) Schedule(t Time, fn func()) {
	e.push(event{at: e.clamp(t), seq: e.seq, slot: noSlot, fn: fn})
	e.seq++
}

// ScheduleAfter runs fn d after the current time with no handle.
func (e *Engine) ScheduleAfter(d Duration, fn func()) {
	e.Schedule(e.now+d, fn)
}

// ScheduleArg runs fn(arg) at absolute time t with no handle. Passing a
// long-lived fn (e.g. a method value stored once) with a per-event arg
// avoids allocating a closure per event; combined with caller-side arg
// pooling the steady-state cost of an event is zero allocations.
func (e *Engine) ScheduleArg(t Time, fn func(any), arg any) {
	e.push(event{at: e.clamp(t), seq: e.seq, slot: noSlot, afn: fn, arg: arg})
	e.seq++
}

// Run executes events until the queue drains, the clock passes until,
// or Stop is called. It returns the time of the last executed event.
func (e *Engine) Run(until Time) Time {
	e.exec(until, false)
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// RunBefore executes events strictly before end, leaving the clock at
// the last executed event. It is the shard-window primitive of the
// conservative-PDES runner: a window [T, end) runs every shard's
// events with at < end, then the barrier exchanges cross-shard
// handoffs (all provably at >= end thanks to the lookahead bound) and
// AdvanceTo moves every clock to end. Unlike Run, the clock is not
// advanced past the last event — barrier-time events produced later in
// the same round must still be schedulable at end itself.
func (e *Engine) RunBefore(end Time) {
	e.exec(end, true)
}

// NextAt returns the time of the earliest queued event, if any. A
// cancelled timer still occupying the heap head counts — callers using
// this to size an execution window may see a spuriously early bound,
// which is harmless (the window is merely shorter than necessary).
func (e *Engine) NextAt() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// AdvanceTo moves the clock forward to t without executing events.
// Moving backwards is a no-op. Callers must ensure no queued event is
// earlier than t (the sharded runner's windows guarantee this).
func (e *Engine) AdvanceTo(t Time) {
	if e.now < t {
		e.now = t
	}
}

// exec is the shared event loop: it executes events while the head is
// <= limit (strict=false, Run semantics) or < limit (strict=true,
// RunBefore semantics), honoring Stop.
func (e *Engine) exec(limit Time, strict bool) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if at := e.heap[0].at; at > limit || (strict && at == limit) {
			break
		}
		ev := e.pop()
		if ev.slot != noSlot {
			s := &e.slots[ev.slot]
			if s.cancelled {
				e.freeSlot(ev.slot)
				continue
			}
			if ev.period <= 0 {
				// One-shot: it is firing now, so the handle reports
				// stopped from here on (matching historical behavior
				// even for Stopped calls made during the callback).
				e.freeSlot(ev.slot)
			}
		}
		e.now = ev.at
		e.fired++
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.afn(ev.arg)
		}
		if ev.period > 0 {
			// Periodic: re-arm unless the callback cancelled the series.
			if e.slots[ev.slot].cancelled {
				e.freeSlot(ev.slot)
			} else {
				ev.at = e.now + ev.period
				ev.seq = e.seq
				e.seq++
				e.push(ev)
			}
		}
	}
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }
