// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, so a
// run is a pure function of the initial configuration and RNG seeds.
// All protocol code in this repository (netem, TFRC, RanSub, Bullet)
// executes inside engine callbacks on a single goroutine.
//
// # Scheduler internals
//
// The queue is a calendar queue: a ring of ~0.5 ms time buckets
// covering the next ~134 ms of virtual time, backed by a 4-ary min-heap for the
// far future. The design is driven by the measured push profile of the
// Figure 7 run — effectively every event is scheduled 100 µs to 100 ms
// ahead (link latencies, serialization delays, pump and TFRC timers),
// and exact-time ties are vanishingly rare — so a push is an O(1)
// append to the ring bucket of its slot, and ordering work is deferred
// to the moment a bucket becomes the earliest: it is sorted once by
// (time, sequence) and then consumed in place, head to tail. That
// replaces the per-event heap sift-down (~log n compares and three
// slice moves per pop, the hottest loop in the process) with an
// amortized O(log k) over the k events sharing a bucket.
// Events beyond the ring's horizon go to the overflow heap — ordered
// by (time, sequence), stored as three parallel slices so the
// sift-down child scan reads four contiguous int64 timestamps from a
// single cache line — and migrate into the ring as the clock advances
// into their window. Event bodies (the callback, argument, timer slot,
// period) live in an arena of chunked slots that never move; they are
// recycled through the arena's free list, so the steady-state cost of
// an event remains zero heap allocations.
//
// None of this layout is observable: (time, sequence) is a strict
// total order — sequence numbers are unique per engine — so the pop
// sequence is fully determined by the key set regardless of which
// structure holds an event, which is what licenses the split without
// touching the determinism contract.
//
// The dispatch loop executes events in same-deadline batches: the pop
// loop hoists the clock write and the run-limit comparison out of runs
// of events sharing one timestamp, so a burst scheduled for the same
// instant pays the loop overhead once. Batching never reorders
// anything — events within a batch still fire in exact (time, seq)
// order, and a callback scheduling more work at the current instant
// joins the tail of the batch exactly as the serial contract requires.
//
// Cancellable timers are handled through a slot table with generation
// counters: At/After/Every allocate a slot from a free list and return a
// value-type Timer naming (slot, generation). Cancel and Stopped check
// the generation, so stale handles are always safe no-ops. The hot
// fire-and-forget paths (Schedule, ScheduleArg) skip the slot table
// entirely; ScheduleArg additionally avoids per-event closures by
// carrying a caller-owned argument to a reusable callback.
//
// Periodic timers created with Every re-arm in place: the body is
// reused and the engine re-pushes a fresh key with a new sequence
// number, so a periodic series costs zero allocations per tick after
// setup.
package sim

import (
	"math/rand"

	"bullet/internal/arena"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a virtual time span in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts a floating point number of seconds to a Duration.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// ToSeconds converts a Time or Duration to floating point seconds.
func (t Time) ToSeconds() float64 { return float64(t) / float64(Second) }

// Timer is a handle for a scheduled event. Cancel prevents the callback
// from running if it has not fired yet. For periodic timers created with
// Every, Cancel stops the whole series. The zero Timer is valid: Cancel
// is a no-op and Stopped reports true.
type Timer struct {
	e    *Engine
	slot int32
	gen  uint64
}

// Cancel stops the timer. It is safe to call multiple times, after the
// event has fired, and on the zero Timer.
func (t Timer) Cancel() {
	if t.e == nil {
		return
	}
	s := &t.e.slots[t.slot]
	if s.gen == t.gen && !s.done {
		s.cancelled = true
	}
}

// Stopped reports whether the timer was cancelled or has fired and will
// not fire again. A periodic timer reports stopped only after Cancel:
// between ticks it is live.
func (t Timer) Stopped() bool {
	if t.e == nil {
		return true
	}
	s := &t.e.slots[t.slot]
	if s.gen != t.gen {
		return true // slot recycled: that timer finished long ago
	}
	return s.done || s.cancelled
}

// evBody is the non-ordering payload of one queued event, allocated
// from the engine's arena and stationary for its queued lifetime.
// Exactly one of fn and afn is set.
type evBody struct {
	fn     func()
	afn    func(any)
	arg    any
	slot   int32    // timer slot index, or noSlot for fire-and-forget
	period Duration // > 0: periodic, re-armed after each fire
}

const noSlot = int32(-1)

// timerSlot tracks the liveness of one outstanding Timer handle.
type timerSlot struct {
	gen       uint64
	done      bool
	cancelled bool
}

// Calendar-queue geometry. A slot is 2^slotShift ns of virtual time
// (~524 µs — just under the topology's link-latency decade, so a
// bucket holds tens of events at the small scale and sorting stays
// cheap), and the ring covers ringSlots consecutive slots (~134 ms,
// past the bulk of the measured push horizon of the hot paths; the
// pump/TFRC timer tail beyond it rides the overflow heap).
const (
	slotShift = 19
	ringSlots = 256
	ringMask  = ringSlots - 1
)

// ev is one queued event: its ordering key and its body.
type ev struct {
	at  Time
	seq uint64
	b   *evBody
}

// bucket holds the events of one absolute slot. Future buckets are
// unsorted append targets; when a bucket becomes the earliest nonempty
// one it is sorted by (at, seq) once and consumed in place via head.
// Ring indices are reused as the window advances, so each bucket is
// stamped with the absolute slot it currently holds: a stale stamp
// means "empty, reset me on next use".
type bucket struct {
	slot   int64
	head   int
	sorted bool
	evs    []ev
}

// Engine is a deterministic discrete-event scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now Time
	// The near future: ring buckets for slots [base, base+ringSlots).
	// base tracks slot(now); scan is the slot cursor of the earliest
	// possibly-nonempty bucket (monotone within a window, lowered only
	// by a push below it); ringN counts unconsumed ring events.
	ring  [ringSlots]bucket
	base  int64
	scan  int64
	ringN int
	// The far future: a 4-ary min-heap ordered by (at, seq), stored as
	// parallel slices so the sift-down child scan touches only the
	// timestamp slice — four contiguous int64s, one cache line. Events
	// here migrate into the ring as the window advances over them.
	ofAt  []Time
	ofSeq []uint64
	ofB   []*evBody

	seq     uint64
	stopped bool
	seed    int64
	fired   uint64

	bodies arena.Arena[evBody]

	slots []timerSlot
	free  []int32 // free slot indices
}

// NewEngine returns an engine with the clock at zero. The seed is used
// to derive per-entity RNG streams via RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the master seed the engine was constructed with.
func (e *Engine) Seed() int64 { return e.seed }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including
// cancelled timers that have not been popped yet).
func (e *Engine) Pending() int { return e.ringN + len(e.ofAt) }

// RNG derives a deterministic random stream for the given entity id.
// Distinct ids yield independent streams; the same (seed, id) pair
// always yields the same stream.
func (e *Engine) RNG(id int64) *rand.Rand {
	// splitmix64-style mixing of seed and id.
	z := uint64(e.seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// ---------------------------------------------------------------------
// Calendar queue: ring of per-slot buckets + far-future overflow heap.
//
// The ordering key (at, seq) is a strict total order — seq is unique
// per engine — so the pop sequence is fully determined by the key set
// regardless of which structure holds an event or how it is arranged
// inside it. That is what licenses layout changes here without
// touching the determinism contract.
//
// Invariants:
//   - base == slot(now); every queued event has at >= now, so its slot
//     is >= base.
//   - the ring holds exactly the events with slot in
//     [base, base+ringSlots); the overflow heap holds the rest.
//   - scan <= the slot of the earliest unconsumed ring event, and all
//     buckets for slots in [base, scan) are empty.
// ---------------------------------------------------------------------

// push enqueues b at time at, assigning the next sequence number.
func (e *Engine) push(at Time, b *evBody) {
	sq := e.seq
	e.seq++
	s := int64(at) >> slotShift
	if s-e.base < ringSlots {
		e.ringPut(s, ev{at, sq, b})
		return
	}
	e.ofPush(at, sq, b)
}

// ringPut files v into the bucket for absolute slot s, resetting a
// bucket whose stamp says it still belongs to a slot that has left the
// window (such a bucket is always fully consumed — every event below
// now has fired). A sorted bucket is the one being (or about to be)
// consumed: keep it sorted with an ordered insert. The (at, seq) upper
// bound can never land below head, because everything consumed so far
// is strictly smaller than any event still arriving.
func (e *Engine) ringPut(s int64, v ev) {
	bk := &e.ring[s&ringMask]
	if bk.slot != s {
		bk.slot, bk.head, bk.sorted = s, 0, false
		bk.evs = bk.evs[:0]
	}
	if bk.sorted {
		evs := bk.evs
		lo, hi := bk.head, len(evs)
		for lo < hi {
			m := int(uint(lo+hi) >> 1)
			if evs[m].at < v.at || (evs[m].at == v.at && evs[m].seq < v.seq) {
				lo = m + 1
			} else {
				hi = m
			}
		}
		evs = append(evs, ev{})
		copy(evs[lo+1:], evs[lo:])
		evs[lo] = v
		bk.evs = evs
	} else {
		bk.evs = append(bk.evs, v)
	}
	if s < e.scan {
		e.scan = s
	}
	e.ringN++
}

// evLess orders events by (at, seq). Taking pointers keeps the 24-byte
// copies out of the compare; the call inlines.
func evLess(a, b *ev) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// sortEvs is a quicksort over events with the compare inlined —
// sorting is the per-bucket cost the calendar queue amortizes over a
// slot's events, and the generic sort's indirect comparator call was
// the single largest queue expense when it sat here. Keys are unique
// (seq is), so a plain Hoare partition with a median-of-three pivot
// needs no equal-run handling.
func sortEvs(evs []ev) {
	for {
		n := len(evs)
		if n <= 16 {
			for i := 1; i < n; i++ {
				v := evs[i]
				j := i
				for j > 0 && evLess(&v, &evs[j-1]) {
					evs[j] = evs[j-1]
					j--
				}
				evs[j] = v
			}
			return
		}
		m := n / 2
		if evLess(&evs[m], &evs[0]) {
			evs[0], evs[m] = evs[m], evs[0]
		}
		if evLess(&evs[n-1], &evs[0]) {
			evs[0], evs[n-1] = evs[n-1], evs[0]
		}
		if evLess(&evs[n-1], &evs[m]) {
			evs[m], evs[n-1] = evs[n-1], evs[m]
		}
		p := evs[m]
		i, j := -1, n
		for {
			for {
				i++
				if !evLess(&evs[i], &p) {
					break
				}
			}
			for {
				j--
				if !evLess(&p, &evs[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			evs[i], evs[j] = evs[j], evs[i]
		}
		// Recurse into the smaller half, iterate on the larger: the
		// stack stays O(log n) regardless of pivot luck.
		if j+1 <= n-j-1 {
			sortEvs(evs[:j+1])
			evs = evs[j+1:]
		} else {
			sortEvs(evs[j+1:])
			evs = evs[:j+1]
		}
	}
}

// sort orders the bucket by (at, seq). Only a never-consumed bucket
// can be unsorted, so head is 0 and the whole slice is fair game.
func (bk *bucket) sort() {
	sortEvs(bk.evs)
	bk.sorted = true
}

// ringHead advances scan to the earliest nonempty bucket and returns
// it sorted, with its head entry the queue-wide minimum (ring events
// always precede overflow events: the overflow invariant keeps them at
// least a full window later). Callers must ensure ringN > 0.
func (e *Engine) ringHead() *bucket {
	for {
		bk := &e.ring[e.scan&ringMask]
		if bk.slot == e.scan && bk.head < len(bk.evs) {
			if !bk.sorted {
				bk.sort()
			}
			return bk
		}
		e.scan++
	}
}

// setNow advances the clock and, when the window base moves, migrates
// every overflow event whose slot has entered [base, base+ringSlots)
// into the ring. Buckets between the old and new base are necessarily
// empty — their events were all at < t and have fired — so no walk is
// needed; the base jumps directly.
func (e *Engine) setNow(t Time) {
	e.now = t
	s := int64(t) >> slotShift
	if s == e.base {
		return
	}
	e.base = s
	if e.scan < s {
		e.scan = s
	}
	horizon := Time((s + ringSlots) << slotShift)
	for len(e.ofAt) > 0 && e.ofAt[0] < horizon {
		at, sq, b := e.ofPop()
		e.ringPut(int64(at)>>slotShift, ev{at, sq, b})
	}
}

// ofPush enqueues an event on the overflow heap. Overflow entries are
// only ever pushed with a fresh sequence number — migration moves them
// out, never back in — so the newcomer's seq is strictly greater than
// every queued entry's and the sift-up comparison reduces to the
// timestamp alone (a timestamp tie can never favor the newcomer).
func (e *Engine) ofPush(at Time, sq uint64, b *evBody) {
	ats := append(e.ofAt, at)
	sqs := append(e.ofSeq, sq)
	bs := append(e.ofB, b)
	i := len(ats) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if ats[p] <= at {
			break
		}
		ats[i], sqs[i], bs[i] = ats[p], sqs[p], bs[p]
		i = p
	}
	ats[i], sqs[i], bs[i] = at, sq, b
	e.ofAt, e.ofSeq, e.ofB = ats, sqs, bs
}

// ofPop removes and returns the minimum overflow entry. The stale body
// pointer left past the new length of ofB is harmless: bodies live in
// arena chunks either way, and Put zeroes their payload references.
func (e *Engine) ofPop() (Time, uint64, *evBody) {
	ats, sqs, bs := e.ofAt, e.ofSeq, e.ofB
	mat, msq, mb := ats[0], sqs[0], bs[0]
	n := len(ats) - 1
	kat, ksq, kb := ats[n], sqs[n], bs[n]
	ats, sqs, bs = ats[:n], sqs[:n], bs[:n]
	e.ofAt, e.ofSeq, e.ofB = ats, sqs, bs
	if n == 0 {
		return mat, msq, mb
	}
	// Sift the displaced tail entry down from the root. The child scan
	// reads timestamps only, falling through to seq on exact ties.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if ats[j] < ats[m] || (ats[j] == ats[m] && sqs[j] < sqs[m]) {
				m = j
			}
		}
		if ats[m] > kat || (ats[m] == kat && sqs[m] > ksq) {
			break
		}
		ats[i], sqs[i], bs[i] = ats[m], sqs[m], bs[m]
		i = m
	}
	ats[i], sqs[i], bs[i] = kat, ksq, kb
	return mat, msq, mb
}

// ---------------------------------------------------------------------
// Timer slot table.
// ---------------------------------------------------------------------

// allocSlot takes a slot from the free list (or grows the table) and
// returns a live handle for it.
func (e *Engine) allocSlot() (int32, uint64) {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		idx = int32(len(e.slots))
		e.slots = append(e.slots, timerSlot{})
	}
	s := &e.slots[idx]
	s.gen++
	s.done = false
	s.cancelled = false
	return idx, s.gen
}

// freeSlot marks the slot finished and returns it to the free list.
// Outstanding Timer handles keep matching gen until reuse, at which
// point the generation bump invalidates them.
func (e *Engine) freeSlot(idx int32) {
	e.slots[idx].done = true
	e.free = append(e.free, idx)
}

// ---------------------------------------------------------------------
// Scheduling API.
// ---------------------------------------------------------------------

// clamp maps past times to the current instant: scheduling in the past
// runs the event at the current time, after already-queued same-instant
// events (FIFO by sequence number).
func (e *Engine) clamp(t Time) Time {
	if t < e.now {
		return e.now
	}
	return t
}

// newBody takes a zeroed body from the arena.
func (e *Engine) newBody() *evBody { return e.bodies.Get() }

// At schedules fn to run at absolute time t and returns a cancellable
// Timer. Callers that never cancel should prefer Schedule, which skips
// the timer slot table.
func (e *Engine) At(t Time, fn func()) Timer {
	slot, gen := e.allocSlot()
	b := e.newBody()
	b.fn = fn
	b.slot = slot
	e.push(e.clamp(t), b)
	return Timer{e: e, slot: slot, gen: gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run every period, starting after the first
// period elapses. The returned Timer cancels the whole series. The
// series re-arms in place: no allocation per tick.
func (e *Engine) Every(period Duration, fn func()) Timer {
	slot, gen := e.allocSlot()
	b := e.newBody()
	b.fn = fn
	b.slot = slot
	b.period = period
	e.push(e.clamp(e.now+period), b)
	return Timer{e: e, slot: slot, gen: gen}
}

// Schedule runs fn at absolute time t with no cancellation handle.
// This is the allocation-free fast path for fire-and-forget events.
func (e *Engine) Schedule(t Time, fn func()) {
	b := e.newBody()
	b.fn = fn
	b.slot = noSlot
	e.push(e.clamp(t), b)
}

// ScheduleAfter runs fn d after the current time with no handle.
func (e *Engine) ScheduleAfter(d Duration, fn func()) {
	e.Schedule(e.now+d, fn)
}

// ScheduleArg runs fn(arg) at absolute time t with no handle. Passing a
// long-lived fn (e.g. a method value stored once) with a per-event arg
// avoids allocating a closure per event; combined with caller-side arg
// pooling the steady-state cost of an event is zero allocations.
func (e *Engine) ScheduleArg(t Time, fn func(any), arg any) {
	b := e.newBody()
	b.afn = fn
	b.arg = arg
	b.slot = noSlot
	e.push(e.clamp(t), b)
}

// Run executes events until the queue drains, the clock passes until,
// or Stop is called. It returns the time of the last executed event.
func (e *Engine) Run(until Time) Time {
	e.exec(until, false)
	if e.now < until && !e.stopped {
		e.setNow(until)
	}
	return e.now
}

// RunBefore executes events strictly before end, leaving the clock at
// the last executed event. It is the shard-window primitive of the
// conservative-PDES runner: a window [T, end) runs every shard's
// events with at < end, then the barrier exchanges cross-shard
// handoffs (all provably at >= end thanks to the lookahead bound) and
// AdvanceTo moves every clock to end. Unlike Run, the clock is not
// advanced past the last event — barrier-time events produced later in
// the same round must still be schedulable at end itself.
func (e *Engine) RunBefore(end Time) {
	e.exec(end, true)
}

// NextAt returns the time of the earliest queued event, if any. A
// cancelled timer still occupying the heap head counts — callers using
// this to size an execution window may see a spuriously early bound,
// which is harmless (the window is merely shorter than necessary).
// NextAt is deliberately read-only — the sharded runner's deciding
// shard calls it on quiescent sibling engines at the window barrier,
// and keeping it mutation-free means the release edge only has to
// order reads. An unsorted head bucket is scanned instead of sorted.
func (e *Engine) NextAt() (Time, bool) {
	if e.ringN == 0 {
		if len(e.ofAt) == 0 {
			return 0, false
		}
		return e.ofAt[0], true
	}
	for s := e.scan; ; s++ {
		bk := &e.ring[s&ringMask]
		if bk.slot != s || bk.head >= len(bk.evs) {
			continue
		}
		min := bk.evs[bk.head].at
		if !bk.sorted {
			for _, v := range bk.evs[bk.head+1:] {
				if v.at < min {
					min = v.at
				}
			}
		}
		return min, true
	}
}

// AdvanceTo moves the clock forward to t without executing events.
// Moving backwards is a no-op. Callers must ensure no queued event is
// earlier than t (the sharded runner's windows guarantee this).
func (e *Engine) AdvanceTo(t Time) {
	if e.now < t {
		e.setNow(t)
	}
}

// exec is the shared event loop: it executes events while the head is
// <= limit (strict=false, Run semantics) or < limit (strict=true,
// RunBefore semantics), honoring Stop. Dispatch is batched by
// deadline: the outer loop admits one timestamp against the limit and
// sets the clock once; the inner loop then drains every event at that
// timestamp — including ones its callbacks append at the current
// instant, which join the batch tail in FIFO order exactly as the
// serial schedule requires.
func (e *Engine) exec(limit Time, strict bool) {
	e.stopped = false
	for e.ringN+len(e.ofAt) > 0 && !e.stopped {
		var t Time
		if e.ringN > 0 {
			bk := e.ringHead()
			t = bk.evs[bk.head].at
		} else {
			t = e.ofAt[0]
		}
		if t > limit || (strict && t == limit) {
			break
		}
		// After the clock lands on t, the event at t is in the ring:
		// if it came from overflow, the base advance just migrated it.
		e.setNow(t)
		for e.ringN > 0 && !e.stopped {
			bk := e.ringHead()
			if bk.evs[bk.head].at != t {
				break
			}
			b := bk.evs[bk.head].b
			bk.head++
			e.ringN--
			if b.slot != noSlot {
				s := &e.slots[b.slot]
				if s.cancelled {
					e.freeSlot(b.slot)
					e.bodies.Put(b)
					continue
				}
				if b.period <= 0 {
					// One-shot: it is firing now, so the handle reports
					// stopped from here on (matching historical behavior
					// even for Stopped calls made during the callback).
					e.freeSlot(b.slot)
				}
			}
			e.fired++
			if b.fn != nil {
				b.fn()
			} else {
				b.afn(b.arg)
			}
			if b.period > 0 {
				// Periodic: re-arm unless the callback cancelled the
				// series. The body is reused; only a fresh key is pushed.
				if e.slots[b.slot].cancelled {
					e.freeSlot(b.slot)
					e.bodies.Put(b)
				} else {
					e.push(e.now+b.period, b)
				}
			} else {
				e.bodies.Put(b)
			}
		}
	}
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }
