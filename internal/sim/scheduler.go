package sim

import "math/rand"

// Scheduler is the scheduling surface protocol code runs against. In a
// serial run every node shares one *Engine; in a sharded run each node
// holds the engine of its topology shard, so node-local timers and
// clock reads stay on the shard that executes the node's events. All
// shard engines of a run are constructed with the same master seed, so
// RNG(id) yields the identical stream regardless of which engine
// serves it — adding sharding never perturbs a single draw.
//
// Code holding a Scheduler must only ever schedule work for its own
// node (or read its clock): cross-node communication goes through the
// emulator, never through another node's scheduler.
type Scheduler interface {
	Now() Time
	Seed() int64
	RNG(id int64) *rand.Rand
	At(t Time, fn func()) Timer
	After(d Duration, fn func()) Timer
	Every(period Duration, fn func()) Timer
	Schedule(t Time, fn func())
	ScheduleAfter(d Duration, fn func())
	ScheduleArg(t Time, fn func(any), arg any)
}

var _ Scheduler = (*Engine)(nil)
