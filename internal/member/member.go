// Package member provides the small shared membership-bookkeeping
// helpers every protocol system needs: live-set filtering against a
// dead set and deterministic (ascending-id) teardown over the dense
// nodeset tables the systems keep their participants in. Keeping them
// in one place stops the protocols' copies from drifting apart.
package member

import (
	"sort"

	"bullet/internal/nodeset"
)

// SortedIDs returns the keys of m in ascending order. Per-node state
// belongs in nodeset containers (CONTRIBUTING rule 9); this is the
// escape hatch for genuinely sparse, non-node-id-keyed maps, whose
// iteration order must still never leak into the simulation.
func SortedIDs[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// LiveTableIDs returns the ids present in t and not in dead, in
// ascending order.
func LiveTableIDs[V any](t *nodeset.Table[V], dead *nodeset.Set) []int {
	out := make([]int, 0, t.Len())
	t.Range(func(id int, _ V) bool {
		if !dead.Contains(id) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// StopTable invokes fail for every id of t not in dead, in ascending
// order — the deterministic teardown shared by every system's Stop.
func StopTable[V any](t *nodeset.Table[V], dead *nodeset.Set, fail func(id int)) {
	t.Range(func(id int, _ V) bool {
		if !dead.Contains(id) {
			fail(id)
		}
		return true
	})
}
