// Package member provides the small shared membership-bookkeeping
// helpers every protocol system needs: sorted id collection over a
// node map, live-set filtering against a dead set, and deterministic
// (sorted-order) teardown. Keeping them in one place stops the
// protocols' copies from drifting apart.
package member

import "sort"

// SortedIDs returns the keys of m in ascending order. Protocol systems
// must never let map iteration order leak into the simulation, so any
// walk over a node map goes through this.
func SortedIDs[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// LiveIDs returns the keys of m not marked dead, in ascending order.
func LiveIDs[V any](m map[int]V, dead map[int]bool) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		if !dead[id] {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// StopAll invokes fail for every non-dead id of m in ascending order —
// the deterministic teardown shared by every system's Stop.
func StopAll[V any](m map[int]V, dead map[int]bool, fail func(id int)) {
	for _, id := range SortedIDs(m) {
		if !dead[id] {
			fail(id)
		}
	}
}
