package member

import (
	"reflect"
	"testing"

	"bullet/internal/nodeset"
)

func TestSortedIDsDeterministic(t *testing.T) {
	m := map[int]string{9: "i", 2: "b", 40: "m", 0: "a", 17: "q"}
	want := []int{0, 2, 9, 17, 40}
	// Map iteration order varies run to run; SortedIDs must not.
	for i := 0; i < 50; i++ {
		if got := SortedIDs(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedIDs=%v want %v", got, want)
		}
	}
	if got := SortedIDs(map[int]int{}); len(got) != 0 {
		t.Fatalf("empty map gave %v", got)
	}
}

func TestLiveTableIDs(t *testing.T) {
	var tb nodeset.Table[string]
	var dead nodeset.Set
	for _, id := range []int{7, 0, 130, 64, 12} {
		tb.Put(id, "x")
	}
	dead.Add(64)
	dead.Add(5) // not a participant: irrelevant
	if got := LiveTableIDs(&tb, &dead); !reflect.DeepEqual(got, []int{0, 7, 12, 130}) {
		t.Fatalf("LiveTableIDs=%v", got)
	}
	var empty nodeset.Table[string]
	if got := LiveTableIDs(&empty, &dead); len(got) != 0 {
		t.Fatalf("empty table gave %v", got)
	}
}

func TestStopTableOrderAndFiltering(t *testing.T) {
	var tb nodeset.Table[int]
	var dead nodeset.Set
	for _, id := range []int{66, 2, 9, 70} {
		tb.Put(id, id)
	}
	dead.Add(9)
	var stopped []int
	StopTable(&tb, &dead, func(id int) { stopped = append(stopped, id) })
	if !reflect.DeepEqual(stopped, []int{2, 66, 70}) {
		t.Fatalf("StopTable order %v, want ascending live ids [2 66 70]", stopped)
	}
	// A second pass over the same table is identical: teardown is a
	// pure function of the (table, dead) state.
	var again []int
	StopTable(&tb, &dead, func(id int) { again = append(again, id) })
	if !reflect.DeepEqual(again, stopped) {
		t.Fatalf("StopTable not deterministic: %v vs %v", again, stopped)
	}
}
