package topology

import (
	"sort"

	"bullet/internal/sim"
)

// ShardPlan is a deterministic partition of the topology into shards
// for single-run parallel simulation. Shards follow the transit-stub
// structure: every stub domain (with its clients) is an indivisible
// atom, atoms are merged across their cheapest connecting links first,
// and the links left crossing shards are therefore the longest-delay
// ones available — maximizing the conservative-PDES lookahead, which
// is the minimum propagation delay over the cut.
type ShardPlan struct {
	// K is the effective shard count (>= 1). It can be lower than the
	// requested count when the topology has fewer atoms.
	K int
	// ShardOf maps every node id to its shard index. Shard indices are
	// normalized by ascending minimum member node id, so the plan is a
	// pure function of (graph structure, k).
	ShardOf []int
	// CutLinks are the ids of links whose endpoints live on different
	// shards, ascending. The runtime lookahead is the minimum current
	// delay over these links, recomputed when link state changes.
	CutLinks []int32
	// Lookahead is the minimum delay over CutLinks at planning time
	// (0 when K == 1: no cut, unbounded windows).
	Lookahead sim.Duration
	// Weights is each shard's planned weight — the sum of the node
	// weights the balancer packed onto it. Surfaced for load
	// observability (bullet-sim -shardstats); never read by the
	// runtime.
	Weights []int
}

// LookaheadNow returns the minimum current delay over the cut links —
// the valid window length given the graph's present link state (a
// scenario may have shortened a cut link's latency mid-run). Down cut
// links are skipped: a failed link drops every packet at the near-side
// hop, so it cannot carry a cross-shard influence, and a scenario that
// fails the shortest cut link widens the window instead of pinning it.
// A return of 0 (every cut link down, or no cut) means unbounded: the
// only thing that can re-establish cross-shard traffic is a graph
// mutation, and those run on the global engine, which already bounds
// the round.
func (p *ShardPlan) LookaheadNow(g *Graph) sim.Duration {
	var min sim.Duration
	for _, lid := range p.CutLinks {
		l := &g.Links[lid]
		if l.Down {
			continue
		}
		if min == 0 || l.Delay < min {
			min = l.Delay
		}
	}
	return min
}

// uf is a deterministic union-find over node ids.
type uf struct{ parent []int32 }

func newUF(n int) *uf {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &uf{parent: p}
}

func (u *uf) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// union attaches the larger root under the smaller, so the root of a
// set is always its minimum member — a deterministic canonical id.
func (u *uf) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// DefaultClientWeight is the relative event load of a client node
// versus a router node, used by PartitionShards to balance shards.
// The value is measured, not guessed: fitting per-shard executed-event
// counters (netem.ShardStats on Figure 7 runs) to per-shard client and
// router counts with CalibrateClientWeight gives ≈150k events per
// client against ≈15 per router — clients own the protocol timers,
// endpoint packet processing, and most hop events, while routers only
// forward through. The earlier hand-picked 101:1 underweighted clients
// by two orders of magnitude, which let a client-heavy stub domain
// pair with a router-heavy one and stall every barrier window on the
// hot shard. Partition choice never affects simulation output bytes —
// only load balance — so re-deriving this constant is always safe.
const DefaultClientWeight = 10000

// nodeWeight approximates a node's event load.
func nodeWeight(k NodeKind) int {
	if k == Client {
		return DefaultClientWeight
	}
	return 1
}

// CalibrateClientWeight fits measured per-shard event counts to the
// two-parameter load model events ≈ a·clients + b·routers (least
// squares through the origin) and returns the rounded ratio a/b — the
// client weight that would have balanced the observed run. The second
// return is false when the data cannot support a fit: fewer than two
// shards, a singular system (e.g. all shards have identical client:
// router proportions), or a non-positive router coefficient.
func CalibrateClientWeight(clients, routers []int, events []int64) (int, bool) {
	if len(clients) < 2 || len(routers) != len(clients) || len(events) != len(clients) {
		return 0, false
	}
	var cc, cr, rr, ce, re float64
	for i := range clients {
		c, r, e := float64(clients[i]), float64(routers[i]), float64(events[i])
		cc += c * c
		cr += c * r
		rr += r * r
		ce += c * e
		re += r * e
	}
	det := cc*rr - cr*cr
	if det == 0 {
		return 0, false
	}
	a := (ce*rr - cr*re) / det
	b := (cc*re - cr*ce) / det
	if a <= 0 || b <= 0 {
		return 0, false
	}
	w := int(a/b + 0.5)
	if w < 1 {
		w = 1
	}
	return w, true
}

// Auto-shard tuning constants. All weights are in nodeWeight units
// (DefaultClientWeight per client, 1 per router).
const (
	// autoMinWeight is the load below which AutoShards always answers 1:
	// with fewer than ~2000 clients of event load, a run's working set
	// (event heap, per-node protocol state) stays cache-resident and the
	// barrier rounds cost more than they save. The standard small/medium/
	// xl/paper scales all sit below this line; mega sits far above it.
	autoMinWeight = 2000 * DefaultClientWeight
	// autoTargetWeight is the per-shard load AutoShards aims for — the
	// point where a shard's event heap and hot per-node state outgrow the
	// cache and splitting further still pays even without spare cores.
	autoTargetWeight = 2500 * DefaultClientWeight
	// autoMaxShards caps the answer: past this, barrier fan-in and
	// cross-shard handoff overtake any locality or parallelism gain on
	// the machines this simulator targets.
	autoMaxShards = 16
	// autoBarrierCost models one barrier round's overhead as virtual
	// lookahead time: a candidate plan whose cut lookahead is comparable
	// to this spends as long synchronizing as simulating, and scores
	// accordingly. Transit-stub cut links (the longest-delay links the
	// partitioner can leave on the cut) sit in the tens of milliseconds,
	// so well-cut plans are barely penalized.
	autoBarrierCost = 1 * sim.Millisecond
)

// AutoShards picks a shard count for g on a machine with the given
// number of worker cores. It is a pure function of (g, cores): the
// driver can resolve "-shards auto" once and every run of the same
// topology lands on the same K. The choice never affects simulation
// output bytes — sharded runs are byte-identical to serial at any K —
// only wall-clock and memory locality.
//
// The heuristic has three stages. First, a load floor: below
// autoMinWeight of calibrated node weight the answer is always 1.
// Second, a candidate ceiling from both supply and demand: enough
// shards that each carries about autoTargetWeight (locality — a
// 100k-node topology wants several shards even on one core, because
// each shard's event heap then stays hot), and at least one shard per
// core (parallelism), clamped to autoMaxShards. Third, candidate plans
// from PartitionShards are scored by effective parallelism (total
// weight over heaviest shard — how much of K the balance actually
// delivers) discounted by lookahead quality (the fraction of a barrier
// window spent simulating rather than synchronizing, with one round
// costed at autoBarrierCost). A larger K must beat the incumbent by 5%
// to win, so ties and near-ties resolve to the smaller count.
func AutoShards(g *Graph, cores int) int {
	if cores < 1 {
		cores = 1
	}
	total := 0
	for i := range g.Nodes {
		total += nodeWeight(g.Nodes[i].Kind)
	}
	if total < autoMinWeight {
		return 1
	}
	want := total / autoTargetWeight
	if want < 2 {
		want = 2
	}
	if cores > want {
		want = cores
	}
	if want > autoMaxShards {
		want = autoMaxShards
	}
	best, bestScore := 1, 1.0 // serial: eff 1, no barriers
	for k := 2; ; k *= 2 {
		if k > want {
			k = want
		}
		plan := PartitionShards(g, k)
		if plan.K > 1 {
			maxW := 0
			for _, w := range plan.Weights {
				if w > maxW {
					maxW = w
				}
			}
			eff := float64(total) / float64(maxW)
			q := 1.0 // Lookahead 0 with K > 1 means no cut links: unbounded windows
			if plan.Lookahead > 0 {
				q = float64(plan.Lookahead) / float64(plan.Lookahead+autoBarrierCost)
			}
			if score := eff * q; score > bestScore*1.05 {
				best, bestScore = plan.K, score
			}
		}
		if k == want {
			break
		}
	}
	return best
}

// PartitionShards partitions g into at most k shards.
//
// Atoms are the connected components over Client-Stub and Stub-Stub
// links: a stub domain and its attached clients always share a shard
// (so do clients attached directly to transit hubs in handcrafted
// topologies), which keeps the dense intra-domain traffic off the
// cut. Atoms are then merged single-linkage style across inter-atom
// links in ascending (delay, link id) order — subject to a balance cap
// of twice the ideal shard weight — until k groups remain; if the cap
// stops merging early, the surplus groups are packed onto the k
// lightest shards. The result is a pure function of (g, k).
func PartitionShards(g *Graph, k int) ShardPlan {
	n := len(g.Nodes)
	if k < 1 {
		k = 1
	}
	u := newUF(n)
	for i := range g.Links {
		l := &g.Links[i]
		if l.Class == ClientStub || l.Class == StubStub {
			u.union(int32(l.A), int32(l.B))
		}
	}

	// Group weights, indexed by canonical root.
	weight := make([]int, n)
	total := 0
	for i := range g.Nodes {
		w := nodeWeight(g.Nodes[i].Kind)
		weight[u.find(int32(i))] += w
		total += w
	}
	groups := 0
	for i := range g.Nodes {
		if u.find(int32(i)) == int32(i) {
			groups++
		}
	}

	if k > 1 && groups > k {
		// Merge phase: cheapest inter-atom links first, so the links
		// that remain on the cut are the longest-delay ones available.
		type edge struct {
			delay sim.Duration
			id    int32
		}
		var edges []edge
		for i := range g.Links {
			l := &g.Links[i]
			if u.find(int32(l.A)) != u.find(int32(l.B)) {
				edges = append(edges, edge{delay: l.Delay, id: int32(l.ID)})
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].delay != edges[j].delay {
				return edges[i].delay < edges[j].delay
			}
			return edges[i].id < edges[j].id
		})
		cap := 2 * ((total + k - 1) / k)
		for _, e := range edges {
			if groups == k {
				break
			}
			l := &g.Links[e.id]
			ra, rb := u.find(int32(l.A)), u.find(int32(l.B))
			if ra == rb {
				continue
			}
			if weight[ra]+weight[rb] > cap {
				continue
			}
			w := weight[ra] + weight[rb]
			u.union(ra, rb)
			r := u.find(ra)
			weight[r] = w
			groups--
		}
	}

	// Pack groups onto shards: with groups <= k this is one group per
	// shard; otherwise heaviest groups first onto the lightest shard.
	type grp struct {
		root   int32
		weight int
	}
	var gs []grp
	for i := range g.Nodes {
		if u.find(int32(i)) == int32(i) {
			gs = append(gs, grp{root: int32(i), weight: weight[i]})
		}
	}
	if k > len(gs) {
		k = len(gs)
	}
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].weight != gs[j].weight {
			return gs[i].weight > gs[j].weight
		}
		return gs[i].root < gs[j].root
	})
	shardW := make([]int, k)
	shardOfRoot := make(map[int32]int, len(gs))
	for _, gr := range gs {
		best := 0
		for s := 1; s < k; s++ {
			if shardW[s] < shardW[best] {
				best = s
			}
		}
		shardOfRoot[gr.root] = best
		shardW[best] += gr.weight
	}

	// Normalize shard numbering by ascending minimum node id, so the
	// packing order above never shows through in the plan.
	rename := make([]int, k)
	for i := range rename {
		rename[i] = -1
	}
	next := 0
	shardOf := make([]int, n)
	for i := 0; i < n; i++ {
		s := shardOfRoot[u.find(int32(i))]
		if rename[s] < 0 {
			rename[s] = next
			next++
		}
		shardOf[i] = rename[s]
	}

	plan := ShardPlan{K: k, ShardOf: shardOf, Weights: make([]int, k)}
	for i := range g.Nodes {
		plan.Weights[shardOf[i]] += nodeWeight(g.Nodes[i].Kind)
	}
	for i := range g.Links {
		l := &g.Links[i]
		if shardOf[l.A] != shardOf[l.B] {
			plan.CutLinks = append(plan.CutLinks, int32(l.ID))
			if plan.Lookahead == 0 || l.Delay < plan.Lookahead {
				plan.Lookahead = l.Delay
			}
		}
	}
	return plan
}
