package topology

import (
	"math"

	"bullet/internal/sim"
)

// Router answers shortest-path routing queries over a Graph, modeling
// IP unicast routing (assumption 1 of §4.1: the routing path between
// two overlay participants is fixed as long as the underlying network
// is static). Paths are shortest by propagation delay; failed (Down)
// links are never used.
//
// All caches are flat slices indexed by node id, never maps: shortest-
// path trees are computed lazily per source, and the materialized
// link-id path for each (source, destination) pair is memoized on
// first use, so the steady-state cost of a Path query is two slice
// loads and the hot forwarding path never recomputes or reallocates a
// route. Paths are cached only for client (overlay participant)
// destinations — the only destinations traffic is addressed to — so
// the cache is participants-wide, not topology-wide; queries to other
// destinations still work but materialize per call.
//
// Caches are epoch-versioned: every query compares the router's epoch
// against the graph's route epoch (advanced by runtime mutations such
// as FailLink or SetLatency) and drops all shortest-path trees when it
// moved, so routes re-converge instantly — modeling an idealized
// routing protocol with zero convergence delay. On a static graph the
// check costs two loads and the behavior is identical to a fully
// memoized router.
type Router struct {
	g         *Graph
	trees     []*spTree // indexed by source node id; nil until first query
	clientIdx []int32   // node id -> index into g.Clients, or -1
	epoch     uint64    // graph route epoch the trees were built at
	// hier is the hierarchical backend, engaged at construction for
	// topologies of hierNodeThreshold nodes and above (and only when
	// the graph passes the transit-stub validation — see hier.go). When
	// non-nil it answers every query; the flat trees stay unused.
	hier *hierRouter
}

type spTree struct {
	prevLink []int32 // incoming link on the shortest path, -1 at source
	prevNode []int32
	dist     []int64   // nanoseconds of propagation delay; -1 = unreachable
	paths    [][]int32 // memoized Path results, indexed by clientIdx
}

// emptyPath is the shared result for from == to queries, distinct from
// the nil "unreachable" result.
var emptyPath = []int32{}

// NewRouter creates a router for g.
func NewRouter(g *Graph) *Router {
	idx := make([]int32, len(g.Nodes))
	for i := range idx {
		idx[i] = -1
	}
	for i, c := range g.Clients {
		idx[c] = int32(i)
	}
	r := &Router{g: g, trees: make([]*spTree, len(g.Nodes)), clientIdx: idx, epoch: g.epoch}
	if len(g.Nodes) >= hierNodeThreshold {
		r.hier = buildHier(g)
	}
	return r
}

// Graph returns the underlying topology.
func (r *Router) Graph() *Graph { return r.g }

type pqItem struct {
	node int32
	dist int64
}

// pq is a binary min-heap of pqItem ordered by dist. push and pop are
// transliterations of container/heap's up/down sifts specialized to the
// concrete type: the heap used to satisfy heap.Interface, and the
// `any`-boxing on every Push/Pop accounted for the large majority of
// the process's steady-state allocations (each queue entry escaped to
// the heap as a 16-byte box). The sift algorithm — including the swap
// sequences, and therefore the pop order of equal-dist entries — is
// bit-identical to container/heap's, which keeps every shortest-path
// tree, and hence every golden trace, unchanged.
type pq []pqItem

func (q *pq) push(it pqItem) {
	h := append(*q, it)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if h[j].dist >= h[i].dist {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	*q = h
}

func (q *pq) pop() pqItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].dist < h[j].dist {
			j = j2
		}
		if h[j].dist >= h[i].dist {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	*q = h[:n]
	return it
}

const unreachable = int64(-1)

// Sync applies any pending epoch invalidation eagerly. The sharded
// runner calls it single-threaded at every barrier, immediately after
// the global events that can mutate the graph: during the parallel
// shard windows the epoch is then guaranteed stable, so concurrent
// queries from shard goroutines never race on cache invalidation (a
// source's tree is only ever built and read by the shard that owns the
// source node).
func (r *Router) Sync() { r.ensureEpoch() }

// ensureEpoch invalidates every cached tree when the graph's route
// epoch has advanced since they were built.
func (r *Router) ensureEpoch() {
	if e := r.g.epoch; e != r.epoch {
		for i := range r.trees {
			r.trees[i] = nil
		}
		if r.hier != nil {
			r.hier = buildHier(r.g)
		}
		r.epoch = e
	}
}

func (r *Router) tree(src int) *spTree {
	r.ensureEpoch()
	if t := r.trees[src]; t != nil {
		return t
	}
	n := len(r.g.Nodes)
	t := &spTree{
		prevLink: make([]int32, n),
		prevNode: make([]int32, n),
		dist:     make([]int64, n),
		paths:    make([][]int32, len(r.g.Clients)),
	}
	for i := range t.dist {
		t.dist[i] = unreachable
		t.prevLink[i] = -1
		t.prevNode[i] = -1
	}
	t.dist[src] = 0
	q := pq{{node: int32(src), dist: 0}}
	for len(q) > 0 {
		it := q.pop()
		if t.dist[it.node] != it.dist {
			continue // stale entry
		}
		for _, he := range r.g.adj[it.node] {
			l := &r.g.Links[he.link]
			if l.Down {
				continue
			}
			nd := it.dist + int64(l.Delay)
			if t.dist[he.to] == unreachable || nd < t.dist[he.to] {
				t.dist[he.to] = nd
				t.prevLink[he.to] = he.link
				t.prevNode[he.to] = it.node
				q.push(pqItem{node: he.to, dist: nd})
			}
		}
	}
	r.trees[src] = t
	return t
}

// Path returns the link IDs along the shortest path from -> to, in
// traversal order. It returns nil if to is unreachable, and an empty
// slice if from == to. The returned slice is owned by the router's
// cache and shared between callers: treat it as immutable.
func (r *Router) Path(from, to int) []int32 {
	if from == to {
		return emptyPath
	}
	if r.hier != nil {
		r.ensureEpoch()
		return r.hier.path(from, to)
	}
	t := r.tree(from)
	if t.dist[to] == unreachable {
		return nil
	}
	ci := r.clientIdx[to]
	if ci >= 0 {
		if p := t.paths[ci]; p != nil {
			return p
		}
	}
	p := materialize(t, int32(from), int32(to))
	if ci >= 0 {
		t.paths[ci] = p
	}
	return p
}

// materialize walks the predecessor chain twice: once to count hops,
// once to fill front-to-back, so no reversal pass is needed.
func materialize(t *spTree, from, to int32) []int32 {
	hops := 0
	for n := to; n != from; n = t.prevNode[n] {
		hops++
	}
	p := make([]int32, hops)
	for n := to; n != from; n = t.prevNode[n] {
		hops--
		p[hops] = t.prevLink[n]
	}
	return p
}

// Delay returns the one-way propagation delay of the shortest path.
func (r *Router) Delay(from, to int) sim.Duration {
	if from == to {
		return 0
	}
	if r.hier != nil {
		r.ensureEpoch()
		d := r.hier.dist(from, to)
		if d == unreachable {
			return -1
		}
		return sim.Duration(d)
	}
	t := r.tree(from)
	d := t.dist[to]
	if d == unreachable {
		return -1
	}
	return sim.Duration(d)
}

// Reachable reports whether to is reachable from from.
func (r *Router) Reachable(from, to int) bool {
	if from != to && r.hier != nil {
		r.ensureEpoch()
		return r.hier.reachable(from, to)
	}
	return from == to || r.tree(from).dist[to] != unreachable
}

// PathLoss returns the end-to-end loss probability of the path
// (1 - prod(1-l_e)), per §4.1's l(o) definition.
func (r *Router) PathLoss(from, to int) float64 {
	keep := 1.0
	for _, lid := range r.Path(from, to) {
		keep *= 1 - r.g.Links[lid].Loss
	}
	return 1 - keep
}

// Bottleneck returns the minimum link capacity (bytes/s) along the path,
// or +Inf for the empty path.
func (r *Router) Bottleneck(from, to int) float64 {
	min := math.Inf(1)
	for _, lid := range r.Path(from, to) {
		if c := r.g.Links[lid].Bytes; c < min {
			min = c
		}
	}
	return min
}
