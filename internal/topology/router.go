package topology

import (
	"container/heap"
	"math"

	"bullet/internal/sim"
)

// Router answers fixed shortest-path routing queries over a Graph,
// modeling IP unicast routing (assumption 1 of §4.1: the routing path
// between any two overlay participants is fixed). Paths are shortest by
// propagation delay. Shortest-path trees are computed lazily per source
// and cached, so repeated queries from the same participant are O(path).
type Router struct {
	g     *Graph
	cache map[int]*spTree
}

type spTree struct {
	prevLink []int32 // incoming link on the shortest path, -1 at source
	prevNode []int32
	dist     []int64 // nanoseconds of propagation delay; -1 = unreachable
}

// NewRouter creates a router for g.
func NewRouter(g *Graph) *Router {
	return &Router{g: g, cache: make(map[int]*spTree)}
}

// Graph returns the underlying topology.
func (r *Router) Graph() *Graph { return r.g }

type pqItem struct {
	node int32
	dist int64
}
type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

const unreachable = int64(-1)

func (r *Router) tree(src int) *spTree {
	if t, ok := r.cache[src]; ok {
		return t
	}
	n := len(r.g.Nodes)
	t := &spTree{
		prevLink: make([]int32, n),
		prevNode: make([]int32, n),
		dist:     make([]int64, n),
	}
	for i := range t.dist {
		t.dist[i] = unreachable
		t.prevLink[i] = -1
		t.prevNode[i] = -1
	}
	t.dist[src] = 0
	q := pq{{node: int32(src), dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if t.dist[it.node] != it.dist {
			continue // stale entry
		}
		for _, he := range r.g.adj[it.node] {
			l := &r.g.Links[he.link]
			nd := it.dist + int64(l.Delay)
			if t.dist[he.to] == unreachable || nd < t.dist[he.to] {
				t.dist[he.to] = nd
				t.prevLink[he.to] = he.link
				t.prevNode[he.to] = it.node
				heap.Push(&q, pqItem{node: he.to, dist: nd})
			}
		}
	}
	r.cache[src] = t
	return t
}

// Path returns the link IDs along the shortest path from -> to, in
// traversal order. It returns nil if to is unreachable, and an empty
// slice if from == to.
func (r *Router) Path(from, to int) []int32 {
	if from == to {
		return []int32{}
	}
	t := r.tree(from)
	if t.dist[to] == unreachable {
		return nil
	}
	var rev []int32
	for n := int32(to); n != int32(from); n = t.prevNode[n] {
		rev = append(rev, t.prevLink[n])
	}
	// reverse in place
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Delay returns the one-way propagation delay of the shortest path.
func (r *Router) Delay(from, to int) sim.Duration {
	if from == to {
		return 0
	}
	t := r.tree(from)
	d := t.dist[to]
	if d == unreachable {
		return -1
	}
	return sim.Duration(d)
}

// Reachable reports whether to is reachable from from.
func (r *Router) Reachable(from, to int) bool {
	return from == to || r.tree(from).dist[to] != unreachable
}

// PathLoss returns the end-to-end loss probability of the path
// (1 - prod(1-l_e)), per §4.1's l(o) definition.
func (r *Router) PathLoss(from, to int) float64 {
	keep := 1.0
	for _, lid := range r.Path(from, to) {
		keep *= 1 - r.g.Links[lid].Loss
	}
	return 1 - keep
}

// Bottleneck returns the minimum link capacity (bytes/s) along the path,
// or +Inf for the empty path.
func (r *Router) Bottleneck(from, to int) float64 {
	min := math.Inf(1)
	for _, lid := range r.Path(from, to) {
		if c := r.g.Links[lid].Bytes; c < min {
			min = c
		}
	}
	return min
}
