package topology

import (
	"testing"

	"bullet/internal/sim"
)

// small generated graph shared by the dynamics tests.
func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Generate(Config{
		TransitDomains: 2, TransitPerDomain: 3, StubDomains: 4, StubDomainSize: 5,
		Clients: 10, ExtraEdgeFrac: 0.3, Bandwidth: MediumBandwidth, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMutatorsAdvanceEpoch(t *testing.T) {
	g := testGraph(t)
	e0 := g.Epoch()

	// Bandwidth and loss changes do not affect routes: no epoch bump.
	g.SetBandwidth(0, 1234)
	g.ScaleBandwidth(0, 0.5)
	g.SetLoss(0, 0.1)
	if g.Epoch() != e0 {
		t.Fatalf("bandwidth/loss mutation advanced epoch %d -> %d", e0, g.Epoch())
	}
	if got := g.Links[0].Kbps(); got != 617 {
		t.Errorf("Kbps after SetBandwidth+Scale = %g, want 617", got)
	}
	if g.Links[0].Loss != 0.1 {
		t.Errorf("Loss = %g, want 0.1", g.Links[0].Loss)
	}

	// Latency and up/down changes do.
	g.SetLatency(0, 5*sim.Millisecond)
	if g.Epoch() != e0+1 {
		t.Fatalf("SetLatency epoch = %d, want %d", g.Epoch(), e0+1)
	}
	g.SetLatency(0, 5*sim.Millisecond) // no-op: same value
	if g.Epoch() != e0+1 {
		t.Fatal("no-op SetLatency advanced epoch")
	}
	g.FailLink(0)
	if !g.Links[0].Down || g.Epoch() != e0+2 {
		t.Fatalf("FailLink: down=%v epoch=%d", g.Links[0].Down, g.Epoch())
	}
	g.FailLink(0) // idempotent
	if g.Epoch() != e0+2 {
		t.Fatal("idempotent FailLink advanced epoch")
	}
	g.RestoreLink(0)
	if g.Links[0].Down || g.Epoch() != e0+3 {
		t.Fatalf("RestoreLink: down=%v epoch=%d", g.Links[0].Down, g.Epoch())
	}
	g.RestoreLink(0) // idempotent
	if g.Epoch() != e0+3 {
		t.Fatal("idempotent RestoreLink advanced epoch")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	g := testGraph(t)
	client := g.Clients[0]
	lid := g.AccessLink(client)
	if lid < 0 {
		t.Fatal("client has no single access link")
	}

	// Independently failed links must survive Heal.
	other := g.AccessLink(g.Clients[1])
	g.FailLink(other)

	cut := g.Partition([]int{client})
	if cut != 1 {
		t.Fatalf("Partition cut %d links, want 1 (the access link)", cut)
	}
	if !g.Links[lid].Down {
		t.Fatal("access link not down after Partition")
	}
	g.Heal()
	if g.Links[lid].Down {
		t.Fatal("access link still down after Heal")
	}
	if !g.Links[other].Down {
		t.Fatal("Heal resurrected an independently failed link")
	}

	// Heal with no partition is a no-op.
	e := g.Epoch()
	g.Heal()
	if g.Epoch() != e {
		t.Fatal("empty Heal advanced epoch")
	}
}

// An explicit FailLink on a link a Partition already cut claims it
// permanently: Heal must not resurrect it.
func TestFailLinkAfterPartitionSurvivesHeal(t *testing.T) {
	g := testGraph(t)
	client := g.Clients[0]
	lid := g.AccessLink(client)
	if cut := g.Partition([]int{client}); cut != 1 {
		t.Fatalf("Partition cut %d links, want 1", cut)
	}
	g.FailLink(lid) // now an explicit, permanent failure
	g.Heal()
	if !g.Links[lid].Down {
		t.Fatal("Heal resurrected a link explicitly failed via FailLink")
	}
}

// Partition / RestoreLink / Partition must not leave stale duplicate
// cut entries behind that would let Heal undo a later explicit
// FailLink.
func TestRestoreLinkClearsPartitionCut(t *testing.T) {
	g := testGraph(t)
	client := g.Clients[0]
	lid := g.AccessLink(client)
	g.Partition([]int{client})
	g.RestoreLink(lid) // back up; cut entry must be dropped
	if g.Links[lid].Down {
		t.Fatal("RestoreLink left the link down")
	}
	g.Partition([]int{client}) // cut again
	g.FailLink(lid)            // claim it explicitly
	g.Heal()
	if !g.Links[lid].Down {
		t.Fatal("stale cut entry let Heal resurrect an explicitly failed link")
	}
}

func TestFindLink(t *testing.T) {
	g := testGraph(t)
	l := &g.Links[0]
	if got := g.FindLink(l.A, l.B); got != l.ID {
		t.Errorf("FindLink(%d,%d) = %d, want %d", l.A, l.B, got, l.ID)
	}
	if got := g.FindLink(l.B, l.A); got != l.ID {
		t.Errorf("FindLink reversed = %d, want %d", got, l.ID)
	}
	// Clients are degree one: no client-client link exists.
	if got := g.FindLink(g.Clients[0], g.Clients[1]); got != -1 {
		t.Errorf("FindLink between clients = %d, want -1", got)
	}
}

func TestRouterReroutesAfterFailure(t *testing.T) {
	g := testGraph(t)
	r := NewRouter(g)
	from, to := g.Clients[0], g.Clients[1]

	p0 := r.Path(from, to)
	if len(p0) == 0 {
		t.Fatal("no initial path")
	}
	d0 := r.Delay(from, to)

	// Fail a mid-path link (not the degree-one access links, so an
	// alternative can exist). If none does, the route must be nil.
	var victim int32 = -1
	for _, lid := range p0 {
		l := &g.Links[lid]
		if l.Class != ClientStub {
			victim = lid
			break
		}
	}
	if victim < 0 {
		t.Skip("path is all access links")
	}
	g.FailLink(int(victim))
	p1 := r.Path(from, to)
	for _, lid := range p1 {
		if lid == victim {
			t.Fatal("rerouted path still uses the failed link")
		}
		if g.Links[lid].Down {
			t.Fatal("rerouted path uses a down link")
		}
	}
	if p1 != nil && r.Delay(from, to) < d0 {
		t.Errorf("detour is shorter than the original path: %v < %v", r.Delay(from, to), d0)
	}

	// Restoring converges back to the original route and delay.
	g.RestoreLink(int(victim))
	p2 := r.Path(from, to)
	if len(p2) != len(p0) {
		t.Fatalf("restored path has %d hops, want %d", len(p2), len(p0))
	}
	for i := range p2 {
		if p2[i] != p0[i] {
			t.Fatalf("restored path differs at hop %d", i)
		}
	}
	if d := r.Delay(from, to); d != d0 {
		t.Errorf("restored delay %v, want %v", d, d0)
	}
}

func TestRouterPartitionUnreachable(t *testing.T) {
	g := testGraph(t)
	r := NewRouter(g)
	from, to := g.Clients[0], g.Clients[1]
	if !r.Reachable(from, to) {
		t.Fatal("clients initially unreachable")
	}
	g.Partition([]int{to})
	if r.Reachable(from, to) {
		t.Fatal("partitioned client still reachable")
	}
	if p := r.Path(from, to); p != nil {
		t.Fatalf("Path to partitioned client = %v, want nil", p)
	}
	g.Heal()
	if !r.Reachable(from, to) {
		t.Fatal("client unreachable after Heal")
	}
}
