package topology

import (
	"testing"

	"bullet/internal/sim"
)

// forceHier installs the hierarchical backend on a router regardless of
// topology size, failing the test when validation rejects the graph.
func forceHier(t *testing.T, r *Router) {
	t.Helper()
	r.hier = buildHier(r.g)
	if r.hier == nil {
		t.Fatal("buildHier rejected a generated topology")
	}
}

// pathDelay sums the link delays along a path and checks that it forms
// a connected walk from -> to over live links.
func pathDelay(t *testing.T, g *Graph, from, to int, p []int32) sim.Duration {
	t.Helper()
	var d sim.Duration
	cur := from
	for _, lid := range p {
		l := &g.Links[lid]
		if l.Down {
			t.Fatalf("path %d->%d uses down link %d", from, to, lid)
		}
		switch cur {
		case l.A:
			cur = l.B
		case l.B:
			cur = l.A
		default:
			t.Fatalf("path %d->%d disconnected at link %d (cur %d)", from, to, lid, cur)
		}
		d += l.Delay
	}
	if cur != to {
		t.Fatalf("path %d->%d ends at %d", from, to, cur)
	}
	return d
}

// genHier generates a small transit-stub topology for equivalence
// tests.
func genHier(t *testing.T, transitDomains, transitSize, stubDomains, stubSize, clients int, seed int64) *Graph {
	t.Helper()
	g, err := Generate(Config{
		TransitDomains: transitDomains, TransitPerDomain: transitSize,
		StubDomains: stubDomains, StubDomainSize: stubSize,
		Clients: clients, ExtraEdgeFrac: 0.5,
		Bandwidth: MediumBandwidth, Seed: seed,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g
}

// queryPairs yields a deterministic mix of endpoint pairs covering the
// interesting kind combinations: client-client, client-router,
// transit-transit, stub-stub (same and different atoms).
func queryPairs(g *Graph) [][2]int {
	var transit, stub []int
	for i := range g.Nodes {
		switch g.Nodes[i].Kind {
		case Transit:
			transit = append(transit, i)
		case Stub:
			stub = append(stub, i)
		}
	}
	var pairs [][2]int
	cl := g.Clients
	for i := 0; i < len(cl); i += 3 {
		pairs = append(pairs, [2]int{cl[i], cl[(i*7+5)%len(cl)]})
	}
	for i := 0; i < len(stub); i += 5 {
		pairs = append(pairs, [2]int{stub[i], stub[(i*3+1)%len(stub)]})
		pairs = append(pairs, [2]int{stub[i], transit[i%len(transit)]})
	}
	for i := 0; i < len(transit); i += 2 {
		pairs = append(pairs, [2]int{transit[i], transit[(i+3)%len(transit)]})
		pairs = append(pairs, [2]int{transit[i], cl[i%len(cl)]})
	}
	pairs = append(pairs, [2]int{cl[0], cl[0]}) // self query
	return pairs
}

// TestHierMatchesFlat checks the hierarchical backend against the flat
// one: distances must be exactly equal, and every hierarchical path
// must be a valid walk whose delay equals the reported distance.
func TestHierMatchesFlat(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := genHier(t, 3, 3, 12, 6, 30, seed)
		flat := NewRouter(g)
		hr := NewRouter(g)
		forceHier(t, hr)
		for _, pr := range queryPairs(g) {
			u, v := pr[0], pr[1]
			fd, hd := flat.Delay(u, v), hr.Delay(u, v)
			if fd != hd {
				t.Fatalf("seed %d: delay(%d,%d) flat %d hier %d", seed, u, v, fd, hd)
			}
			hp := hr.Path(u, v)
			if fd < 0 {
				if hp != nil {
					t.Fatalf("seed %d: path(%d,%d) non-nil for unreachable", seed, u, v)
				}
				continue
			}
			if hp == nil {
				t.Fatalf("seed %d: path(%d,%d) nil but reachable", seed, u, v)
			}
			if got := pathDelay(t, g, u, v, hp); got != sim.Duration(fd) {
				t.Fatalf("seed %d: path(%d,%d) delay %d want %d", seed, u, v, got, fd)
			}
			if flat.Reachable(u, v) != hr.Reachable(u, v) {
				t.Fatalf("seed %d: reachable(%d,%d) disagree", seed, u, v)
			}
		}
	}
}

// TestHierDeterministic checks that two independently built
// hierarchical routers return identical paths (not just equal-length
// ones) for every query — the property the sharded runner's
// byte-identity contract rests on.
func TestHierDeterministic(t *testing.T) {
	g := genHier(t, 2, 4, 10, 5, 24, 99)
	a := NewRouter(g)
	b := NewRouter(g)
	forceHier(t, a)
	forceHier(t, b)
	for _, pr := range queryPairs(g) {
		pa, pb := a.Path(pr[0], pr[1]), b.Path(pr[0], pr[1])
		if len(pa) != len(pb) {
			t.Fatalf("path(%d,%d) lengths differ", pr[0], pr[1])
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("path(%d,%d) differs at hop %d: %d vs %d",
					pr[0], pr[1], i, pa[i], pb[i])
			}
		}
	}
}

// TestHierEpochRebuild checks that a runtime link mutation (FailLink on
// a Transit-Transit link) advances the epoch and the rebuilt hierarchy
// agrees with the flat backend on the changed graph.
func TestHierEpochRebuild(t *testing.T) {
	g := genHier(t, 2, 3, 8, 5, 16, 5)
	flat := NewRouter(g)
	hr := NewRouter(g)
	forceHier(t, hr)
	// Warm both, then fail the first Transit-Transit link.
	_ = hr.Path(g.Clients[0], g.Clients[1])
	var tt int
	for i := range g.Links {
		if g.Links[i].Class == TransitTransit {
			tt = i
			break
		}
	}
	g.FailLink(tt)
	for _, pr := range queryPairs(g) {
		fd, hd := flat.Delay(pr[0], pr[1]), hr.Delay(pr[0], pr[1])
		if fd != hd {
			t.Fatalf("post-fail delay(%d,%d) flat %d hier %d", pr[0], pr[1], fd, hd)
		}
	}
	// And restore: delays must return to the original values.
	g.RestoreLink(tt)
	for _, pr := range queryPairs(g) {
		if fd, hd := flat.Delay(pr[0], pr[1]), hr.Delay(pr[0], pr[1]); fd != hd {
			t.Fatalf("post-restore delay(%d,%d) flat %d hier %d", pr[0], pr[1], fd, hd)
		}
	}
}

// TestHierValidationFallback checks that a topology breaking the
// transit-stub contract is rejected, leaving the flat backend in
// charge.
func TestHierValidationFallback(t *testing.T) {
	b := NewBuilder()
	n0 := b.AddNode(Transit, 0, 0)
	n1 := b.AddNode(Stub, 1, 0)
	c := b.AddNode(Client, 2, 0)
	b.AddLink(n0, n1, TransitStub, 1000, sim.Millisecond, 0)
	// Contract violation: a Client with two links.
	b.AddLink(c, n1, ClientStub, 1000, sim.Millisecond, 0)
	b.AddLink(c, n0, ClientStub, 1000, sim.Millisecond, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if buildHier(g) != nil {
		t.Fatal("buildHier accepted a client with two access links")
	}
}
