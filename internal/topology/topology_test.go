package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bullet/internal/sim"
)

func genSmall(t *testing.T, seed int64) *Graph {
	t.Helper()
	g, err := Generate(Config{
		TransitDomains:   2,
		TransitPerDomain: 3,
		StubDomains:      6,
		StubDomainSize:   5,
		Clients:          20,
		ExtraEdgeFrac:    0.3,
		Bandwidth:        MediumBandwidth,
		Seed:             seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateCounts(t *testing.T) {
	g := genSmall(t, 1)
	wantNodes := 2*3 + 6*5 + 20
	if len(g.Nodes) != wantNodes {
		t.Fatalf("nodes=%d want %d", len(g.Nodes), wantNodes)
	}
	if len(g.Clients) != 20 {
		t.Fatalf("clients=%d want 20", len(g.Clients))
	}
	for _, c := range g.Clients {
		if g.Nodes[c].Kind != Client {
			t.Fatalf("client id %d has kind %v", c, g.Nodes[c].Kind)
		}
		if g.Degree(c) != 1 {
			t.Fatalf("client %d degree=%d, want 1", c, g.Degree(c))
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, b := genSmall(t, 7), genSmall(t, 7)
	if len(a.Links) != len(b.Links) {
		t.Fatalf("link count differs: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, a.Links[i], b.Links[i])
		}
	}
}

func TestGenerateConnectivity(t *testing.T) {
	g := genSmall(t, 3)
	r := NewRouter(g)
	src := g.Clients[0]
	for _, c := range g.Clients {
		if !r.Reachable(src, c) {
			t.Fatalf("client %d unreachable from %d", c, src)
		}
	}
}

func TestLinkClassesAndBandwidths(t *testing.T) {
	g := genSmall(t, 5)
	counts := g.LinkClassCounts()
	for _, cls := range []LinkClass{ClientStub, StubStub, TransitStub, TransitTransit} {
		if counts[cls] == 0 {
			t.Fatalf("no links of class %v", cls)
		}
	}
	for i := range g.Links {
		l := &g.Links[i]
		r := MediumBandwidth.Ranges[l.Class]
		kbps := l.Kbps()
		if kbps < r.Lo-1e-6 || kbps > r.Hi+1e-6 {
			t.Fatalf("link %d class %v bandwidth %.1f outside [%g,%g]", i, l.Class, kbps, r.Lo, r.Hi)
		}
		if l.Delay <= 0 {
			t.Fatalf("link %d nonpositive delay %v", i, l.Delay)
		}
		if l.Loss != 0 {
			t.Fatalf("link %d has loss %g under NoLoss profile", i, l.Loss)
		}
	}
}

func TestLossProfile(t *testing.T) {
	cfg := Config{
		TransitDomains: 2, TransitPerDomain: 3,
		StubDomains: 10, StubDomainSize: 8,
		Clients: 50, ExtraEdgeFrac: 0.3,
		Bandwidth: MediumBandwidth, Loss: PaperLoss, Seed: 11,
	}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	overloaded := 0
	for i := range g.Links {
		l := &g.Links[i]
		if l.Overload {
			overloaded++
			if l.Loss < PaperLoss.OverloadedLo || l.Loss > PaperLoss.OverloadedHi {
				t.Fatalf("overloaded link loss %g outside [%g,%g]", l.Loss, PaperLoss.OverloadedLo, PaperLoss.OverloadedHi)
			}
			continue
		}
		max := PaperLoss.TransitMax
		if l.Class == ClientStub || l.Class == StubStub {
			max = PaperLoss.NonTransitMax
		}
		if l.Loss < 0 || l.Loss > max {
			t.Fatalf("link class %v loss %g outside [0,%g]", l.Class, l.Loss, max)
		}
	}
	want := int(PaperLoss.OverloadedFrac * float64(len(g.Links)))
	if overloaded != want {
		t.Fatalf("overloaded=%d want %d", overloaded, want)
	}
}

func TestSizedProducesRequestedScale(t *testing.T) {
	cfg := Sized(2000, 100, MediumBandwidth)
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(g.Nodes)
	if n < 1500 || n > 2500 {
		t.Fatalf("Sized(2000) gave %d nodes", n)
	}
	if len(g.Clients) != 100 {
		t.Fatalf("clients=%d want 100", len(g.Clients))
	}
}

func TestRouterPathValidity(t *testing.T) {
	g := genSmall(t, 9)
	r := NewRouter(g)
	from, to := g.Clients[0], g.Clients[len(g.Clients)-1]
	path := r.Path(from, to)
	if len(path) == 0 {
		t.Fatal("empty path between distinct clients")
	}
	// Walk the path and confirm it is connected from -> to.
	cur := from
	for _, lid := range path {
		l := &g.Links[lid]
		switch cur {
		case l.A:
			cur = l.B
		case l.B:
			cur = l.A
		default:
			t.Fatalf("path link %d does not touch current node %d", lid, cur)
		}
	}
	if cur != to {
		t.Fatalf("path ends at %d, want %d", cur, to)
	}
}

func TestRouterSelfPath(t *testing.T) {
	g := genSmall(t, 2)
	r := NewRouter(g)
	if p := r.Path(5, 5); p == nil || len(p) != 0 {
		t.Fatalf("self path = %v, want empty non-nil", p)
	}
	if d := r.Delay(5, 5); d != 0 {
		t.Fatalf("self delay = %v", d)
	}
}

func TestRouterDelayMatchesPath(t *testing.T) {
	g := genSmall(t, 4)
	r := NewRouter(g)
	from, to := g.Clients[1], g.Clients[7]
	var sum sim.Duration
	for _, lid := range r.Path(from, to) {
		sum += g.Links[lid].Delay
	}
	d := r.Delay(from, to)
	diff := d - sum
	if diff < 0 {
		diff = -diff
	}
	if diff > sim.Microsecond {
		t.Fatalf("Delay=%v but path sums to %v", d, sum)
	}
}

// Property: for random client pairs, the shortest path is no longer (in
// delay) than any single alternate simple route we can find via a
// different first hop, and path loss is within [0,1].
func TestRouterProperties(t *testing.T) {
	g := genSmall(t, 12)
	r := NewRouter(g)
	f := func(ai, bi uint8) bool {
		a := g.Clients[int(ai)%len(g.Clients)]
		b := g.Clients[int(bi)%len(g.Clients)]
		pl := r.PathLoss(a, b)
		if pl < 0 || pl > 1 {
			return false
		}
		if a == b {
			return r.Delay(a, b) == 0
		}
		// Symmetric delay on an undirected graph.
		return r.Delay(a, b) == r.Delay(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestBottleneck(t *testing.T) {
	g := genSmall(t, 6)
	r := NewRouter(g)
	from, to := g.Clients[0], g.Clients[3]
	b := r.Bottleneck(from, to)
	min := 1e18
	for _, lid := range r.Path(from, to) {
		if c := g.Links[lid].Bytes; c < min {
			min = c
		}
	}
	if b != min {
		t.Fatalf("Bottleneck=%g want %g", b, min)
	}
	// Client access links cap the bottleneck.
	csMax := MediumBandwidth.Ranges[ClientStub].Hi * 1000 / 8
	if b > csMax+1 {
		t.Fatalf("bottleneck %g exceeds max client-stub capacity %g", b, csMax)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"low", "medium", "high"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ProfileByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	bad := Config{Clients: -1}
	if _, err := Generate(bad); err == nil {
		t.Fatal("expected error for negative clients")
	}
	bad2 := Config{ExtraEdgeFrac: -0.5, Clients: 1}
	if _, err := Generate(bad2); err == nil {
		t.Fatal("expected error for negative extra edge fraction")
	}
}
