package topology

// This file holds the hierarchical router backend, which makes Router
// startup subquadratic on paper-scale (100k-node) transit-stub
// topologies. The flat backend pays one Dijkstra over the whole graph
// per source — fine at 20k nodes, but ~100ms and ~2.4MB per source at
// 100k, which multiplied by 10k client sources is minutes of startup
// and tens of gigabytes. The hierarchical backend exploits the
// transit-stub structure the generator (and Table 1) guarantees:
//
//   - clients are degree-one leaves behind a single access link;
//   - stub atoms — the connected components of Stub nodes over
//     Stub-Stub links — touch the rest of the world only through
//     Transit-Stub links at gateway nodes (a simple path cannot pass
//     through a degree-one client, so there is no other way in);
//   - the backbone is the Transit nodes and Transit-Transit links.
//
// Any simple path therefore decomposes into backbone links and maximal
// stub-atom traversals, each entering and leaving an atom through
// Transit-Stub links. The terminal graph H — one vertex per Transit
// node, real edges for Transit-Transit links, and a virtual edge for
// every (enter, leave) Transit-Stub pair of every atom, weighted by
// the intra-atom shortest gateway-to-gateway distance — preserves
// transit-to-transit distances exactly: every H edge corresponds to a
// real path, and every real path's atom traversals are at least their
// atom's virtual-edge weight. A router-to-router query then minimizes
// entry(u) + dist_H + exit(v) over the (gateway, Transit-Stub link)
// options of each endpoint's atom, against the pure intra-atom
// distance when both ends share an atom; client queries add the unique
// access links on both sides. Every piece is a deterministic function
// of the graph, so answers are independent of query order — the
// byte-identity contract of the sharded runner extends to the
// hierarchical backend unchanged.
//
// Cost at 100k nodes / 10k clients: ~7k atoms of ~12 nodes (gateway
// trees are microseconds each) and ~1.8k terminals whose all-pairs
// tables are ~1.8k small Dijkstras — under a second and ~50MB, built
// once per route epoch, against minutes and tens of gigabytes for the
// flat backend. Per-source state (path memos, same-atom trees) is
// touched only by the simulation shard that owns the source node, the
// same ownership discipline the flat backend relies on; the shared
// tables built here are immutable after construction.
//
// The backend engages automatically at hierNodeThreshold nodes and
// only when the topology passes validateHier — handcrafted Builder
// graphs that break the transit-stub contract fall back to the flat
// backend. Runtime link mutations advance the route epoch, which
// rebuilds the hierarchy from the current link state (Down links are
// excluded everywhere), exactly as the flat backend drops its trees.

// hierNodeThreshold is the node count at which NewRouter switches to
// the hierarchical backend. No committed experiment topology reaches
// it; the mega scale (100k) is the intended user.
const hierNodeThreshold = 50000

// hgw is one gateway of an atom: a Stub node carrying at least one
// live Transit-Stub link.
type hgw struct {
	node int32
	ts   []int32 // live Transit-Stub link ids out of node
}

// hatom is one stub atom.
type hatom struct {
	nodes []int32 // member node ids, ascending
	gws   []hgw
	// Gateway-rooted shortest-path trees within the atom, indexed
	// [gateway][local node index]. Distances are symmetric (links are
	// undirected), so these serve both "source to its gateway" and
	// "gateway to destination" lookups.
	gdist  [][]int64
	gprevL [][]int32 // link taken toward the root, -1 at root/unreached
	gprevN [][]int32 // local index of the parent toward the root
}

// hedge is a directed edge of the terminal graph: a Transit-Transit
// link, or a virtual atom traversal tsA -> (gwA .. gwB intra) -> tsB.
type hedge struct {
	to       int32 // destination terminal index
	w        int64
	link     int32 // real link id, or -1 for a virtual edge
	atom     int32
	gwA, gwB int32 // gateway indices within atom (may be equal)
	tsA, tsB int32 // entering / leaving Transit-Stub link ids
}

// hsrc is per-source query state. It is created and used only by the
// shard that owns the source node, mirroring the flat backend's
// per-source trees.
type hsrc struct {
	paths map[int32][]int32 // destination node -> materialized path
	// Same-atom tree rooted at this (Stub) source, local-indexed.
	adist  []int64
	aprevL []int32
	aprevN []int32
}

type hierRouter struct {
	g         *Graph
	atomOf    []int32 // node -> atom index, -1 for Transit and Client
	atomLocal []int32 // node -> local index within its atom
	atoms     []hatom
	termIdx   []int32 // node -> terminal index, -1 for non-Transit
	terms     []int32 // terminal index -> node id
	hadj      [][]hedge
	hdist     [][]int64 // [terminal][terminal], eager
	hpredT    [][]int32 // predecessor terminal on the shortest path
	hpredE    [][]int32 // index of the predecessor edge in hadj[predT]
	srcs      []*hsrc   // per-source state, lazily created
}

// validateHier checks the transit-stub contract the decomposition
// relies on. A false return means the topology was handcrafted outside
// the contract and the flat backend must serve it.
func validateHier(g *Graph) bool {
	for i := range g.Links {
		l := &g.Links[i]
		ka, kb := g.Nodes[l.A].Kind, g.Nodes[l.B].Kind
		switch l.Class {
		case ClientStub:
			if (ka == Client) == (kb == Client) {
				return false // exactly one endpoint must be the client
			}
		case StubStub:
			if ka != Stub || kb != Stub {
				return false
			}
		case TransitStub:
			if !(ka == Stub && kb == Transit || ka == Transit && kb == Stub) {
				return false
			}
		case TransitTransit:
			if ka != Transit || kb != Transit {
				return false
			}
		default:
			return false
		}
	}
	for i := range g.Nodes {
		if g.Nodes[i].Kind != Client {
			continue
		}
		if len(g.adj[i]) != 1 {
			return false // clients must be degree-one leaves
		}
		l := &g.Links[g.adj[i][0].link]
		if l.Class != ClientStub {
			return false
		}
	}
	return true
}

// buildHier constructs the hierarchical backend from the graph's
// current link state, or returns nil when the topology violates the
// transit-stub contract.
func buildHier(g *Graph) *hierRouter {
	if !validateHier(g) {
		return nil
	}
	n := len(g.Nodes)
	h := &hierRouter{
		g:         g,
		atomOf:    make([]int32, n),
		atomLocal: make([]int32, n),
		termIdx:   make([]int32, n),
		srcs:      make([]*hsrc, n),
	}
	for i := range h.atomOf {
		h.atomOf[i] = -1
		h.termIdx[i] = -1
	}

	// Terminals: the Transit nodes, ascending.
	for i := range g.Nodes {
		if g.Nodes[i].Kind == Transit {
			h.termIdx[i] = int32(len(h.terms))
			h.terms = append(h.terms, int32(i))
		}
	}

	// Atoms: components of Stub nodes over Stub-Stub links, discovered
	// by BFS in ascending seed order so atom and local indices are
	// deterministic.
	for i := range g.Nodes {
		if g.Nodes[i].Kind != Stub || h.atomOf[i] != -1 {
			continue
		}
		id := int32(len(h.atoms))
		atom := hatom{}
		h.atomOf[i] = id
		h.atomLocal[i] = 0
		atom.nodes = append(atom.nodes, int32(i))
		for q := 0; q < len(atom.nodes); q++ {
			u := atom.nodes[q]
			for _, he := range g.adj[u] {
				if g.Links[he.link].Class != StubStub || h.atomOf[he.to] != -1 {
					continue
				}
				h.atomOf[he.to] = id
				h.atomLocal[he.to] = int32(len(atom.nodes))
				atom.nodes = append(atom.nodes, he.to)
			}
		}
		h.atoms = append(h.atoms, atom)
	}

	// Gateways: Stub endpoints of live Transit-Stub links, in ascending
	// node order within each atom.
	for ai := range h.atoms {
		atom := &h.atoms[ai]
		for _, u := range atom.nodes {
			var ts []int32
			for _, he := range h.g.adj[u] {
				l := &h.g.Links[he.link]
				if l.Class == TransitStub && !l.Down {
					ts = append(ts, he.link)
				}
			}
			if ts != nil {
				atom.gws = append(atom.gws, hgw{node: u, ts: ts})
			}
		}
		h.buildAtomTrees(atom)
	}

	h.buildTerminalGraph()
	h.buildTerminalTables()
	return h
}

// atomDijkstra runs a shortest-path tree within an atom from the given
// local source, over live Stub-Stub links only.
func (h *hierRouter) atomDijkstra(atom *hatom, src int32) (dist []int64, prevL, prevN []int32) {
	m := len(atom.nodes)
	dist = make([]int64, m)
	prevL = make([]int32, m)
	prevN = make([]int32, m)
	for i := range dist {
		dist[i] = unreachable
		prevL[i] = -1
		prevN[i] = -1
	}
	dist[src] = 0
	q := pq{{node: src, dist: 0}}
	for len(q) > 0 {
		it := q.pop()
		u := atom.nodes[it.node]
		if dist[it.node] != it.dist {
			continue
		}
		for _, he := range h.g.adj[u] {
			l := &h.g.Links[he.link]
			if l.Class != StubStub || l.Down {
				continue
			}
			v := h.atomLocal[he.to]
			nd := it.dist + int64(l.Delay)
			if dist[v] == unreachable || nd < dist[v] {
				dist[v] = nd
				prevL[v] = he.link
				prevN[v] = it.node
				q.push(pqItem{node: v, dist: nd})
			}
		}
	}
	return dist, prevL, prevN
}

func (h *hierRouter) buildAtomTrees(atom *hatom) {
	atom.gdist = make([][]int64, len(atom.gws))
	atom.gprevL = make([][]int32, len(atom.gws))
	atom.gprevN = make([][]int32, len(atom.gws))
	for gi := range atom.gws {
		atom.gdist[gi], atom.gprevL[gi], atom.gprevN[gi] =
			h.atomDijkstra(atom, h.atomLocal[atom.gws[gi].node])
	}
}

// buildTerminalGraph assembles H: real Transit-Transit edges plus one
// virtual edge per (entering, leaving) Transit-Stub pair per atom.
func (h *hierRouter) buildTerminalGraph() {
	h.hadj = make([][]hedge, len(h.terms))
	addBoth := func(a, b int32, e hedge) {
		e.to = b
		h.hadj[a] = append(h.hadj[a], e)
		// The reverse direction swaps the traversal orientation.
		e.to = a
		e.gwA, e.gwB = e.gwB, e.gwA
		e.tsA, e.tsB = e.tsB, e.tsA
		h.hadj[b] = append(h.hadj[b], e)
	}
	for i := range h.g.Links {
		l := &h.g.Links[i]
		if l.Class != TransitTransit || l.Down {
			continue
		}
		ta, tb := h.termIdx[l.A], h.termIdx[l.B]
		addBoth(ta, tb, hedge{w: int64(l.Delay), link: int32(i), atom: -1})
	}
	for ai := range h.atoms {
		atom := &h.atoms[ai]
		for gi := range atom.gws {
			for gj := gi; gj < len(atom.gws); gj++ {
				intra := int64(0)
				if gi != gj {
					intra = atom.gdist[gi][h.atomLocal[atom.gws[gj].node]]
					if intra == unreachable {
						continue
					}
				}
				for ia, tsA := range atom.gws[gi].ts {
					tsBs := atom.gws[gj].ts
					if gi == gj {
						// Same gateway on both ends: take unordered
						// pairs once (addBoth covers the reverse).
						tsBs = tsBs[ia+1:]
					}
					for _, tsB := range tsBs {
						if tsA == tsB {
							continue
						}
						la, lb := &h.g.Links[tsA], &h.g.Links[tsB]
						ta := h.termIdx[transitEnd(h.g, la)]
						tb := h.termIdx[transitEnd(h.g, lb)]
						if ta == tb {
							continue
						}
						addBoth(ta, tb, hedge{
							w:    int64(la.Delay) + intra + int64(lb.Delay),
							link: -1, atom: int32(ai),
							gwA: int32(gi), gwB: int32(gj),
							tsA: tsA, tsB: tsB,
						})
					}
				}
			}
		}
	}
}

func transitEnd(g *Graph, l *Link) int {
	if g.Nodes[l.A].Kind == Transit {
		return l.A
	}
	return l.B
}

// buildTerminalTables runs one Dijkstra over H per terminal. ~1.8k
// terminals at 100k nodes makes this the dominant build cost, still
// well under a second; building eagerly keeps the shared tables
// immutable once queries (possibly from concurrent shards) begin.
func (h *hierRouter) buildTerminalTables() {
	T := len(h.terms)
	h.hdist = make([][]int64, T)
	h.hpredT = make([][]int32, T)
	h.hpredE = make([][]int32, T)
	for s := 0; s < T; s++ {
		dist := make([]int64, T)
		predT := make([]int32, T)
		predE := make([]int32, T)
		for i := range dist {
			dist[i] = unreachable
			predT[i] = -1
			predE[i] = -1
		}
		dist[s] = 0
		q := pq{{node: int32(s), dist: 0}}
		for len(q) > 0 {
			it := q.pop()
			if dist[it.node] != it.dist {
				continue
			}
			for ei, e := range h.hadj[it.node] {
				nd := it.dist + e.w
				if dist[e.to] == unreachable || nd < dist[e.to] {
					dist[e.to] = nd
					predT[e.to] = it.node
					predE[e.to] = int32(ei)
					q.push(pqItem{node: e.to, dist: nd})
				}
			}
		}
		h.hdist[s] = dist
		h.hpredT[s] = predT
		h.hpredE[s] = predE
	}
}

// endpoint describes a query end after peeling a client's access link.
type endpoint struct {
	router int32 // attachment router (the node itself for non-clients)
	acc    int32 // access link id, -1 for non-clients
	accD   int64
	ok     bool
}

func (h *hierRouter) resolve(node int) endpoint {
	if h.g.Nodes[node].Kind != Client {
		return endpoint{router: int32(node), acc: -1, ok: true}
	}
	lid := h.g.AccessLink(node)
	l := &h.g.Links[lid]
	if l.Down {
		return endpoint{}
	}
	other := l.A
	if other == node {
		other = l.B
	}
	return endpoint{router: int32(other), acc: int32(lid), accD: int64(l.Delay), ok: true}
}

// entryOpt is one way for a router to reach (or be reached from) the
// backbone: through gateway gw and Transit-Stub link ts, at intra-atom
// cost d, landing on terminal term. For Transit routers the entry is
// the router itself at cost zero.
type entryOpt struct {
	term   int32
	d      int64
	gw     int32 // gateway index within the router's atom, -1 for Transit
	ts     int32 // Transit-Stub link id, -1 for Transit
	atomID int32
}

// entries appends the backbone entry options of router u to buf.
func (h *hierRouter) entries(u int32, buf []entryOpt) []entryOpt {
	if t := h.termIdx[u]; t >= 0 {
		return append(buf, entryOpt{term: t, gw: -1, ts: -1, atomID: -1})
	}
	ai := h.atomOf[u]
	atom := &h.atoms[ai]
	lu := h.atomLocal[u]
	for gi := range atom.gws {
		d := atom.gdist[gi][lu]
		if d == unreachable {
			continue
		}
		for _, ts := range atom.gws[gi].ts {
			l := &h.g.Links[ts]
			buf = append(buf, entryOpt{
				term:   h.termIdx[transitEnd(h.g, l)],
				d:      d + int64(l.Delay),
				gw:     int32(gi),
				ts:     ts,
				atomID: ai,
			})
		}
	}
	return buf
}

// srcState returns the per-source state for node, creating it lazily.
func (h *hierRouter) srcState(node int32) *hsrc {
	s := h.srcs[node]
	if s == nil {
		s = &hsrc{paths: make(map[int32][]int32)}
		h.srcs[node] = s
	}
	return s
}

// atomTree returns the same-atom shortest-path tree rooted at Stub
// router u, building it lazily in u's per-source state.
func (h *hierRouter) atomTree(u int32) *hsrc {
	s := h.srcState(u)
	if s.adist == nil {
		atom := &h.atoms[h.atomOf[u]]
		s.adist, s.aprevL, s.aprevN = h.atomDijkstra(atom, h.atomLocal[u])
	}
	return s
}

// route answers a router-to-router query: the distance, and the choice
// that realizes it. intra reports that the pure same-atom path won;
// otherwise e1/e2 hold the chosen entry and exit options.
func (h *hierRouter) route(u, v int32) (dist int64, intra bool, e1, e2 entryOpt) {
	dist = unreachable
	if u == v {
		return 0, true, e1, e2
	}
	if au, av := h.atomOf[u], h.atomOf[v]; au >= 0 && au == av {
		if d := h.atomTree(u).adist[h.atomLocal[v]]; d != unreachable {
			dist, intra = d, true
		}
	}
	var b1, b2 [8]entryOpt
	es1 := h.entries(u, b1[:0])
	es2 := h.entries(v, b2[:0])
	for _, c1 := range es1 {
		for _, c2 := range es2 {
			hd := h.hdist[c1.term][c2.term]
			if hd == unreachable {
				continue
			}
			if d := c1.d + hd + c2.d; dist == unreachable || d < dist {
				dist, intra, e1, e2 = d, false, c1, c2
			}
		}
	}
	return dist, intra, e1, e2
}

// dist answers a node-to-node distance query.
func (h *hierRouter) dist(from, to int) int64 {
	if from == to {
		return 0
	}
	a, b := h.resolve(from), h.resolve(to)
	if !a.ok || !b.ok {
		return unreachable
	}
	d := int64(0)
	if a.router != b.router {
		rd, _, _, _ := h.route(a.router, b.router)
		if rd == unreachable {
			return unreachable
		}
		d = rd
	}
	return a.accD + d + b.accD
}

// appendIntra appends the intra-atom path from local index lu to the
// root of the given gateway tree (links come out in lu -> root order).
func appendIntra(p []int32, prevL, prevN []int32, lu int32) []int32 {
	for n := lu; prevL[n] != -1; n = prevN[n] {
		p = append(p, prevL[n])
	}
	return p
}

// appendIntraReversed appends the same walk root -> lu.
func appendIntraReversed(p []int32, prevL, prevN []int32, lu int32) []int32 {
	mark := len(p)
	p = appendIntra(p, prevL, prevN, lu)
	reverse(p[mark:])
	return p
}

func reverse(s []int32) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// appendHPath appends the expanded link path between terminals t1 and
// t2, using the eager tables rooted at t1.
func (h *hierRouter) appendHPath(p []int32, t1, t2 int32) []int32 {
	if t1 == t2 {
		return p
	}
	// Collect the edge chain t2 -> t1, then expand it backwards.
	var ebuf [32]hedge
	chain := ebuf[:0]
	predT, predE := h.hpredT[t1], h.hpredE[t1]
	for x := t2; x != t1; x = predT[x] {
		chain = append(chain, h.hadj[predT[x]][predE[x]])
	}
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i]
		if e.link >= 0 {
			p = append(p, e.link)
			continue
		}
		atom := &h.atoms[e.atom]
		p = append(p, e.tsA)
		if e.gwA != e.gwB {
			// Intra path gwA -> gwB, from the tree rooted at gwA.
			p = appendIntraReversed(p, atom.gprevL[e.gwA], atom.gprevN[e.gwA],
				h.atomLocal[atom.gws[e.gwB].node])
		}
		p = append(p, e.tsB)
	}
	return p
}

// path answers a node-to-node path query with the flat backend's
// contract: nil when unreachable, the shared empty path when from ==
// to, an immutable shared slice otherwise. Results are memoized per
// (source, destination); the memo is owned by the source's shard.
func (h *hierRouter) path(from, to int) []int32 {
	if from == to {
		return emptyPath
	}
	s := h.srcState(int32(from))
	if p, ok := s.paths[int32(to)]; ok {
		return p
	}
	p := h.buildPath(from, to)
	s.paths[int32(to)] = p
	return p
}

func (h *hierRouter) buildPath(from, to int) []int32 {
	a, b := h.resolve(from), h.resolve(to)
	if !a.ok || !b.ok {
		return nil
	}
	var p []int32
	if a.acc >= 0 {
		p = append(p, a.acc)
	}
	if a.router != b.router {
		rd, intra, e1, e2 := h.route(a.router, b.router)
		if rd == unreachable {
			return nil
		}
		if intra {
			t := h.atomTree(a.router)
			p = appendIntraReversed(p, t.aprevL, t.aprevN, h.atomLocal[b.router])
		} else {
			if e1.gw >= 0 {
				// Source side: walk up to the gateway's root. The
				// gateway tree is rooted at the gateway, so the chain
				// from the source comes out in source -> gateway order.
				atom := &h.atoms[e1.atomID]
				p = appendIntra(p, atom.gprevL[e1.gw], atom.gprevN[e1.gw],
					h.atomLocal[a.router])
				p = append(p, e1.ts)
			}
			p = h.appendHPath(p, e1.term, e2.term)
			if e2.gw >= 0 {
				atom := &h.atoms[e2.atomID]
				p = append(p, e2.ts)
				p = appendIntraReversed(p, atom.gprevL[e2.gw], atom.gprevN[e2.gw],
					h.atomLocal[b.router])
			}
		}
	}
	if b.acc >= 0 {
		p = append(p, b.acc)
	}
	if p == nil {
		p = emptyPath
	}
	return p
}

// reachable answers a node-to-node reachability query.
func (h *hierRouter) reachable(from, to int) bool {
	return from == to || h.dist(from, to) != unreachable
}
