package topology

import (
	"testing"

	"bullet/internal/sim"
)

// starTopo builds a star of stub atoms around one transit hub: atoms
// B1..Bn (one stub + one client each, weight DefaultClientWeight+1)
// hang off transit node t via Transit-Stub links of ascending delay, so
// the merge phase absorbs atoms into t's group in B1..Bn order until
// the balance cap stops it.
func starTopo(t *testing.T, n int) (*Graph, []int) {
	t.Helper()
	b := NewBuilder()
	const huge = 1e12
	hub := b.AddNode(Transit, 0, 0)
	stubs := make([]int, n)
	for i := 0; i < n; i++ {
		s := b.AddNode(Stub, float64(i), 1)
		c := b.AddNode(Client, float64(i), 2)
		b.AddLink(c, s, ClientStub, huge, sim.Millisecond, 0)
		b.AddLink(hub, s, TransitStub, huge, sim.Duration(i+1)*sim.Millisecond, 0)
		stubs[i] = s
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, stubs
}

// TestPartitionBalanceCapOverflowPacking drives the merge phase into
// its balance cap: with 7 equal stub atoms star-connected through one
// transit hub and k=3, the cap (2x the ideal shard weight) lets the
// hub group absorb only 4 atoms, leaving 4 groups for 3 shards. The
// surplus group must be packed onto the lightest shard, not dropped or
// given its own shard.
func TestPartitionBalanceCapOverflowPacking(t *testing.T) {
	g, _ := starTopo(t, 7)
	plan := PartitionShards(g, 3)
	if plan.K != 3 {
		t.Fatalf("K = %d, want 3", plan.K)
	}
	aw := DefaultClientWeight + 1 // one client + one stub
	want := map[int]bool{4*aw + 1: false, 2 * aw: false, aw: false}
	for _, w := range plan.Weights {
		seen, ok := want[w]
		if !ok || seen {
			t.Fatalf("shard weights %v, want {%d, %d, %d}", plan.Weights, 4*aw+1, 2*aw, aw)
		}
		want[w] = true
	}
	// Every node must be assigned to a valid shard.
	for i, s := range plan.ShardOf {
		if s < 0 || s >= plan.K {
			t.Fatalf("node %d assigned to shard %d", i, s)
		}
	}
	// Cut links are exactly the Transit-Stub links whose atom landed
	// off the hub's shard, and the lookahead is their minimum delay:
	// atoms B5..B7 (delays 5,6,7 ms) stayed off, so 5ms.
	if plan.Lookahead != 5*sim.Millisecond {
		t.Fatalf("lookahead = %v, want 5ms", plan.Lookahead)
	}
	if len(plan.CutLinks) != 3 {
		t.Fatalf("%d cut links, want 3", len(plan.CutLinks))
	}
}

// TestPartitionSingleAtomK1 checks the K clamp: a topology that is one
// indivisible atom (a stub domain with clients, no transit) cannot be
// split no matter how many shards are requested.
func TestPartitionSingleAtomK1(t *testing.T) {
	b := NewBuilder()
	const huge = 1e12
	s0 := b.AddNode(Stub, 0, 0)
	s1 := b.AddNode(Stub, 1, 0)
	b.AddLink(s0, s1, StubStub, huge, sim.Millisecond, 0)
	for i := 0; i < 3; i++ {
		c := b.AddNode(Client, float64(i), 1)
		b.AddLink(c, s0, ClientStub, huge, sim.Millisecond, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan := PartitionShards(g, 8)
	if plan.K != 1 {
		t.Fatalf("K = %d, want 1", plan.K)
	}
	if len(plan.CutLinks) != 0 || plan.Lookahead != 0 {
		t.Fatalf("single shard has cut %v lookahead %v", plan.CutLinks, plan.Lookahead)
	}
	if len(plan.Weights) != 1 || plan.Weights[0] != 3*DefaultClientWeight+2 {
		t.Fatalf("weights %v, want [%d]", plan.Weights, 3*DefaultClientWeight+2)
	}
	for i, s := range plan.ShardOf {
		if s != 0 {
			t.Fatalf("node %d on shard %d, want 0", i, s)
		}
	}
}

// TestLookaheadNowTracksLinkState checks the runtime lookahead against
// mid-run link mutations: a scenario that shortens a cut link must
// shrink the window, and a failed cut link must stop pinning it (a
// down link cannot carry cross-shard influence).
func TestLookaheadNowTracksLinkState(t *testing.T) {
	g, _ := starTopo(t, 7)
	plan := PartitionShards(g, 3)
	if plan.LookaheadNow(g) != 5*sim.Millisecond {
		t.Fatalf("initial lookahead %v, want 5ms", plan.LookaheadNow(g))
	}
	// A scenario shortens the 6ms cut link below the current minimum.
	var six int32 = -1
	for _, lid := range plan.CutLinks {
		if g.Links[lid].Delay == 6*sim.Millisecond {
			six = lid
		}
	}
	if six < 0 {
		t.Fatal("6ms cut link not found")
	}
	g.SetLatency(int(six), 2*sim.Millisecond)
	if got := plan.LookaheadNow(g); got != 2*sim.Millisecond {
		t.Fatalf("after shortening: lookahead %v, want 2ms", got)
	}
	// Failing the now-shortest cut link widens the window back out.
	g.FailLink(int(six))
	if got := plan.LookaheadNow(g); got != 5*sim.Millisecond {
		t.Fatalf("after failing shortest: lookahead %v, want 5ms", got)
	}
	// With every cut link down the lookahead is 0 = unbounded.
	for _, lid := range plan.CutLinks {
		g.FailLink(int(lid))
	}
	if got := plan.LookaheadNow(g); got != 0 {
		t.Fatalf("all cut links down: lookahead %v, want 0", got)
	}
	// Restoring brings links back with their current (mutated) delays:
	// the shortened 2ms link pins the window again.
	for _, lid := range plan.CutLinks {
		g.RestoreLink(int(lid))
	}
	if got := plan.LookaheadNow(g); got != 2*sim.Millisecond {
		t.Fatalf("after restore: lookahead %v, want 2ms", got)
	}
}

// TestCalibrateClientWeight feeds the fit synthetic per-shard loads
// generated from a known model and checks recovery, plus the
// degenerate inputs that must refuse to fit.
func TestCalibrateClientWeight(t *testing.T) {
	// Exact model: 500 events per client, 5 per router -> ratio 100.
	clients := []int{16, 1, 12, 11}
	routers := []int{441, 49, 490, 478}
	events := make([]int64, len(clients))
	for i := range events {
		events[i] = int64(500*clients[i] + 5*routers[i])
	}
	w, ok := CalibrateClientWeight(clients, routers, events)
	if !ok || w != 100 {
		t.Fatalf("fit = %d, %v; want 100, true", w, ok)
	}
	// Too few shards.
	if _, ok := CalibrateClientWeight([]int{4}, []int{10}, []int64{100}); ok {
		t.Fatal("fit accepted a single shard")
	}
	// Singular: every shard has the same client:router proportion, so
	// the two coefficients cannot be separated.
	if _, ok := CalibrateClientWeight([]int{2, 4, 8}, []int{10, 20, 40},
		[]int64{100, 200, 400}); ok {
		t.Fatal("fit accepted proportional (singular) shard mix")
	}
	// Negative router coefficient (events anti-correlated with
	// routers) must be rejected rather than returned as a weight.
	if _, ok := CalibrateClientWeight([]int{1, 2}, []int{100, 10},
		[]int64{100, 300}); ok {
		t.Fatal("fit accepted a non-positive router coefficient")
	}
}

// autoTopo builds a hub-and-atoms topology with a controllable total
// load: atoms stub domains of clientsPerAtom clients each, all hanging
// off one transit hub over 20ms Transit-Stub links (so any cut the
// partitioner leaves has a healthy lookahead).
func autoTopo(t *testing.T, atoms, clientsPerAtom int) *Graph {
	t.Helper()
	b := NewBuilder()
	const huge = 1e12
	hub := b.AddNode(Transit, 0, 0)
	for i := 0; i < atoms; i++ {
		s := b.AddNode(Stub, float64(i), 1)
		b.AddLink(hub, s, TransitStub, huge, 20*sim.Millisecond, 0)
		for j := 0; j < clientsPerAtom; j++ {
			c := b.AddNode(Client, float64(i), 2)
			b.AddLink(c, s, ClientStub, huge, sim.Millisecond, 0)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAutoShardsLoadFloor: below autoMinWeight the answer is 1 no
// matter how many cores are offered — small runs stay serial.
func TestAutoShardsLoadFloor(t *testing.T) {
	g := autoTopo(t, 4, 40) // 160 clients: two orders below the floor
	for _, cores := range []int{1, 4, 16} {
		if got := AutoShards(g, cores); got != 1 {
			t.Fatalf("AutoShards(small, %d cores) = %d, want 1", cores, got)
		}
	}
}

// TestAutoShardsHeavyLoadSingleCore: a mega-class load (10k clients)
// must shard even on one core — the locality target, not the core
// count, drives the answer. The choice must also be deterministic.
func TestAutoShardsHeavyLoadSingleCore(t *testing.T) {
	g := autoTopo(t, 8, 1250) // 10000 clients ≈ 4x the per-shard target
	k := AutoShards(g, 1)
	if k < 2 {
		t.Fatalf("AutoShards(heavy, 1 core) = %d, want > 1", k)
	}
	if k > autoMaxShards {
		t.Fatalf("AutoShards(heavy, 1 core) = %d, exceeds cap %d", k, autoMaxShards)
	}
	if again := AutoShards(g, 1); again != k {
		t.Fatalf("AutoShards not deterministic: %d then %d", k, again)
	}
	// More cores never shrink the partition.
	if k16 := AutoShards(g, 16); k16 < k {
		t.Fatalf("AutoShards(heavy, 16 cores) = %d < 1-core answer %d", k16, k)
	}
}

// TestAutoShardsRespectsPlanQuality: the same heavy load with only
// hair-trigger 50µs links available for the cut scores every sharded
// candidate below serial (each barrier round costs ~autoBarrierCost of
// lookahead but buys almost none), so AutoShards declines to shard.
func TestAutoShardsRespectsPlanQuality(t *testing.T) {
	b := NewBuilder()
	const huge = 1e12
	hub := b.AddNode(Transit, 0, 0)
	for i := 0; i < 8; i++ {
		s := b.AddNode(Stub, float64(i), 1)
		b.AddLink(hub, s, TransitStub, huge, 50*sim.Microsecond, 0)
		for j := 0; j < 1250; j++ {
			c := b.AddNode(Client, float64(i), 2)
			b.AddLink(c, s, ClientStub, huge, sim.Millisecond, 0)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := AutoShards(g, 1); got != 1 {
		t.Fatalf("AutoShards(50µs cuts) = %d, want 1 (barrier-dominated)", got)
	}
}
