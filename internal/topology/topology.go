// Package topology generates transit-stub style random network
// topologies in the spirit of the INET-generated topologies used in the
// Bullet paper, classifies links into the four classes of the paper's
// Table 1 (Client-Stub, Stub-Stub, Transit-Stub, Transit-Transit),
// assigns per-class bandwidth ranges and loss rates, and answers fixed
// shortest-path routing queries.
//
// The paper relies on three properties of its 20,000-node INET
// topologies: hierarchical transit/stub structure, degree-one client
// attachment to stub nodes, and placement-derived propagation delays.
// This generator reproduces all three deterministically from a seed.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"bullet/internal/sim"
)

// NodeKind identifies a node's role in the transit-stub hierarchy.
type NodeKind uint8

const (
	// Transit nodes form the backbone domains.
	Transit NodeKind = iota
	// Stub nodes form edge domains hanging off transit nodes.
	Stub
	// Client nodes are degree-one overlay participant attachment points.
	Client
)

func (k NodeKind) String() string {
	switch k {
	case Transit:
		return "transit"
	case Stub:
		return "stub"
	case Client:
		return "client"
	}
	return "unknown"
}

// LinkClass is the Table 1 classification of a physical link.
type LinkClass uint8

const (
	// ClientStub links connect client nodes to their stub node.
	ClientStub LinkClass = iota
	// StubStub links connect nodes within (or between) stub domains.
	StubStub
	// TransitStub links connect stub domains to the backbone.
	TransitStub
	// TransitTransit links form the backbone.
	TransitTransit
	numLinkClasses
)

func (c LinkClass) String() string {
	switch c {
	case ClientStub:
		return "Client-Stub"
	case StubStub:
		return "Stub-Stub"
	case TransitStub:
		return "Transit-Stub"
	case TransitTransit:
		return "Transit-Transit"
	}
	return "unknown"
}

// KbpsRange is an inclusive [Lo, Hi] bandwidth range in Kbps.
type KbpsRange struct {
	Lo, Hi float64
}

// BandwidthProfile gives the per-class bandwidth ranges of Table 1.
type BandwidthProfile struct {
	Name   string
	Ranges [numLinkClasses]KbpsRange
}

// The three bandwidth profiles of Table 1 (values in Kbps), relative to
// the paper's typical streaming rates of 600-1000 Kbps.
var (
	LowBandwidth = BandwidthProfile{
		Name: "low",
		Ranges: [numLinkClasses]KbpsRange{
			ClientStub:     {300, 600},
			StubStub:       {500, 1000},
			TransitStub:    {1000, 2000},
			TransitTransit: {2000, 4000},
		},
	}
	MediumBandwidth = BandwidthProfile{
		Name: "medium",
		Ranges: [numLinkClasses]KbpsRange{
			ClientStub:     {800, 2800},
			StubStub:       {1000, 4000},
			TransitStub:    {1000, 4000},
			TransitTransit: {5000, 10000},
		},
	}
	HighBandwidth = BandwidthProfile{
		Name: "high",
		Ranges: [numLinkClasses]KbpsRange{
			ClientStub:     {1600, 5600},
			StubStub:       {2000, 8000},
			TransitStub:    {2000, 8000},
			TransitTransit: {10000, 20000},
		},
	}
)

// ProfileByName looks up one of the three Table 1 profiles.
func ProfileByName(name string) (BandwidthProfile, error) {
	switch name {
	case "low":
		return LowBandwidth, nil
	case "medium":
		return MediumBandwidth, nil
	case "high":
		return HighBandwidth, nil
	}
	return BandwidthProfile{}, fmt.Errorf("topology: unknown bandwidth profile %q", name)
}

// LossProfile describes the random packet loss model of §4.5: uniform
// low loss everywhere plus a fraction of "overloaded" links with high
// loss, simulating queuing due to background traffic.
type LossProfile struct {
	// NonTransitMax is the maximum loss rate for Client-Stub and
	// Stub-Stub links; per-link rates are uniform in [0, NonTransitMax].
	NonTransitMax float64
	// TransitMax is the maximum loss rate for Transit-Stub and
	// Transit-Transit links.
	TransitMax float64
	// OverloadedFrac is the fraction of links designated overloaded.
	OverloadedFrac float64
	// Overloaded links draw their loss uniformly from [OverloadedLo, OverloadedHi].
	OverloadedLo, OverloadedHi float64
}

// NoLoss is the default lossless profile used outside §4.5.
var NoLoss = LossProfile{}

// PaperLoss is the §4.5 profile: non-transit max 0.3%, transit max
// 0.1%, 5% of links overloaded with 5-10% loss.
var PaperLoss = LossProfile{
	NonTransitMax:  0.003,
	TransitMax:     0.001,
	OverloadedFrac: 0.05,
	OverloadedLo:   0.05,
	OverloadedHi:   0.10,
}

// Node is a vertex in the physical topology.
type Node struct {
	ID   int
	Kind NodeKind
	// X, Y place the node on a plane measured in propagation
	// milliseconds; link delays derive from Euclidean distance.
	X, Y float64
}

// Link is an undirected physical link. Bandwidth is in bytes/second
// (full-duplex: each direction has the full capacity, matching ModelNet
// pipes). Loss is an independent per-packet drop probability per
// traversal. Down marks a failed link: routing ignores it and the
// emulator drops any packet that tries to traverse it.
type Link struct {
	ID       int
	A, B     int
	Class    LinkClass
	Bytes    float64 // capacity per direction, bytes/second
	Delay    sim.Duration
	Loss     float64
	Overload bool
	Down     bool
}

// Kbps returns the link capacity in Kbps.
func (l *Link) Kbps() float64 { return l.Bytes * 8 / 1000 }

type halfEdge struct {
	to   int32
	link int32
}

// Graph is a generated topology. The node/link structure is fixed after
// generation, but per-link state (bandwidth, latency, loss, up/down) is
// mutable at runtime through the Set*/Fail*/Partition methods below, so
// scenarios can change network conditions mid-run. Every mutation that
// can alter shortest-path routes advances the route epoch; consumers
// (Router, netem) compare epochs to invalidate their caches lazily.
type Graph struct {
	Nodes   []Node
	Links   []Link
	Clients []int // IDs of client nodes, the overlay attachment points
	adj     [][]halfEdge

	epoch        uint64  // route epoch; bumped by route-affecting mutations
	partitionCut []int32 // links failed by Partition, restored by Heal
}

// Config controls generation. Zero fields are filled with defaults by
// Validate; use Sized to derive a config from target node counts.
type Config struct {
	TransitDomains   int     // number of backbone domains
	TransitPerDomain int     // nodes per backbone domain
	StubDomains      int     // total stub domains (spread across transit nodes)
	StubDomainSize   int     // nodes per stub domain
	Clients          int     // client (participant attachment) nodes
	ExtraEdgeFrac    float64 // extra intra-domain edges beyond spanning tree, per node
	Bandwidth        BandwidthProfile
	Loss             LossProfile
	Seed             int64
}

// Sized returns a Config whose generated graph has approximately
// totalNodes nodes of which clients are client nodes, using the given
// bandwidth profile. It mirrors the paper's "20,000-node INET topology
// with 1000 participants" setup when called as Sized(20000, 1000, ...).
func Sized(totalNodes, clients int, bw BandwidthProfile) Config {
	if clients >= totalNodes {
		clients = totalNodes / 2
	}
	routers := totalNodes - clients
	// Backbone is ~2% of routers, at least 4 nodes.
	backbone := routers / 50
	if backbone < 4 {
		backbone = 4
	}
	domains := backbone / 8
	if domains < 1 {
		domains = 1
	}
	perDomain := (backbone + domains - 1) / domains
	stubNodes := routers - domains*perDomain
	stubSize := 12
	if stubNodes < stubSize {
		stubSize = stubNodes
		if stubSize < 1 {
			stubSize = 1
		}
	}
	stubDomains := stubNodes / stubSize
	if stubDomains < 1 {
		stubDomains = 1
	}
	return Config{
		TransitDomains:   domains,
		TransitPerDomain: perDomain,
		StubDomains:      stubDomains,
		StubDomainSize:   stubSize,
		Clients:          clients,
		ExtraEdgeFrac:    0.3,
		Bandwidth:        bw,
	}
}

// Validate fills defaults and rejects impossible configurations.
func (c *Config) Validate() error {
	if c.TransitDomains <= 0 {
		c.TransitDomains = 1
	}
	if c.TransitPerDomain <= 0 {
		c.TransitPerDomain = 4
	}
	if c.StubDomains <= 0 {
		c.StubDomains = c.TransitDomains * c.TransitPerDomain
	}
	if c.StubDomainSize <= 0 {
		c.StubDomainSize = 8
	}
	if c.Clients < 0 {
		return fmt.Errorf("topology: negative client count %d", c.Clients)
	}
	if c.ExtraEdgeFrac < 0 {
		return fmt.Errorf("topology: negative extra edge fraction %g", c.ExtraEdgeFrac)
	}
	if c.Bandwidth.Name == "" {
		c.Bandwidth = MediumBandwidth
	}
	return nil
}

// Generate builds a topology from the config. The same config (including
// Seed) always yields the same graph.
func Generate(cfg Config) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x746f706f))
	g := &Graph{}

	// Plane is 40ms x 40ms: coast-to-coast scale RTTs.
	const plane = 40.0

	// Backbone: transit domains at random centers, nodes clustered.
	type domain struct {
		cx, cy float64
		nodes  []int
	}
	transitDomains := make([]domain, cfg.TransitDomains)
	for d := range transitDomains {
		td := &transitDomains[d]
		td.cx, td.cy = rng.Float64()*plane, rng.Float64()*plane
		for i := 0; i < cfg.TransitPerDomain; i++ {
			id := len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{
				ID: id, Kind: Transit,
				X: td.cx + rng.NormFloat64()*2,
				Y: td.cy + rng.NormFloat64()*2,
			})
			td.nodes = append(td.nodes, id)
		}
	}

	addLink := func(a, b int, class LinkClass) {
		id := len(g.Links)
		g.Links = append(g.Links, Link{ID: id, A: a, B: b, Class: class})
	}

	// Intra-domain backbone: random spanning tree + extra edges.
	spanAndExtra := func(nodes []int, class LinkClass, extraFrac float64) {
		for i := 1; i < len(nodes); i++ {
			addLink(nodes[i], nodes[rng.Intn(i)], class)
		}
		extra := int(extraFrac * float64(len(nodes)))
		for i := 0; i < extra && len(nodes) >= 2; i++ {
			a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
			if a != b {
				addLink(a, b, class)
			}
		}
	}
	for d := range transitDomains {
		spanAndExtra(transitDomains[d].nodes, TransitTransit, cfg.ExtraEdgeFrac)
	}
	// Inter-domain backbone: ring plus one random chord per domain.
	for d := range transitDomains {
		next := transitDomains[(d+1)%len(transitDomains)]
		if len(transitDomains) > 1 {
			addLink(pick(rng, transitDomains[d].nodes), pick(rng, next.nodes), TransitTransit)
		}
		if len(transitDomains) > 2 && rng.Float64() < 0.5 {
			other := transitDomains[rng.Intn(len(transitDomains))]
			a, b := pick(rng, transitDomains[d].nodes), pick(rng, other.nodes)
			if a != b {
				addLink(a, b, TransitTransit)
			}
		}
	}

	// Stub domains: each attached to a transit node (round-robin over
	// all transit nodes so attachment is spread evenly).
	var allTransit []int
	for d := range transitDomains {
		allTransit = append(allTransit, transitDomains[d].nodes...)
	}
	var stubNodes []int
	for s := 0; s < cfg.StubDomains; s++ {
		gw := allTransit[s%len(allTransit)]
		gwNode := g.Nodes[gw]
		cx := gwNode.X + rng.NormFloat64()*1.5
		cy := gwNode.Y + rng.NormFloat64()*1.5
		var dom []int
		for i := 0; i < cfg.StubDomainSize; i++ {
			id := len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{
				ID: id, Kind: Stub,
				X: cx + rng.NormFloat64()*0.5,
				Y: cy + rng.NormFloat64()*0.5,
			})
			dom = append(dom, id)
		}
		spanAndExtra(dom, StubStub, cfg.ExtraEdgeFrac)
		// Gateway link(s) to the backbone.
		addLink(dom[0], gw, TransitStub)
		if len(dom) > 4 && rng.Float64() < 0.3 {
			addLink(dom[len(dom)-1], allTransit[rng.Intn(len(allTransit))], TransitStub)
		}
		stubNodes = append(stubNodes, dom...)
	}

	// Clients: degree-one attachment to a random stub node.
	for c := 0; c < cfg.Clients; c++ {
		st := stubNodes[rng.Intn(len(stubNodes))]
		sn := g.Nodes[st]
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{
			ID: id, Kind: Client,
			X: sn.X + rng.NormFloat64()*0.2,
			Y: sn.Y + rng.NormFloat64()*0.2,
		})
		g.Clients = append(g.Clients, id)
		addLink(id, st, ClientStub)
	}

	// Assign bandwidth, delay, loss.
	overloadCount := int(cfg.Loss.OverloadedFrac * float64(len(g.Links)))
	overloaded := make(map[int]bool, overloadCount)
	for len(overloaded) < overloadCount {
		overloaded[rng.Intn(len(g.Links))] = true
	}
	for i := range g.Links {
		l := &g.Links[i]
		r := cfg.Bandwidth.Ranges[l.Class]
		kbps := r.Lo + rng.Float64()*(r.Hi-r.Lo)
		l.Bytes = kbps * 1000 / 8
		a, b := g.Nodes[l.A], g.Nodes[l.B]
		distMs := math.Hypot(a.X-b.X, a.Y-b.Y)
		if distMs < 0.1 {
			distMs = 0.1
		}
		l.Delay = sim.Duration(distMs * float64(sim.Millisecond))
		switch {
		case overloaded[i]:
			l.Overload = true
			l.Loss = cfg.Loss.OverloadedLo + rng.Float64()*(cfg.Loss.OverloadedHi-cfg.Loss.OverloadedLo)
		case l.Class == ClientStub || l.Class == StubStub:
			l.Loss = rng.Float64() * cfg.Loss.NonTransitMax
		default:
			l.Loss = rng.Float64() * cfg.Loss.TransitMax
		}
	}

	g.buildAdjacency()
	return g, nil
}

func pick(rng *rand.Rand, xs []int) int { return xs[rng.Intn(len(xs))] }

func (g *Graph) buildAdjacency() {
	g.adj = make([][]halfEdge, len(g.Nodes))
	for i := range g.Links {
		l := &g.Links[i]
		g.adj[l.A] = append(g.adj[l.A], halfEdge{to: int32(l.B), link: int32(l.ID)})
		g.adj[l.B] = append(g.adj[l.B], halfEdge{to: int32(l.A), link: int32(l.ID)})
	}
}

// Degree returns the number of links incident to node id.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Neighbors calls fn for every link incident to node id.
func (g *Graph) Neighbors(id int, fn func(peer int, link *Link)) {
	for _, he := range g.adj[id] {
		fn(int(he.to), &g.Links[he.link])
	}
}

// LinkClassCounts returns the number of links in each class.
func (g *Graph) LinkClassCounts() map[LinkClass]int {
	m := make(map[LinkClass]int)
	for i := range g.Links {
		m[g.Links[i].Class]++
	}
	return m
}

// ---------------------------------------------------------------------
// Runtime network dynamics.
//
// The methods below mutate per-link state mid-run. Mutations that can
// change shortest-path routes (latency, link up/down) advance the route
// epoch so Router and netem caches invalidate lazily; bandwidth and
// loss changes take effect immediately because the emulator reads link
// state live on every traversal.
// ---------------------------------------------------------------------

// Epoch returns the current route epoch. It advances whenever a
// mutation may have changed shortest-path routes.
func (g *Graph) Epoch() uint64 { return g.epoch }

// FindLink returns the ID of a link between nodes a and b, or -1 if no
// such link exists. If parallel links exist, the lowest ID wins.
func (g *Graph) FindLink(a, b int) int {
	best := -1
	for _, he := range g.adj[a] {
		if int(he.to) == b && (best < 0 || int(he.link) < best) {
			best = int(he.link)
		}
	}
	return best
}

// AccessLink returns the ID of the single link attaching a degree-one
// node (typically a client) to the rest of the network, or -1 if the
// node's degree is not one.
func (g *Graph) AccessLink(node int) int {
	if len(g.adj[node]) != 1 {
		return -1
	}
	return int(g.adj[node][0].link)
}

// SetBandwidth changes the capacity of link id to kbps (per direction).
// It takes effect for packets serialized after the call. kbps <= 0 is
// ignored (zero capacity would make serialization time infinite); to
// take a link out of service, use FailLink.
func (g *Graph) SetBandwidth(id int, kbps float64) {
	if kbps <= 0 {
		return
	}
	g.Links[id].Bytes = kbps * 1000 / 8
}

// ScaleBandwidth multiplies the capacity of link id by factor.
// factor <= 0 is ignored, like SetBandwidth's zero guard.
func (g *Graph) ScaleBandwidth(id int, factor float64) {
	if factor <= 0 {
		return
	}
	g.Links[id].Bytes *= factor
}

// SetLatency changes the propagation delay of link id. Routing is
// shortest-by-delay, so this advances the route epoch.
func (g *Graph) SetLatency(id int, d sim.Duration) {
	if d < 0 || g.Links[id].Delay == d {
		return
	}
	g.Links[id].Delay = d
	g.epoch++
}

// SetLoss changes the per-traversal random loss probability of link id.
func (g *Graph) SetLoss(id int, loss float64) {
	if loss < 0 {
		loss = 0
	}
	if loss > 1 {
		loss = 1
	}
	g.Links[id].Loss = loss
}

// dropFromCut removes every occurrence of link id from the partition
// cut set, so Heal will no longer touch it. Explicit FailLink and
// RestoreLink calls both claim the link's fate away from Heal; an entry
// therefore exists only while its link is down because of Partition.
func (g *Graph) dropFromCut(id int) {
	out := g.partitionCut[:0]
	for _, c := range g.partitionCut {
		if int(c) != id {
			out = append(out, c)
		}
	}
	g.partitionCut = out
}

// FailLink takes link id down: routing stops using it and the emulator
// drops packets attempting to traverse it. Idempotent. An explicit
// failure always survives Heal, even if a Partition had already cut the
// same link.
func (g *Graph) FailLink(id int) {
	g.dropFromCut(id)
	if g.Links[id].Down {
		return
	}
	g.Links[id].Down = true
	g.epoch++
}

// RestoreLink brings a failed link back up, whether it went down via
// FailLink or Partition. Idempotent.
func (g *Graph) RestoreLink(id int) {
	g.dropFromCut(id)
	if !g.Links[id].Down {
		return
	}
	g.Links[id].Down = false
	g.epoch++
}

// Partition fails every up link with exactly one endpoint in the node
// set, cutting the set off from the rest of the network. The cut links
// are remembered so Heal can restore them (links that were already down
// are left alone). It returns the number of links cut. Repeated calls
// accumulate into the same cut set.
func (g *Graph) Partition(nodes []int) int {
	in := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		in[n] = true
	}
	cut := 0
	for i := range g.Links {
		l := &g.Links[i]
		if l.Down || in[l.A] == in[l.B] {
			continue
		}
		l.Down = true
		g.partitionCut = append(g.partitionCut, int32(i))
		cut++
	}
	if cut > 0 {
		g.epoch++
	}
	return cut
}

// Heal restores every link failed by Partition and clears the cut set.
// Links failed independently via FailLink stay down.
func (g *Graph) Heal() {
	if len(g.partitionCut) == 0 {
		return
	}
	for _, id := range g.partitionCut {
		g.Links[id].Down = false
	}
	g.partitionCut = g.partitionCut[:0]
	g.epoch++
}
