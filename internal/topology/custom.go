package topology

import (
	"fmt"

	"bullet/internal/sim"
)

// Builder assembles a hand-crafted topology, used for experiments that
// need precise control over structure and capacities (e.g. the
// PlanetLab-style constrained-root topology of §4.7).
type Builder struct {
	g   *Graph
	err error
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder { return &Builder{g: &Graph{}} }

// AddNode appends a node of the given kind at plane position (x, y)
// (in propagation milliseconds) and returns its ID.
func (b *Builder) AddNode(kind NodeKind, x, y float64) int {
	id := len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, Node{ID: id, Kind: kind, X: x, Y: y})
	if kind == Client {
		b.g.Clients = append(b.g.Clients, id)
	}
	return id
}

// AddLink connects a and b with the given class, capacity (Kbps),
// one-way propagation delay, and loss rate. It returns the link ID.
func (b *Builder) AddLink(a, c int, class LinkClass, kbps float64, delay sim.Duration, loss float64) int {
	if a < 0 || a >= len(b.g.Nodes) || c < 0 || c >= len(b.g.Nodes) {
		b.err = fmt.Errorf("topology: link endpoints %d-%d out of range", a, c)
		return -1
	}
	if kbps <= 0 || delay <= 0 || loss < 0 || loss > 1 {
		b.err = fmt.Errorf("topology: bad link parameters kbps=%v delay=%v loss=%v", kbps, delay, loss)
		return -1
	}
	id := len(b.g.Links)
	b.g.Links = append(b.g.Links, Link{
		ID: id, A: a, B: c, Class: class,
		Bytes: kbps * 1000 / 8, Delay: delay, Loss: loss,
	})
	return id
}

// Build finalizes the graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.g.Nodes) == 0 {
		return nil, fmt.Errorf("topology: empty custom graph")
	}
	b.g.buildAdjacency()
	return b.g, nil
}
