package streamer

import (
	"math/rand"
	"testing"

	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/topology"
)

func world(t *testing.T, seed int64, clients int, bw topology.BandwidthProfile) (*sim.Engine, *netem.Network, *topology.Graph, *topology.Router) {
	t.Helper()
	g, err := topology.Generate(topology.Config{
		TransitDomains: 2, TransitPerDomain: 3,
		StubDomains: 10, StubDomainSize: 5,
		Clients: clients, Bandwidth: bw, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	rt := topology.NewRouter(g)
	return eng, netem.New(eng, g, rt, netem.Config{}), g, rt
}

func TestStreamingDeliversDownTree(t *testing.T) {
	eng, net, g, rt := world(t, 1, 20, topology.HighBandwidth)
	tree, err := overlay.Bottleneck(rt, g.Clients, g.Clients[0], 1500, 0)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector(sim.Second)
	if _, err := Deploy(net, tree, Config{RateKbps: 300, PacketSize: 1500, Start: 5 * sim.Second, Duration: 60 * sim.Second}, col); err != nil {
		t.Fatal(err)
	}
	eng.Run(70 * sim.Second)
	// On a high-bandwidth topology a 300 Kbps stream should reach most
	// nodes at close to full rate once ramped.
	mean := col.MeanOver(30*sim.Second, 65*sim.Second, metrics.Useful)
	if mean < 200 {
		t.Fatalf("steady-state useful bandwidth %.0f Kbps, want near 300", mean)
	}
	if mean > 330 {
		t.Fatalf("useful bandwidth %.0f exceeds source rate", mean)
	}
	if col.DuplicateRatio() != 0 {
		t.Fatal("plain streaming produced duplicates")
	}
}

func TestBandwidthMonotonicallyDecreasesDownTree(t *testing.T) {
	// The core tree limitation (§1): bandwidth is monotonically
	// non-increasing down any root-to-leaf chain. Check depth-1 mean >=
	// deep-node mean on a constrained topology.
	eng, net, g, rt := world(t, 2, 25, topology.LowBandwidth)
	tree, err := overlay.Bottleneck(rt, g.Clients, g.Clients[0], 1500, 2)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector(sim.Second)
	if _, err := Deploy(net, tree, Config{RateKbps: 600, PacketSize: 1500, Start: 0, Duration: 60 * sim.Second}, col); err != nil {
		t.Fatal(err)
	}
	eng.Run(60 * sim.Second)
	// True tree invariant: a child can never receive more distinct data
	// than its parent received (it can only forward what arrived).
	useful := func(p int) float64 {
		var sum float64
		for _, pt := range col.NodeSeries(p, metrics.Useful) {
			sum += pt.Kbps
		}
		return sum
	}
	checked := 0
	for _, p := range tree.Participants {
		parent, ok := tree.Parent(p)
		if !ok || parent == tree.Root {
			continue // the root generates rather than receives
		}
		if useful(p) > useful(parent)*1.02+1 {
			t.Fatalf("child %d received %.0f > parent %d's %.0f: monotonicity violated",
				p, useful(p), parent, useful(parent))
		}
		checked++
	}
	if checked == 0 {
		t.Skip("tree too shallow for comparison")
	}
}

func TestRandomTreeWorseThanBottleneckTree(t *testing.T) {
	// Figure 6's shape at small scale: streaming over the offline
	// bottleneck tree beats streaming over a random tree on a
	// constrained topology.
	run := func(buildRandom bool) float64 {
		eng, net, g, rt := world(t, 3, 30, topology.LowBandwidth)
		var tree *overlay.Tree
		var err error
		if buildRandom {
			tree, err = overlay.Random(g.Clients, g.Clients[0], 6, rand.New(rand.NewSource(42)))
		} else {
			tree, err = overlay.Bottleneck(rt, g.Clients, g.Clients[0], 1500, 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		col := metrics.NewCollector(sim.Second)
		if _, err := Deploy(net, tree, Config{RateKbps: 600, PacketSize: 1500, Start: 0, Duration: 90 * sim.Second}, col); err != nil {
			t.Fatal(err)
		}
		eng.Run(90 * sim.Second)
		return col.MeanOver(30*sim.Second, 90*sim.Second, metrics.Useful)
	}
	randomBW := run(true)
	bottleneckBW := run(false)
	if bottleneckBW <= randomBW {
		t.Fatalf("bottleneck tree %.0f Kbps <= random tree %.0f Kbps", bottleneckBW, randomBW)
	}
}

func TestSourceStopsAtDuration(t *testing.T) {
	eng, net, g, rt := world(t, 4, 10, topology.HighBandwidth)
	tree, _ := overlay.Bottleneck(rt, g.Clients, g.Clients[0], 1500, 0)
	col := metrics.NewCollector(sim.Second)
	if _, err := Deploy(net, tree, Config{RateKbps: 300, PacketSize: 1500, Start: 0, Duration: 10 * sim.Second}, col); err != nil {
		t.Fatal(err)
	}
	eng.Run(40 * sim.Second)
	late := col.MeanOver(20*sim.Second, 40*sim.Second, metrics.Raw)
	if late > 1 {
		t.Fatalf("data still flowing after source stopped: %.1f Kbps", late)
	}
}

func TestFailureCutsSubtree(t *testing.T) {
	eng, net, g, rt := world(t, 5, 20, topology.HighBandwidth)
	tree, _ := overlay.Bottleneck(rt, g.Clients, g.Clients[0], 1500, 2)
	col := metrics.NewCollector(sim.Second)
	sys, err := Deploy(net, tree, Config{RateKbps: 300, PacketSize: 1500, Start: 0, Duration: 60 * sim.Second}, col)
	if err != nil {
		t.Fatal(err)
	}
	kids := tree.Children(tree.Root)
	if len(kids) == 0 {
		t.Skip("root childless")
	}
	victim := kids[0]
	sub := tree.SubtreeSize(victim)
	if sub < 2 {
		t.Skip("victim has no descendants")
	}
	eng.At(30*sim.Second, func() { sys.Fail(victim) })
	eng.Run(60 * sim.Second)
	// Descendants of the victim get nothing after the failure.
	var desc []int
	for _, p := range tree.Participants {
		if p != victim && tree.IsDescendant(victim, p) {
			desc = append(desc, p)
		}
	}
	for _, d := range desc {
		s := col.NodeSeries(d, metrics.Raw)
		for _, pt := range s[40:] {
			if pt.Kbps > 1 {
				t.Fatalf("descendant %d still receiving %.1f Kbps after ancestor failure", d, pt.Kbps)
			}
		}
	}
}

func TestConfigRejectsZeroRate(t *testing.T) {
	eng, net, g, rt := world(t, 6, 5, topology.HighBandwidth)
	_ = eng
	tree, _ := overlay.Bottleneck(rt, g.Clients, g.Clients[0], 1500, 0)
	col := metrics.NewCollector(sim.Second)
	if _, err := Deploy(net, tree, Config{RateKbps: 0}, col); err == nil {
		t.Fatal("zero rate accepted")
	}
}
