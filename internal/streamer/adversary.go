package streamer

// Adversary wiring for the plain-streamer baseline. The streamer has
// no mesh or recovery control plane, so only the models with a tree
// surface bite: Freeride stops forwarding to children, Cutvertex and
// Joinstorm drive targeted crash timing and oscillation through the
// membership API. Liar and Ballotstuff poison machinery the streamer
// does not have and are honest no-ops here — that asymmetry is the
// point of the adv-* comparisons.

import "bullet/internal/adversary"

// SetAdversary attaches fleet to the deployment (nil or a None fleet
// detaches). The streamer needs no per-node hook rewiring.
func (sys *System) SetAdversary(f *adversary.Fleet) {
	if f == nil || f.Model() == adversary.None {
		sys.adv = nil
		return
	}
	sys.adv = f
}

// Adversary returns the attached fleet, or nil.
func (sys *System) Adversary() *adversary.Fleet { return sys.adv }

// refusesRelay gates tree forwarding: one nil check on the clean path.
func (sys *System) refusesRelay(id int) bool {
	return sys.adv != nil && sys.adv.RefusesRelay(id)
}

// Compromise adds nodes to the fleet's colluder set.
func (sys *System) Compromise(nodes []int) {
	if sys.adv != nil {
		sys.adv.Compromise(nodes)
	}
}

// Strike activates the fleet. See core's Strike for the model
// semantics; the streamer never repairs, so the crash-timing models
// leave permanently starved subtrees behind.
func (sys *System) Strike() {
	f := sys.adv
	if f == nil || f.Model() == adversary.None {
		return
	}
	f.Activate()
	switch f.Model() {
	case adversary.Cutvertex:
		victims := adversary.CutSet(sys.Tree, sys.Live, f.Budget())
		f.Compromise(victims)
		for _, v := range victims {
			_ = sys.Crash(v)
		}
	case adversary.Joinstorm:
		for _, id := range f.Colluders() {
			if !sys.Live(id) {
				continue
			}
			if err := sys.Crash(id); err != nil {
				continue
			}
			node := id
			sys.net.Engine().ScheduleAfter(f.Dwell(id), func() { _ = sys.Restart(node) })
		}
	}
}
