// Package streamer implements the paper's §4.2 baseline: a simple
// application that streams sequentially numbered packets from the root
// of an arbitrary overlay tree, each node forwarding every received
// packet to its children over TFRC flows as fast as the transport
// allows. There is no recovery: whatever the transport or network
// drops is lost, so delivered bandwidth is monotonically decreasing
// down the tree.
package streamer

import (
	"fmt"

	"bullet/internal/adversary"
	"bullet/internal/member"
	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/nodeset"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/transport"
	"bullet/internal/workload"
	"bullet/internal/workset"
)

// Config controls a streaming run.
type Config struct {
	// RateKbps is the source streaming rate.
	RateKbps float64
	// PacketSize is the application payload per packet in bytes.
	PacketSize int
	// Start is when the source begins streaming.
	Start sim.Time
	// Duration is how long the source streams.
	Duration sim.Duration
	// Workload overrides the default constant-bit-rate source (nil
	// streams CBR at RateKbps/PacketSize, byte-identical to the
	// pre-workload-layer pump).
	Workload workload.Source
	// Sink, when set, observes every per-node first-copy delivery.
	Sink workload.Sink
}

// Node is one streaming participant. children and flows are parallel
// slices in distribution-tree order.
type Node struct {
	ep       *transport.Endpoint
	id       int
	parent   int
	children []int
	flows    []*transport.Flow
	seen     *workset.Set
	col      *metrics.Collector
}

// System is a deployed streaming overlay. Participants live in a dense
// node-id-indexed table (see internal/nodeset): the per-packet onData
// lookup is a slice index, and every teardown or live-set walk is in
// ascending id order.
type System struct {
	Tree *overlay.Tree
	cfg  Config
	col  *metrics.Collector
	src  workload.Source

	nodes      nodeset.Table[*Node]
	net        *netem.Network
	dead       nodeset.Set
	epoch      int // membership epoch: churn operation count
	joinDegree int
	stopped    bool

	// adv, when non-nil, is the attached hostile-peer fleet (see
	// adversary.go).
	adv *adversary.Fleet
}

// Deploy creates endpoints and flows for every tree participant and
// schedules the source. Metrics go to col.
func Deploy(net *netem.Network, tree *overlay.Tree, cfg Config, col *metrics.Collector) (*System, error) {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 1500
	}
	if cfg.Workload == nil && cfg.RateKbps <= 0 {
		return nil, fmt.Errorf("streamer: rate %v Kbps", cfg.RateKbps)
	}
	sys := &System{Tree: tree, cfg: cfg, col: col, net: net,
		src: workload.Default(cfg.Workload, cfg.RateKbps, cfg.PacketSize)}
	workload.InstallCompletion(sys.src, col)
	for _, id := range tree.Participants {
		parent := -1
		if p, ok := tree.Parent(id); ok {
			parent = p
		}
		n := &Node{
			ep:       transport.NewEndpoint(net, id),
			id:       id,
			parent:   parent,
			children: tree.Children(id),
			seen:     workset.New(),
			col:      col,
		}
		col.Track(id)
		for _, c := range n.children {
			f, err := n.ep.OpenFlow(c, cfg.PacketSize)
			if err != nil {
				return nil, err
			}
			n.flows = append(n.flows, f)
		}
		id := id
		n.ep.OnData(func(from int, seq uint64, size int) { sys.onData(id, from, seq, size) })
		sys.nodes.Put(id, n)
	}
	if sys.joinDegree = tree.MaxDegree(); sys.joinDegree < 2 {
		sys.joinDegree = 2
	}
	// Source pump: packet generation is owned by the workload layer,
	// scheduled on the root node's own scheduler.
	end := cfg.Start + cfg.Duration
	sched := sys.nodes.At(tree.Root).ep.Scheduler()
	workload.Pump(sched, sys.src, cfg.Start,
		func() bool { return sched.Now() >= end || sys.stopped },
		func(seq uint64, size int) {
			root := sys.nodes.At(tree.Root)
			root.seen.Add(seq)
			root.forward(seq, size)
		})
	return sys, nil
}

// Workload returns the source driving this deployment's packet
// generation (the configured one, or the default CBR).
func (sys *System) Workload() workload.Source { return sys.src }

// Node returns the participant instance for id (crashed included).
func (sys *System) Node(id int) (*Node, bool) { return sys.nodes.Get(id) }

func (sys *System) onData(id, from int, seq uint64, size int) {
	n := sys.nodes.At(id)
	now := n.ep.Scheduler().Now()
	sys.col.Add(now, id, metrics.Raw, size)
	if from == n.parent {
		sys.col.Add(now, id, metrics.Parent, size)
	}
	if n.seen.Add(seq) {
		sys.col.Add(now, id, metrics.Useful, size)
		if s := sys.cfg.Sink; s != nil {
			s.Deliver(now, id, seq)
		}
		if !sys.refusesRelay(id) {
			n.forward(seq, size)
		}
	} else {
		sys.col.Add(now, id, metrics.Duplicate, size)
	}
}

// forward pushes the packet to every child, best effort.
func (n *Node) forward(seq uint64, size int) {
	for _, f := range n.flows {
		f.TrySend(seq, size)
	}
}

// Fail crashes the node with the given id.
func (sys *System) Fail(id int) {
	if n, ok := sys.nodes.Get(id); ok {
		n.ep.Fail()
	}
}

// ---------------------------------------------------------------------
// Membership runtime. The plain streamer is the no-recovery baseline:
// a crash orphans the node's entire subtree — there is deliberately no
// re-parenting, so whatever the orphans miss stays missing. Restart and
// Join are still supported so churn scenarios compose across protocols.
// ---------------------------------------------------------------------

// Collector returns the metrics sink.
func (sys *System) Collector() *metrics.Collector { return sys.col }

// MemberEpoch returns the number of membership changes applied so far.
func (sys *System) MemberEpoch() int { return sys.epoch }

// Live reports whether id is a current non-crashed participant.
func (sys *System) Live(id int) bool {
	return sys.nodes.Contains(id) && !sys.dead.Contains(id)
}

// LiveNodes returns the ids of current non-crashed participants sorted.
func (sys *System) LiveNodes() []int { return member.LiveTableIDs(&sys.nodes, &sys.dead) }

// Crash fails node id. Its subtree is orphaned: descendants keep their
// tree positions but receive nothing — the baseline's weakness the
// paper's failure experiments expose. The source cannot crash.
func (sys *System) Crash(id int) error {
	n, ok := sys.nodes.Get(id)
	if !ok {
		return fmt.Errorf("streamer: node %d is not a participant", id)
	}
	if sys.dead.Contains(id) {
		return fmt.Errorf("streamer: node %d already crashed", id)
	}
	if id == sys.Tree.Root {
		return fmt.Errorf("streamer: cannot crash the source (tree root %d)", id)
	}
	n.ep.Fail()
	sys.dead.Add(id)
	sys.epoch++
	return nil
}

// Restart brings a crashed node back in place: the endpoint resumes
// receiving from its parent's still-open flow and fresh flows reopen to
// its children, but data streamed while it was down is gone for good.
func (sys *System) Restart(id int) error {
	n, ok := sys.nodes.Get(id)
	if !ok || !sys.dead.Contains(id) {
		return fmt.Errorf("streamer: node %d is not crashed", id)
	}
	n.ep.Restart()
	for i, c := range n.children {
		f, err := n.ep.OpenFlow(c, sys.cfg.PacketSize)
		if err != nil {
			return err
		}
		n.flows[i] = f
	}
	sys.dead.Remove(id)
	sys.epoch++
	return nil
}

// connected reports whether n and every tree ancestor up to the root
// is live — a join point must actually receive the stream, not merely
// be alive inside an orphaned subtree.
func (sys *System) connected(n int) bool {
	return sys.Tree.ConnectedToRoot(n, func(x int) bool { return !sys.dead.Contains(x) })
}

// Join attaches a brand-new participant at the deterministic join point
// (first breadth-first connected node with spare degree) and starts
// streaming to it from there.
func (sys *System) Join(id int) error {
	if sys.nodes.Contains(id) {
		if sys.dead.Contains(id) {
			return fmt.Errorf("streamer: node %d crashed; use Restart", id)
		}
		return fmt.Errorf("streamer: node %d is already a participant", id)
	}
	ap := sys.Tree.AttachPoint(sys.joinDegree, sys.connected)
	if ap < 0 {
		return fmt.Errorf("streamer: no live attach point for node %d", id)
	}
	if err := sys.Tree.Attach(id, ap); err != nil {
		return err
	}
	n := &Node{
		ep:     transport.NewEndpoint(sys.net, id),
		id:     id,
		parent: ap,
		seen:   workset.New(),
		col:    sys.col,
	}
	sys.col.Track(id)
	n.ep.OnData(func(from int, seq uint64, size int) { sys.onData(id, from, seq, size) })
	sys.nodes.Put(id, n)
	// The parent's captured children slice predates the join; refresh it
	// (Attach appended the newcomer at the end, so existing flows stay
	// aligned) and open the new flow.
	pn := sys.nodes.At(ap)
	pn.children = sys.Tree.Children(ap)
	f, err := pn.ep.OpenFlow(id, sys.cfg.PacketSize)
	if err != nil {
		return err
	}
	pn.flows = append(pn.flows, f)
	sys.epoch++
	return nil
}

// Stop tears the deployment down: the source halts and every live
// endpoint goes offline.
func (sys *System) Stop() {
	if sys.stopped {
		return
	}
	sys.stopped = true
	member.StopTable(&sys.nodes, &sys.dead, func(id int) { sys.nodes.At(id).ep.Fail() })
}
