// Package streamer implements the paper's §4.2 baseline: a simple
// application that streams sequentially numbered packets from the root
// of an arbitrary overlay tree, each node forwarding every received
// packet to its children over TFRC flows as fast as the transport
// allows. There is no recovery: whatever the transport or network
// drops is lost, so delivered bandwidth is monotonically decreasing
// down the tree.
package streamer

import (
	"fmt"

	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/transport"
	"bullet/internal/workset"
)

// Config controls a streaming run.
type Config struct {
	// RateKbps is the source streaming rate.
	RateKbps float64
	// PacketSize is the application payload per packet in bytes.
	PacketSize int
	// Start is when the source begins streaming.
	Start sim.Time
	// Duration is how long the source streams.
	Duration sim.Duration
}

// Node is one streaming participant.
type Node struct {
	ep       *transport.Endpoint
	id       int
	parent   int
	children []int
	flows    map[int]*transport.Flow
	seen     *workset.Set
	col      *metrics.Collector
}

// System is a deployed streaming overlay.
type System struct {
	Nodes map[int]*Node
	Tree  *overlay.Tree
	cfg   Config
	col   *metrics.Collector
	eng   *sim.Engine
}

// Deploy creates endpoints and flows for every tree participant and
// schedules the source. Metrics go to col.
func Deploy(net *netem.Network, tree *overlay.Tree, cfg Config, col *metrics.Collector) (*System, error) {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 1500
	}
	if cfg.RateKbps <= 0 {
		return nil, fmt.Errorf("streamer: rate %v Kbps", cfg.RateKbps)
	}
	sys := &System{Nodes: make(map[int]*Node), Tree: tree, cfg: cfg, col: col, eng: net.Engine()}
	for _, id := range tree.Participants {
		parent := -1
		if p, ok := tree.Parent(id); ok {
			parent = p
		}
		n := &Node{
			ep:       transport.NewEndpoint(net, id),
			id:       id,
			parent:   parent,
			children: tree.Children(id),
			flows:    make(map[int]*transport.Flow),
			seen:     workset.New(),
			col:      col,
		}
		col.Track(id)
		for _, c := range n.children {
			f, err := n.ep.OpenFlow(c, cfg.PacketSize)
			if err != nil {
				return nil, err
			}
			n.flows[c] = f
		}
		id := id
		n.ep.OnData(func(from int, seq uint64, size int) { sys.onData(id, from, seq, size) })
		sys.Nodes[id] = n
	}
	// Source pump: one packet every PacketSize/rate.
	bytesPerSec := cfg.RateKbps * 1000 / 8
	interval := sim.Duration(float64(cfg.PacketSize) / bytesPerSec * float64(sim.Second))
	if interval < sim.Microsecond {
		interval = sim.Microsecond
	}
	var seq uint64
	end := cfg.Start + cfg.Duration
	var pump func()
	pump = func() {
		if sys.eng.Now() >= end {
			return
		}
		root := sys.Nodes[tree.Root]
		root.seen.Add(seq)
		root.forward(seq, cfg.PacketSize)
		seq++
		sys.eng.ScheduleAfter(interval, pump)
	}
	sys.eng.Schedule(cfg.Start, pump)
	return sys, nil
}

func (sys *System) onData(id, from int, seq uint64, size int) {
	n := sys.Nodes[id]
	now := sys.eng.Now()
	sys.col.Add(now, id, metrics.Raw, size)
	if from == n.parent {
		sys.col.Add(now, id, metrics.Parent, size)
	}
	if n.seen.Add(seq) {
		sys.col.Add(now, id, metrics.Useful, size)
		n.forward(seq, size)
	} else {
		sys.col.Add(now, id, metrics.Duplicate, size)
	}
}

// forward pushes the packet to every child, best effort.
func (n *Node) forward(seq uint64, size int) {
	for _, c := range n.children {
		n.flows[c].TrySend(seq, size)
	}
}

// Fail crashes the node with the given id.
func (sys *System) Fail(id int) {
	if n, ok := sys.Nodes[id]; ok {
		n.ep.Fail()
	}
}
