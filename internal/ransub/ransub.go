// Package ransub implements RanSub (§2.2, Kostić et al., USITS 2003):
// periodic distribution of changing, uniformly random subsets of global
// state to every node of an overlay tree, using collect messages that
// propagate summaries up the tree and distribute messages that carry
// compacted random subsets back down. Bullet uses the
// RanSub-nondescendants variant: each node receives a random subset
// drawn from all participants except its own descendants, together with
// each member's summary ticket.
package ransub

import (
	"math/rand"
	"sort"

	"bullet/internal/sim"
	"bullet/internal/sketch"
	"bullet/internal/transport"
)

// Entry is one member of a collect or distribute set: a participant and
// the summary ticket of its working set.
type Entry struct {
	Node   int
	Ticket *sketch.Ticket
}

// EntryWireSize is the per-entry wire size: a 120-byte summary ticket
// plus the node address.
const EntryWireSize = 128

// Group is an input to Compact: a uniform random sample (Entries) of a
// sub-population of the given total size.
type Group struct {
	Entries    []Entry
	Population int
}

// Compact merges multiple fixed-size uniform samples into one
// fixed-size sample that is uniformly representative of the combined
// population (§2.2). Sampling is without replacement, weighting each
// entry by population/|sample| of its group (Efraimidis-Spirakis
// weighted reservoir keys).
func Compact(rng *rand.Rand, size int, groups []Group) []Entry {
	type keyed struct {
		e   Entry
		key float64
	}
	var all []keyed
	for _, g := range groups {
		if len(g.Entries) == 0 || g.Population <= 0 {
			continue
		}
		w := float64(g.Population) / float64(len(g.Entries))
		for _, e := range g.Entries {
			all = append(all, keyed{e: e, key: rng.ExpFloat64() / w})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	if len(all) > size {
		all = all[:size]
	}
	out := make([]Entry, len(all))
	for i, k := range all {
		out[i] = k.e
	}
	return out
}

// collectMsg travels child -> parent.
type collectMsg struct {
	epoch       int
	set         []Entry
	descendants int // subtree size below the sender, excluding sender
}

// distributeMsg travels parent -> child.
type distributeMsg struct {
	epoch      int
	set        []Entry
	population int // population the set represents
}

// Config tunes RanSub.
type Config struct {
	// SetSize is the number of summary tickets per collect/distribute
	// set (paper default 10, fitting one IP packet).
	SetSize int
	// Epoch is the minimum epoch length (paper default 5s).
	Epoch sim.Duration
	// EpochTimeout bounds how long the root waits for collects before
	// declaring missing children failed and starting the next
	// distribute phase anyway. Only used when FailureDetection is on.
	EpochTimeout sim.Duration
	// FailureDetection enables the epoch-timeout recovery of §4.6.
	FailureDetection bool
}

// DefaultConfig mirrors the paper's defaults.
func DefaultConfig() Config {
	return Config{SetSize: 10, Epoch: 5 * sim.Second, EpochTimeout: 5 * sim.Second, FailureDetection: true}
}

// Agent is the per-node RanSub protocol instance. Protocols above
// (Bullet) provide the node's current summary ticket via TicketFn and
// receive each epoch's random subset via OnDistribute.
type Agent struct {
	ep       *transport.Endpoint
	cfg      Config
	rng      *rand.Rand
	parent   int // -1 at the root
	children []int

	// TicketFn supplies the node's current summary ticket. May be nil.
	TicketFn func() *sketch.Ticket
	// OnDistribute is invoked when an epoch's distribute set arrives.
	OnDistribute func(epoch int, set []Entry)
	// StuffFn, when non-nil, may rewrite the collect ballot (set and
	// descendant count) just before it is sent to the parent — the
	// hook the adversary layer's ballot-stuffing model uses. It must
	// be deterministic; returning its inputs unchanged is a no-op.
	StuffFn func(set []Entry, descendants int) ([]Entry, int)

	epoch int
	// childCollect holds the latest collect from each child, keyed
	// in-place by child id (children lists are tree-degree-sized, so a
	// linear scan beats hashing and keeps iteration deterministic).
	childCollect []childCollect
	// waiting lists the children owing a collect this epoch.
	waiting        []int
	lastDistribute distributeMsg
	epochTimer     sim.Timer
	minEpochDone   bool
	started        bool

	epochsCompleted int
}

// childCollect pairs a child id with its most recent collect message.
type childCollect struct {
	child int
	msg   collectMsg
}

// NewAgent creates the RanSub instance for ep's node, with the given
// tree position. parent is -1 for the root.
func NewAgent(ep *transport.Endpoint, cfg Config, parent int, children []int) *Agent {
	if cfg.SetSize <= 0 {
		cfg.SetSize = 10
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 5 * sim.Second
	}
	if cfg.EpochTimeout <= 0 {
		cfg.EpochTimeout = cfg.Epoch
	}
	kids := append([]int(nil), children...)
	return &Agent{
		ep:       ep,
		cfg:      cfg,
		rng:      ep.Scheduler().RNG(int64(ep.Node())*2654435761 + 0x52616e53),
		parent:   parent,
		children: kids,
	}
}

// collectOf returns the cached collect state for child, or nil.
func (a *Agent) collectOf(child int) *collectMsg {
	for i := range a.childCollect {
		if a.childCollect[i].child == child {
			return &a.childCollect[i].msg
		}
	}
	return nil
}

// setCollect caches m as child's latest collect.
func (a *Agent) setCollect(child int, m collectMsg) {
	for i := range a.childCollect {
		if a.childCollect[i].child == child {
			a.childCollect[i].msg = m
			return
		}
	}
	a.childCollect = append(a.childCollect, childCollect{child: child, msg: m})
}

// dropCollect forgets child's cached collect state.
func (a *Agent) dropCollect(child int) {
	for i := range a.childCollect {
		if a.childCollect[i].child == child {
			a.childCollect = append(a.childCollect[:i], a.childCollect[i+1:]...)
			return
		}
	}
}

// isWaiting reports whether child still owes a collect this epoch.
func (a *Agent) isWaiting(child int) bool {
	for _, c := range a.waiting {
		if c == child {
			return true
		}
	}
	return false
}

// stopWaiting removes child from the waiting list.
func (a *Agent) stopWaiting(child int) {
	for i, c := range a.waiting {
		if c == child {
			a.waiting = append(a.waiting[:i], a.waiting[i+1:]...)
			return
		}
	}
}

// resetWaiting makes every current child owe a collect.
func (a *Agent) resetWaiting() {
	a.waiting = append(a.waiting[:0], a.children...)
}

// IsRoot reports whether this agent sits at the tree root.
func (a *Agent) IsRoot() bool { return a.parent < 0 }

// Epoch returns the current epoch number.
func (a *Agent) Epoch() int { return a.epoch }

// EpochsCompleted returns how many distribute phases this node has
// received (or initiated, at the root).
func (a *Agent) EpochsCompleted() int { return a.epochsCompleted }

// Descendants returns the latest known subtree size below child
// (excluding the child itself), from its most recent collect.
func (a *Agent) Descendants(child int) int {
	if cm := a.collectOf(child); cm != nil {
		return cm.descendants
	}
	return 0
}

// ChildSubtreeSize returns descendants(child) + 1, the population the
// child's collect set represents.
func (a *Agent) ChildSubtreeSize(child int) int {
	cm := a.collectOf(child)
	if cm == nil {
		return 1 // assume at least the child itself
	}
	return cm.descendants + 1
}

// Children returns the children list (shared; do not mutate).
func (a *Agent) Children() []int { return a.children }

// ---------------------------------------------------------------------
// Membership changes (churn support). All three operations are
// deterministic: they mutate only this agent's tree-neighbor state and
// never consult randomness, so scheduled membership events preserve
// the pure-function-of-(config, seed, schedule) contract.
// ---------------------------------------------------------------------

// SetParent re-homes this agent under a new tree parent (-1 makes it a
// root). Used when orphan re-parenting moves the node one level up.
func (a *Agent) SetParent(parent int) { a.parent = parent }

// AddChild registers a new tree child. The child participates in the
// collect/distribute wave from the next epoch onward; the current
// epoch's accounting is untouched.
func (a *Agent) AddChild(child int) {
	for _, c := range a.children {
		if c == child {
			return
		}
	}
	a.children = append(a.children, child)
}

// RemoveChild forgets a (typically crashed) tree child so waves skip
// it: its cached collect state is dropped and, if the current epoch
// was still waiting on its collect, the wave advances immediately
// instead of stalling until the root's failure-detection timeout.
func (a *Agent) RemoveChild(child int) {
	idx := -1
	for i, c := range a.children {
		if c == child {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	a.children = append(a.children[:idx], a.children[idx+1:]...)
	a.dropCollect(child)
	if !a.isWaiting(child) {
		return
	}
	a.stopWaiting(child)
	if len(a.waiting) > 0 {
		return
	}
	// The removed child was the last one holding the wave back. (A
	// non-root agent only populates collectsWaited after processing a
	// distribute, so sending the collect here is always in-epoch —
	// the same drain path as onCollect.)
	if a.IsRoot() {
		a.maybeAdvance()
	} else {
		a.sendCollect()
	}
}

// Start begins epoch generation. Call on the root only; non-root agents
// are driven entirely by messages.
func (a *Agent) Start() {
	if !a.IsRoot() || a.started {
		return
	}
	a.started = true
	a.beginEpoch()
}

// Stop halts epoch generation at the root: pending epoch/timeout timers
// become no-ops instead of re-arming forever, so a stopped deployment
// charges nothing to the rest of the run. Non-root agents are
// message-driven and need no stop.
func (a *Agent) Stop() {
	a.started = false
	a.epochTimer.Cancel()
}

func (a *Agent) ownEntry() Entry {
	var t *sketch.Ticket
	if a.TicketFn != nil {
		t = a.TicketFn().Clone()
	}
	return Entry{Node: a.ep.Node(), Ticket: t}
}

// beginEpoch (root only) starts the next distribute phase.
func (a *Agent) beginEpoch() {
	a.epoch++
	a.epochsCompleted++
	a.minEpochDone = false
	a.resetWaiting()
	a.sendDistributes(distributeMsg{epoch: a.epoch})
	eng := a.ep.Scheduler()
	eng.ScheduleAfter(a.cfg.Epoch, func() {
		a.minEpochDone = true
		a.maybeAdvance()
	})
	a.epochTimer.Cancel()
	if a.cfg.FailureDetection {
		timeout := a.cfg.EpochTimeout
		if timeout < a.cfg.Epoch {
			timeout = a.cfg.Epoch
		}
		a.epochTimer = eng.After(a.cfg.Epoch+timeout, func() {
			// Failure detection: stop waiting for missing collects.
			if len(a.waiting) > 0 {
				a.waiting = a.waiting[:0]
				a.maybeAdvance()
			}
		})
	}
}

// maybeAdvance (root only) starts the next epoch once all collects are
// in and the minimum epoch length has elapsed.
func (a *Agent) maybeAdvance() {
	if !a.IsRoot() || !a.started {
		return
	}
	if a.minEpochDone && len(a.waiting) == 0 {
		a.beginEpoch()
	}
}

// sendDistributes builds and sends the RanSub-nondescendants distribute
// set for each child: the compaction of the node's own distribute set,
// its own entry, and the collect sets of the child's siblings.
func (a *Agent) sendDistributes(incoming distributeMsg) {
	for _, child := range a.children {
		groups := []Group{
			{Entries: []Entry{a.ownEntry()}, Population: 1},
		}
		if len(incoming.set) > 0 {
			groups = append(groups, Group{Entries: incoming.set, Population: incoming.population})
		}
		pop := 1 + incoming.population
		for _, sib := range a.children {
			if sib == child {
				continue
			}
			if cm := a.collectOf(sib); cm != nil && len(cm.set) > 0 {
				groups = append(groups, Group{Entries: cm.set, Population: cm.descendants + 1})
				pop += cm.descendants + 1
			}
		}
		set := Compact(a.rng, a.cfg.SetSize, groups)
		msg := &distributeMsg{epoch: a.epoch, set: set, population: pop}
		a.ep.SendControl(child, msg, 16+len(set)*EntryWireSize)
	}
}

// sendCollect sends this node's collect set (own entry compacted with
// all children's collect sets) to its parent.
func (a *Agent) sendCollect() {
	groups := []Group{{Entries: []Entry{a.ownEntry()}, Population: 1}}
	desc := 0
	for _, c := range a.children {
		if cm := a.collectOf(c); cm != nil && cm.epoch == a.epoch {
			groups = append(groups, Group{Entries: cm.set, Population: cm.descendants + 1})
			desc += cm.descendants + 1
		}
	}
	set := Compact(a.rng, a.cfg.SetSize, groups)
	if a.StuffFn != nil {
		set, desc = a.StuffFn(set, desc)
	}
	msg := &collectMsg{epoch: a.epoch, set: set, descendants: desc}
	a.ep.SendControl(a.parent, msg, 24+len(set)*EntryWireSize)
}

// HandleControl processes a control payload if it is a RanSub message,
// returning true when consumed. Protocols sharing the endpoint call
// this first from their control handler.
func (a *Agent) HandleControl(from int, payload any) bool {
	switch m := payload.(type) {
	case *distributeMsg:
		a.onDistribute(m)
		return true
	case *collectMsg:
		a.onCollect(from, m)
		return true
	}
	return false
}

func (a *Agent) onDistribute(m *distributeMsg) {
	// Epochs only move forward; drop stale or duplicate distributes.
	if a.epochsCompleted > 0 && m.epoch <= a.epoch {
		return
	}
	a.epoch = m.epoch
	a.epochsCompleted++
	a.lastDistribute = *m
	if a.OnDistribute != nil && len(m.set) > 0 {
		a.OnDistribute(m.epoch, m.set)
	}
	if len(a.children) == 0 {
		// Leaf: the distribute phase has reached the bottom; start the
		// collect phase for this epoch.
		a.sendCollect()
		return
	}
	// Expect fresh collects from every child this epoch.
	a.resetWaiting()
	a.sendDistributes(*m)
}

func (a *Agent) onCollect(from int, m *collectMsg) {
	a.setCollect(from, *m)
	if m.epoch != a.epoch {
		return // stale collect: keep the state, don't advance the phase
	}
	// Only a collect we were actually waiting on can advance the phase:
	// a freshly adopted child (orphan re-parented mid-epoch) may deliver
	// a same-epoch collect after we already sent ours, which must not
	// emit a duplicate.
	if !a.isWaiting(from) {
		return
	}
	a.stopWaiting(from)
	if len(a.waiting) == 0 {
		if a.IsRoot() {
			a.maybeAdvance()
		} else {
			a.sendCollect()
		}
	}
}

// TotalPopulation returns this node's view of the participant count:
// its own subtree plus the population of the last distribute set.
func (a *Agent) TotalPopulation() int {
	pop := 1
	for _, c := range a.children {
		pop += a.ChildSubtreeSize(c) - 1 + 1
	}
	return pop + a.lastDistribute.population
}
