package ransub

import (
	"math/rand"
	"testing"

	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/sim"
	"bullet/internal/sketch"
	"bullet/internal/topology"
	"bullet/internal/transport"
)

func TestCompactSizeAndMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func(ids ...int) []Entry {
		var es []Entry
		for _, id := range ids {
			es = append(es, Entry{Node: id})
		}
		return es
	}
	out := Compact(rng, 4, []Group{
		{Entries: mk(1, 2, 3), Population: 30},
		{Entries: mk(4, 5), Population: 2},
	})
	if len(out) != 4 {
		t.Fatalf("size=%d want 4", len(out))
	}
	seen := map[int]bool{}
	for _, e := range out {
		if e.Node < 1 || e.Node > 5 {
			t.Fatalf("alien entry %d", e.Node)
		}
		if seen[e.Node] {
			t.Fatalf("duplicate entry %d (sampling with replacement?)", e.Node)
		}
		seen[e.Node] = true
	}
}

func TestCompactWeighting(t *testing.T) {
	// Group A has population 1000 sampled by 2 entries; group B has
	// population 10 sampled by 2 entries. Picking 2 of the 4, A's
	// members must dominate across trials.
	rng := rand.New(rand.NewSource(2))
	countA := 0
	trials := 2000
	for i := 0; i < trials; i++ {
		out := Compact(rng, 2, []Group{
			{Entries: []Entry{{Node: 1}, {Node: 2}}, Population: 1000},
			{Entries: []Entry{{Node: 3}, {Node: 4}}, Population: 10},
		})
		for _, e := range out {
			if e.Node <= 2 {
				countA++
			}
		}
	}
	frac := float64(countA) / float64(2*trials)
	if frac < 0.9 {
		t.Fatalf("high-population group underrepresented: %.3f", frac)
	}
}

func TestCompactEmptyAndSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if out := Compact(rng, 5, nil); len(out) != 0 {
		t.Fatalf("compact of nothing = %v", out)
	}
	out := Compact(rng, 10, []Group{{Entries: []Entry{{Node: 7}}, Population: 1}})
	if len(out) != 1 || out[0].Node != 7 {
		t.Fatalf("small compact = %v", out)
	}
	// Zero-population groups are ignored.
	out = Compact(rng, 10, []Group{{Entries: []Entry{{Node: 9}}, Population: 0}})
	if len(out) != 0 {
		t.Fatal("zero-population group sampled")
	}
}

// world wires RanSub agents for all clients over a random tree.
type world struct {
	eng    *sim.Engine
	net    *netem.Network
	g      *topology.Graph
	tree   *overlay.Tree
	agents map[int]*Agent
	eps    map[int]*transport.Endpoint
}

func buildWorld(t *testing.T, seed int64, clients int, cfg Config) *world {
	t.Helper()
	g, err := topology.Generate(topology.Config{
		TransitDomains: 2, TransitPerDomain: 3,
		StubDomains: 8, StubDomainSize: 5,
		Clients: clients, Bandwidth: topology.MediumBandwidth, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	net := netem.New(eng, g, topology.NewRouter(g), netem.Config{})
	tree, err := overlay.Random(g.Clients, g.Clients[0], 4, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	w := &world{eng: eng, net: net, g: g, tree: tree,
		agents: make(map[int]*Agent), eps: make(map[int]*transport.Endpoint)}
	perms := sketch.NewPermutations(sketch.DefaultEntries, seed)
	for _, n := range g.Clients {
		ep := transport.NewEndpoint(net, n)
		parent := -1
		if p, ok := tree.Parent(n); ok {
			parent = p
		}
		ag := NewAgent(ep, cfg, parent, tree.Children(n))
		node := n
		tk := sketch.NewTicket(perms)
		tk.Add(uint64(node)) // distinct ticket content per node
		ag.TicketFn = func() *sketch.Ticket { return tk }
		ep.OnControl(func(from int, payload any, size int) {
			ag.HandleControl(from, payload)
		})
		w.agents[n] = ag
		w.eps[n] = ep
	}
	return w
}

func TestRanSubDeliversToAll(t *testing.T) {
	w := buildWorld(t, 1, 30, DefaultConfig())
	got := make(map[int]int)
	for n, ag := range w.agents {
		n := n
		ag.OnDistribute = func(epoch int, set []Entry) { got[n]++ }
	}
	w.agents[w.tree.Root].Start()
	w.eng.Run(30 * sim.Second)
	for _, n := range w.g.Clients {
		if n == w.tree.Root {
			continue
		}
		if got[n] < 3 {
			t.Fatalf("node %d received %d distributes in 30s (epoch 5s)", n, got[n])
		}
	}
}

func TestRanSubNondescendants(t *testing.T) {
	w := buildWorld(t, 2, 30, DefaultConfig())
	bad := 0
	for n, ag := range w.agents {
		n := n
		ag.OnDistribute = func(epoch int, set []Entry) {
			for _, e := range set {
				if e.Node != n && w.tree.IsDescendant(n, e.Node) {
					bad++
				}
				if e.Node == n {
					bad++ // a node must not be offered itself
				}
			}
		}
	}
	w.agents[w.tree.Root].Start()
	w.eng.Run(40 * sim.Second)
	if bad > 0 {
		t.Fatalf("%d descendant/self entries leaked into distribute sets", bad)
	}
}

func TestRanSubSetSizeBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SetSize = 6
	w := buildWorld(t, 3, 25, cfg)
	for _, ag := range w.agents {
		ag.OnDistribute = func(epoch int, set []Entry) {
			if len(set) > 6 {
				t.Fatalf("set size %d > 6", len(set))
			}
			for _, e := range set {
				if e.Ticket == nil {
					t.Fatal("entry without ticket")
				}
			}
		}
	}
	w.agents[w.tree.Root].Start()
	w.eng.Run(20 * sim.Second)
}

func TestRanSubDescendantCounts(t *testing.T) {
	w := buildWorld(t, 4, 30, DefaultConfig())
	w.agents[w.tree.Root].Start()
	w.eng.Run(30 * sim.Second)
	for _, n := range w.g.Clients {
		ag := w.agents[n]
		for _, c := range w.tree.Children(n) {
			want := w.tree.Descendants(c)
			if got := ag.Descendants(c); got != want {
				t.Fatalf("node %d child %d descendants=%d want %d", n, c, got, want)
			}
		}
	}
}

func TestRanSubUniformity(t *testing.T) {
	// Over many epochs, each non-descendant of a leaf should appear in
	// its distribute sets with roughly equal frequency.
	cfg := DefaultConfig()
	cfg.Epoch = sim.Second // fast epochs for sampling
	cfg.EpochTimeout = sim.Second
	w := buildWorld(t, 5, 20, cfg)
	// Pick a leaf.
	var leaf int
	for _, n := range w.g.Clients {
		if len(w.tree.Children(n)) == 0 {
			leaf = n
			break
		}
	}
	freq := make(map[int]int)
	epochs := 0
	w.agents[leaf].OnDistribute = func(epoch int, set []Entry) {
		epochs++
		for _, e := range set {
			freq[e.Node]++
		}
	}
	w.agents[w.tree.Root].Start()
	w.eng.Run(120 * sim.Second)
	if epochs < 50 {
		t.Fatalf("only %d epochs", epochs)
	}
	// 19 candidates, 10 slots: expectation ~ epochs*10/19 each.
	exp := float64(epochs) * 10.0 / 19.0
	for _, n := range w.g.Clients {
		if n == leaf {
			continue
		}
		got := float64(freq[n])
		if got < exp*0.5 || got > exp*1.5 {
			t.Fatalf("node %d appeared %v times, expected ~%v (non-uniform)", n, got, exp)
		}
	}
}

func TestRanSubFailureDetection(t *testing.T) {
	cfg := DefaultConfig()
	w := buildWorld(t, 6, 30, cfg)
	root := w.tree.Root
	kids := w.tree.Children(root)
	if len(kids) == 0 {
		t.Skip("root has no children in this draw")
	}
	victim := kids[0]
	w.agents[root].Start()
	w.eng.Run(20 * sim.Second)
	before := w.agents[root].EpochsCompleted()
	w.eps[victim].Fail()
	w.eng.Run(60 * sim.Second)
	after := w.agents[root].EpochsCompleted()
	if after-before < 2 {
		t.Fatalf("epochs stalled after child failure with detection on: %d -> %d", before, after)
	}
}

func TestRanSubStallsWithoutFailureDetection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FailureDetection = false
	w := buildWorld(t, 7, 30, cfg)
	root := w.tree.Root
	kids := w.tree.Children(root)
	if len(kids) == 0 {
		t.Skip("root has no children in this draw")
	}
	victim := kids[0]
	w.agents[root].Start()
	w.eng.Run(20 * sim.Second)
	w.eps[victim].Fail()
	w.eng.Run(5 * sim.Second) // let in-flight epochs settle
	stalled := w.agents[root].EpochsCompleted()
	w.eng.Run(120 * sim.Second)
	if got := w.agents[root].EpochsCompleted(); got > stalled+1 {
		t.Fatalf("epochs advanced (%d -> %d) despite disabled failure detection", stalled, got)
	}
}

func TestRanSubEpochPacing(t *testing.T) {
	// Epochs must not run faster than the configured minimum length.
	cfg := DefaultConfig()
	w := buildWorld(t, 8, 15, cfg)
	w.agents[w.tree.Root].Start()
	w.eng.Run(52 * sim.Second)
	if got := w.agents[w.tree.Root].EpochsCompleted(); got > 11 {
		t.Fatalf("%d epochs in 52s with 5s minimum", got)
	}
}

// Membership: removing a crashed child keeps the collect/distribute
// wave moving without relying on the root's failure-detection timeout.
func TestRemoveChildUnblocksWave(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FailureDetection = false // removal alone must keep epochs going
	w := buildWorld(t, 5, 30, cfg)
	root := w.tree.Root
	// Victim: the root child with the largest subtree, so the stall
	// would be maximal without removal.
	victim, _ := w.tree.HeaviestChild(root)
	if victim < 0 {
		t.Fatal("no root child")
	}
	w.agents[root].Start()
	w.eng.Run(12 * sim.Second)
	atCrash := w.agents[root].EpochsCompleted()
	w.eps[victim].Fail()
	w.agents[root].RemoveChild(victim)
	w.eng.Run(60 * sim.Second)
	after := w.agents[root].EpochsCompleted()
	if after-atCrash < 3 {
		t.Fatalf("only %d epochs completed in ~48s after crash+removal (epoch 5s): wave stalled",
			after-atCrash)
	}
	// The victim must no longer be waited on or listed.
	for _, c := range w.agents[root].Children() {
		if c == victim {
			t.Fatal("victim still listed as child")
		}
	}
}

// Membership list manipulation: AddChild dedups, RemoveChild of an
// unknown child is a no-op, SetParent re-homes the agent.
func TestMembershipAccessors(t *testing.T) {
	w := buildWorld(t, 6, 10, DefaultConfig())
	leafID := -1
	for _, n := range w.g.Clients {
		if len(w.tree.Children(n)) == 0 {
			leafID = n
			break
		}
	}
	if leafID < 0 {
		t.Fatal("no leaf")
	}
	ag := w.agents[leafID]
	if len(ag.Children()) != 0 {
		t.Fatal("leaf has children")
	}
	ag.AddChild(42)
	ag.AddChild(42)
	if got := ag.Children(); len(got) != 1 || got[0] != 42 {
		t.Fatalf("children after dup add: %v", got)
	}
	ag.RemoveChild(99) // unknown: no-op
	ag.RemoveChild(42)
	if len(ag.Children()) != 0 {
		t.Fatal("child not removed")
	}
	if ag.IsRoot() {
		t.Fatal("leaf reports root")
	}
	ag.SetParent(-1)
	if !ag.IsRoot() {
		t.Fatal("SetParent(-1) did not make agent a root")
	}
}
