package adversary

import (
	"reflect"
	"testing"

	"bullet/internal/overlay"
)

func TestModelNames(t *testing.T) {
	for _, m := range append([]Model{None}, Models()...) {
		got, err := ModelByName(m.String())
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ModelByName(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("ModelByName(nope) should fail")
	}
}

func participants(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i * 3 // non-contiguous ids, like graph node ids
	}
	return ids
}

func TestSelectionIsPureFunctionOfSeed(t *testing.T) {
	parts := participants(40)
	a := New(Config{Model: Freeride, Fraction: 0.25}, parts, 0, 42)
	b := New(Config{Model: Freeride, Fraction: 0.25}, parts, 0, 42)
	if !reflect.DeepEqual(a.Colluders(), b.Colluders()) {
		t.Fatalf("same seed, different colluders: %v vs %v", a.Colluders(), b.Colluders())
	}
	c := New(Config{Model: Freeride, Fraction: 0.25}, parts, 0, 43)
	if reflect.DeepEqual(a.Colluders(), c.Colluders()) {
		t.Fatalf("different seeds picked identical colluders: %v", a.Colluders())
	}
	d := New(Config{Model: Liar, Fraction: 0.25}, parts, 0, 42)
	if reflect.DeepEqual(a.Colluders(), d.Colluders()) {
		t.Fatalf("different models picked identical colluders: %v", a.Colluders())
	}
}

func TestSelectionSizeAndRootExclusion(t *testing.T) {
	parts := participants(41) // 40 non-root candidates
	f := New(Config{Model: Freeride, Fraction: 0.25}, parts, 0, 7)
	if got := len(f.Colluders()); got != 10 {
		t.Fatalf("fraction 0.25 of 40 candidates: got %d colluders, want 10", got)
	}
	for _, id := range f.Colluders() {
		if id == 0 {
			t.Fatal("root was compromised")
		}
	}
	// Colluders are sorted ascending.
	ids := f.Colluders()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("colluders not ascending: %v", ids)
		}
	}
	// Fraction 1 takes everything but the root; zero falls back to default.
	all := New(Config{Model: Freeride, Fraction: 1}, parts, 0, 7)
	if got := len(all.Colluders()); got != 40 {
		t.Fatalf("fraction 1: got %d, want 40", got)
	}
	def := New(Config{Model: Freeride}, parts, 0, 7)
	if got := len(def.Colluders()); got != 10 {
		t.Fatalf("default fraction: got %d, want 10", got)
	}
}

func TestDormantUntilStrike(t *testing.T) {
	f := New(Config{Model: Freeride, Fraction: 0.5}, participants(10), 0, 1)
	id := f.Colluders()[0]
	if f.Hostile(id) || f.RefusesServe(id) || f.RefusesRelay(id) {
		t.Fatal("fleet hostile before Activate")
	}
	f.Activate()
	if !f.Hostile(id) || !f.RefusesServe(id) || !f.RefusesRelay(id) {
		t.Fatal("fleet not hostile after Activate")
	}
	if f.Hostile(0) {
		t.Fatal("root reported hostile")
	}
}

func TestServeRelayMatrix(t *testing.T) {
	cases := []struct {
		model Model
		serve bool // refuses serve
		relay bool // refuses relay
	}{
		{Freeride, true, true},
		{Liar, true, false},
		{Ballotstuff, true, false},
		{Cutvertex, false, false},
		{Joinstorm, false, false},
	}
	for _, c := range cases {
		f := New(Config{Model: c.model, Fraction: 0.5}, participants(10), 0, 1)
		if c.model == Cutvertex {
			f.Compromise([]int{3}) // cutvertex records victims at strike
		}
		f.Activate()
		id := f.Colluders()[0]
		if got := f.RefusesServe(id); got != c.serve {
			t.Errorf("%v RefusesServe = %v, want %v", c.model, got, c.serve)
		}
		if got := f.RefusesRelay(id); got != c.relay {
			t.Errorf("%v RefusesRelay = %v, want %v", c.model, got, c.relay)
		}
	}
}

func TestCompromiseExtendsSet(t *testing.T) {
	f := New(Config{Model: Cutvertex, Fraction: 0.25}, participants(20), 0, 3)
	before := len(f.Colluders())
	f.Compromise([]int{99, 99, 0}) // dup and root are ignored
	if got := len(f.Colluders()); got != before+1 {
		t.Fatalf("Compromise added %d ids, want 1", got-before)
	}
	if !f.Is(99) || f.Is(0) {
		t.Fatal("Compromise membership wrong")
	}
}

func TestStreamDeterministicAndTagged(t *testing.T) {
	a := NewStream(42, streamTag(Joinstorm))
	b := NewStream(42, streamTag(Joinstorm))
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(i%7), b.Float64(i%7); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
	c := NewStream(42, streamTag(Freeride))
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64(i%7) == c.Float64(i%7) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently-tagged streams correlated: %d/100 equal draws", same)
	}
	if a.Draws() != 200 {
		t.Fatalf("draw counter = %d, want 200", a.Draws())
	}
	for i := 0; i < 50; i++ {
		if n := a.Intn(3, 10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

// buildTree makes:
//
//	0 ── 1 ── 3, 4, 5
//	  └─ 2 ── 6
//
// Node 1's subtree has mass 4, node 2's mass 2.
func buildTree(t *testing.T) *overlay.Tree {
	tr := overlay.NewTree(0)
	for _, e := range [][2]int{{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 1}, {6, 2}} {
		if err := tr.Attach(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestCutSetPicksHeaviestLiveSubtrees(t *testing.T) {
	tr := buildTree(t)
	allLive := func(int) bool { return true }
	got := CutSet(tr, allLive, 2)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("CutSet = %v, want [1 2]", got)
	}
	// Victims inside an already-picked subtree are skipped: with
	// budget 3 the next pick is 2's child 6... but 6 is under 2,
	// so the only remaining candidates are leaves outside taken
	// subtrees — none. Budget is not padded.
	if got := CutSet(tr, allLive, 10); len(got) != 2 {
		t.Fatalf("CutSet exhausted = %v, want 2 victims", got)
	}
	// Dead nodes carry no mass and are not picked.
	deadOne := func(id int) bool { return id != 1 && id != 3 && id != 4 && id != 5 }
	if got := CutSet(tr, deadOne, 1); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("CutSet with dead subtree = %v, want [2]", got)
	}
	if got := CutSet(tr, allLive, 0); got != nil {
		t.Fatalf("CutSet budget 0 = %v, want nil", got)
	}
}
