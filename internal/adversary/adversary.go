// Package adversary implements bounded, deterministic hostile-peer
// models. A Fleet compromises a seeded subset of participants and
// drives every hostile decision from a dedicated counter-hash RNG
// stream (the same discipline as netem's per-link-direction draws), so
// a run with an adversary is a pure function of (config, seed,
// schedule) and sharded runs stay byte-identical to serial.
//
// The fleet is dormant until Strike() fires (normally from a
// scenario.AdversaryAt action): before the strike the compromised
// nodes behave exactly like honest ones and the hooks draw no
// randomness, so the pre-strike phase of an adversarial run is
// byte-identical to a clean run with the same seed.
//
// Concurrency contract: Compromise, Strike, and every Stream draw run
// on the global engine between shard windows (scenario actions), never
// inside a shard window. Per-node hooks that execute on shard
// goroutines (serving guards, ticket lookups) only read state written
// before the window barrier.
package adversary

import (
	"fmt"
	"sort"

	"bullet/internal/nodeset"
	"bullet/internal/overlay"
	"bullet/internal/sim"
)

// Model selects a hostile-peer behavior.
type Model int

const (
	// None disables the adversary layer entirely.
	None Model = iota
	// Freeride receives data but never relays to tree children nor
	// serves mesh/recovery requests.
	Freeride
	// Liar advertises summary tickets (and thus implied Bloom
	// filters) for blocks it does not hold, poisoning min-resemblance
	// sender selection, while refusing to serve the peers it attracts.
	Liar
	// Cutvertex computes high-mass cut vertices of the live overlay
	// tree at strike time and crashes them to maximize orphaned
	// subtree mass.
	Cutvertex
	// Joinstorm drives seeded flash crowds of leave/rejoin
	// oscillation through the membership API.
	Joinstorm
	// Ballotstuff manipulates RanSub collect ballots so random
	// subsets are biased toward colluders, which then refuse to serve.
	Ballotstuff
)

var modelNames = map[Model]string{
	None:        "none",
	Freeride:    "freeride",
	Liar:        "liar",
	Cutvertex:   "cutvertex",
	Joinstorm:   "joinstorm",
	Ballotstuff: "ballotstuff",
}

func (m Model) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Models lists the five hostile models (None excluded) in a fixed
// order, for building model × seed matrices.
func Models() []Model {
	return []Model{Freeride, Liar, Cutvertex, Joinstorm, Ballotstuff}
}

// ModelByName resolves a model from its lowercase name.
func ModelByName(name string) (Model, error) {
	for m, s := range modelNames {
		if s == name {
			return m, nil
		}
	}
	return None, fmt.Errorf("adversary: unknown model %q", name)
}

// Config describes an adversary fleet. The zero value (Model None)
// means "no adversary".
type Config struct {
	// Model is the hostile behavior.
	Model Model
	// Fraction of the non-root participants to compromise, in (0, 1].
	// Defaults to 0.25 when zero. For Cutvertex it is a crash budget:
	// the victim identities come from the live tree at strike time,
	// not from the seeded selection.
	Fraction float64
	// Seed perturbs the fleet's stream and selection relative to the
	// world seed; zero is fine (the world seed alone already
	// separates runs).
	Seed int64
}

// DefaultFraction is used when Config.Fraction is zero.
const DefaultFraction = 0.25

func (c Config) fraction() float64 {
	if c.Fraction <= 0 {
		return DefaultFraction
	}
	if c.Fraction > 1 {
		return 1
	}
	return c.Fraction
}

// mix64 is the splitmix64 finalizer — the same mixer netem uses for
// per-link-direction loss draws.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Stream is a counter-hash RNG stream: draw n is
// mix64(base + id·golden + n·weyl), a pure function of (seed, model,
// id, draw counter) independent of event interleaving. It must only
// be drawn from global-engine context (Compromise/Strike/scenario
// actions), never inside a shard window.
type Stream struct {
	base  uint64
	draws uint64
}

// NewStream derives a stream from a seed and a domain tag.
func NewStream(seed int64, tag uint64) *Stream {
	return &Stream{base: mix64(uint64(seed) ^ tag)}
}

func (s *Stream) next(id int) uint64 {
	s.draws++
	return mix64(s.base + uint64(id)*0x9E3779B97F4A7C15 + s.draws*0xBF58476D1CE4E5B9)
}

// Float64 draws a uniform float in [0, 1) for entity id.
func (s *Stream) Float64(id int) float64 {
	return float64(s.next(id)>>11) * (1.0 / (1 << 53))
}

// Intn draws a uniform int in [0, n) for entity id.
func (s *Stream) Intn(id, n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next(id) % uint64(n))
}

// Draws reports how many values the stream has produced.
func (s *Stream) Draws() uint64 { return s.draws }

// Fleet is a deployed adversary: the compromised set, the activation
// latch, and the seeded stream hostile decisions draw from.
type Fleet struct {
	cfg    Config
	stream *Stream

	root        int
	budget      int
	compromised nodeset.Set
	colluders   []int // ascending
	active      bool
}

// streamTag domain-separates the fleet stream per model ("advr" xor
// model) so two models at the same seed see unrelated draws.
func streamTag(m Model) uint64 { return 0x61647672 ^ (uint64(m) << 32) }

// selScore is the seeded selection score for a participant: nodes
// with the lowest scores are compromised. Pure function of
// (seed, model, id) — no engine RNG is consulted, so deploying an
// adversary perturbs no other component's draws.
func selScore(seed int64, m Model, extra int64, id int) uint64 {
	base := mix64(uint64(seed)^uint64(extra)*0x9E3779B97F4A7C15) ^ streamTag(m)
	return mix64(base + uint64(id)*0xBF58476D1CE4E5B9)
}

// New builds a fleet over the given participants. The compromised set
// is a pure function of (worldSeed, cfg, participants, root): every
// non-root participant is scored by a seeded hash and the lowest
// ⌈Fraction·(N−1)⌉ are compromised. The fleet starts dormant.
func New(cfg Config, participants []int, root int, worldSeed int64) *Fleet {
	f := &Fleet{
		cfg:    cfg,
		stream: NewStream(worldSeed^cfg.Seed, streamTag(cfg.Model)),
		root:   root,
	}
	if cfg.Model == None {
		return f
	}
	type scored struct {
		id    int
		score uint64
	}
	cands := make([]scored, 0, len(participants))
	for _, p := range participants {
		if p == root {
			continue
		}
		cands = append(cands, scored{p, selScore(worldSeed, cfg.Model, cfg.Seed, p)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].id < cands[j].id
	})
	k := int(cfg.fraction()*float64(len(cands)) + 0.999999)
	if k > len(cands) {
		k = len(cands)
	}
	f.budget = k
	if cfg.Model == Cutvertex {
		// The seeded selection only fixes the crash budget; the victim
		// identities come from the live tree at strike time and are
		// recorded via Compromise then.
		return f
	}
	for _, c := range cands[:k] {
		f.addColluder(c.id)
	}
	return f
}

func (f *Fleet) addColluder(id int) {
	if id == f.root || !f.compromised.Add(id) {
		return
	}
	i := sort.SearchInts(f.colluders, id)
	f.colluders = append(f.colluders, 0)
	copy(f.colluders[i+1:], f.colluders[i:])
	f.colluders[i] = id
}

// Model reports the fleet's hostile model.
func (f *Fleet) Model() Model { return f.cfg.Model }

// Stream exposes the fleet's seeded stream for hook implementations.
func (f *Fleet) Stream() *Stream { return f.stream }

// Compromise adds nodes to the compromised set (the root is never
// compromised). Used by the CompromiseNodes scenario action and by
// Cutvertex strikes to record their victims.
func (f *Fleet) Compromise(nodes []int) {
	for _, id := range nodes {
		f.addColluder(id)
	}
}

// Activate flips the fleet hostile. Idempotent.
func (f *Fleet) Activate() { f.active = true }

// Active reports whether Strike has fired.
func (f *Fleet) Active() bool { return f.active }

// Is reports whether id is compromised (regardless of activation).
func (f *Fleet) Is(id int) bool { return f.compromised.Contains(id) }

// Colluders returns the compromised ids in ascending order. The
// returned slice is shared; callers must not mutate it.
func (f *Fleet) Colluders() []int { return f.colluders }

// Hostile reports whether id is compromised and the fleet has struck
// — the gate every behavior hook checks on its hot path.
func (f *Fleet) Hostile(id int) bool { return f.active && f.compromised.Contains(id) }

// RefusesServe reports whether id, if hostile, refuses to serve mesh
// and recovery requests. Freeriders, liars, and ballot stuffers all
// leech; crash-timing models don't change serving behavior.
func (f *Fleet) RefusesServe(id int) bool {
	switch f.cfg.Model {
	case Freeride, Liar, Ballotstuff:
		return f.Hostile(id)
	}
	return false
}

// RefusesRelay reports whether id, if hostile, stops relaying data to
// its tree children. Only freeriders do: liars and ballot stuffers
// keep the tree flowing to stay plausible while they poison the
// control plane.
func (f *Fleet) RefusesRelay(id int) bool {
	return f.cfg.Model == Freeride && f.Hostile(id)
}

// CutSet greedily picks up to budget victims from the live tree by
// live-descendant mass: at each step the node (root excluded, already
// orphaned subtrees skipped) whose subtree holds the most live nodes
// is taken, ties broken by lowest id. Deterministic: pure function of
// the tree and the live predicate.
func CutSet(t *overlay.Tree, live func(int) bool, budget int) []int {
	if budget <= 0 {
		return nil
	}
	victims := make([]int, 0, budget)
	var taken nodeset.Set
	// under reports whether id sits inside an already-picked subtree.
	under := func(id int) bool {
		for id != t.Root {
			if taken.Contains(id) {
				return true
			}
			p, ok := t.Parent(id)
			if !ok {
				return false
			}
			id = p
		}
		return false
	}
	var liveMass func(id int) int
	liveMass = func(id int) int {
		m := 0
		if live(id) {
			m = 1
		}
		for _, c := range t.Children(id) {
			m += liveMass(c)
		}
		return m
	}
	for len(victims) < budget {
		best, bestMass := -1, 0
		for _, p := range t.Participants {
			if p == t.Root || !live(p) || taken.Contains(p) || under(p) {
				continue
			}
			if m := liveMass(p); m > bestMass || (m == bestMass && best != -1 && p < best) {
				best, bestMass = p, m
			}
		}
		if best == -1 {
			break
		}
		taken.Add(best)
		victims = append(victims, best)
	}
	return victims
}

// Joinstorm dwell: a crashed colluder rejoins JoinstormMinDwell plus
// a seeded jitter later — long enough for failure detection to fire
// and force a real repair, short enough to keep the overlay
// oscillating.
const (
	JoinstormMinDwell = 3 * sim.Second
	JoinstormJitter   = 4 * sim.Second
)

// Dwell draws colluder id's down time for one joinstorm oscillation
// from the fleet stream. Global-engine context only.
func (f *Fleet) Dwell(id int) sim.Duration {
	return JoinstormMinDwell + sim.Duration(f.stream.Intn(id, int(JoinstormJitter)))
}

// Budget returns the fleet's crash/oscillation budget: the size the
// seeded selection chose.
func (f *Fleet) Budget() int { return f.budget }
