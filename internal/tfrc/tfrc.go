// Package tfrc implements TCP-Friendly Rate Control as described in
// §2.4 of the Bullet paper (Floyd et al., SIGCOMM 2000 / RFC 3448):
// an equation-based, loss-event-driven congestion control that targets
// a smooth sending rate while remaining fair to TCP. As in Bullet, the
// transport is unreliable: lost packets are never retransmitted, since
// Bullet recovers them from other peers.
//
// The package is pure protocol logic — the sender and receiver halves
// are driven by the transport layer (package transport), which moves
// packets and feedback through the emulated network.
package tfrc

import "math"

// Rate evaluates the TCP response function used by TFRC (the Padhye
// steady-state TCP throughput equation, §2.4):
//
//	T = s / (R*sqrt(2p/3) + tRTO*(3*sqrt(3p/8))*p*(1+32p^2))
//
// with packet size s in bytes, round-trip time R and retransmission
// timeout tRTO in seconds, and loss event rate p in [0,1]. The result
// is in bytes/second. p = 0 yields +Inf (no equation constraint).
func Rate(s, R, p, tRTO float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if R <= 0 {
		R = 1e-3
	}
	denom := R*math.Sqrt(2*p/3) + tRTO*3*math.Sqrt(3*p/8)*p*(1+32*p*p)
	return s / denom
}

// NumLossIntervals is the size of the loss interval history (RFC 3448).
const NumLossIntervals = 8

// lossIntervalWeights are the RFC 3448 weights for the average loss
// interval, most recent first.
var lossIntervalWeights = [NumLossIntervals]float64{1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2}

// LossHistory tracks loss intervals at the receiver and computes the
// reported loss event rate p. The history is a fixed-size ring shifted
// in place: recording a loss event and computing P are allocation-free
// (this sits on the per-packet path of every TFRC flow).
type LossHistory struct {
	// intervals[0] is the most recent *closed* interval; n counts how
	// many entries are populated.
	intervals [NumLossIntervals]float64
	n         int
	// current counts packets since the last loss event (open interval).
	current float64
	// haveLoss reports whether any loss event has occurred.
	haveLoss bool
}

// OnPacket records a successfully received packet.
func (h *LossHistory) OnPacket() { h.current++ }

// OnLossEvent closes the current interval and starts a new one. The
// caller is responsible for aggregating losses within one RTT into a
// single event.
func (h *LossHistory) OnLossEvent() {
	if !h.haveLoss {
		h.haveLoss = true
	}
	copy(h.intervals[1:], h.intervals[:])
	h.intervals[0] = h.current
	if h.n < NumLossIntervals {
		h.n++
	}
	h.current = 0
}

// SeedFirstInterval sets the synthetic length of the first loss
// interval, derived from the receive rate before the first loss
// (RFC 3448 §6.3.1). Call immediately after the first OnLossEvent.
func (h *LossHistory) SeedFirstInterval(packets float64) {
	if h.n == 1 && packets > h.intervals[0] {
		h.intervals[0] = packets
	}
}

// P returns the loss event rate: the inverse of the weighted average
// loss interval, computed both with and without the open current
// interval, taking the larger average (RFC 3448 §5.4). Returns 0 before
// any loss event.
func (h *LossHistory) P() float64 {
	if !h.haveLoss || h.n == 0 {
		return 0
	}
	avgClosed := weightedAvg(h.intervals[:h.n])
	// Including the open interval as the most recent value: weight 0
	// applies to current, the closed intervals shift one weight down,
	// and the oldest falls off when the history is full.
	num := lossIntervalWeights[0] * h.current
	den := lossIntervalWeights[0]
	for i := 0; i < h.n && i+1 < NumLossIntervals; i++ {
		num += lossIntervalWeights[i+1] * h.intervals[i]
		den += lossIntervalWeights[i+1]
	}
	avgOpen := num / den
	avg := avgClosed
	if avgOpen > avg {
		avg = avgOpen
	}
	if avg < 1 {
		avg = 1
	}
	return 1 / avg
}

func weightedAvg(intervals []float64) float64 {
	var num, den float64
	for i, v := range intervals {
		if i >= NumLossIntervals {
			break
		}
		num += lossIntervalWeights[i] * v
		den += lossIntervalWeights[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Sender is the TFRC sender half: it maintains the allowed sending rate
// and a token bucket that enforces it. All times are float64 seconds so
// the package stays independent of the simulator's clock type.
type Sender struct {
	PacketSize float64 // nominal segment size s, bytes

	rate      float64 // allowed rate, bytes/s
	rtt       float64 // smoothed RTT estimate, seconds
	haveRTT   bool
	slowStart bool

	tokens     float64
	lastRefill float64

	minRate  float64
	lastFB   float64 // time of last feedback, for the no-feedback timer
	haveFB   bool
	lastSend float64 // time of last successful send
}

// InitialRTT is the RTT assumed before the first measurement.
const InitialRTT = 0.1

// NewSender creates a sender with the RFC initial rate of one packet
// per (assumed) RTT.
func NewSender(packetSize float64) *Sender {
	s := &Sender{
		PacketSize: packetSize,
		rtt:        InitialRTT,
		slowStart:  true,
	}
	s.minRate = packetSize / 64 // s / t_mbi, t_mbi = 64s
	s.rate = 2 * packetSize / s.rtt
	s.tokens = 2 * packetSize // allow the first packets immediately
	return s
}

// Rate returns the current allowed sending rate in bytes/second.
func (s *Sender) Rate() float64 { return s.rate }

// RTT returns the smoothed RTT estimate in seconds.
func (s *Sender) RTT() float64 { return s.rtt }

// InSlowStart reports whether the sender has yet to see a loss event.
func (s *Sender) InSlowStart() bool { return s.slowStart }

// nofeedback halves the rate for every no-feedback interval in which
// data was sent but no receiver report arrived (RFC 3448 §4.4), so
// flows to dead or partitioned receivers decay instead of transmitting
// forever. Intervals in which the sender was data-limited (sent
// nothing) do not decay the rate.
func (s *Sender) nofeedback(now float64) {
	if !s.haveFB {
		s.lastFB = now
		s.haveFB = true
		return
	}
	timeout := 4 * s.rtt
	if timeout < 0.5 {
		timeout = 0.5
	}
	for now-s.lastFB > timeout {
		if s.lastSend <= s.lastFB {
			// Idle interval: no data outstanding, nothing to conclude.
			s.lastFB = now
			return
		}
		s.rate /= 2
		if s.rate < s.minRate {
			s.rate = s.minRate
		}
		s.lastFB += timeout
	}
}

// refill adds tokens accrued since the last refill, capping the bucket
// so idle periods do not bank an arbitrary burst.
func (s *Sender) refill(now float64) {
	s.nofeedback(now)
	if now > s.lastRefill {
		s.tokens += s.rate * (now - s.lastRefill)
		s.lastRefill = now
	}
	burst := s.rate * 0.02 // 20ms of rate
	if burst < 2*s.PacketSize {
		burst = 2 * s.PacketSize
	}
	if s.tokens > burst {
		s.tokens = burst
	}
}

// TrySend implements Bullet's non-blocking senddata semantics: it
// succeeds (consuming budget) only if sending size bytes now stays
// within the TCP-friendly fair share; otherwise it fails and consumes
// nothing.
func (s *Sender) TrySend(now float64, size int) bool {
	s.refill(now)
	if s.tokens < float64(size) {
		return false
	}
	s.tokens -= float64(size)
	s.lastSend = now
	return true
}

// Budget returns the currently available token budget in bytes.
func (s *Sender) Budget(now float64) float64 {
	s.refill(now)
	return s.tokens
}

// Feedback is the once-per-RTT receiver report.
type Feedback struct {
	P         float64 // loss event rate
	RecvRate  float64 // bytes/s received since last report
	RTTSample float64 // seconds; <0 if no valid sample
}

// OnFeedback updates the rate from a receiver report (RFC 3448 §4.3).
func (s *Sender) OnFeedback(now float64, fb Feedback) {
	s.lastFB = now
	s.haveFB = true
	if fb.RTTSample > 0 {
		if !s.haveRTT {
			s.rtt = fb.RTTSample
			s.haveRTT = true
		} else {
			s.rtt = 0.9*s.rtt + 0.1*fb.RTTSample
		}
	}
	if fb.P <= 0 {
		// Slow-start: double each feedback, bounded by twice the rate
		// the receiver actually absorbed (handles app-limited flows).
		s.slowStart = true
		limit := 2 * fb.RecvRate
		if limit < 2*s.PacketSize/s.rtt {
			limit = 2 * s.PacketSize / s.rtt
		}
		s.rate *= 2
		if s.rate > limit {
			s.rate = limit
		}
		if s.rate < s.minRate {
			s.rate = s.minRate
		}
		return
	}
	s.slowStart = false
	tRTO := 4 * s.rtt
	x := Rate(s.PacketSize, s.rtt, fb.P, tRTO)
	limit := 2 * fb.RecvRate
	if x > limit && limit > 0 {
		x = limit
	}
	if x < s.minRate {
		x = s.minRate
	}
	s.rate = x
}

// Receiver is the TFRC receiver half for one flow. It detects losses
// from gaps in the per-flow sequence space (the emulated network never
// reorders within a path), aggregates losses within one RTT into loss
// events, and produces periodic feedback.
type Receiver struct {
	hist       LossHistory
	nextSeq    uint64 // next expected flow sequence
	havePacket bool

	rtt            float64 // sender-communicated RTT estimate
	lossEventStart float64 // time of the first loss in the current event
	inLossEvent    bool

	bytesSinceFB  float64
	lastFBTime    float64
	lastTS        float64 // sender timestamp of most recent data packet
	lastArrival   float64 // local arrival time of that packet
	haveTS        bool
	totalReceived float64
	totalLost     float64
}

// NewReceiver creates a receiver; rttHint seeds loss-event aggregation
// before the sender communicates an estimate.
func NewReceiver(rttHint float64) *Receiver {
	if rttHint <= 0 {
		rttHint = InitialRTT
	}
	return &Receiver{rtt: rttHint, lastFBTime: -1}
}

// OnData processes an arriving data packet: flowSeq is the per-flow
// sequence number, ts the sender timestamp (seconds), senderRTT the
// sender's current RTT estimate (0 if unknown).
func (r *Receiver) OnData(now float64, flowSeq uint64, size int, ts, senderRTT float64) {
	if senderRTT > 0 {
		r.rtt = senderRTT
	}
	r.lastTS = ts
	r.lastArrival = now
	r.haveTS = true
	r.bytesSinceFB += float64(size)
	r.totalReceived++

	if !r.havePacket {
		r.havePacket = true
		r.nextSeq = flowSeq + 1
		r.hist.OnPacket()
		return
	}
	if flowSeq < r.nextSeq {
		return // duplicate/late; path FIFO makes this rare
	}
	lost := flowSeq - r.nextSeq
	r.nextSeq = flowSeq + 1
	if lost > 0 {
		r.totalLost += float64(lost)
		if !r.inLossEvent || now-r.lossEventStart > r.rtt {
			// New loss event.
			first := !r.hist.haveLoss
			r.hist.OnLossEvent()
			if first {
				// Seed the first interval from the pre-loss receive rate.
				r.hist.SeedFirstInterval(r.totalReceived)
			}
			r.inLossEvent = true
			r.lossEventStart = now
		}
	}
	r.hist.OnPacket()
}

// P returns the current loss event rate estimate.
func (r *Receiver) P() float64 { return r.hist.P() }

// LossRatio returns the raw fraction of packets lost (diagnostics).
func (r *Receiver) LossRatio() float64 {
	tot := r.totalReceived + r.totalLost
	if tot == 0 {
		return 0
	}
	return r.totalLost / tot
}

// MakeFeedback builds the periodic report and resets the receive-rate
// window. It returns the feedback, the sender timestamp to echo for
// RTT measurement (echoTS < 0 when no packet has arrived yet), and the
// hold time — how long ago that packet arrived — which the sender must
// subtract from its RTT sample.
func (r *Receiver) MakeFeedback(now float64) (fb Feedback, echoTS, hold float64) {
	interval := now - r.lastFBTime
	if r.lastFBTime < 0 || interval <= 0 {
		interval = r.rtt
	}
	fb = Feedback{
		P:        r.hist.P(),
		RecvRate: r.bytesSinceFB / interval,
	}
	r.bytesSinceFB = 0
	r.lastFBTime = now
	if !r.haveTS {
		return fb, -1, 0
	}
	return fb, r.lastTS, now - r.lastArrival
}

// FeedbackInterval returns how long to wait before the next feedback:
// one RTT as currently estimated.
func (r *Receiver) FeedbackInterval() float64 { return r.rtt }
