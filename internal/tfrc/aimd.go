package tfrc

// AIMD is a TCP-like rate controller: additive increase of one packet
// per RTT per feedback round, multiplicative decrease (halving) on
// each reported loss event — the sawtooth TFRC is designed to share
// fairly with (§2.4). It exists so the repository can *verify* TFRC's
// TCP friendliness: a TFRC flow and an AIMD flow sharing a bottleneck
// should obtain comparable long-run throughput.
//
// Like the TFRC sender it is rate-based (the emulated transport has no
// per-packet ACK clock); the window semantics are approximated by
// cwnd = rate*rtt.
type AIMD struct {
	PacketSize float64

	rate    float64
	rtt     float64
	haveRTT bool
	lastP   float64

	tokens     float64
	lastRefill float64
	minRate    float64
}

// NewAIMD creates an AIMD controller starting at two packets per
// assumed RTT.
func NewAIMD(packetSize float64) *AIMD {
	a := &AIMD{
		PacketSize: packetSize,
		rtt:        InitialRTT,
	}
	a.minRate = packetSize / 8
	a.rate = 2 * packetSize / a.rtt
	a.tokens = 2 * packetSize
	return a
}

// Rate returns the current allowed rate in bytes/second.
func (a *AIMD) Rate() float64 { return a.rate }

// RTT returns the smoothed RTT estimate in seconds.
func (a *AIMD) RTT() float64 { return a.rtt }

func (a *AIMD) refill(now float64) {
	if now > a.lastRefill {
		a.tokens += a.rate * (now - a.lastRefill)
		a.lastRefill = now
	}
	burst := a.rate * 0.02
	if burst < 2*a.PacketSize {
		burst = 2 * a.PacketSize
	}
	if a.tokens > burst {
		a.tokens = burst
	}
}

// TrySend consumes budget for one packet if the rate allows.
func (a *AIMD) TrySend(now float64, size int) bool {
	a.refill(now)
	if a.tokens < float64(size) {
		return false
	}
	a.tokens -= float64(size)
	return true
}

// Budget returns the available budget in bytes.
func (a *AIMD) Budget(now float64) float64 {
	a.refill(now)
	return a.tokens
}

// OnFeedback applies one AIMD round: halve if the receiver reports a
// higher loss event rate than before (a new loss event), otherwise add
// one packet per RTT of rate.
func (a *AIMD) OnFeedback(now float64, fb Feedback) {
	if fb.RTTSample > 0 {
		if !a.haveRTT {
			a.rtt = fb.RTTSample
			a.haveRTT = true
		} else {
			a.rtt = 0.9*a.rtt + 0.1*fb.RTTSample
		}
	}
	// A new loss event shows up as an *increase* in the reported loss
	// event rate; an unchanged or decaying P means the open loss
	// interval is growing (no new losses).
	lossEvent := fb.P > a.lastP*1.0001
	a.lastP = fb.P
	if lossEvent {
		a.rate /= 2
	} else {
		// Additive increase: one packet per RTT each RTT; feedback
		// arrives about once per RTT.
		a.rate += a.PacketSize / a.rtt
	}
	if a.rate < a.minRate {
		a.rate = a.minRate
	}
	// TCP is bounded by what the receiver absorbs, like TFRC's 2*X_recv.
	if limit := 2 * fb.RecvRate; limit > 0 && a.rate > limit && fb.RecvRate > 0 {
		a.rate = limit
	}
}
