package tfrc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRateEquationKnownValues(t *testing.T) {
	// With p=0.01, R=0.1s, s=1500B, tRTO=0.4s the Padhye equation gives
	// roughly 1.2 Mbps-class TCP throughput; sanity check the formula
	// numerically against a direct evaluation.
	s, R, p := 1500.0, 0.1, 0.01
	tRTO := 4 * R
	want := s / (R*math.Sqrt(2*p/3) + tRTO*3*math.Sqrt(3*p/8)*p*(1+32*p*p))
	if got := Rate(s, R, p, tRTO); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Rate=%v want %v", got, want)
	}
	if got := Rate(s, R, p, tRTO); got < 50e3 || got > 250e3 {
		t.Fatalf("Rate=%v bytes/s implausible for p=1%%, R=100ms", got)
	}
}

func TestRateMonotonicity(t *testing.T) {
	// Rate decreases with p and with R.
	prev := math.Inf(1)
	for _, p := range []float64{0.001, 0.01, 0.05, 0.2, 0.5} {
		r := Rate(1500, 0.1, p, 0.4)
		if r >= prev {
			t.Fatalf("rate not decreasing in p: p=%v r=%v prev=%v", p, r, prev)
		}
		prev = r
	}
	if Rate(1500, 0.2, 0.01, 0.8) >= Rate(1500, 0.1, 0.01, 0.4) {
		t.Fatal("rate not decreasing in RTT")
	}
}

func TestRateZeroLossInfinite(t *testing.T) {
	if !math.IsInf(Rate(1500, 0.1, 0, 0.4), 1) {
		t.Fatal("p=0 should be unconstrained")
	}
}

// Property: the equation is positive and finite for all valid inputs.
func TestRatePositiveProperty(t *testing.T) {
	f := func(pRaw, rRaw uint16) bool {
		p := 0.0001 + float64(pRaw)/65535.0*0.9
		R := 0.001 + float64(rRaw)/65535.0*2
		r := Rate(1500, R, p, 4*R)
		return r > 0 && !math.IsInf(r, 1) && !math.IsNaN(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestLossHistoryP(t *testing.T) {
	var h LossHistory
	if h.P() != 0 {
		t.Fatal("P before any loss should be 0")
	}
	// 99 packets then a loss event, repeatedly: p should approach 1/100.
	for e := 0; e < 10; e++ {
		for i := 0; i < 99; i++ {
			h.OnPacket()
		}
		h.OnLossEvent()
		h.OnPacket()
	}
	p := h.P()
	if p < 0.005 || p > 0.02 {
		t.Fatalf("p=%v want ~0.01", p)
	}
}

func TestLossHistoryBounded(t *testing.T) {
	var h LossHistory
	for i := 0; i < 100; i++ {
		h.OnPacket()
		h.OnLossEvent()
	}
	if h.n > NumLossIntervals {
		t.Fatalf("history grew to %d", h.n)
	}
	if p := h.P(); p <= 0 || p > 1 {
		t.Fatalf("p=%v out of range", p)
	}
}

func TestLossHistoryOpenIntervalReducesP(t *testing.T) {
	var h LossHistory
	for i := 0; i < 10; i++ {
		h.OnPacket()
	}
	h.OnLossEvent()
	pAfterLoss := h.P()
	// A long run of successes (open interval) should reduce p.
	for i := 0; i < 1000; i++ {
		h.OnPacket()
	}
	if h.P() >= pAfterLoss {
		t.Fatalf("open interval ignored: p stayed at %v", h.P())
	}
}

func TestSenderSlowStartDoubling(t *testing.T) {
	s := NewSender(1500)
	r0 := s.Rate()
	s.OnFeedback(1, Feedback{P: 0, RecvRate: 1e9, RTTSample: 0.05})
	if s.Rate() < 1.9*r0 {
		t.Fatalf("slow start did not double: %v -> %v", r0, s.Rate())
	}
	if !s.InSlowStart() {
		t.Fatal("should be in slow start")
	}
}

func TestSenderSlowStartBoundedByRecvRate(t *testing.T) {
	s := NewSender(1500)
	for i := 0; i < 20; i++ {
		s.OnFeedback(float64(i), Feedback{P: 0, RecvRate: 50000, RTTSample: 0.05})
	}
	if s.Rate() > 2*50000+1 {
		t.Fatalf("rate %v exceeds 2x recv rate", s.Rate())
	}
}

func TestSenderLossEndsSlowStart(t *testing.T) {
	s := NewSender(1500)
	for i := 0; i < 10; i++ {
		s.OnFeedback(float64(i), Feedback{P: 0, RecvRate: 1e8, RTTSample: 0.05})
	}
	high := s.Rate()
	s.OnFeedback(11, Feedback{P: 0.05, RecvRate: 1e8, RTTSample: 0.05})
	if s.InSlowStart() {
		t.Fatal("still in slow start after loss")
	}
	if s.Rate() >= high {
		t.Fatalf("rate did not drop on loss: %v -> %v", high, s.Rate())
	}
	// And the new rate should match the equation (bounded by 2*recv).
	want := Rate(1500, s.RTT(), 0.05, 4*s.RTT())
	if math.Abs(s.Rate()-want) > want*0.01 && s.Rate() != 2e8 {
		t.Fatalf("rate %v, equation %v", s.Rate(), want)
	}
}

func TestSenderMinRate(t *testing.T) {
	s := NewSender(1500)
	s.OnFeedback(1, Feedback{P: 0.9, RecvRate: 1, RTTSample: 2})
	if s.Rate() < 1500.0/64-1e-9 {
		t.Fatalf("rate %v below s/t_mbi floor", s.Rate())
	}
}

func TestSenderTokenBucket(t *testing.T) {
	s := NewSender(1000)
	// Pin rate by exiting slow start at a known equation value.
	s.OnFeedback(0, Feedback{P: 0.01, RecvRate: 1e9, RTTSample: 0.1})
	rate := s.Rate()
	// Drain the bucket.
	n := 0
	for s.TrySend(1.0, 1000) {
		n++
		if n > 1000000 {
			t.Fatal("bucket never exhausts")
		}
	}
	// After 1 second, roughly `rate` more bytes should be available,
	// but capped at the burst bound (50ms of rate or 2 packets).
	if s.TrySend(1.0, 1000) {
		t.Fatal("send succeeded with empty bucket")
	}
	burst := rate * 0.05
	if burst < 2000 {
		burst = 2000
	}
	m := 0
	for s.TrySend(2.0, 1000) {
		m++
	}
	if float64(m)*1000 > burst+1000 {
		t.Fatalf("burst %d bytes exceeds cap %v", m*1000, burst)
	}
}

func TestSenderBudgetMatchesTrySend(t *testing.T) {
	s := NewSender(1000)
	b := s.Budget(0)
	if b < 1000 {
		t.Fatalf("initial budget %v cannot send first packet", b)
	}
}

func TestReceiverLossDetection(t *testing.T) {
	r := NewReceiver(0.1)
	now := 0.0
	seq := uint64(0)
	deliver := func(n int) {
		for i := 0; i < n; i++ {
			r.OnData(now, seq, 1000, now, 0.1)
			seq++
			now += 0.01
		}
	}
	deliver(100)
	if r.P() != 0 {
		t.Fatalf("loss before any gap: p=%v", r.P())
	}
	seq += 3 // lose 3 packets in one burst -> one loss event
	deliver(100)
	if r.P() == 0 {
		t.Fatal("gap not detected")
	}
	if r.LossRatio() == 0 {
		t.Fatal("loss ratio not tracked")
	}
}

func TestReceiverAggregatesLossesWithinRTT(t *testing.T) {
	// Two gaps within one RTT must form a single loss event; two gaps
	// separated by more than an RTT form two.
	r1 := NewReceiver(1.0) // huge RTT: everything is one event
	now := 0.0
	seq := uint64(0)
	step := func(r *Receiver, gap bool) {
		if gap {
			seq += 2
		}
		r.OnData(now, seq, 1000, now, 0)
		seq++
		now += 0.001
	}
	for i := 0; i < 50; i++ {
		step(r1, false)
	}
	step(r1, true)
	for i := 0; i < 5; i++ {
		step(r1, false)
	}
	step(r1, true) // within same RTT window
	if r1.hist.n != 1 {
		t.Fatalf("expected 1 loss event, got %d intervals", r1.hist.n)
	}

	r2 := NewReceiver(0.001)
	now, seq = 0, 0
	for i := 0; i < 50; i++ {
		step(r2, false)
	}
	step(r2, true)
	for i := 0; i < 50; i++ {
		step(r2, false) // 50ms elapse >> rtt
	}
	step(r2, true)
	if r2.hist.n != 2 {
		t.Fatalf("expected 2 loss events, got %d", r2.hist.n)
	}
}

func TestReceiverFeedback(t *testing.T) {
	r := NewReceiver(0.1)
	for i := 0; i < 10; i++ {
		r.OnData(float64(i)*0.01, uint64(i), 1500, float64(i)*0.01, 0.1)
	}
	fb, echo, hold := r.MakeFeedback(0.1)
	if fb.RecvRate <= 0 {
		t.Fatalf("recv rate %v", fb.RecvRate)
	}
	if echo != 0.09 {
		t.Fatalf("echo ts %v want 0.09", echo)
	}
	// Last packet arrived at t=0.09, feedback made at t=0.1.
	if hold < 0.0099 || hold > 0.0101 {
		t.Fatalf("hold %v want ~0.01", hold)
	}
	// Second window with no data: rate drops to 0.
	fb2, _, _ := r.MakeFeedback(0.2)
	if fb2.RecvRate != 0 {
		t.Fatalf("recv rate after idle window = %v", fb2.RecvRate)
	}
}

func TestReceiverDuplicateIgnored(t *testing.T) {
	r := NewReceiver(0.1)
	r.OnData(0, 5, 1000, 0, 0)
	r.OnData(0.01, 3, 1000, 0.01, 0) // late packet: not a loss signal
	if r.P() != 0 {
		t.Fatalf("late packet created loss event: p=%v", r.P())
	}
}

// Property: a lossless in-order stream never produces a loss event.
func TestReceiverLosslessProperty(t *testing.T) {
	f := func(n uint8) bool {
		r := NewReceiver(0.05)
		for i := uint64(0); i < uint64(n); i++ {
			r.OnData(float64(i)*0.001, i, 1200, float64(i)*0.001, 0.05)
		}
		return r.P() == 0 && r.LossRatio() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}
