package transport

import (
	"testing"

	"bullet/internal/netem"
	"bullet/internal/sim"
	"bullet/internal/topology"
)

func testWorld(t *testing.T, seed int64, bw topology.BandwidthProfile, loss topology.LossProfile) (*sim.Engine, *netem.Network, *topology.Graph) {
	t.Helper()
	g, err := topology.Generate(topology.Config{
		TransitDomains: 1, TransitPerDomain: 2,
		StubDomains: 3, StubDomainSize: 4,
		Clients: 8, Bandwidth: bw, Loss: loss, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	net := netem.New(eng, g, topology.NewRouter(g), netem.Config{})
	return eng, net, g
}

// pump drives a flow at maximum allowed rate with 1000-byte packets.
func pump(eng *sim.Engine, f *Flow, until sim.Time) {
	var seq uint64
	var tick func()
	tick = func() {
		if eng.Now() >= until || f.Closed() {
			return
		}
		for f.TrySend(seq, 1000) {
			seq++
		}
		eng.After(10*sim.Millisecond, tick)
	}
	tick()
}

func TestFlowRampsToBottleneck(t *testing.T) {
	eng, net, g := testWorld(t, 1, topology.MediumBandwidth, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	a, b := NewEndpoint(net, src), NewEndpoint(net, dst)
	var bytes int
	b.OnData(func(from int, seq uint64, size int) { bytes += size })
	f, err := a.OpenFlow(dst, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pump(eng, f, 30*sim.Second)
	eng.Run(30 * sim.Second)
	bn := net.Router().Bottleneck(src, dst)
	// Average over the run includes ramp-up; expect at least 50% of
	// bottleneck and no more than bottleneck.
	got := float64(bytes) / 30
	if got < 0.5*bn {
		t.Fatalf("throughput %.0f B/s too far below bottleneck %.0f", got, bn)
	}
	if got > 1.02*bn {
		t.Fatalf("throughput %.0f B/s exceeds bottleneck %.0f: not TCP friendly", got, bn)
	}
	if f.RTT() <= 0 || f.RTT() > 1 {
		t.Fatalf("implausible RTT estimate %v", f.RTT())
	}
}

func TestFlowBacksOffUnderLoss(t *testing.T) {
	eng, net, g := testWorld(t, 2, topology.HighBandwidth,
		topology.LossProfile{NonTransitMax: 0.08, TransitMax: 0.08})
	src, dst := g.Clients[0], g.Clients[2]
	a, b := NewEndpoint(net, src), NewEndpoint(net, dst)
	var bytes int
	b.OnData(func(from int, seq uint64, size int) { bytes += size })
	f, _ := a.OpenFlow(dst, 1024)
	pump(eng, f, 30*sim.Second)
	eng.Run(30 * sim.Second)
	bn := net.Router().Bottleneck(src, dst)
	got := float64(bytes) / 30
	if got > 0.9*bn {
		t.Fatalf("lossy path delivered %.0f of %.0f bottleneck; TFRC not backing off", got, bn)
	}
	if got == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	eng, net, g := testWorld(t, 3, topology.MediumBandwidth, topology.NoLoss)
	// Two flows from the same source share its access link.
	src, d1, d2 := g.Clients[0], g.Clients[3], g.Clients[4]
	a := NewEndpoint(net, src)
	e1, e2 := NewEndpoint(net, d1), NewEndpoint(net, d2)
	var b1, b2 int
	e1.OnData(func(_ int, _ uint64, size int) { b1 += size })
	e2.OnData(func(_ int, _ uint64, size int) { b2 += size })
	f1, _ := a.OpenFlow(d1, 1024)
	f2, _ := a.OpenFlow(d2, 1024)
	pump(eng, f1, 40*sim.Second)
	pump(eng, f2, 40*sim.Second)
	eng.Run(40 * sim.Second)
	access := net.Router().Bottleneck(src, d1) // access link dominates
	total := float64(b1+b2) / 40
	if total > 1.1*access {
		t.Fatalf("combined %.0f B/s greatly exceeds access capacity %.0f", total, access)
	}
	// Both flows should make progress.
	if b1 == 0 || b2 == 0 {
		t.Fatalf("starvation: b1=%d b2=%d", b1, b2)
	}
	ratio := float64(b1) / float64(b2)
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("grossly unfair sharing: %d vs %d", b1, b2)
	}
}

func TestTrySendNonBlocking(t *testing.T) {
	eng, net, g := testWorld(t, 4, topology.LowBandwidth, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	a := NewEndpoint(net, src)
	NewEndpoint(net, dst)
	f, _ := a.OpenFlow(dst, 1024)
	// Initial budget allows a couple of packets, then must refuse.
	n := 0
	for f.TrySend(uint64(n), 1024) {
		n++
		if n > 10000 {
			t.Fatal("TrySend never fails")
		}
	}
	if n == 0 {
		t.Fatal("first TrySend failed")
	}
	if f.TrySend(99, 1024) {
		t.Fatal("send succeeded after budget exhausted")
	}
	_ = eng
}

func TestFlowClose(t *testing.T) {
	eng, net, g := testWorld(t, 5, topology.MediumBandwidth, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	a, b := NewEndpoint(net, src), NewEndpoint(net, dst)
	got := 0
	b.OnData(func(int, uint64, int) { got++ })
	f, _ := a.OpenFlow(dst, 1024)
	f.TrySend(1, 1000)
	eng.Run(2 * sim.Second)
	f.Close()
	eng.Run(4 * sim.Second)
	if f.TrySend(2, 1000) {
		t.Fatal("send succeeded on closed flow")
	}
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	if len(b.recvFlows) != 0 {
		t.Fatal("receiver state not cleaned up after close")
	}
}

func TestEndpointFail(t *testing.T) {
	eng, net, g := testWorld(t, 6, topology.MediumBandwidth, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	a, b := NewEndpoint(net, src), NewEndpoint(net, dst)
	got := 0
	b.OnData(func(int, uint64, int) { got++ })
	f, _ := a.OpenFlow(dst, 1024)
	b.Fail()
	f.TrySend(1, 1000)
	eng.Run(2 * sim.Second)
	if got != 0 {
		t.Fatal("failed endpoint received data")
	}
	if !b.Failed() {
		t.Fatal("Failed() false after Fail()")
	}
}

func TestControlMessages(t *testing.T) {
	eng, net, g := testWorld(t, 7, topology.MediumBandwidth, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	a, b := NewEndpoint(net, src), NewEndpoint(net, dst)
	type hello struct{ N int }
	var got *hello
	var gotFrom, gotSize int
	b.OnControl(func(from int, payload any, size int) {
		got = payload.(*hello)
		gotFrom, gotSize = from, size
	})
	a.SendControl(dst, &hello{N: 42}, 120)
	eng.Run(2 * sim.Second)
	if got == nil || got.N != 42 || gotFrom != src || gotSize != 120 {
		t.Fatalf("control delivery wrong: %+v from=%d size=%d", got, gotFrom, gotSize)
	}
	_, out := a.ControlBytes()
	if out != 120 {
		t.Fatalf("control out bytes=%d", out)
	}
}

func TestOpenFlowToSelfRejected(t *testing.T) {
	_, net, g := testWorld(t, 8, topology.MediumBandwidth, topology.NoLoss)
	a := NewEndpoint(net, g.Clients[0])
	if _, err := a.OpenFlow(g.Clients[0], 1024); err == nil {
		t.Fatal("flow to self allowed")
	}
}

func TestAppLimitedFlowDoesNotBlowUp(t *testing.T) {
	// A flow sending far below capacity should keep a stable modest
	// rate and not accumulate unbounded burst.
	eng, net, g := testWorld(t, 9, topology.HighBandwidth, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	a, b := NewEndpoint(net, src), NewEndpoint(net, dst)
	var bytes int
	b.OnData(func(int, uint64, int) { bytes += 500 })
	f, _ := a.OpenFlow(dst, 512)
	var seq uint64
	tick := func() {}
	_ = tick
	var send func()
	send = func() {
		if eng.Now() >= 20*sim.Second {
			return
		}
		f.TrySend(seq, 500) // ~5 KB/s offered
		seq++
		eng.After(100*sim.Millisecond, send)
	}
	send()
	eng.Run(20 * sim.Second)
	got := float64(bytes) / 20
	if got < 3000 || got > 7000 {
		t.Fatalf("app-limited flow delivered %.0f B/s, offered ~5000", got)
	}
}
