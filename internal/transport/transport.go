// Package transport provides per-node endpoints with TFRC-paced data
// flows and reliable small control messages over the emulated network.
// It plays the role MACEDON's messaging substrate played for the
// paper's implementations: every protocol in this repository (Bullet,
// tree streaming, gossip, anti-entropy) moves bytes exclusively through
// this layer, so comparisons reflect algorithmic differences.
package transport

import (
	"fmt"

	"bullet/internal/arena"
	"bullet/internal/netem"
	"bullet/internal/sim"
	"bullet/internal/tfrc"
)

// FeedbackSize is the wire size of a TFRC feedback report.
const FeedbackSize = 48

// DataHeaderSize is the per-packet transport header (flow id, flow
// sequence, timestamp, RTT echo), added to application payload size.
const DataHeaderSize = 24

type flowKey struct {
	src int
	id  uint32
}

// Data packets carry their transport framing (flow id, flow sequence,
// timestamp, RTT echo) inline in netem.Packet fields — no per-packet
// payload allocation on the send path.

type feedbackMsg struct {
	flowID uint32
	fb     tfrc.Feedback
}

type closeMsg struct {
	flowID uint32
}

// Controller is the congestion-control half of a sending flow. The
// default is the TFRC sender; an AIMD (TCP-like) controller is
// available for TCP-friendliness experiments.
type Controller interface {
	// TrySend consumes budget for size bytes if allowed right now.
	TrySend(now float64, size int) bool
	// OnFeedback applies a receiver report.
	OnFeedback(now float64, fb tfrc.Feedback)
	// Rate returns the allowed rate in bytes/second.
	Rate() float64
	// RTT returns the smoothed RTT estimate in seconds.
	RTT() float64
	// Budget returns the currently available bytes.
	Budget(now float64) float64
}

// DataHandler is invoked on arrival of an application data packet.
type DataHandler func(from int, seq uint64, size int)

// ControlHandler is invoked on arrival of a protocol control message.
type ControlHandler func(from int, payload any, size int)

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	net  *netem.Network
	eng  sim.Scheduler // the node's shard scheduler; all timers/clock reads
	node int

	nextFlow  uint32
	sendFlows map[uint32]*Flow
	recvFlows map[flowKey]*recvFlow

	onData    DataHandler
	onControl ControlHandler

	failed bool

	// Accounting. Protocol control (messages sent via SendControl) is
	// tracked separately from transport-internal control (TFRC
	// feedback, flow teardown), mirroring how the paper reports
	// "Bullet mesh maintenance" overhead.
	dataBytesIn     uint64
	dataBytesOut    uint64
	controlBytesIn  uint64
	controlBytesOut uint64
	transportCtlIn  uint64
	transportCtlOut uint64

	// fbArena recycles feedback messages, replacing a process-global
	// sync.Pool: every Get and Put runs inside one of this endpoint's
	// own events, so the arena is shard-local with no pool-internal
	// synchronization or per-P caches. Messages drift between
	// endpoints by design — a report is allocated by the data receiver
	// and retired by the data sender once applied — which the arena's
	// ownership model permits (arenas only grow). Reports dropped in
	// flight (failed links, crashed endpoints) are collected by the GC.
	fbArena arena.Arena[feedbackMsg]
}

// NewEndpoint attaches node to the network and registers its handler.
func NewEndpoint(net *netem.Network, node int) *Endpoint {
	ep := &Endpoint{
		net:       net,
		eng:       net.SchedulerFor(node),
		node:      node,
		sendFlows: make(map[uint32]*Flow),
		recvFlows: make(map[flowKey]*recvFlow),
	}
	net.Register(node, ep.onPacket)
	return ep
}

// Node returns the graph node this endpoint is attached to.
func (ep *Endpoint) Node() int { return ep.node }

// Scheduler returns the scheduler executing this node's events: the
// node's shard engine in a sharded run, the global engine otherwise.
// Protocol code must schedule all node-local timers through it.
func (ep *Endpoint) Scheduler() sim.Scheduler { return ep.eng }

// OnData sets the application data callback.
func (ep *Endpoint) OnData(h DataHandler) { ep.onData = h }

// OnControl sets the protocol control callback.
func (ep *Endpoint) OnControl(h ControlHandler) { ep.onControl = h }

// Fail simulates a node crash: the endpoint stops receiving, all flows
// stop sending, and all timers become inert.
func (ep *Endpoint) Fail() {
	ep.failed = true
	ep.net.Unregister(ep.node)
	for _, f := range ep.sendFlows {
		f.closed = true
	}
	for _, rf := range ep.recvFlows {
		rf.stop()
	}
}

// Failed reports whether Fail was called (and Restart has not).
func (ep *Endpoint) Failed() bool { return ep.failed }

// Restart brings a failed endpoint back: it re-registers with the
// network and resumes receiving. Send flows closed by Fail stay
// closed — a restarted protocol instance opens fresh ones — while
// receive flows resume feedback as data arrives. Restarting a live
// endpoint is a no-op.
func (ep *Endpoint) Restart() {
	if !ep.failed {
		return
	}
	ep.failed = false
	ep.net.Register(ep.node, ep.onPacket)
}

// SendControl transmits a reliable control message of the given wire
// size to another node.
func (ep *Endpoint) SendControl(to int, payload any, size int) {
	if ep.failed {
		return
	}
	ep.controlBytesOut += uint64(size)
	ep.net.Send(netem.Packet{
		Kind: netem.Control, Size: size,
		From: ep.node, To: to, Payload: payload,
	})
}

// ControlBytes returns (in, out) protocol control byte counters.
func (ep *Endpoint) ControlBytes() (in, out uint64) {
	return ep.controlBytesIn, ep.controlBytesOut
}

// TransportControlBytes returns (in, out) transport-internal control
// byte counters (TFRC feedback and teardown).
func (ep *Endpoint) TransportControlBytes() (in, out uint64) {
	return ep.transportCtlIn, ep.transportCtlOut
}

// sendTransportControl transmits transport-internal control.
func (ep *Endpoint) sendTransportControl(to int, payload any, size int) {
	if ep.failed {
		return
	}
	ep.transportCtlOut += uint64(size)
	ep.net.Send(netem.Packet{
		Kind: netem.Control, Size: size,
		From: ep.node, To: to, Payload: payload,
	})
}

// DataBytes returns (in, out) data byte counters.
func (ep *Endpoint) DataBytes() (in, out uint64) {
	return ep.dataBytesIn, ep.dataBytesOut
}

// Flow is the sending half of a TFRC-paced unidirectional data flow.
type Flow struct {
	ep     *Endpoint
	id     uint32
	to     int
	snd    Controller
	seq    uint64
	closed bool
	trace  bool

	// TraceEvery, when nonzero, marks every TraceEvery'th stream
	// sequence for link-stress tracing (in addition to SetTrace).
	TraceEvery uint64
}

// OpenFlow creates a TFRC-paced flow from this endpoint to node `to`,
// with packets of nominal size packetSize.
func (ep *Endpoint) OpenFlow(to int, packetSize int) (*Flow, error) {
	return ep.OpenFlowCC(to, tfrc.NewSender(float64(packetSize)))
}

// OpenFlowAIMD creates a flow governed by a TCP-like AIMD controller,
// for TCP-friendliness experiments.
func (ep *Endpoint) OpenFlowAIMD(to int, packetSize int) (*Flow, error) {
	return ep.OpenFlowCC(to, tfrc.NewAIMD(float64(packetSize)))
}

// OpenFlowCC creates a flow with a caller-supplied congestion
// controller.
func (ep *Endpoint) OpenFlowCC(to int, cc Controller) (*Flow, error) {
	if to == ep.node {
		return nil, fmt.Errorf("transport: flow to self (node %d)", to)
	}
	ep.nextFlow++
	f := &Flow{ep: ep, id: ep.nextFlow, to: to, snd: cc}
	ep.sendFlows[f.id] = f
	return f, nil
}

// To returns the destination node.
func (f *Flow) To() int { return f.to }

// Rate returns the current TFRC allowed rate in bytes/second.
func (f *Flow) Rate() float64 { return f.snd.Rate() }

// RTT returns the smoothed RTT estimate in seconds.
func (f *Flow) RTT() float64 { return f.snd.RTT() }

// Budget returns the available send budget in bytes.
func (f *Flow) Budget() float64 {
	if f.closed {
		return 0
	}
	return f.snd.Budget(f.ep.eng.Now().ToSeconds())
}

// SetTrace enables link-stress tracing for packets on this flow.
func (f *Flow) SetTrace(on bool) { f.trace = on }

// Closed reports whether the flow is closed.
func (f *Flow) Closed() bool { return f.closed }

// TrySend attempts to transmit one application packet carrying stream
// sequence seq with payload size bytes. It returns false without side
// effects if sending now would exceed the TCP-friendly rate — Bullet's
// non-blocking senddata semantics.
func (f *Flow) TrySend(seq uint64, size int) bool {
	if f.closed || f.ep.failed {
		return false
	}
	now := f.ep.eng.Now().ToSeconds()
	wire := size + DataHeaderSize
	if !f.snd.TrySend(now, wire) {
		return false
	}
	f.ep.dataBytesOut += uint64(wire)
	trace := f.trace || (f.TraceEvery > 0 && seq%f.TraceEvery == 0)
	f.ep.net.Send(netem.Packet{
		Kind: netem.Data, Seq: seq, Size: wire,
		From: f.ep.node, To: f.to, Trace: trace,
		FlowID: f.id, FlowSeq: f.seq, TS: now, RTT: f.snd.RTT(),
	})
	f.seq++
	return true
}

// Close shuts down the flow and tells the receiver to stop feedback.
func (f *Flow) Close() {
	if f.closed {
		return
	}
	f.closed = true
	delete(f.ep.sendFlows, f.id)
	f.ep.sendTransportControl(f.to, &closeMsg{flowID: f.id}, 16)
}

// recvFlow is the receiving half, created on first data arrival.
type recvFlow struct {
	ep      *Endpoint
	key     flowKey
	rcv     *tfrc.Receiver
	fbTimer sim.Timer
	idle    int
	// fbFn caches the sendFeedback method value so the per-RTT feedback
	// rescheduling allocates no closure.
	fbFn func()
}

func (rf *recvFlow) stop() {
	rf.fbTimer.Cancel()
	rf.fbTimer = sim.Timer{}
}

func (rf *recvFlow) scheduleFeedback() {
	d := sim.Seconds(rf.rcv.FeedbackInterval())
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	rf.fbTimer = rf.ep.eng.After(d, rf.fbFn)
}

func (rf *recvFlow) sendFeedback() {
	if rf.ep.failed {
		return
	}
	now := rf.ep.eng.Now().ToSeconds()
	fb, echo, hold := rf.rcv.MakeFeedback(now)
	if fb.RecvRate == 0 {
		rf.idle++
		if rf.idle > 20 {
			// Dormant flow: stop feedback until data arrives again.
			rf.fbTimer = sim.Timer{}
			return
		}
	} else {
		rf.idle = 0
	}
	sample := -1.0
	if echo >= 0 {
		sample = now - echo - hold
		if sample <= 0 {
			sample = -1
		}
	}
	fb.RTTSample = sample
	m := rf.ep.fbArena.Get()
	m.flowID = rf.key.id
	m.fb = fb
	rf.ep.sendTransportControl(rf.key.src, m, FeedbackSize)
	rf.scheduleFeedback()
}

// onPacket is the netem delivery handler.
func (ep *Endpoint) onPacket(pkt netem.Packet) {
	if ep.failed {
		return
	}
	if pkt.Kind == netem.Data {
		key := flowKey{src: pkt.From, id: pkt.FlowID}
		rf := ep.recvFlows[key]
		if rf == nil {
			rf = &recvFlow{ep: ep, key: key, rcv: tfrc.NewReceiver(pkt.RTT)}
			rf.fbFn = rf.sendFeedback
			ep.recvFlows[key] = rf
		}
		now := ep.eng.Now().ToSeconds()
		rf.rcv.OnData(now, pkt.FlowSeq, pkt.Size, pkt.TS, pkt.RTT)
		if rf.fbTimer.Stopped() {
			rf.idle = 0
			rf.scheduleFeedback()
		}
		ep.dataBytesIn += uint64(pkt.Size)
		if ep.onData != nil {
			ep.onData(pkt.From, pkt.Seq, pkt.Size-DataHeaderSize)
		}
		return
	}
	switch m := pkt.Payload.(type) {
	case *feedbackMsg:
		ep.transportCtlIn += uint64(pkt.Size)
		if f, ok := ep.sendFlows[m.flowID]; ok {
			f.snd.OnFeedback(ep.eng.Now().ToSeconds(), m.fb)
		}
		ep.fbArena.Put(m)
	case *closeMsg:
		ep.transportCtlIn += uint64(pkt.Size)
		key := flowKey{src: pkt.From, id: m.flowID}
		if rf, ok := ep.recvFlows[key]; ok {
			rf.stop()
			delete(ep.recvFlows, key)
		}
	default:
		ep.controlBytesIn += uint64(pkt.Size)
		if ep.onControl != nil {
			ep.onControl(pkt.From, pkt.Payload, pkt.Size)
		}
	}
}
