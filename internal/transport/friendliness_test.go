package transport

import (
	"testing"

	"bullet/internal/netem"
	"bullet/internal/sim"
	"bullet/internal/topology"
)

// TestTFRCFriendlyWithAIMD verifies the paper's core transport
// property (§2.4): a TFRC flow sharing a bottleneck with a TCP-like
// AIMD flow obtains a comparable — neither starved nor dominating —
// share of the link.
func TestTFRCFriendlyWithAIMD(t *testing.T) {
	g, err := topology.Generate(topology.Config{
		TransitDomains: 1, TransitPerDomain: 2,
		StubDomains: 3, StubDomainSize: 4,
		Clients: 8, Bandwidth: topology.MediumBandwidth, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(31)
	net := netem.New(eng, g, topology.NewRouter(g), netem.Config{})
	src, d1, d2 := g.Clients[0], g.Clients[1], g.Clients[2]
	a := NewEndpoint(net, src)
	e1, e2 := NewEndpoint(net, d1), NewEndpoint(net, d2)
	var tfrcBytes, aimdBytes int
	e1.OnData(func(_ int, _ uint64, size int) { tfrcBytes += size })
	e2.OnData(func(_ int, _ uint64, size int) { aimdBytes += size })
	f1, err := a.OpenFlow(d1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := a.OpenFlowAIMD(d2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Both flows saturate; they share src's access link.
	var seq1, seq2 uint64
	var pump func()
	pump = func() {
		if eng.Now() >= 120*sim.Second {
			return
		}
		for f1.TrySend(seq1, 1000) {
			seq1++
		}
		for f2.TrySend(seq2, 1000) {
			seq2++
		}
		eng.After(10*sim.Millisecond, pump)
	}
	pump()
	eng.Run(120 * sim.Second)

	if tfrcBytes == 0 || aimdBytes == 0 {
		t.Fatalf("starvation: tfrc=%d aimd=%d", tfrcBytes, aimdBytes)
	}
	// Measure over the second half only (both past slow start).
	ratio := float64(tfrcBytes) / float64(aimdBytes)
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("unfriendly sharing: TFRC/AIMD byte ratio %.2f", ratio)
	}
}

// TestAIMDSawtooth checks the controller's basic AIMD dynamics.
func TestAIMDSawtooth(t *testing.T) {
	g, err := topology.Generate(topology.Config{
		TransitDomains: 1, TransitPerDomain: 2,
		StubDomains: 2, StubDomainSize: 3,
		Clients: 4, Bandwidth: topology.LowBandwidth, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(32)
	net := netem.New(eng, g, topology.NewRouter(g), netem.Config{})
	src, dst := g.Clients[0], g.Clients[1]
	a := NewEndpoint(net, src)
	b := NewEndpoint(net, dst)
	var bytes int
	b.OnData(func(_ int, _ uint64, size int) { bytes += size })
	f, err := a.OpenFlowAIMD(dst, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var seq uint64
	var pump func()
	pump = func() {
		if eng.Now() >= 60*sim.Second {
			return
		}
		for f.TrySend(seq, 1000) {
			seq++
		}
		eng.After(10*sim.Millisecond, pump)
	}
	pump()
	eng.Run(60 * sim.Second)
	bn := net.Router().Bottleneck(src, dst)
	got := float64(bytes) / 60
	if got < 0.3*bn {
		t.Fatalf("AIMD achieved %.0f of %.0f bottleneck", got, bn)
	}
	if got > 1.05*bn {
		t.Fatalf("AIMD exceeded the physical bottleneck: %.0f > %.0f", got, bn)
	}
}
