package netem

import (
	"testing"

	"bullet/internal/sim"
	"bullet/internal/topology"
)

// twoNode builds a minimal topology: two clients attached to one stub
// domain, so the path is client-stub-...-stub-client.
func testNet(t *testing.T, seed int64, loss topology.LossProfile) (*sim.Engine, *Network, *topology.Graph) {
	t.Helper()
	g, err := topology.Generate(topology.Config{
		TransitDomains: 1, TransitPerDomain: 2,
		StubDomains: 2, StubDomainSize: 3,
		Clients: 6, Bandwidth: topology.MediumBandwidth,
		Loss: loss, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	net := New(eng, g, topology.NewRouter(g), Config{})
	return eng, net, g
}

func TestDeliveryAndLatency(t *testing.T) {
	eng, net, g := testNet(t, 1, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	var gotAt sim.Time
	var got Packet
	net.Register(dst, func(p Packet) { gotAt = eng.Now(); got = p })
	net.Send(Packet{Kind: Data, Seq: 42, Size: 1500, From: src, To: dst})
	eng.Run(10 * sim.Second)
	if got.Seq != 42 {
		t.Fatalf("packet not delivered: %+v", got)
	}
	// Latency must be at least the propagation delay of the path.
	minDelay := net.Router().Delay(src, dst)
	if gotAt < minDelay {
		t.Fatalf("delivered at %v, before min propagation %v", gotAt, minDelay)
	}
	st := net.Stats()
	if st.DataBytesSent != 1500 || st.DataBytesDelivered != 1500 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSerializationDelay(t *testing.T) {
	eng, net, g := testNet(t, 2, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	var small, large sim.Time
	net.Register(dst, func(p Packet) {
		if p.Size == 100 {
			small = eng.Now()
		} else {
			large = eng.Now()
		}
	})
	net.Send(Packet{Kind: Data, Size: 100, From: src, To: dst, Seq: 1})
	eng.Run(5 * sim.Second)
	eng2 := eng.Now()
	_ = eng2
	net.Send(Packet{Kind: Data, Size: 14000, From: src, To: dst, Seq: 2})
	eng.Run(20 * sim.Second)
	if small == 0 || large == 0 {
		t.Fatal("packets not delivered")
	}
	if large-5*sim.Second <= small {
		t.Fatalf("serialization not modeled: small latency %v, large latency %v", small, large-5*sim.Second)
	}
}

func TestCongestionDrops(t *testing.T) {
	eng, net, g := testNet(t, 3, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	delivered := 0
	net.Register(dst, func(p Packet) { delivered++ })
	// Access link is at most 2800 Kbps = 350 KB/s. Inject 10 MB in one
	// instant; the 150ms queue bound must drop most of it.
	for i := 0; i < 10000; i++ {
		net.Send(Packet{Kind: Data, Seq: uint64(i), Size: 1000, From: src, To: dst})
	}
	eng.Run(60 * sim.Second)
	st := net.Stats()
	if st.CongestionDrops == 0 {
		t.Fatal("no congestion drops under massive overload")
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if delivered > 2000 {
		t.Fatalf("delivered %d packets; queue bound not enforced", delivered)
	}
	if uint64(delivered)+st.CongestionDrops != 10000 {
		t.Fatalf("conservation violated: %d delivered + %d dropped != 10000", delivered, st.CongestionDrops)
	}
}

func TestRandomLoss(t *testing.T) {
	// All links overloaded: loss 100%... instead use PaperLoss but send
	// many packets over a long path and expect some random loss drops.
	g, err := topology.Generate(topology.Config{
		TransitDomains: 2, TransitPerDomain: 3,
		StubDomains: 6, StubDomainSize: 4,
		Clients: 10, Bandwidth: topology.HighBandwidth,
		Loss: topology.LossProfile{NonTransitMax: 0.05, TransitMax: 0.05, OverloadedFrac: 0.2, OverloadedLo: 0.2, OverloadedHi: 0.3},
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(4)
	net := New(eng, g, topology.NewRouter(g), Config{})
	src, dst := g.Clients[0], g.Clients[9]
	delivered := 0
	net.Register(dst, func(p Packet) { delivered++ })
	for i := 0; i < 500; i++ {
		at := sim.Time(i) * 20 * sim.Millisecond
		pkt := Packet{Kind: Data, Seq: uint64(i), Size: 1000, From: src, To: dst}
		eng.At(at, func() { net.Send(pkt) })
	}
	eng.Run(60 * sim.Second)
	st := net.Stats()
	if st.RandomLossDrops == 0 {
		t.Fatal("expected random loss drops on lossy topology")
	}
	if delivered == 0 {
		t.Fatal("nothing survived")
	}
	if delivered+int(st.RandomLossDrops)+int(st.CongestionDrops) != 500 {
		t.Fatalf("conservation violated: %d + %d + %d != 500", delivered, st.RandomLossDrops, st.CongestionDrops)
	}
}

func TestControlReliable(t *testing.T) {
	g, err := topology.Generate(topology.Config{
		TransitDomains: 1, TransitPerDomain: 2,
		StubDomains: 2, StubDomainSize: 3,
		Clients: 4, Bandwidth: topology.LowBandwidth,
		Loss: topology.LossProfile{NonTransitMax: 0.5, TransitMax: 0.5},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(5)
	net := New(eng, g, topology.NewRouter(g), Config{})
	src, dst := g.Clients[0], g.Clients[1]
	delivered := 0
	net.Register(dst, func(p Packet) { delivered++ })
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * 50 * sim.Millisecond
		eng.At(at, func() { net.Send(Packet{Kind: Control, Size: 200, From: src, To: dst}) })
	}
	eng.Run(60 * sim.Second)
	if delivered != 200 {
		t.Fatalf("control packets lost: %d/200 delivered", delivered)
	}
	if net.Stats().ControlBytes != 200*200 {
		t.Fatalf("control byte accounting wrong: %d", net.Stats().ControlBytes)
	}
}

func TestUnregisteredDrop(t *testing.T) {
	eng, net, g := testNet(t, 6, topology.NoLoss)
	net.Send(Packet{Kind: Data, Size: 100, From: g.Clients[0], To: g.Clients[2]})
	eng.Run(5 * sim.Second)
	if net.Stats().DataBytesDelivered != 0 {
		t.Fatal("packet delivered to unregistered node")
	}
}

func TestLinkStressAccounting(t *testing.T) {
	eng, net, g := testNet(t, 7, topology.NoLoss)
	src := g.Clients[0]
	for _, dst := range g.Clients[1:4] {
		net.Register(dst, func(Packet) {})
		net.Send(Packet{Kind: Data, Seq: 99, Size: 500, From: src, To: dst, Trace: true})
	}
	eng.Run(5 * sim.Second)
	avg, max := net.LinkStress()
	if avg < 1 {
		t.Fatalf("avg stress %v < 1", avg)
	}
	// Three copies of seq 99 leave src over its single access link.
	if max != 3 {
		t.Fatalf("max stress %d, want 3 (single access link)", max)
	}
}

func TestFIFOPerLink(t *testing.T) {
	eng, net, g := testNet(t, 8, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	var seqs []uint64
	net.Register(dst, func(p Packet) { seqs = append(seqs, p.Seq) })
	for i := 0; i < 50; i++ {
		net.Send(Packet{Kind: Data, Seq: uint64(i), Size: 1200, From: src, To: dst})
	}
	eng.Run(30 * sim.Second)
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("reordering on a single path: %v", seqs)
		}
	}
	if len(seqs) == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestThroughputMatchesBottleneck(t *testing.T) {
	eng, net, g := testNet(t, 9, topology.NoLoss)
	src, dst := g.Clients[0], g.Clients[1]
	bytes := 0
	net.Register(dst, func(p Packet) { bytes += p.Size })
	// Saturate for 10 seconds with paced sends at far above capacity.
	stop := sim.Time(10 * sim.Second)
	var pump func()
	pump = func() {
		if eng.Now() >= stop {
			return
		}
		net.Send(Packet{Kind: Data, Size: 1500, From: src, To: dst})
		eng.After(sim.Millisecond, pump)
	}
	pump()
	eng.Run(12 * sim.Second)
	bottleneck := net.Router().Bottleneck(src, dst) // bytes/s
	got := float64(bytes) / 10.0
	if got > bottleneck*1.05 {
		t.Fatalf("throughput %.0f exceeds bottleneck %.0f", got, bottleneck)
	}
	if got < bottleneck*0.7 {
		t.Fatalf("throughput %.0f well under bottleneck %.0f", got, bottleneck)
	}
}
