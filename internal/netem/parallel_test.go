package netem

import (
	"fmt"
	"sort"
	"testing"

	"bullet/internal/sim"
	"bullet/internal/topology"
)

// deliveryLog records per-node delivery observations. Each node's slice
// is appended to only by the shard that owns the node, so a sharded run
// can log concurrently without synchronization; flatten() merges the
// per-node logs into one canonical transcript for comparison.
type deliveryLog struct{ byNode [][]string }

func newDeliveryLog(nodes int) *deliveryLog {
	return &deliveryLog{byNode: make([][]string, nodes)}
}

func (dl *deliveryLog) attach(net *Network, node int) {
	net.Register(node, func(p Packet) {
		dl.byNode[node] = append(dl.byNode[node],
			fmt.Sprintf("%d<-%d seq=%d size=%d at=%d", node, p.From, p.Seq, p.Size, net.SchedulerFor(node).Now()))
	})
}

func (dl *deliveryLog) flatten() string {
	var all []string
	for _, l := range dl.byNode {
		all = append(all, l...)
	}
	sort.Strings(all)
	out := ""
	for _, s := range all {
		out += s + "\n"
	}
	return out
}

// runTraffic builds the standard test topology (two stub domains, so
// there are at least two shard atoms), drives a deterministic mesh of
// lossy, bursty traffic among all clients, and returns the delivery
// transcript plus the final counters.
func runTraffic(t *testing.T, shards int) (string, Stats) {
	t.Helper()
	eng, net, g := testNet(t, 77, topology.PaperLoss)
	if shards > 1 {
		if got := net.EnableShards(shards); got < 2 {
			t.Fatalf("EnableShards(%d) = %d, want >= 2", shards, got)
		}
	}
	dl := newDeliveryLog(len(g.Nodes))
	for _, c := range g.Clients {
		dl.attach(net, c)
	}
	seq := uint64(0)
	for i, src := range g.Clients {
		src := src
		for j := 0; j < 40; j++ {
			dst := g.Clients[(i+j+1)%len(g.Clients)]
			size := 200 + (i*37+j*101)%1400
			s := seq
			seq++
			// Burst several packets per instant so queues build and the
			// RED/loss draws actually fire.
			eng.At(sim.Time(10+i*17+j*23)*sim.Millisecond, func() {
				net.Send(Packet{Kind: Data, Seq: s, Size: size, From: src, To: dst})
				net.Send(Packet{Kind: Data, Seq: s, Size: size, From: src, To: dst, Trace: true})
			})
		}
	}
	net.Run(5 * sim.Second)
	return dl.flatten(), net.Stats()
}

// TestShardedTrafficMatchesSerial is the emulator-level determinism
// guarantee: for a fixed seed, the full delivery transcript — sources,
// sequences, sizes, and arrival instants at every node — and the
// aggregate counters are identical whether the run is serial or
// partitioned into any number of shards.
func TestShardedTrafficMatchesSerial(t *testing.T) {
	serialLog, serialStats := runTraffic(t, 1)
	if serialLog == "" {
		t.Fatal("serial run delivered nothing")
	}
	for _, k := range []int{2, 4} {
		log, stats := runTraffic(t, k)
		if log != serialLog {
			t.Errorf("shards=%d: delivery transcript differs from serial", k)
		}
		if stats != serialStats {
			t.Errorf("shards=%d: stats %+v, serial %+v", k, stats, serialStats)
		}
	}
}

// barrierTopo is a handcrafted six-node line: client c0 on stub s0,
// a two-hop transit backbone, and client c1 on stub s1. Every
// bandwidth is made enormous so serialization delay rounds to zero and
// hop arithmetic is exactly the sum of link delays.
//
//	c0 --7ms-- s0 --5ms-- t0 --2ms-- t1 --3ms-- s1 --1ms-- c1
//
// The shard atoms are {c0,s0}, {t0}, {t1}, {s1,c1}; PartitionShards
// merges across the two cheapest inter-atom links (2ms, then 3ms),
// leaving exactly the 5ms s0—t0 link on the cut: shard 0 = {c0, s0},
// shard 1 = {t0, t1, s1, c1}, lookahead 5ms.
func barrierTopo(t *testing.T) (*topology.Graph, int, int, int) {
	t.Helper()
	b := topology.NewBuilder()
	const huge = 1e12 // Kbps; serialization of any packet rounds to 0ns
	ms := func(d int) sim.Duration { return sim.Duration(d) * sim.Millisecond }
	t0 := b.AddNode(topology.Transit, 0, 0)
	t1 := b.AddNode(topology.Transit, 1, 0)
	s0 := b.AddNode(topology.Stub, 0, 1)
	s1 := b.AddNode(topology.Stub, 1, 1)
	c0 := b.AddNode(topology.Client, 0, 2)
	c1 := b.AddNode(topology.Client, 1, 2)
	b.AddLink(c0, s0, topology.ClientStub, huge, ms(7), 0)
	cut := b.AddLink(s0, t0, topology.TransitStub, huge, ms(5), 0)
	b.AddLink(t0, t1, topology.TransitTransit, huge, ms(2), 0)
	b.AddLink(t1, s1, topology.TransitStub, huge, ms(3), 0)
	b.AddLink(c1, s1, topology.ClientStub, huge, ms(1), 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = cut
	return g, c0, c1, t0
}

// TestHandoffExactlyOnBarrierBoundary pins the conservative-sync edge
// case: a cross-shard packet whose arrival lands exactly ON a window
// boundary. With the line topology above and a send at t=10ms:
//
//	the hop at c0 runs at 10ms, opening the window [10ms, 15ms)
//	the hop at s0 runs at 17ms — outside, so it opens [17ms, 22ms)
//	that hop crosses the cut: arrival = 17ms + 5ms = 22ms,
//	exactly its own window's end
//
// The window is half-open (workers run strictly before the barrier), so
// the handoff must be exchanged and executed at the start of the next
// window, never inside the one that produced it — and the delivery time
// at c1 (22ms + 2ms + 3ms + 1ms = 28ms) must match the serial run
// exactly.
func TestHandoffExactlyOnBarrierBoundary(t *testing.T) {
	run := func(shards int) sim.Time {
		g, c0, c1, _ := barrierTopo(t)
		eng := sim.NewEngine(5)
		net := New(eng, g, topology.NewRouter(g), Config{})
		if shards > 1 {
			if got := net.EnableShards(2); got != 2 {
				t.Fatalf("EnableShards(2) = %d", got)
			}
			plan := topology.PartitionShards(g, 2)
			if plan.Lookahead != 5*sim.Millisecond {
				t.Fatalf("lookahead = %v, want 5ms", plan.Lookahead)
			}
			if net.ShardOf(c0) == net.ShardOf(c1) {
				t.Fatal("c0 and c1 landed on the same shard")
			}
		}
		var deliveredAt sim.Time
		net.Register(c1, func(p Packet) { deliveredAt = net.SchedulerFor(c1).Now() })
		eng.At(10*sim.Millisecond, func() {
			net.Send(Packet{Kind: Data, Seq: 1, Size: 1000, From: c0, To: c1})
		})
		net.Run(sim.Second)
		if deliveredAt == 0 {
			t.Fatalf("shards=%d: packet not delivered", shards)
		}
		return deliveredAt
	}
	serial := run(1)
	if want := 28 * sim.Millisecond; serial != want {
		t.Fatalf("serial delivery at %v, want %v", serial, want)
	}
	if sharded := run(2); sharded != serial {
		t.Fatalf("sharded delivery at %v, serial at %v", sharded, serial)
	}
}

// TestLookaheadRecomputeMidRun mutates a cut link's latency while the
// sharded run is in flight: a global-engine event shortens the only
// cut link of the line topology from 5ms to 1ms at t=15ms. The runner
// must pick the new lookahead up at the next round (epoch check after
// rt.Sync) — windows sized by the stale 5ms value would let a
// cross-shard packet arrive inside an already-executing window. Two
// sends bracket the mutation; both must be delivered at exactly the
// serial run's times.
func TestLookaheadRecomputeMidRun(t *testing.T) {
	run := func(shards int) [2]sim.Time {
		g, c0, c1, _ := barrierTopo(t)
		plan := topology.PartitionShards(g, 2)
		if len(plan.CutLinks) != 1 {
			t.Fatalf("cut links %v, want exactly 1", plan.CutLinks)
		}
		cut := int(plan.CutLinks[0])
		eng := sim.NewEngine(5)
		net := New(eng, g, topology.NewRouter(g), Config{})
		if shards > 1 {
			if got := net.EnableShards(shards); got != shards {
				t.Fatalf("EnableShards(%d) = %d", shards, got)
			}
		}
		var at [2]sim.Time
		net.Register(c1, func(p Packet) { at[p.Seq-1] = net.SchedulerFor(c1).Now() })
		eng.At(10*sim.Millisecond, func() {
			net.Send(Packet{Kind: Data, Seq: 1, Size: 1000, From: c0, To: c1})
		})
		eng.At(15*sim.Millisecond, func() {
			g.SetLatency(cut, sim.Millisecond)
		})
		eng.At(30*sim.Millisecond, func() {
			net.Send(Packet{Kind: Data, Seq: 2, Size: 1000, From: c0, To: c1})
		})
		net.Run(sim.Second)
		if at[0] == 0 || at[1] == 0 {
			t.Fatalf("shards=%d: deliveries %v incomplete", shards, at)
		}
		return at
	}
	serial := run(1)
	// The second send sees the shortened link end to end:
	// 30 + 7 + 1 + 2 + 3 + 1 = 44ms.
	if want := 44 * sim.Millisecond; serial[1] != want {
		t.Fatalf("serial second delivery at %v, want %v", serial[1], want)
	}
	if sharded := run(2); sharded != serial {
		t.Fatalf("sharded deliveries %v, serial %v", sharded, serial)
	}
}
