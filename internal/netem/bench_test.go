package netem

import (
	"testing"

	"bullet/internal/sim"
	"bullet/internal/topology"
)

// BenchmarkNetemHop measures end-to-end packet forwarding: one Send plus
// every per-hop event along a multi-hop client-to-client path. With the
// memoized router paths, the pooled in-flight state, and the value-heap
// scheduler this is allocation-free in steady state; the seed
// implementation allocated a fresh path slice plus a closure, an event,
// and a Timer per hop.
func BenchmarkNetemHop(b *testing.B) {
	g, err := topology.Generate(topology.Config{
		TransitDomains: 2, TransitPerDomain: 4,
		StubDomains: 8, StubDomainSize: 6,
		Clients: 16, Bandwidth: topology.HighBandwidth,
		Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(7)
	net := New(eng, g, topology.NewRouter(g), Config{})
	src, dst := g.Clients[0], g.Clients[len(g.Clients)-1]
	delivered := 0
	net.Register(dst, func(Packet) { delivered++ })
	// Warm the route cache and the pools outside the timed region.
	net.Send(Packet{Kind: Data, Size: 1500, From: src, To: dst})
	eng.Run(eng.Now() + sim.Second)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(Packet{Kind: Data, Seq: uint64(i), Size: 1500, From: src, To: dst})
		// Drain between sends so queueing drops never perturb the
		// measurement: each iteration is exactly one full traversal.
		eng.Run(eng.Now() + sim.Second)
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no packets delivered")
	}
}

// BenchmarkNetemFanout stresses the scheduler with many concurrent
// packets in flight (a tree fanout pattern), the shape that dominates
// experiment runs.
func BenchmarkNetemFanout(b *testing.B) {
	g, err := topology.Generate(topology.Config{
		TransitDomains: 2, TransitPerDomain: 4,
		StubDomains: 8, StubDomainSize: 6,
		Clients: 16, Bandwidth: topology.HighBandwidth,
		Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(7)
	net := New(eng, g, topology.NewRouter(g), Config{})
	src := g.Clients[0]
	for _, c := range g.Clients[1:] {
		net.Register(c, func(Packet) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range g.Clients[1:] {
			net.Send(Packet{Kind: Data, Seq: uint64(i), Size: 1500, From: src, To: c})
		}
		eng.Run(eng.Now() + sim.Second)
	}
}
