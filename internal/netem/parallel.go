package netem

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bullet/internal/sim"
	"bullet/internal/topology"
)

// This file holds the sharded execution mode: conservative parallel
// discrete-event simulation over a deterministic partition of the
// topology (topology.PartitionShards). Each shard owns one event heap
// and runs windows bounded by L — the minimum propagation delay over
// the links crossing the cut — with shard 0 inline on the calling
// goroutine and the rest on workers that live for the whole run. A
// packet can only reach another shard by traversing a cut link, so its
// arrival lies at or beyond the window boundary; handoffs are exchanged
// at the barrier in a deterministically sorted order, which makes the
// event schedule — and therefore every trace and metric — byte-identical
// to the serial run at any shard count.
//
// Windows are grouped into rounds. The coordinator fixes the round
// limit (the next global-engine event, or end of run — the only things
// that must execute single-threaded), publishes the first window end,
// and releases exactly the shards holding events inside it. The last
// shard to reach the window barrier decides — on provably quiescent
// state — whether the round must stop (a cross-shard handoff is
// parked, or nothing can run before the limit) or extend: when every
// outbox is empty, no pending event anywhere can produce a cross-shard
// arrival before minNext + L, so the next window runs through
// min(minNext + L, limit) and only the shards with events inside it
// are released. Idle shards stay parked across any number of window
// boundaries at zero cost, a window with one busy shard degenerates to
// an inline function call, and the exchange/global phases run only at
// round ends — the barriers that provably had work to do. Every event
// still executes in the window the serial schedule implies, so none of
// this perturbs output bytes.

// xferEntry pairs a handoff with its source shard for the barrier sort.
type xferEntry struct {
	h   handoff
	src int
}

// xferQueue orders handoffs by (arrival time, producing-hop time,
// source shard) — a pure function of simulation state. It implements
// sort.Interface on a pointer receiver so sort.Stable boxes a pointer
// to the Network's persistent queue, not a fresh slice header: the
// exchange sorts without allocating.
type xferQueue []xferEntry

func (q *xferQueue) Len() int      { return len(*q) }
func (q *xferQueue) Swap(i, j int) { (*q)[i], (*q)[j] = (*q)[j], (*q)[i] }
func (q *xferQueue) Less(i, j int) bool {
	a, b := &(*q)[i], &(*q)[j]
	if a.h.at != b.h.at {
		return a.h.at < b.h.at
	}
	if a.h.schedAt != b.h.schedAt {
		return a.h.schedAt < b.h.schedAt
	}
	return a.src < b.src
}

// Release words pack a shard's next instruction into one atomic word,
// so a released shard learns everything from the load it was already
// spinning on — there is no separately published decision it could
// observe torn or stale.
//
//	bit 0: sense (flips every post; each word has one waiting owner)
//	bit 1: stop (worker: exit the run; coordinator: the round is over)
//	bits 2+: the window-end virtual time
const (
	stateSense = 1 << 0
	stateStop  = 1 << 1
)

func stateWord(end sim.Time, stop bool, sense uint32) uint64 {
	w := uint64(end)<<2 | uint64(sense)
	if stop {
		w |= stateStop
	}
	return w
}

// Decision outcomes of windowDecide for the shard that ran it.
const (
	actRun  = iota // run the window just published
	actPark        // leave the round and wait on the release word
	actOver        // the round is over (coordinator only)
)

// pword is one shard's release word: an atomic state plus a park path.
// The owner spins on the state first (a busy shard is re-released
// within the decider's few hundred nanoseconds), yields, then parks on
// the condition variable (idle shards burn no CPU while others work
// through long windows or the coordinator runs global phases).
type pword struct {
	state atomic.Uint64
	mu    sync.Mutex
	cond  *sync.Cond
	_     [40]byte // keep neighbouring words off one cache line
}

// post releases the owner with the next window end (or the stop bit).
// Posters are serialized by the round structure — the barrier decider
// or the coordinator between rounds — so reading the current sense
// outside the lock is safe.
func (p *pword) post(end sim.Time, stop bool) {
	w := stateWord(end, stop, uint32(p.state.Load()&stateSense)^1)
	p.mu.Lock()
	p.state.Store(w)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// wait blocks the owner until the word's sense differs from *sense,
// toggles *sense, and returns the word.
func (p *pword) wait(sense *uint32) uint64 {
	old := *sense
	*sense = old ^ 1
	for i := 0; i < 4096; i++ {
		if w := p.state.Load(); uint32(w&stateSense) != old {
			return w
		}
		if i >= 256 {
			runtime.Gosched()
		}
	}
	p.mu.Lock()
	for {
		w := p.state.Load()
		if uint32(w&stateSense) != old {
			p.mu.Unlock()
			return w
		}
		p.cond.Wait()
	}
}

// wbarrier is the window barrier: an arrival counter over the shards
// active in the current window, plus one release word per shard. The
// last arriver of a window runs windowDecide on quiescent state and
// releases exactly the shards active in the next window; everyone else
// breaks back to waiting on their own word.
//
// count packs the window's membership size (high 32 bits) and the
// arrivals so far (low 32 bits) into one word, reset by whoever
// publishes a window (coordinator at round start, decider at
// extensions) strictly before any release word is posted. The packing
// is load-bearing: an arriver learns "am I last?" from the single Add
// return value, so it can never compare its arrival against the next
// window's membership (with separate counters, a shard whose Add lost
// the race to the decider could re-read a reset counter and elect
// itself a second decider).
type wbarrier struct {
	count atomic.Uint64
	words []pword
	actv  []int // publishWindow scratch: active shards of the window
}

// arrive joins the current window's barrier and reports whether the
// caller was the last arriver (and must run windowDecide).
func (b *wbarrier) arrive() bool {
	w := b.count.Add(1)
	return uint32(w) == uint32(w>>32)
}

func newBarrier(parties int) *wbarrier {
	b := &wbarrier{words: make([]pword, parties), actv: make([]int, 0, parties)}
	for i := range b.words {
		b.words[i].cond = sync.NewCond(&b.words[i].mu)
	}
	return b
}

// AutoShardCount is the sentinel EnableShards accepts in place of an
// explicit shard count: the count is chosen by topology.AutoShards
// from the topology's calibrated load and the machine's core count
// (bullet-sim surfaces it as "-shards auto"). Like any other count, it
// never affects simulation output bytes.
const AutoShardCount = -1

// EnableShards partitions the topology into at most k shards and
// switches Run to the sharded engine. It returns the effective shard
// count, which may be lower than requested (and is 1 — serial — when
// k <= 1 or the topology yields a single atom). Passing AutoShardCount
// lets topology.AutoShards pick k from the topology's load and
// runtime.GOMAXPROCS. It must be called before any participant
// registers or schedules work: per-node schedulers are handed out
// based on the partition.
//
// Every shard engine is constructed with the global engine's seed, so
// sim.Scheduler.RNG streams are identical regardless of which engine
// serves them, and the per-link-direction loss streams (keyed off the
// same seed) are untouched: sharding never perturbs a single draw.
func (n *Network) EnableShards(k int) int {
	if k == AutoShardCount {
		k = topology.AutoShards(n.g, runtime.GOMAXPROCS(0))
	}
	if k <= 1 {
		return 1
	}
	plan := topology.PartitionShards(n.g, k)
	if plan.K <= 1 {
		return 1
	}
	n.plan = &plan
	n.engines = make([]*sim.Engine, plan.K)
	n.ctxs = make([]shardCtx, plan.K)
	for i := range n.engines {
		n.engines[i] = sim.NewEngine(n.eng.Seed())
		n.ctxs[i].out = make([][]handoff, plan.K)
	}
	return plan.K
}

// Shards returns the effective shard count (1 for serial runs).
func (n *Network) Shards() int {
	if n.plan == nil {
		return 1
	}
	return n.plan.K
}

// ShardOf returns the shard index executing node's events (0 for
// serial runs).
func (n *Network) ShardOf(node int) int { return n.shardIdx(node) }

// Run executes the simulation up to and including virtual time until:
// serially on the global engine, or across the shard engines when
// EnableShards is active. All engine clocks end at until.
func (n *Network) Run(until sim.Time) sim.Time {
	if n.plan == nil {
		return n.eng.Run(until)
	}
	n.runSharded(until)
	return until
}

// nextEventAt returns the earliest pending event time across the
// global engine and every shard engine.
func (n *Network) nextEventAt() (sim.Time, bool) {
	min, ok := n.eng.NextAt()
	for _, e := range n.engines {
		if t, o := e.NextAt(); o && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// pendingHandoffs reports whether any shard parked a cross-shard
// handoff that has not been exchanged yet. Callers run either at a
// barrier decision or after a round — the outboxes are quiescent.
func (n *Network) pendingHandoffs() bool {
	for i := range n.ctxs {
		for _, box := range n.ctxs[i].out {
			if len(box) > 0 {
				return true
			}
		}
	}
	return false
}

// windowDecide is the barrier decision, run by shard me as the last
// arriver at a window boundary. Every other active shard is waiting on
// its release word and every dormant shard has been parked since an
// earlier boundary, so all heaps and outboxes are quiescent — the
// decider is the only thread touching simulation state, whichever
// shard it happens to be. That lets it run the exchange in place:
// every event in the window executed at t >= the window's base, so a
// handoff's arrival (t plus a cut-link delay >= L) lies at or beyond
// the boundary just reached, and draining outboxes here delivers it
// before any shard can pass it — without tearing the round down and
// bouncing through the coordinator. The round stops only when nothing
// can run before the round limit (the next global-engine event, which
// must execute single-threaded). Otherwise it extends: every pending
// event lies at or beyond minNext, so no cross-shard arrival can land
// before minNext + L, and the next window runs through
// min(minNext + L, limit) — only on the shards that hold events inside
// it. Fused exchange and extension preserve byte identity: handoffs
// enter the destination heaps in the same deterministically sorted
// order, before anything later schedules at the same instant, and
// every event still fires in the window the serial schedule implies.
func (n *Network) windowDecide(me int) (sim.Time, int) {
	end := n.roundEnd
	if n.pendingHandoffs() {
		n.exchange()
	}
	var minNext sim.Time
	ok := false
	for _, e := range n.engines {
		if t, o := e.NextAt(); o && (!ok || t < minNext) {
			minNext, ok = t, true
		}
	}
	if stop := !ok || minNext >= n.roundLimit; stop {
		if me == 0 {
			return end, actOver
		}
		n.wb.words[0].post(end, true)
		return 0, actPark
	}
	next := n.roundLimit
	if n.lookahead > 0 && minNext+n.lookahead < next {
		next = minNext + n.lookahead
	}
	n.roundEnd = next
	meRuns := n.publishWindow(next, me)
	if meRuns {
		return next, actRun
	}
	return 0, actPark
}

// publishWindow resets the arrival counter for the shards holding
// events before end and posts their release words, skipping shard me
// (the caller, who acts on the returned flag instead). Every heap is
// scanned before the counter store and the store precedes every word
// post; the ordering is load-bearing twice over. The counter store is
// the release edge covering the scans: every future heap write sits
// behind an arrival (an acquire on the counter), so even a caller that
// parks right after publishing has its reads ordered before them. And
// arrivals at the new boundary always compare against the new
// membership — a shard released by an early post must not reach the
// barrier while the counter still describes the previous window.
func (n *Network) publishWindow(end sim.Time, me int) (meRuns bool) {
	n.wb.actv = n.wb.actv[:0]
	for j, e := range n.engines {
		if t, ok := e.NextAt(); ok && t < end {
			if j == me {
				meRuns = true
			} else {
				n.wb.actv = append(n.wb.actv, j)
			}
		}
	}
	cnt := uint64(len(n.wb.actv))
	if meRuns {
		cnt++
	}
	n.wb.count.Store(cnt << 32)
	for _, j := range n.wb.actv {
		n.wb.words[j].post(end, false)
	}
	return meRuns
}

// shardWindows runs shard i's heap through consecutive windows: execute
// strictly below end, arrive at the barrier, and — as last arriver —
// decide the next window. It returns the decision that ended this
// shard's participation: actRun never escapes, actPark means wait on
// the release word, actOver (shard 0 only) means the round is over,
// with the stop boundary in the returned time. Wall-clock time spent
// executing events is charged to the shard's busy counter for load
// observability.
func (n *Network) shardWindows(i int, end sim.Time) (sim.Time, int) {
	eng := n.engines[i]
	c := &n.ctxs[i]
	for {
		t0 := time.Now()
		eng.RunBefore(end)
		c.busyNanos += time.Since(t0).Nanoseconds()
		if !n.wb.arrive() {
			return 0, actPark
		}
		var act int
		end, act = n.windowDecide(i)
		if act != actRun {
			return end, act
		}
	}
}

// coordRound drives shard 0 through one round and returns the boundary
// the round stopped at: run windows while active, park on the release
// word while dormant, resume when a decider re-activates shard 0 or
// posts the stop.
func (n *Network) coordRound(active bool, end sim.Time, sense *uint32) sim.Time {
	for {
		if active {
			var act int
			end, act = n.shardWindows(0, end)
			if act == actOver {
				return end
			}
		}
		w := n.wb.words[0].wait(sense)
		end = sim.Time(w >> 2)
		if w&stateStop != 0 {
			return end
		}
		active = true
	}
}

// runSharded is the conservative-PDES round loop. Worker goroutines for
// shards 1..K-1 are spawned once and park on their release words
// whenever they are not executing a window; shard 0 runs inline here.
// Each round:
//
//  1. all clocks are aligned to the round time T and the global engine
//     runs its events at T (scenario callbacks, membership, World.At)
//     single-threaded — these may mutate the graph, touch shared
//     protocol state, and send packets (pushed directly into shard
//     heaps, since every worker is parked);
//  2. the router applies any pending epoch invalidation so route
//     caches are stable during the round, and the lookahead is
//     recomputed if link state changed (graph mutations happen only in
//     this phase, so it cannot change mid-round);
//  3. if every pending event lies beyond T, the loop fast-forwards to
//     the earliest one (or stops, when none remain at or before
//     until);
//  4. the round limit is fixed — the next global event (which must run
//     single-threaded at its exact time) or until + 1 (so the final
//     window includes events at until) — the first window
//     [T, min(T+L, limit)) is published to the shards with events in
//     it, and the shards run windows until the barrier decides the
//     round is over (see windowDecide);
//  5. back on this goroutine with the workers parked, handoffs parked
//     during the round's final window are drained in deterministically
//     sorted order into the destination heaps (mid-round boundaries
//     were already drained by barrier deciders), before the next
//     global phase so handoffs precede (get lower sequence numbers
//     than) anything the next round schedules at the same instant,
//     exactly as they would serially.
func (n *Network) runSharded(until sim.Time) {
	K := n.plan.K
	n.wb = newBarrier(K)
	var done sync.WaitGroup
	done.Add(K - 1)
	for i := 1; i < K; i++ {
		go func(i int) {
			defer done.Done()
			var sense uint32
			for {
				w := n.wb.words[i].wait(&sense)
				if w&stateStop != 0 {
					return
				}
				n.shardWindows(i, sim.Time(w>>2))
			}
		}(i)
	}
	defer func() {
		for i := 1; i < K; i++ {
			n.wb.words[i].post(0, true)
		}
		done.Wait()
	}()

	var sense0 uint32
	n.lookahead = n.plan.LookaheadNow(n.g)
	lastEpoch := n.g.Epoch()
	T := n.eng.Now()
	for {
		for _, e := range n.engines {
			e.AdvanceTo(T)
		}
		n.eng.Run(T)
		n.rt.Sync()
		if e := n.g.Epoch(); e != lastEpoch {
			lastEpoch = e
			n.lookahead = n.plan.LookaheadNow(n.g)
		}
		next, ok := n.nextEventAt()
		if !ok || next > until {
			break
		}
		if next > T {
			T = next
			continue
		}
		// The global engine has run through T, so its next event — and
		// the round limit — lie strictly beyond T, and the shard holding
		// the event at T is active in the first window: the round always
		// has at least one participant.
		limit := until + 1
		if gn, ok := n.eng.NextAt(); ok && gn < limit {
			limit = gn
		}
		end := limit
		if n.lookahead > 0 && T+n.lookahead < end {
			end = T + n.lookahead
		}
		n.roundLimit = limit
		n.roundEnd = end
		n.parallel = true
		act0 := n.publishWindow(end, 0)
		stop := n.coordRound(act0, end, &sense0)
		n.parallel = false
		if n.pendingHandoffs() {
			n.exchange()
		}
		adv := stop
		if adv > until {
			adv = until
		}
		for _, e := range n.engines {
			e.AdvanceTo(adv)
		}
		if stop > until {
			break
		}
		T = stop
	}
	n.eng.Run(until)
	for _, e := range n.engines {
		e.AdvanceTo(until)
	}
}

// ShardStat describes one shard's share of a sharded run: its static
// slice of the partition (nodes, clients, planned weight) and the load
// it actually carried (events executed, wall-clock nanoseconds spent
// executing them). Events are deterministic; BusyNanos is wall-clock
// and varies run to run — it is an observability signal, never an
// input to the simulation.
type ShardStat struct {
	Shard     int
	Nodes     int
	Clients   int
	Weight    int
	Events    uint64
	BusyNanos int64
}

// ShardStats returns per-shard load statistics for a sharded run, or
// nil when the network runs serially. Call it after Run returns; it
// must not race a running round.
func (n *Network) ShardStats() []ShardStat {
	if n.plan == nil {
		return nil
	}
	st := make([]ShardStat, n.plan.K)
	for i := range st {
		st[i].Shard = i
		st[i].Events = n.engines[i].Fired()
		st[i].BusyNanos = n.ctxs[i].busyNanos
		if i < len(n.plan.Weights) {
			st[i].Weight = n.plan.Weights[i]
		}
	}
	for node, s := range n.plan.ShardOf {
		st[s].Nodes++
		if n.g.Nodes[node].Kind == topology.Client {
			st[s].Clients++
		}
	}
	return st
}

// RunLoad is a run's executed-event accounting: the per-shard tables
// (nil for serial runs) plus the global engine's own count — scenario
// timers and graph mutations in sharded mode, everything in serial
// mode. Because sharding never adds, drops, or duplicates a logical
// event, TotalEvents is invariant across shard counts: a serial run
// fires exactly as many events as any sharded run of the same
// experiment, just all on one engine.
type RunLoad struct {
	Shards       []ShardStat
	GlobalEvents uint64
}

// TotalEvents returns the run's executed events across the global
// engine and every shard.
func (l RunLoad) TotalEvents() uint64 {
	t := l.GlobalEvents
	for i := range l.Shards {
		t += l.Shards[i].Events
	}
	return t
}

// RunLoad returns the run's executed-event accounting so far. Like
// ShardStats, call it after Run returns; counters are cumulative
// across run segments.
func (n *Network) RunLoad() RunLoad {
	return RunLoad{Shards: n.ShardStats(), GlobalEvents: n.eng.Fired()}
}

// CalibrateClientWeight fits a sharded run's measured per-shard event
// counts to the client/router load model and returns the client weight
// that would have balanced it (see topology.CalibrateClientWeight).
// The false return means the run's shard mix cannot support a fit.
// topology.DefaultClientWeight was derived exactly this way from
// Figure 7 runs.
func CalibrateClientWeight(stats []ShardStat) (int, bool) {
	clients := make([]int, len(stats))
	routers := make([]int, len(stats))
	events := make([]int64, len(stats))
	for i, s := range stats {
		clients[i] = s.Clients
		routers[i] = s.Nodes - s.Clients
		events[i] = int64(s.Events)
	}
	return topology.CalibrateClientWeight(clients, routers, events)
}

// exchange drains every shard's outboxes into the destination shard
// heaps. Handoffs bound for one shard are merged across sources and
// stably sorted by (arrival time, producing-hop time, source shard) —
// a pure function of the simulation state — so the sequence numbers
// they receive, and hence tie-breaking against all other events, are
// independent of goroutine timing.
func (n *Network) exchange() {
	K := n.plan.K
	for dst := 0; dst < K; dst++ {
		n.xq = n.xq[:0]
		for src := 0; src < K; src++ {
			box := n.ctxs[src].out[dst]
			for _, h := range box {
				n.xq = append(n.xq, xferEntry{h: h, src: src})
			}
			n.ctxs[src].out[dst] = box[:0]
		}
		if len(n.xq) > 1 {
			sort.Stable(&n.xq)
		}
		eng := n.engines[dst]
		for _, e := range n.xq {
			eng.ScheduleArg(e.h.at, n.hopFn, e.h.f)
		}
	}
	n.xq = n.xq[:0]
}
