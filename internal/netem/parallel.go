package netem

import (
	"sort"
	"sync"

	"bullet/internal/sim"
	"bullet/internal/topology"
)

// This file holds the sharded execution mode: conservative parallel
// discrete-event simulation over a deterministic partition of the
// topology (topology.PartitionShards). Each shard owns one event heap
// and runs windows of length L — the minimum propagation delay over the
// links crossing the cut — in its own goroutine. A packet can only
// reach another shard by traversing a cut link, so its arrival lies at
// or beyond the window boundary; handoffs are exchanged at the barrier
// in a deterministically sorted order, which makes the event schedule —
// and therefore every trace and metric — byte-identical to the serial
// run at any shard count.

// xferEntry pairs a handoff with its source shard for the barrier sort.
type xferEntry struct {
	h   handoff
	src int
}

// EnableShards partitions the topology into at most k shards and
// switches Run to the sharded engine. It returns the effective shard
// count, which may be lower than requested (and is 1 — serial — when
// k <= 1 or the topology yields a single atom). It must be called
// before any participant registers or schedules work: per-node
// schedulers are handed out based on the partition.
//
// Every shard engine is constructed with the global engine's seed, so
// sim.Scheduler.RNG streams are identical regardless of which engine
// serves them, and the per-link-direction loss streams (keyed off the
// same seed) are untouched: sharding never perturbs a single draw.
func (n *Network) EnableShards(k int) int {
	if k <= 1 {
		return 1
	}
	plan := topology.PartitionShards(n.g, k)
	if plan.K <= 1 {
		return 1
	}
	n.plan = &plan
	n.engines = make([]*sim.Engine, plan.K)
	n.ctxs = make([]shardCtx, plan.K)
	for i := range n.engines {
		n.engines[i] = sim.NewEngine(n.eng.Seed())
		n.ctxs[i].out = make([][]handoff, plan.K)
	}
	return plan.K
}

// Shards returns the effective shard count (1 for serial runs).
func (n *Network) Shards() int {
	if n.plan == nil {
		return 1
	}
	return n.plan.K
}

// ShardOf returns the shard index executing node's events (0 for
// serial runs).
func (n *Network) ShardOf(node int) int { return n.shardIdx(node) }

// Run executes the simulation up to and including virtual time until:
// serially on the global engine, or across the shard engines when
// EnableShards is active. All engine clocks end at until.
func (n *Network) Run(until sim.Time) sim.Time {
	if n.plan == nil {
		return n.eng.Run(until)
	}
	n.runSharded(until)
	return until
}

// nextEventAt returns the earliest pending event time across the
// global engine and every shard engine.
func (n *Network) nextEventAt() (sim.Time, bool) {
	min, ok := n.eng.NextAt()
	for _, e := range n.engines {
		if t, o := e.NextAt(); o && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// runSharded is the conservative-PDES barrier loop. Each round:
//
//  1. all clocks are aligned to the barrier time T and the global
//     engine runs its events at T (scenario callbacks, membership,
//     World.At) single-threaded — these may mutate the graph, touch
//     shared protocol state, and send packets (pushed directly into
//     shard heaps, since no shard goroutine is running);
//  2. the router applies any pending epoch invalidation so route
//     caches are stable during the window, and the lookahead is
//     recomputed if link state changed (a scenario may have shortened
//     a cut link's delay);
//  3. if every pending event lies beyond T, the barrier fast-forwards
//     to the earliest one (or stops, when none remain at or before
//     until);
//  4. the window end is chosen: at most T + lookahead (no cross-shard
//     influence can land earlier), capped by the next global event
//     (which must run single-threaded at its exact time) and by
//     until + 1 (so the final window includes events at until);
//  5. every shard runs its heap strictly below end in parallel —
//     shard 0 inline on this goroutine, the rest on persistent
//     workers — with cross-shard packets parked in per-shard
//     outboxes;
//  6. outboxes are drained in deterministically sorted order into the
//     destination heaps, before the next global phase so handoffs
//     precede (get lower sequence numbers than) anything the next
//     barrier schedules at the same instant, exactly as they would
//     serially.
func (n *Network) runSharded(until sim.Time) {
	K := n.plan.K
	var wg sync.WaitGroup
	work := make([]chan sim.Time, K)
	for i := 1; i < K; i++ {
		ch := make(chan sim.Time, 1)
		work[i] = ch
		eng := n.engines[i]
		go func() {
			for end := range ch {
				eng.RunBefore(end)
				wg.Done()
			}
		}()
	}
	defer func() {
		for i := 1; i < K; i++ {
			close(work[i])
		}
	}()

	lookahead := n.plan.LookaheadNow(n.g)
	lastEpoch := n.g.Epoch()
	T := n.eng.Now()
	for {
		for _, e := range n.engines {
			e.AdvanceTo(T)
		}
		n.eng.Run(T)
		n.rt.Sync()
		if e := n.g.Epoch(); e != lastEpoch {
			lastEpoch = e
			lookahead = n.plan.LookaheadNow(n.g)
		}
		next, ok := n.nextEventAt()
		if !ok || next > until {
			break
		}
		if next > T {
			T = next
			continue
		}
		end := until + 1
		if lookahead > 0 && T+lookahead < end {
			end = T + lookahead
		}
		if gn, ok := n.eng.NextAt(); ok && gn < end {
			end = gn
		}
		n.parallel = true
		wg.Add(K - 1)
		for i := 1; i < K; i++ {
			work[i] <- end
		}
		n.engines[0].RunBefore(end)
		wg.Wait()
		n.parallel = false
		n.exchange()
		adv := end
		if adv > until {
			adv = until
		}
		for _, e := range n.engines {
			e.AdvanceTo(adv)
		}
		if end > until {
			break
		}
		T = end
	}
	n.eng.Run(until)
	for _, e := range n.engines {
		e.AdvanceTo(until)
	}
}

// exchange drains every shard's outboxes into the destination shard
// heaps. Handoffs bound for one shard are merged across sources and
// sorted by (arrival time, producing-hop time, source shard) — a pure
// function of the simulation state — so the sequence numbers they
// receive, and hence tie-breaking against all other events, are
// independent of goroutine timing.
func (n *Network) exchange() {
	K := n.plan.K
	for dst := 0; dst < K; dst++ {
		buf := n.xbuf[:0]
		for src := 0; src < K; src++ {
			box := n.ctxs[src].out[dst]
			for _, h := range box {
				buf = append(buf, xferEntry{h: h, src: src})
			}
			n.ctxs[src].out[dst] = box[:0]
		}
		if len(buf) > 1 {
			sort.SliceStable(buf, func(i, j int) bool {
				if buf[i].h.at != buf[j].h.at {
					return buf[i].h.at < buf[j].h.at
				}
				if buf[i].h.schedAt != buf[j].h.schedAt {
					return buf[i].h.schedAt < buf[j].h.schedAt
				}
				return buf[i].src < buf[j].src
			})
		}
		eng := n.engines[dst]
		for _, e := range buf {
			eng.ScheduleArg(e.h.at, n.hopFn, e.h.f)
		}
		n.xbuf = buf[:0]
	}
}
