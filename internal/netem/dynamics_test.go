package netem

import (
	"testing"

	"bullet/internal/sim"
	"bullet/internal/topology"
)

// diamond builds S - A - B - D with a slow detour A - C - B, so the
// A-B link can fail while leaving an alternative route.
func diamond(t *testing.T) (*topology.Graph, map[string]int) {
	t.Helper()
	b := topology.NewBuilder()
	s := b.AddNode(topology.Client, 0, 0)
	a := b.AddNode(topology.Stub, 1, 0)
	bb := b.AddNode(topology.Stub, 2, 0)
	c := b.AddNode(topology.Stub, 1.5, 1)
	d := b.AddNode(topology.Client, 3, 0)
	ids := map[string]int{"S": s, "A": a, "B": bb, "C": c, "D": d}
	ids["SA"] = b.AddLink(s, a, topology.ClientStub, 10000, sim.Millisecond, 0)
	ids["AB"] = b.AddLink(a, bb, topology.StubStub, 10000, sim.Millisecond, 0)
	ids["AC"] = b.AddLink(a, c, topology.StubStub, 10000, 5*sim.Millisecond, 0)
	ids["CB"] = b.AddLink(c, bb, topology.StubStub, 10000, 5*sim.Millisecond, 0)
	ids["BD"] = b.AddLink(bb, d, topology.ClientStub, 10000, sim.Millisecond, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, ids
}

func TestInFlightReroutesAroundFailure(t *testing.T) {
	g, ids := diamond(t)
	eng := sim.NewEngine(1)
	net := New(eng, g, topology.NewRouter(g), Config{})

	delivered := 0
	net.Register(ids["D"], func(pkt Packet) { delivered++ })

	// The A-B link fails while the packet is serializing on S-A, before
	// it reaches A. The packet must detour via C and still arrive.
	net.Send(Packet{Kind: Data, Size: 1000, From: ids["S"], To: ids["D"]})
	eng.Schedule(500*sim.Microsecond, func() { g.FailLink(ids["AB"]) })
	eng.Run(sim.Second)

	if delivered != 1 {
		t.Fatalf("delivered %d packets, want 1 (rerouted via detour)", delivered)
	}
	st := net.Stats()
	if st.ReroutedPackets != 1 {
		t.Errorf("ReroutedPackets = %d, want 1", st.ReroutedPackets)
	}
	if st.LinkDownDrops != 0 {
		t.Errorf("LinkDownDrops = %d, want 0", st.LinkDownDrops)
	}
}

func TestInFlightDropWhenUnreachable(t *testing.T) {
	g, ids := diamond(t)
	eng := sim.NewEngine(1)
	net := New(eng, g, topology.NewRouter(g), Config{})

	delivered := 0
	net.Register(ids["D"], func(pkt Packet) { delivered++ })

	// Cut D off entirely while the packet is in flight: it must drop.
	net.Send(Packet{Kind: Data, Size: 1000, From: ids["S"], To: ids["D"]})
	eng.Schedule(500*sim.Microsecond, func() { g.Partition([]int{ids["D"]}) })
	eng.Run(sim.Second)

	if delivered != 0 {
		t.Fatalf("delivered %d packets through a partition, want 0", delivered)
	}
	if st := net.Stats(); st.LinkDownDrops != 1 {
		t.Errorf("LinkDownDrops = %d, want 1", st.LinkDownDrops)
	}

	// After Heal, fresh sends get through again.
	g.Heal()
	net.Send(Packet{Kind: Data, Size: 1000, From: ids["S"], To: ids["D"]})
	eng.Run(2 * sim.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d packets after Heal, want 1", delivered)
	}
}

func TestSendToFailedDestinationDropped(t *testing.T) {
	g, ids := diamond(t)
	eng := sim.NewEngine(1)
	net := New(eng, g, topology.NewRouter(g), Config{})
	delivered := 0
	net.Register(ids["D"], func(pkt Packet) { delivered++ })

	g.FailLink(ids["BD"])
	net.Send(Packet{Kind: Data, Size: 1000, From: ids["S"], To: ids["D"]})
	eng.Run(sim.Second)
	if delivered != 0 {
		t.Fatalf("delivered %d, want 0 (destination access link down)", delivered)
	}
	// Send-time unreachability is not a traversal drop.
	if st := net.Stats(); st.LinkDownDrops != 0 {
		t.Errorf("LinkDownDrops = %d, want 0", st.LinkDownDrops)
	}
}

func TestStaticRunNeverReroutes(t *testing.T) {
	g, ids := diamond(t)
	eng := sim.NewEngine(1)
	net := New(eng, g, topology.NewRouter(g), Config{})
	net.Register(ids["D"], func(pkt Packet) {})
	for i := 0; i < 50; i++ {
		net.Send(Packet{Kind: Data, Size: 1000, From: ids["S"], To: ids["D"]})
	}
	eng.Run(10 * sim.Second)
	st := net.Stats()
	if st.ReroutedPackets != 0 || st.LinkDownDrops != 0 {
		t.Errorf("static run: rerouted=%d downDrops=%d, want 0/0", st.ReroutedPackets, st.LinkDownDrops)
	}
	if st.DeliveredPackets != 50 {
		t.Errorf("DeliveredPackets = %d, want 50", st.DeliveredPackets)
	}
}

// Bandwidth changes take effect for packets serialized after the
// change: a mid-run capacity cut stretches subsequent serialization.
func TestBandwidthChangeAffectsSerialization(t *testing.T) {
	g, ids := diamond(t)
	eng := sim.NewEngine(1)
	net := New(eng, g, topology.NewRouter(g), Config{})

	var arrivals []sim.Time
	net.Register(ids["D"], func(pkt Packet) { arrivals = append(arrivals, eng.Now()) })

	// 10 Mbps everywhere; 1000-byte packet serializes in 0.8ms per hop.
	net.Send(Packet{Kind: Data, Size: 1000, From: ids["S"], To: ids["D"]})
	eng.Run(sim.Second)
	// Cut every link to 1 Mbps and send again from a quiet network.
	for _, k := range []string{"SA", "AB", "BD"} {
		g.SetBandwidth(ids[k], 1000)
	}
	t1 := eng.Now()
	net.Send(Packet{Kind: Data, Size: 1000, From: ids["S"], To: ids["D"]})
	eng.Run(2 * sim.Second)

	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	// 3 hops of 1000 bytes: 0.8ms/hop serialization at 10 Mbps, 8ms/hop
	// at 1 Mbps, plus 3ms total propagation.
	if fast := arrivals[0]; fast != 5400*sim.Microsecond {
		t.Errorf("transit before cut = %v, want 5.4ms", fast)
	}
	if slow := arrivals[1] - t1; slow != 27*sim.Millisecond {
		t.Errorf("transit after cut = %v, want 27ms", slow)
	}
}
