// Package netem is a deterministic packet-level network emulator: the
// stand-in for the ModelNet cluster emulator used in the Bullet paper's
// evaluation. Packets are forwarded hop-by-hop along fixed shortest
// paths; each link direction models store-and-forward serialization at
// the link bandwidth, a bounded FIFO queue with tail drop (congestion
// loss), propagation delay, and independent random loss. These are the
// exact mechanisms ModelNet emulates, so transports running above (TFRC)
// observe equivalent loss and delay signals.
package netem

import (
	"math/rand"

	"bullet/internal/sim"
	"bullet/internal/topology"
)

// Kind distinguishes application data from protocol control traffic.
type Kind uint8

const (
	// Data packets carry stream content; they are subject to queuing
	// drops and random link loss.
	Data Kind = iota
	// Control packets (RanSub sets, peering requests, Bloom filter
	// refreshes, TFRC feedback) consume link bandwidth and experience
	// queuing delay, but are delivered reliably, modeling small TCP
	// control transfers. Their bytes are accounted as overhead.
	Control
)

// Packet is the unit of transfer between two overlay participants.
type Packet struct {
	Kind    Kind
	Seq     uint64 // data sequence number (Data packets)
	Size    int    // bytes on the wire
	From    int    // source graph node
	To      int    // destination graph node
	Payload any    // protocol message for Control packets
	Trace   bool   // participate in link-stress accounting
	SentAt  sim.Time
}

// Handler receives packets addressed to a registered node.
type Handler func(pkt Packet)

// Config tunes the emulator.
type Config struct {
	// QueueDelayLimit bounds per-link queuing delay; a packet whose
	// wait would exceed it is tail-dropped. Default 150ms.
	QueueDelayLimit sim.Duration
}

type dirState struct {
	busyUntil sim.Time
	bytes     uint64
	drops     uint64 // congestion drops
	lossDrops uint64 // random loss drops
	packets   uint64
}

// Network emulates the physical topology for registered participants.
type Network struct {
	eng      *sim.Engine
	g        *topology.Graph
	rt       *topology.Router
	cfg      Config
	dirs     []dirState // 2*linkID + direction
	handlers map[int]Handler
	rng      *rand.Rand

	// Aggregate accounting.
	dataBytesSent    uint64
	dataBytesDeliv   uint64
	controlBytes     uint64
	congestionDrops  uint64
	randomLossDrops  uint64
	deliveredPackets uint64

	// Link stress: per traced sequence, per link, copy count.
	traceStress map[uint64]map[int32]int
}

// New creates an emulator over graph g routed by rt, scheduling on eng.
func New(eng *sim.Engine, g *topology.Graph, rt *topology.Router, cfg Config) *Network {
	if cfg.QueueDelayLimit <= 0 {
		cfg.QueueDelayLimit = 150 * sim.Millisecond
	}
	return &Network{
		eng:         eng,
		g:           g,
		rt:          rt,
		cfg:         cfg,
		dirs:        make([]dirState, 2*len(g.Links)),
		handlers:    make(map[int]Handler),
		rng:         eng.RNG(0x6e65746d),
		traceStress: make(map[uint64]map[int32]int),
	}
}

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Router returns the route oracle.
func (n *Network) Router() *topology.Router { return n.rt }

// Graph returns the topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Register installs the packet handler for node id, replacing any
// previous handler.
func (n *Network) Register(node int, h Handler) { n.handlers[node] = h }

// Unregister removes the handler for node id; packets in flight to it
// are silently discarded on arrival.
func (n *Network) Unregister(node int) { delete(n.handlers, node) }

// Send injects a packet at pkt.From at the current virtual time. The
// packet traverses the fixed shortest path to pkt.To; it may be dropped
// on the way. Local delivery (From == To) happens after one event cycle.
func (n *Network) Send(pkt Packet) {
	pkt.SentAt = n.eng.Now()
	if pkt.Kind == Control {
		n.controlBytes += uint64(pkt.Size)
	} else {
		n.dataBytesSent += uint64(pkt.Size)
	}
	path := n.rt.Path(pkt.From, pkt.To)
	if path == nil && pkt.From != pkt.To {
		return // unreachable: dropped
	}
	n.hop(pkt, path, 0, pkt.From)
}

// hop processes arrival of pkt at the input of path[i], currently at
// node cur, and schedules the next-hop arrival.
func (n *Network) hop(pkt Packet, path []int32, i int, cur int) {
	if i == len(path) {
		n.deliver(pkt)
		return
	}
	lid := path[i]
	l := &n.g.Links[lid]
	dir := 0
	next := l.B
	if cur == l.B {
		dir = 1
		next = l.A
	}
	ds := &n.dirs[2*int(lid)+dir]

	now := n.eng.Now()
	start := now
	if ds.busyUntil > start {
		start = ds.busyUntil
	}
	// Queue admission for data: probabilistic early drop (RED-style)
	// once the wait passes half the bound, ramping to certain drop at
	// the bound. Early drop gives transports a timely congestion signal
	// and breaks the phase synchronization a deterministic tail-drop
	// would impose on competing flows.
	if pkt.Kind == Data {
		wait := start - now
		limit := n.cfg.QueueDelayLimit
		if wait > limit/2 {
			p := float64(wait-limit/2) / float64(limit-limit/2)
			if p >= 1 || n.rng.Float64() < p {
				ds.drops++
				n.congestionDrops++
				return
			}
		}
	}
	// Random loss is applied per traversal, before transmission.
	if pkt.Kind == Data && l.Loss > 0 && n.rng.Float64() < l.Loss {
		ds.lossDrops++
		n.randomLossDrops++
		return
	}
	ser := sim.Duration(float64(pkt.Size) / l.Bytes * float64(sim.Second))
	ds.busyUntil = start + ser
	ds.bytes += uint64(pkt.Size)
	ds.packets++
	if pkt.Trace {
		m := n.traceStress[pkt.Seq]
		if m == nil {
			m = make(map[int32]int)
			n.traceStress[pkt.Seq] = m
		}
		m[lid]++
	}
	arrive := ds.busyUntil + l.Delay
	n.eng.At(arrive, func() { n.hop(pkt, path, i+1, next) })
}

func (n *Network) deliver(pkt Packet) {
	h := n.handlers[pkt.To]
	if h == nil {
		return
	}
	if pkt.Kind == Data {
		n.dataBytesDeliv += uint64(pkt.Size)
	}
	n.deliveredPackets++
	h(pkt)
}

// Stats is a snapshot of aggregate emulator accounting.
type Stats struct {
	DataBytesSent      uint64
	DataBytesDelivered uint64
	ControlBytes       uint64
	CongestionDrops    uint64
	RandomLossDrops    uint64
	DeliveredPackets   uint64
}

// Stats returns a snapshot of aggregate counters.
func (n *Network) Stats() Stats {
	return Stats{
		DataBytesSent:      n.dataBytesSent,
		DataBytesDelivered: n.dataBytesDeliv,
		ControlBytes:       n.controlBytes,
		CongestionDrops:    n.congestionDrops,
		RandomLossDrops:    n.randomLossDrops,
		DeliveredPackets:   n.deliveredPackets,
	}
}

// LinkStress summarizes link-stress accounting over traced packets, in
// the manner of §4.2: for each traced packet, the stress of a link is
// the number of copies of that packet that crossed it; Avg averages
// across all (packet, link) pairs and Max is the absolute maximum.
func (n *Network) LinkStress() (avg float64, max int) {
	var sum, cnt int
	for _, links := range n.traceStress {
		for _, c := range links {
			sum += c
			cnt++
			if c > max {
				max = c
			}
		}
	}
	if cnt == 0 {
		return 0, 0
	}
	return float64(sum) / float64(cnt), max
}

// LinkUtilization returns bytes carried per direction for link id.
func (n *Network) LinkUtilization(link int) (ab, ba uint64) {
	return n.dirs[2*link].bytes, n.dirs[2*link+1].bytes
}
