// Package netem is a deterministic packet-level network emulator: the
// stand-in for the ModelNet cluster emulator used in the Bullet paper's
// evaluation. Packets are forwarded hop-by-hop along shortest paths;
// each link direction models store-and-forward serialization at the
// link bandwidth, a bounded FIFO queue with tail drop (congestion
// loss), propagation delay, and independent random loss. These are the
// exact mechanisms ModelNet emulates, so transports running above (TFRC)
// observe equivalent loss and delay signals.
//
// The underlying topology may change mid-run (scenario-driven bandwidth
// shifts, link failures, partitions): the emulator stamps every packet
// with the route epoch its path was resolved at, re-resolves the
// remaining path from the packet's current node when the epoch
// advances, and drops packets that would traverse a failed link or
// whose destination became unreachable. On a static topology all of
// this reduces to one integer comparison per hop and forwarding is
// byte-identical to a fully memoized emulator.
package netem

import (
	"bullet/internal/arena"
	"bullet/internal/sim"
	"bullet/internal/topology"
)

// Kind distinguishes application data from protocol control traffic.
type Kind uint8

const (
	// Data packets carry stream content; they are subject to queuing
	// drops and random link loss.
	Data Kind = iota
	// Control packets (RanSub sets, peering requests, Bloom filter
	// refreshes, TFRC feedback) consume link bandwidth and experience
	// queuing delay, but are delivered reliably, modeling small TCP
	// control transfers. Their bytes are accounted as overhead.
	Control
)

// Packet is the unit of transfer between two overlay participants.
type Packet struct {
	Kind    Kind
	Seq     uint64 // data sequence number (Data packets)
	Size    int    // bytes on the wire
	From    int    // source graph node
	To      int    // destination graph node
	Payload any    // protocol message for Control packets
	Trace   bool   // participate in link-stress accounting
	SentAt  sim.Time

	// Transport framing for Data packets, carried inline so the
	// per-packet send path allocates no payload box: the flow id and
	// per-flow sequence, the sender timestamp, and the sender's RTT
	// estimate (see package transport). Unused by Control packets.
	FlowID  uint32
	FlowSeq uint64
	TS      float64
	RTT     float64
}

// Handler receives packets addressed to a registered node.
type Handler func(pkt Packet)

// Config tunes the emulator.
type Config struct {
	// QueueDelayLimit bounds per-link queuing delay; a packet whose
	// wait would exceed it is tail-dropped. Default 150ms.
	QueueDelayLimit sim.Duration
}

type dirState struct {
	busyUntil sim.Time
	bytes     uint64
	drops     uint64 // congestion drops
	lossDrops uint64 // random loss drops
	packets   uint64
	// draws counts the random numbers consumed by this link direction
	// (RED early drop, random loss). Each draw is a pure function of
	// (seed, direction, draw index), so the loss pattern a direction
	// observes depends only on its own traversal history — never on how
	// traffic elsewhere interleaves. That independence is what lets a
	// sharded run reproduce the serial loss sequence exactly: a
	// direction's traversals happen in the same relative order on its
	// owning shard as they do serially.
	draws uint64
}

// inflight is the pooled per-packet forwarding state. The routed path
// is computed once at Send (a shared slice from the router's cache) and
// carried with the packet, so on a static network no hop ever
// re-derives or re-looks-up the route. The path is stamped with the
// route epoch it was resolved at; if the epoch advances while the
// packet is in flight (a scenario failed a link, healed a partition,
// ...), the next hop re-resolves the remaining path from the packet's
// current node.
type inflight struct {
	pkt   Packet
	path  []int32 // link ids, traversal order; owned by the router cache
	i     int     // next path index to traverse
	cur   int     // current node
	epoch uint64  // route epoch path was resolved at
}

// shardCtx is the mutable per-shard forwarding state. In a serial run
// there is exactly one; in a sharded run shard i's context is written
// only by shard i's goroutine during parallel windows (hop events for
// a packet currently at node v run on v's shard) and by the
// single-threaded barrier phase otherwise, so none of it needs locks.
// Aggregate accounting is summed across contexts at read time.
type shardCtx struct {
	// pool backs the shard's in-flight packet states: chunked storage
	// owned by this shard, so one shard's forwarding working set packs
	// onto its own cache lines instead of interleaving with every other
	// shard's (and everything else on the heap).
	pool arena.Arena[inflight]
	// out holds cross-shard handoffs produced during the current
	// window, indexed by destination shard; drained (sorted) at the
	// barrier. nil in serial runs.
	out [][]handoff

	// busyNanos accumulates wall-clock time this shard spent executing
	// window events — the load-balance signal behind ShardStats and the
	// PartitionShards client-weight calibration.
	busyNanos int64

	// Per-shard slice of the aggregate accounting.
	dataBytesSent    uint64
	dataBytesDeliv   uint64
	controlBytes     uint64
	congestionDrops  uint64
	randomLossDrops  uint64
	linkDownDrops    uint64
	rerouted         uint64
	deliveredPackets uint64

	// Link stress: per traced sequence, per link, copy count. Allocated
	// lazily on the first traced packet, so runs that never set
	// Packet.Trace (TraceEvery off) pay nothing for the machinery.
	traceStress map[uint64]map[int32]int

	_ [64]byte // keep neighbouring shards' hot counters off one cache line
}

// handoff is one cross-shard packet transfer: the hop event to push
// into the destination shard's heap at the barrier. schedAt (the
// virtual time the producing hop ran) recovers the serial scheduling
// order of same-instant arrivals from different shards.
type handoff struct {
	at      sim.Time
	schedAt sim.Time
	f       *inflight
}

// Network emulates the physical topology for registered participants.
type Network struct {
	eng      *sim.Engine
	g        *topology.Graph
	rt       *topology.Router
	cfg      Config
	dirs     []dirState // 2*linkID + direction
	handlers []Handler  // indexed by node id
	lossSeed uint64     // keys the per-direction draw streams

	// hopFn is the single reusable callback for hop events; paired with
	// the inflight free lists it makes steady-state forwarding
	// allocation-free (one event per hop, zero heap allocations).
	hopFn func(any)

	ctxs []shardCtx // len 1 serial; one per shard when sharded

	// Sharded execution state (nil/zero in serial runs): the
	// deterministic topology partition, one event heap per shard, and
	// the flag marking that shard goroutines are currently running (so
	// cross-shard scheduling must go through outboxes instead of
	// directly into the target heap).
	plan     *topology.ShardPlan
	engines  []*sim.Engine
	parallel bool
	xq       xferQueue // barrier sort scratch, reused across rounds

	// Round state for the barrier loop (see parallel.go). roundLimit
	// and lookahead are written by the coordinator before the round's
	// first window is published; roundEnd advances at barrier
	// decisions. All reads and writes are ordered by the arrival
	// counter and the per-shard release words.
	wb         *wbarrier
	roundLimit sim.Time
	roundEnd   sim.Time
	lookahead  sim.Duration
}

// New creates an emulator over graph g routed by rt, scheduling on eng.
func New(eng *sim.Engine, g *topology.Graph, rt *topology.Router, cfg Config) *Network {
	if cfg.QueueDelayLimit <= 0 {
		cfg.QueueDelayLimit = 150 * sim.Millisecond
	}
	n := &Network{
		eng:      eng,
		g:        g,
		rt:       rt,
		cfg:      cfg,
		dirs:     make([]dirState, 2*len(g.Links)),
		handlers: make([]Handler, len(g.Nodes)),
		lossSeed: mix64(uint64(eng.Seed()) ^ 0x6e65746d),
		ctxs:     make([]shardCtx, 1),
	}
	n.hopFn = func(a any) { n.hop(a.(*inflight)) }
	return n
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// dirFloat returns the next uniform [0,1) draw for link direction
// dirIdx: a counted, hash-derived stream per direction, independent of
// every other direction and of global event interleaving.
func (n *Network) dirFloat(dirIdx int, ds *dirState) float64 {
	ds.draws++
	z := mix64(n.lossSeed + uint64(dirIdx)*0x9E3779B97F4A7C15 + ds.draws*0xBF58476D1CE4E5B9)
	return float64(z>>11) * (1.0 / (1 << 53))
}

// shardIdx returns the shard owning node (0 in serial runs).
func (n *Network) shardIdx(node int) int {
	if n.plan == nil {
		return 0
	}
	return n.plan.ShardOf[node]
}

// engineFor returns the event heap executing node's events.
func (n *Network) engineFor(shard int) *sim.Engine {
	if n.engines == nil {
		return n.eng
	}
	return n.engines[shard]
}

// getInflight takes a forwarding state from the shard's arena.
func (c *shardCtx) getInflight() *inflight { return c.pool.Get() }

// putInflight retires f to the shard's arena, dropping payload
// references. A handed-off inflight retires into the arena of the shard
// it was delivered on, not the one that allocated it; arenas only ever
// grow, so drifting between shards is harmless.
func (c *shardCtx) putInflight(f *inflight) { c.pool.Put(f) }

// Engine returns the global simulation engine: the clock authority for
// deploy-time setup, scenario schedules, and membership events. Code
// running inside a node's events must use SchedulerFor(node) instead.
func (n *Network) Engine() *sim.Engine { return n.eng }

// SchedulerFor returns the scheduler that executes node's events: the
// node's shard engine in a sharded run, the global engine otherwise.
// Endpoints capture it at construction; all node-local timers and
// clock reads go through it.
func (n *Network) SchedulerFor(node int) sim.Scheduler {
	return n.engineFor(n.shardIdx(node))
}

// Router returns the route oracle.
func (n *Network) Router() *topology.Router { return n.rt }

// Graph returns the topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Register installs the packet handler for node id, replacing any
// previous handler.
func (n *Network) Register(node int, h Handler) { n.handlers[node] = h }

// Unregister removes the handler for node id; packets in flight to it
// are silently discarded on arrival.
func (n *Network) Unregister(node int) { n.handlers[node] = nil }

// Send injects a packet at pkt.From at the current virtual time of
// From's shard. The packet traverses the fixed shortest path to pkt.To;
// it may be dropped on the way. The path is resolved once here (from
// the router's memoized flat tables) and carried with the packet. Send
// must be called from From's shard (an endpoint sending on behalf of
// its node, or the single-threaded barrier phase).
func (n *Network) Send(pkt Packet) {
	sh := n.shardIdx(pkt.From)
	c := &n.ctxs[sh]
	pkt.SentAt = n.engineFor(sh).Now()
	if pkt.Kind == Control {
		c.controlBytes += uint64(pkt.Size)
	} else {
		c.dataBytesSent += uint64(pkt.Size)
	}
	path := n.rt.Path(pkt.From, pkt.To)
	if path == nil && pkt.From != pkt.To {
		return // unreachable: dropped
	}
	f := c.getInflight()
	f.pkt = pkt
	f.path = path
	f.i = 0
	f.cur = pkt.From
	f.epoch = n.g.Epoch()
	n.hop(f)
}

// hop processes arrival of the packet at the input of path[i] and
// schedules the next-hop arrival. The inflight state is released to the
// pool when the packet is delivered or dropped.
//
// If the route epoch advanced while the packet was in flight, the
// remaining path is re-resolved from the packet's current node before
// the hop proceeds: packets reroute around failures mid-flight, and a
// packet whose destination became unreachable is dropped. On a static
// network the epoch comparison never fires.
func (n *Network) hop(f *inflight) {
	// Serial runs resolve everything to shard 0 and the global engine up
	// front: hop is the single hottest callback in the process, and the
	// plan==nil checks buried in shardIdx/engineFor are measurable at
	// millions of hops per second.
	sh := 0
	eng := n.eng
	if n.plan != nil {
		sh = n.plan.ShardOf[f.cur]
		eng = n.engines[sh]
	}
	c := &n.ctxs[sh]
	if e := n.g.Epoch(); f.epoch != e {
		f.epoch = e
		f.path = n.rt.Path(f.cur, f.pkt.To)
		f.i = 0
		c.rerouted++
		if f.path == nil && f.cur != f.pkt.To {
			c.linkDownDrops++
			c.putInflight(f)
			return
		}
	}
	if f.i == len(f.path) {
		n.deliver(c, f.pkt)
		c.putInflight(f)
		return
	}
	lid := f.path[f.i]
	l := &n.g.Links[lid]
	if l.Down {
		// Invariant guard, not a normal path: every mutator that sets
		// Down also bumps the route epoch, so the re-resolution above
		// keeps current-epoch paths free of down links. This fires only
		// if Link state was mutated directly (Links is exported) without
		// going through the Graph mutators; dropping is the safe answer.
		c.linkDownDrops++
		c.putInflight(f)
		return
	}
	dir := 0
	next := l.B
	if f.cur == l.B {
		dir = 1
		next = l.A
	}
	dirIdx := 2*int(lid) + dir
	ds := &n.dirs[dirIdx]

	now := eng.Now()
	start := now
	if ds.busyUntil > start {
		start = ds.busyUntil
	}
	// Queue admission for data: probabilistic early drop (RED-style)
	// once the wait passes half the bound, ramping to certain drop at
	// the bound. Early drop gives transports a timely congestion signal
	// and breaks the phase synchronization a deterministic tail-drop
	// would impose on competing flows.
	if f.pkt.Kind == Data {
		wait := start - now
		limit := n.cfg.QueueDelayLimit
		if wait > limit/2 {
			p := float64(wait-limit/2) / float64(limit-limit/2)
			if p >= 1 || n.dirFloat(dirIdx, ds) < p {
				ds.drops++
				c.congestionDrops++
				c.putInflight(f)
				return
			}
		}
	}
	// Random loss is applied per traversal, before transmission.
	if f.pkt.Kind == Data && l.Loss > 0 && n.dirFloat(dirIdx, ds) < l.Loss {
		ds.lossDrops++
		c.randomLossDrops++
		c.putInflight(f)
		return
	}
	ser := sim.Duration(float64(f.pkt.Size) / l.Bytes * float64(sim.Second))
	ds.busyUntil = start + ser
	ds.bytes += uint64(f.pkt.Size)
	ds.packets++
	if f.pkt.Trace {
		if c.traceStress == nil {
			c.traceStress = make(map[uint64]map[int32]int)
		}
		m := c.traceStress[f.pkt.Seq]
		if m == nil {
			m = make(map[int32]int)
			c.traceStress[f.pkt.Seq] = m
		}
		m[lid]++
	}
	arrive := ds.busyUntil + l.Delay
	f.i++
	f.cur = next
	if n.plan == nil {
		eng.ScheduleArg(arrive, n.hopFn, f)
		return
	}
	tgt := n.plan.ShardOf[next]
	if n.parallel && tgt != sh {
		// Cross-shard: the link is on the cut, so arrive lies at or
		// beyond the window boundary; park the packet for the barrier
		// exchange instead of touching the other shard's heap.
		c.out[tgt] = append(c.out[tgt], handoff{at: arrive, schedAt: now, f: f})
		return
	}
	n.engineFor(tgt).ScheduleArg(arrive, n.hopFn, f)
}

func (n *Network) deliver(c *shardCtx, pkt Packet) {
	h := n.handlers[pkt.To]
	if h == nil {
		return
	}
	if pkt.Kind == Data {
		c.dataBytesDeliv += uint64(pkt.Size)
	}
	c.deliveredPackets++
	h(pkt)
}

// Stats is a snapshot of aggregate emulator accounting.
type Stats struct {
	DataBytesSent      uint64
	DataBytesDelivered uint64
	ControlBytes       uint64
	CongestionDrops    uint64
	RandomLossDrops    uint64
	// LinkDownDrops counts packets lost to failed links or partitions:
	// either the destination became unreachable mid-flight, or the next
	// link went down with no alternative route.
	LinkDownDrops uint64
	// ReroutedPackets counts in-flight packets that observed a route
	// epoch change and re-resolved their remaining path.
	ReroutedPackets  uint64
	DeliveredPackets uint64
}

// Stats returns a snapshot of aggregate counters, summed across the
// per-shard contexts.
func (n *Network) Stats() Stats {
	var s Stats
	for i := range n.ctxs {
		c := &n.ctxs[i]
		s.DataBytesSent += c.dataBytesSent
		s.DataBytesDelivered += c.dataBytesDeliv
		s.ControlBytes += c.controlBytes
		s.CongestionDrops += c.congestionDrops
		s.RandomLossDrops += c.randomLossDrops
		s.LinkDownDrops += c.linkDownDrops
		s.ReroutedPackets += c.rerouted
		s.DeliveredPackets += c.deliveredPackets
	}
	return s
}

// LinkStress summarizes link-stress accounting over traced packets, in
// the manner of §4.2: for each traced packet, the stress of a link is
// the number of copies of that packet that crossed it; Avg averages
// across all (packet, link) pairs and Max is the absolute maximum.
func (n *Network) LinkStress() (avg float64, max int) {
	var sum, cnt int
	// A traced packet's copies can cross links owned by different
	// shards, so the (seq, link) counts are merged across contexts
	// before aggregating.
	merged := make(map[uint64]map[int32]int)
	for i := range n.ctxs {
		for seq, links := range n.ctxs[i].traceStress {
			m := merged[seq]
			if m == nil {
				m = make(map[int32]int, len(links))
				merged[seq] = m
			}
			for lid, c := range links {
				m[lid] += c
			}
		}
	}
	for _, links := range merged {
		for _, c := range links {
			sum += c
			cnt++
			if c > max {
				max = c
			}
		}
	}
	if cnt == 0 {
		return 0, 0
	}
	return float64(sum) / float64(cnt), max
}

// LinkUtilization returns bytes carried per direction for link id.
func (n *Network) LinkUtilization(link int) (ab, ba uint64) {
	return n.dirs[2*link].bytes, n.dirs[2*link+1].bytes
}
