package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResemblanceIdentical(t *testing.T) {
	p := NewPermutations(DefaultEntries, 1)
	a, b := NewTicket(p), NewTicket(p)
	for i := uint64(0); i < 500; i++ {
		a.Add(i)
		b.Add(i)
	}
	if r := Resemblance(a, b); r != 1 {
		t.Fatalf("identical sets resemblance %v", r)
	}
}

func TestResemblanceDisjoint(t *testing.T) {
	p := NewPermutations(DefaultEntries, 2)
	a, b := NewTicket(p), NewTicket(p)
	for i := uint64(0); i < 500; i++ {
		a.Add(i)
		b.Add(i + 1_000_000)
	}
	if r := Resemblance(a, b); r > 0.2 {
		t.Fatalf("disjoint sets resemblance %v", r)
	}
}

func TestResemblanceEstimatesJaccard(t *testing.T) {
	// Sets with known Jaccard similarity 1/3: A=[0,1000), B=[500,1500).
	// Use more entries for tighter estimation.
	p := NewPermutations(120, 3)
	a, b := NewTicket(p), NewTicket(p)
	for i := uint64(0); i < 1000; i++ {
		a.Add(i)
		b.Add(i + 500)
	}
	r := Resemblance(a, b)
	if math.Abs(r-1.0/3) > 0.15 {
		t.Fatalf("resemblance %v, want ~0.333", r)
	}
}

func TestResemblanceSymmetric(t *testing.T) {
	p := NewPermutations(DefaultEntries, 4)
	f := func(xs, ys []uint16) bool {
		a, b := NewTicket(p), NewTicket(p)
		for _, x := range xs {
			a.Add(uint64(x))
		}
		for _, y := range ys {
			b.Add(uint64(y))
		}
		r1, r2 := Resemblance(a, b), Resemblance(b, a)
		return r1 == r2 && r1 >= 0 && r1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTickets(t *testing.T) {
	p := NewPermutations(DefaultEntries, 5)
	a, b := NewTicket(p), NewTicket(p)
	if !a.Empty() {
		t.Fatal("new ticket not empty")
	}
	if r := Resemblance(a, b); r != 1 {
		t.Fatalf("two empty tickets resemblance %v, want 1", r)
	}
	a.Add(7)
	if a.Empty() {
		t.Fatal("ticket empty after add")
	}
	if r := Resemblance(a, b); r != 0 {
		t.Fatalf("empty vs non-empty resemblance %v, want 0", r)
	}
}

func TestReset(t *testing.T) {
	p := NewPermutations(DefaultEntries, 6)
	a := NewTicket(p)
	a.Add(1)
	a.Reset()
	if !a.Empty() {
		t.Fatal("not empty after reset")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewPermutations(DefaultEntries, 7)
	a := NewTicket(p)
	a.Add(1)
	c := a.Clone()
	a.Add(2)
	if Resemblance(a, c) == 1 && a.vals[0] != c.vals[0] {
		t.Fatal("clone inconsistent")
	}
	// Adding to the original must not affect the clone's storage.
	c2 := a.Clone()
	before := make([]uint32, len(c2.vals))
	copy(before, c2.vals)
	a.Add(99999)
	for i := range before {
		if c2.vals[i] != before[i] {
			t.Fatal("clone shares storage")
		}
	}
}

func TestDefaultTicketWireSize(t *testing.T) {
	p := NewPermutations(DefaultEntries, 8)
	tk := NewTicket(p)
	if tk.SizeBytes() != 120 {
		t.Fatalf("default ticket is %d bytes, paper says 120", tk.SizeBytes())
	}
}

func TestAddOrderIrrelevant(t *testing.T) {
	p := NewPermutations(DefaultEntries, 9)
	a, b := NewTicket(p), NewTicket(p)
	xs := []uint64{5, 17, 99, 3, 12000, 7}
	for _, x := range xs {
		a.Add(x)
	}
	for i := len(xs) - 1; i >= 0; i-- {
		b.Add(xs[i])
	}
	if Resemblance(a, b) != 1 {
		t.Fatal("ticket depends on insertion order")
	}
}
