// Package sketch implements min-wise summary tickets (§2.3, Broder's
// min-wise sketches): small fixed-size unbiased random samples of a
// node's working set. Each entry is maintained by a linear permutation
// P_j(x) = (a_j*x + b_j) mod U and holds the minimum permuted value
// seen. The resemblance of two working sets is estimated by the
// fraction of equal entries, which Bullet uses to pick the peer with
// the *lowest* similarity (most disjoint content).
package sketch

import "math/rand"

// DefaultEntries gives the paper's 120-byte summary ticket with
// 4-byte entries.
const DefaultEntries = 30

// Universe is the modulus U of the permutation functions. A Mersenne
// prime keeps (a*x+b) mod U well distributed for 64-bit x.
const Universe = (1 << 31) - 1

// Permutations is a shared family of permutation functions. All nodes
// in a run must use the same family for tickets to be comparable.
type Permutations struct {
	a, b []uint64
}

// NewPermutations creates k permutation functions from the seed.
func NewPermutations(k int, seed int64) *Permutations {
	rng := rand.New(rand.NewSource(seed))
	p := &Permutations{a: make([]uint64, k), b: make([]uint64, k)}
	for i := 0; i < k; i++ {
		p.a[i] = uint64(rng.Int63n(Universe-1)) + 1 // a != 0
		p.b[i] = uint64(rng.Int63n(Universe))
	}
	return p
}

// K returns the number of permutation functions (ticket entries).
func (p *Permutations) K() int { return len(p.a) }

// empty is the sentinel for an unpopulated entry.
const empty = uint32(0xFFFFFFFF)

// Ticket is a summary ticket: one minimum per permutation function.
type Ticket struct {
	perms *Permutations
	vals  []uint32
}

// NewTicket creates an empty ticket over the permutation family.
func NewTicket(p *Permutations) *Ticket {
	t := &Ticket{perms: p, vals: make([]uint32, p.K())}
	for i := range t.vals {
		t.vals[i] = empty
	}
	return t
}

// Add inserts element x, updating each entry with the smaller permuted
// value.
func (t *Ticket) Add(x uint64) {
	for j := range t.vals {
		v := uint32((t.perms.a[j]*(x%Universe) + t.perms.b[j]) % Universe)
		if v < t.vals[j] {
			t.vals[j] = v
		}
	}
}

// Reset empties the ticket (Bullet rebuilds tickets as the working-set
// window slides).
func (t *Ticket) Reset() {
	for i := range t.vals {
		t.vals[i] = empty
	}
}

// Empty reports whether no element has been added.
func (t *Ticket) Empty() bool {
	for _, v := range t.vals {
		if v != empty {
			return false
		}
	}
	return true
}

// Clone returns an independent copy, e.g. for shipping in a RanSub set.
func (t *Ticket) Clone() *Ticket {
	c := &Ticket{perms: t.perms, vals: make([]uint32, len(t.vals))}
	copy(c.vals, t.vals)
	return c
}

// SizeBytes is the wire size of the ticket (the paper's 120 bytes for
// 30 entries).
func (t *Ticket) SizeBytes() int { return len(t.vals) * 4 }

// Resemblance estimates the Jaccard similarity of the underlying sets:
// the number of equal entries divided by the number of entries. Both
// tickets must come from the same permutation family.
func Resemblance(a, b *Ticket) float64 {
	if len(a.vals) != len(b.vals) {
		return 0
	}
	eq := 0
	populated := 0
	for i := range a.vals {
		if a.vals[i] == empty && b.vals[i] == empty {
			continue
		}
		populated++
		if a.vals[i] == b.vals[i] {
			eq++
		}
	}
	if populated == 0 {
		return 1 // two empty sets are identical
	}
	return float64(eq) / float64(populated)
}
