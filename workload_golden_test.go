package bullet_test

import (
	"math"
	"testing"

	"bullet"
)

// Golden traces for the default-CBR workload across all four
// protocols. The constants were captured from the pre-workload-layer
// implementation (each protocol carrying its own private source pump);
// a run through the shared workload pump with a default CBR source
// must reproduce them bit-for-bit. Together with TestGoldenStreamerTrace
// these pin the workload refactor: introducing internal/workload must
// not change simulation semantics, only who owns packet generation.
func TestGoldenWorkloadCBRTraces(t *testing.T) {
	type golden struct {
		fired     uint64
		sent      uint64
		delivered uint64
		pkts      uint64
		useful    float64
	}
	cases := []struct {
		protocol string
		want     golden
	}{
		{"bullet", golden{2766401, 188934852, 176410620, 197471, 495.5625}},
		{"streamer", golden{855928, 72699372, 71682864, 70312, 234.28333333333333}},
		{"gossip", golden{8998609, 400690080, 352586544, 705322, 469.46756756756756}},
		{"anti-entropy", golden{975239, 72356472, 71254620, 79017, 213.56923076923078}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.protocol, func(t *testing.T) {
			w, err := bullet.NewWorld(bullet.WorldConfig{
				TotalNodes: 1500, Clients: 40, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			tree, err := w.RandomTree(5)
			if err != nil {
				t.Fatal(err)
			}
			var p bullet.Protocol
			switch tc.protocol {
			case "bullet":
				cfg := bullet.DefaultConfig(600)
				cfg.Start = 5 * bullet.Second
				cfg.Duration = 60 * bullet.Second
				cfg.MaxSenders, cfg.MaxReceivers = 4, 4
				p = bullet.BulletProtocol{Config: cfg}
			case "streamer":
				p = bullet.StreamerProtocol{Config: bullet.StreamConfig{
					RateKbps: 600, PacketSize: 1500,
					Start: 5 * bullet.Second, Duration: 60 * bullet.Second,
				}}
			case "gossip":
				p = bullet.GossipProtocol{Config: bullet.GossipConfig{
					RateKbps: 600, PacketSize: 1500, Fanout: 5,
					Start: 5 * bullet.Second, Duration: 60 * bullet.Second,
				}}
			case "anti-entropy":
				p = bullet.AntiEntropyProtocol{Config: bullet.AntiEntropyConfig{
					RateKbps: 600, PacketSize: 1500,
					Epoch: 20 * bullet.Second, Peers: 5, Window: 2000,
					Start: 5 * bullet.Second, Duration: 60 * bullet.Second,
				}}
			}
			d, err := w.Deploy(p, tree)
			if err != nil {
				t.Fatal(err)
			}
			w.Run(70 * bullet.Second)

			if fired := w.Network().Engine().Fired(); fired != tc.want.fired {
				t.Errorf("Engine.Fired() = %d, want %d", fired, tc.want.fired)
			}
			st := w.Network().Stats()
			if st.DataBytesSent != tc.want.sent {
				t.Errorf("DataBytesSent = %d, want %d", st.DataBytesSent, tc.want.sent)
			}
			if st.DataBytesDelivered != tc.want.delivered {
				t.Errorf("DataBytesDelivered = %d, want %d", st.DataBytesDelivered, tc.want.delivered)
			}
			if st.DeliveredPackets != tc.want.pkts {
				t.Errorf("DeliveredPackets = %d, want %d", st.DeliveredPackets, tc.want.pkts)
			}
			useful := d.Collector().MeanOver(30*bullet.Second, 70*bullet.Second, bullet.Useful)
			if math.Abs(useful-tc.want.useful) > 1e-9 {
				t.Errorf("useful = %.12f Kbps, want %.12f", useful, tc.want.useful)
			}
		})
	}
}
