// Quickstart: deploy Bullet on a random tree over a generated
// transit-stub topology, stream 600 Kbps for two minutes, and compare
// the mesh's delivered bandwidth against plain tree streaming on the
// same tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bullet"
)

func main() {
	const (
		rateKbps = 600
		seed     = 42
	)

	// Bullet over a random tree.
	w, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500,
		Clients:    40,
		Bandwidth:  bullet.MediumBandwidth,
		Seed:       seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bullet.DefaultConfig(rateKbps)
	cfg.Start = 20 * bullet.Second
	cfg.Duration = 120 * bullet.Second
	cfg.MaxSenders, cfg.MaxReceivers = 4, 4 // mesh degree for a 40-node overlay
	sys, meshCol, err := w.DeployBullet(tree, cfg)
	if err != nil {
		log.Fatal(err)
	}
	w.Run(150 * bullet.Second)

	// The same tree, plain TFRC streaming, in a fresh world.
	w2, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500, Clients: 40,
		Bandwidth: bullet.MediumBandwidth, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree2, err := w2.RandomTree(5)
	if err != nil {
		log.Fatal(err)
	}
	treeCol, err := w2.DeployStreamer(tree2, bullet.StreamConfig{
		RateKbps: rateKbps, PacketSize: 1500,
		Start: 20 * bullet.Second, Duration: 120 * bullet.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	w2.Run(150 * bullet.Second)

	steady := func(c *bullet.Collector) float64 {
		return c.MeanOver(80*bullet.Second, 150*bullet.Second, bullet.Useful)
	}
	mesh, plain := steady(meshCol), steady(treeCol)
	fmt.Printf("target stream rate:          %d Kbps\n", rateKbps)
	fmt.Printf("plain streaming (same tree): %6.0f Kbps mean per node\n", plain)
	fmt.Printf("Bullet mesh:                 %6.0f Kbps mean per node (%.1fx)\n", mesh, mesh/plain)
	fmt.Printf("duplicate ratio:             %6.1f %%\n", meshCol.DuplicateRatio()*100)
	fmt.Printf("control overhead:            %6.1f Kbps per node\n", sys.ControlOverheadKbps())
	fmt.Printf("mean senders per node:       %6.1f\n", sys.MeanSenders())
}
