// Quickstart: deploy Bullet on a random tree over a generated
// transit-stub topology through the Protocol/Deployment API, stream
// 600 Kbps for two minutes, and compare the mesh's delivered bandwidth
// against plain tree streaming on the same tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bullet"
)

func main() {
	const (
		rateKbps = 600
		seed     = 42
	)

	// Bullet over a random tree. Any protocol deploys the same way:
	// construct its Protocol struct (or resolve a default-configured one
	// with bullet.ProtocolByName) and pass it to World.Deploy.
	w, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500,
		Clients:    40,
		Bandwidth:  bullet.MediumBandwidth,
		Seed:       seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bullet.DefaultConfig(rateKbps)
	cfg.Start = 20 * bullet.Second
	cfg.Duration = 120 * bullet.Second
	cfg.MaxSenders, cfg.MaxReceivers = 4, 4 // mesh degree for a 40-node overlay
	mesh, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
	if err != nil {
		log.Fatal(err)
	}
	w.Run(150 * bullet.Second)

	// The same tree, plain TFRC streaming, in a fresh world.
	w2, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500, Clients: 40,
		Bandwidth: bullet.MediumBandwidth, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree2, err := w2.RandomTree(5)
	if err != nil {
		log.Fatal(err)
	}
	plainDep, err := w2.Deploy(bullet.StreamerProtocol{Config: bullet.StreamConfig{
		RateKbps: rateKbps, PacketSize: 1500,
		Start: 20 * bullet.Second, Duration: 120 * bullet.Second,
	}}, tree2)
	if err != nil {
		log.Fatal(err)
	}
	w2.Run(150 * bullet.Second)

	steady := func(c *bullet.Collector) float64 {
		return c.MeanOver(80*bullet.Second, 150*bullet.Second, bullet.Useful)
	}
	meshKbps, plainKbps := steady(mesh.Collector()), steady(plainDep.Collector())
	fmt.Printf("target stream rate:          %d Kbps\n", rateKbps)
	fmt.Printf("plain streaming (same tree): %6.0f Kbps mean per node\n", plainKbps)
	fmt.Printf("Bullet mesh:                 %6.0f Kbps mean per node (%.1fx)\n", meshKbps, meshKbps/plainKbps)
	fmt.Printf("duplicate ratio:             %6.1f %%\n", mesh.Collector().DuplicateRatio()*100)
	fmt.Printf("live participants:           %6d (protocol %q)\n", len(mesh.Nodes()), mesh.Protocol())
}
