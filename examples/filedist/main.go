// File distribution with LT codes: the digital-fountain use case the
// paper motivates (§2.1). A 1 MB file is LT-encoded; encoded symbols
// are streamed through the Bullet mesh; every receiver decodes the
// file as soon as it has collected any (1+eps)k symbols — no receiver
// needs any specific packet, so the mesh's disjoint delivery never has
// a "last missing byte" problem.
//
//	go run ./examples/filedist
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"bullet"
	"bullet/internal/codec"
)

func main() {
	const (
		fileSize  = 1 << 20 // 1 MB
		blockSize = 1400
		ltSeed    = 99
	)

	// The payload to disseminate.
	payload := make([]byte, fileSize)
	rand.New(rand.NewSource(1)).Read(payload)
	enc, err := codec.NewEncoder(payload, blockSize, ltSeed, codec.DefaultLTParams)
	if err != nil {
		log.Fatal(err)
	}
	k := enc.K()
	fmt.Printf("file: %d bytes -> k=%d source blocks of %d bytes\n", fileSize, k, blockSize)

	// Deploy Bullet; the stream sequence number doubles as the LT
	// symbol ID, so any received sequence is a usable symbol.
	w, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500, Clients: 30,
		Bandwidth: bullet.MediumBandwidth, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bullet.DefaultConfig(800) // 800 Kbps of encoded symbols
	cfg.PacketSize = blockSize
	cfg.Start = 10 * bullet.Second
	cfg.Duration = 280 * bullet.Second
	cfg.MaxSenders, cfg.MaxReceivers = 4, 4
	_, col, err := w.DeployBullet(tree, cfg)
	if err != nil {
		log.Fatal(err)
	}
	w.Run(300 * bullet.Second)

	// Decode at every receiver from the sequences it obtained. The
	// collector tells us how many distinct packets each node received;
	// reconstruct that per-node symbol budget and decode.
	fmt.Printf("\nper-node decode results (need ~%d symbols):\n", k)
	decoded, total := 0, 0
	for _, node := range w.Participants() {
		if node == tree.Root {
			continue
		}
		total++
		// Symbols received = distinct useful packets; their IDs are the
		// stream sequences delivered to this node in order.
		var got uint64
		for _, pt := range col.NodeSeries(node, bullet.Useful) {
			got += uint64(pt.Kbps * 1000 / 8 / float64(blockSize+24)) // packets in this second
		}
		dec, err := codec.NewDecoder(k, blockSize, ltSeed, codec.DefaultLTParams)
		if err != nil {
			log.Fatal(err)
		}
		for id := uint64(0); id < got && !dec.Done(); id++ {
			dec.Add(enc.Symbol(id))
		}
		if dec.Done() {
			out, _ := dec.Payload()
			if !bytes.Equal(out[:fileSize], payload) {
				log.Fatalf("node %d decoded corrupt payload", node)
			}
			decoded++
		}
	}
	fmt.Printf("  %d/%d receivers fully decoded the %d-byte file\n", decoded, total, fileSize)
	fmt.Printf("  mean received bandwidth: %.0f Kbps\n",
		col.MeanOver(60*bullet.Second, 300*bullet.Second, bullet.Useful))
	fmt.Printf("  LT reception overhead at k=%d: decode needs ~(1+eps)k symbols, eps~0.05-0.3\n", k)
}
