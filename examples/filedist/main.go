// File distribution with LT codes: the digital-fountain use case the
// paper motivates (§2.1), on the first-class Workload API. A 1 MB file
// is LT-encoded; the FileWorkload streams encoded symbols through the
// Bullet mesh with the stream sequence number doubling as the symbol
// ID, so any (1+eps)k distinct receipts decode the file — no receiver
// needs any specific packet, and the mesh's disjoint delivery never
// has a "last missing byte" problem. A WorkloadSink records the exact
// symbol IDs each node obtained, and the metrics collector reports the
// per-node completion-time CDF.
//
//	go run ./examples/filedist
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"bullet"
	"bullet/internal/codec"
)

// symbolRecorder is a WorkloadSink: it keeps, per node, the IDs of the
// symbols delivered there (first copies only), so decoding below uses
// the genuinely received symbol set.
type symbolRecorder struct {
	got map[int][]uint64
}

func (r *symbolRecorder) Deliver(now bullet.Time, node int, seq uint64) {
	r.got[node] = append(r.got[node], seq)
}

func main() {
	const (
		fileSize  = 1 << 20 // 1 MB
		blockSize = 1400
		ltSeed    = 99
	)

	// The payload to disseminate.
	payload := make([]byte, fileSize)
	rand.New(rand.NewSource(1)).Read(payload)
	enc, err := codec.NewEncoder(payload, blockSize, ltSeed, codec.DefaultLTParams)
	if err != nil {
		log.Fatal(err)
	}
	k := enc.K()
	fmt.Printf("file: %d bytes -> k=%d source blocks of %d bytes\n", fileSize, k, blockSize)

	// Deploy Bullet with a FileWorkload: the workload layer owns
	// packet generation, completion is (1+eps)k distinct symbols, and
	// the sink observes every first-copy delivery.
	w, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500, Clients: 30,
		Bandwidth: bullet.MediumBandwidth, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		log.Fatal(err)
	}
	sink := &symbolRecorder{got: make(map[int][]uint64)}
	cfg := bullet.DefaultConfig(800) // 800 Kbps of encoded symbols
	cfg.PacketSize = blockSize
	cfg.Start = 10 * bullet.Second
	cfg.Duration = 280 * bullet.Second
	cfg.MaxSenders, cfg.MaxReceivers = 4, 4
	cfg.Workload = bullet.FileWorkload{
		RateKbps: 800, PacketSize: blockSize, K: k, Overhead: 0.15,
	}
	cfg.Sink = sink
	d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
	if err != nil {
		log.Fatal(err)
	}
	w.Run(300 * bullet.Second)

	// Decode at every receiver from the symbol IDs it actually
	// obtained.
	fmt.Printf("\nper-node decode results (need ~%d symbols):\n", k)
	decoded, total := 0, 0
	for _, node := range w.Participants() {
		if node == tree.Root {
			continue
		}
		total++
		dec, err := codec.NewDecoder(k, blockSize, ltSeed, codec.DefaultLTParams)
		if err != nil {
			log.Fatal(err)
		}
		for _, id := range sink.got[node] {
			if dec.Add(enc.Symbol(id)) {
				break
			}
		}
		if dec.Done() {
			out, _ := dec.Payload()
			if !bytes.Equal(out[:fileSize], payload) {
				log.Fatalf("node %d decoded corrupt payload", node)
			}
			decoded++
		}
	}
	fmt.Printf("  %d/%d receivers fully decoded the %d-byte file\n", decoded, total, fileSize)

	// The collector tracked completion automatically (FileWorkload is
	// finite): the CDF is each node's time to its (1+eps)k'th distinct
	// symbol.
	cdf := d.Collector().CompletionCDF()
	if len(cdf) > 0 {
		fmt.Printf("  completion times: first %.1fs, median %.1fs, last %.1fs (%d/%d nodes)\n",
			cdf[0], cdf[len(cdf)/2], cdf[len(cdf)-1], len(cdf), total)
	}
	fmt.Printf("  mean received bandwidth: %.0f Kbps\n",
		d.Collector().MeanOver(60*bullet.Second, 300*bullet.Second, bullet.Useful))
	fmt.Printf("  workload: %s, completion target %d distinct symbols\n",
		d.Workload().Name(), d.Collector().CompletionTarget())
}
