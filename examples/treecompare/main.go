// Tree builders head-to-head: builds the four overlay trees this
// repository implements over the same topology — random, offline
// greedy bottleneck (OMBT, §4.1), Overcast-like online, and the
// handcrafted good/worst trees of §4.7 — then streams over each and
// reports delivered bandwidth, tree depth, and the §4.1 bottleneck
// objective value.
//
//	go run ./examples/treecompare
package main

import (
	"fmt"
	"log"

	"bullet"
	"bullet/internal/overlay"
)

func main() {
	const rateKbps = 600

	type entry struct {
		name  string
		build func(w *bullet.World) (*bullet.Tree, error)
	}
	entries := []entry{
		{"random(deg<=5)", func(w *bullet.World) (*bullet.Tree, error) { return w.RandomTree(5) }},
		{"bottleneck(OMBT)", func(w *bullet.World) (*bullet.Tree, error) { return w.BottleneckTree() }},
		{"overcast-like", func(w *bullet.World) (*bullet.Tree, error) { return w.OvercastTree(6) }},
		{"good(handcrafted)", func(w *bullet.World) (*bullet.Tree, error) {
			return overlay.Handcrafted(w.Router(), w.Participants(), w.Participants()[0], 1500, 3, true)
		}},
		{"worst(handcrafted)", func(w *bullet.World) (*bullet.Tree, error) {
			return overlay.Handcrafted(w.Router(), w.Participants(), w.Participants()[0], 1500, 3, false)
		}},
	}

	fmt.Printf("%-20s %8s %6s %14s\n", "tree", "Kbps", "depth", "objective Kbps")
	for _, e := range entries {
		w, err := bullet.NewWorld(bullet.WorldConfig{
			TotalNodes: 1500, Clients: 40,
			Bandwidth: bullet.LowBandwidth, Seed: 21,
		})
		if err != nil {
			log.Fatal(err)
		}
		tree, err := e.build(w)
		if err != nil {
			log.Fatal(err)
		}
		d, err := w.Deploy(bullet.StreamerProtocol{Config: bullet.StreamConfig{
			RateKbps: rateKbps, PacketSize: 1500,
			Start: 10 * bullet.Second, Duration: 110 * bullet.Second,
		}}, tree)
		if err != nil {
			log.Fatal(err)
		}
		col := d.Collector()
		w.Run(120 * bullet.Second)
		obj := overlay.BottleneckRate(w.Router(), tree, 1500) * 8 / 1000
		fmt.Printf("%-20s %8.0f %6d %14.0f\n",
			e.name,
			col.MeanOver(50*bullet.Second, 120*bullet.Second, bullet.Useful),
			tree.Depth(), obj)
	}
}
