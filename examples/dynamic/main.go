// Command dynamic demonstrates the network-dynamics subsystem: it
// streams over Bullet while a scenario fails the worst-case subtree's
// access link mid-run, restores it, and then squeezes it with an
// oscillating bottleneck — and prints how useful bandwidth rides
// through each disturbance.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"bullet"
)

func main() {
	w, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500, Clients: 40, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		log.Fatal(err)
	}

	// Victim: the root child with the most overlay descendants, cut off
	// from the network at its single (degree-one) access link.
	victim, best := tree.HeaviestChild(tree.Root)
	lid := w.Graph().AccessLink(victim)
	orig := w.Graph().Links[lid].Kbps()
	fmt.Printf("victim node %d (%d descendants), access link %d at %.0f Kbps\n",
		victim, best, lid, orig)

	cfg := bullet.DefaultConfig(600)
	cfg.Start = 10 * bullet.Second
	cfg.Duration = 170 * bullet.Second
	d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
	if err != nil {
		log.Fatal(err)
	}
	col := d.Collector()

	// The schedule: a 30s partition, then an oscillating bottleneck.
	w.Scenario(bullet.NewScenario().
		At(60*bullet.Second, bullet.FailLink(lid)).
		At(90*bullet.Second, bullet.RestoreLink(lid)).
		Oscillate(120*bullet.Second, 20*bullet.Second, 2,
			bullet.SetBandwidth(lid, orig*0.2),
			bullet.SetBandwidth(lid, orig)))

	w.Run(180 * bullet.Second)

	phases := []struct {
		name     string
		from, to bullet.Time
	}{
		{"steady state ", 30 * bullet.Second, 60 * bullet.Second},
		{"link failed  ", 65 * bullet.Second, 90 * bullet.Second},
		{"restored     ", 95 * bullet.Second, 120 * bullet.Second},
		{"oscillating  ", 120 * bullet.Second, 160 * bullet.Second},
		{"settled      ", 160 * bullet.Second, 180 * bullet.Second},
	}
	for _, p := range phases {
		fmt.Printf("%s %3.0f-%3.0fs: %6.1f Kbps useful\n",
			p.name, p.from.ToSeconds(), p.to.ToSeconds(),
			col.MeanOver(p.from, p.to, bullet.Useful))
	}
	st := w.Network().Stats()
	fmt.Printf("rerouted in-flight packets: %d, dropped on failed links: %d\n",
		st.ReroutedPackets, st.LinkDownDrops)
}
