// Churn: crash a quarter of the overlay mid-stream and watch Bullet's
// survivors recover while the plain streamer's orphaned subtrees
// starve. Membership events (CrashNode, RestartNode, JoinNode,
// ChurnNodes) share one declarative schedule with link dynamics and
// replay deterministically.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"bullet"
)

func main() {
	const seed = 42

	for _, name := range []string{"bullet", "streamer"} {
		w, err := bullet.NewWorld(bullet.WorldConfig{
			TotalNodes: 1500, Clients: 40, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		tree, err := w.RandomTree(5)
		if err != nil {
			log.Fatal(err)
		}

		var p bullet.Protocol
		if name == "bullet" {
			cfg := bullet.DefaultConfig(600)
			cfg.Start = 10 * bullet.Second
			cfg.Duration = 140 * bullet.Second
			cfg.MaxSenders, cfg.MaxReceivers = 4, 4
			p = bullet.BulletProtocol{Config: cfg}
		} else {
			p = bullet.StreamerProtocol{Config: bullet.StreamConfig{
				RateKbps: 600, PacketSize: 1500,
				Start: 10 * bullet.Second, Duration: 140 * bullet.Second,
			}}
		}
		d, err := w.Deploy(p, tree)
		if err != nil {
			log.Fatal(err)
		}

		// Crash every 4th participant at t=60s; one of them comes back
		// at t=110s. The schedule is pure data: the run stays a pure
		// function of (config, seed, schedule).
		total := len(tree.Participants)
		var victims []int
		for i, n := range tree.Participants {
			if n != tree.Root && i%4 == 0 {
				victims = append(victims, n)
			}
		}
		w.Scenario(bullet.NewScenario().
			At(60*bullet.Second, bullet.ChurnNodes(victims...)).
			At(110*bullet.Second, bullet.RestartNode(victims[0])))
		w.Run(160 * bullet.Second)

		col := d.Collector()
		before := col.MeanOver(30*bullet.Second, 60*bullet.Second, bullet.Useful)
		after := col.MeanOver(120*bullet.Second, 160*bullet.Second, bullet.Useful)
		fmt.Printf("%-9s crashed %d/%d nodes: %5.0f Kbps before, %5.0f Kbps after (%d live at end)\n",
			d.Protocol(), len(victims), total, before, after, len(d.Nodes()))
	}
}
