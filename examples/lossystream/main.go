// Lossy streaming with worst-case node failure: reproduces the §4.5 /
// §4.6 scenarios at example scale. A 600 Kbps stream runs over a
// random tree on a lossy topology; halfway through, the root child
// with the most descendants crashes. With RanSub failure detection
// enabled the mesh absorbs the failure; the example prints the
// bandwidth timeline of the failed node's descendants.
//
//	go run ./examples/lossystream
package main

import (
	"fmt"
	"log"

	"bullet"
)

func main() {
	w, err := bullet.NewWorld(bullet.WorldConfig{
		TotalNodes: 1500,
		Clients:    40,
		Bandwidth:  bullet.MediumBandwidth,
		Loss:       bullet.PaperLoss, // §4.5: overloaded links up to 10% loss
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := w.RandomTree(5)
	if err != nil {
		log.Fatal(err)
	}

	cfg := bullet.DefaultConfig(600)
	cfg.Start = 20 * bullet.Second
	cfg.Duration = 160 * bullet.Second
	cfg.MaxSenders, cfg.MaxReceivers = 4, 4
	d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
	if err != nil {
		log.Fatal(err)
	}
	col := d.Collector()

	// Pick the worst-case victim: the root child with most descendants.
	victim, desc := -1, -1
	for _, c := range tree.Children(tree.Root) {
		if d := tree.Descendants(c); d > desc {
			desc, victim = d, c
		}
	}
	const failAt = 100 * bullet.Second
	if victim >= 0 {
		w.At(failAt, func() {
			if err := d.Crash(victim); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("will fail node %d (%d descendants) at t=%v s\n",
			victim, desc, failAt.ToSeconds())
	}

	w.Run(200 * bullet.Second)

	// Bandwidth of the failed subtree's descendants, decade by decade.
	var descendants []int
	for _, p := range tree.Participants {
		if p != victim && tree.IsDescendant(victim, p) {
			descendants = append(descendants, p)
		}
	}
	fmt.Printf("\n%d descendants of the failed node; mean useful bandwidth:\n", len(descendants))
	for t := bullet.Time(40 * bullet.Second); t < 200*bullet.Second; t += 20 * bullet.Second {
		var sum float64
		for _, d := range descendants {
			series := col.NodeSeries(d, bullet.Useful)
			for i := int(t / bullet.Second); i < int(t/bullet.Second)+20 && i < len(series); i++ {
				sum += series[i].Kbps
			}
		}
		mean := sum / float64(len(descendants)) / 20
		marker := ""
		if t <= failAt && failAt < t+20*bullet.Second {
			marker = "   <- failure"
		}
		fmt.Printf("  t=%3.0f..%3.0fs  %6.0f Kbps%s\n", t.ToSeconds(), t.ToSeconds()+20, mean, marker)
	}
	fmt.Printf("\nwhole overlay steady-state after failure: %.0f Kbps mean per node\n",
		col.MeanOver(failAt+20*bullet.Second, 200*bullet.Second, bullet.Useful))
}
