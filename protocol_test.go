package bullet_test

import (
	"errors"
	"strings"
	"testing"

	"bullet"
)

// Every registered protocol deploys by name through the one generic
// World.Deploy and returns a working Deployment handle.
func TestAllProtocolsDeployByName(t *testing.T) {
	names := bullet.Protocols()
	want := []string{"anti-entropy", "bullet", "gossip", "streamer"}
	if len(names) != len(want) {
		t.Fatalf("Protocols() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Protocols() = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 800, Clients: 15, Seed: 21})
			if err != nil {
				t.Fatal(err)
			}
			tree, err := w.RandomTree(4)
			if err != nil {
				t.Fatal(err)
			}
			p, err := bullet.ProtocolByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if p.Name() != name {
				t.Fatalf("Name() = %q, want %q", p.Name(), name)
			}
			d, err := w.Deploy(p, tree)
			if err != nil {
				t.Fatal(err)
			}
			if d.Protocol() != name {
				t.Errorf("Deployment.Protocol() = %q, want %q", d.Protocol(), name)
			}
			if d.Collector() == nil {
				t.Fatal("nil collector")
			}
			if got := len(d.Nodes()); got != 15 {
				t.Errorf("Nodes() = %d ids, want 15", got)
			}
			if !d.Live(tree.Root) {
				t.Error("root not live after deploy")
			}
			if name == "gossip" {
				if d.Tree() != nil {
					t.Error("gossip deployment has a tree")
				}
			} else if d.Tree() != tree {
				t.Error("deployment does not expose the deployed tree")
			}
			if got := d.Workload().Name(); got != "cbr" {
				t.Errorf("default Workload().Name() = %q, want cbr", got)
			}
			if got := d.Collector().CompletionTarget(); got != 0 {
				t.Errorf("CBR armed a completion target of %d", got)
			}
			w.Run(60 * bullet.Second)
			if d.Collector().Total(bullet.Useful) == 0 {
				t.Errorf("%s delivered nothing", name)
			}
			if got := w.Deployments(); len(got) != 1 || got[0] != d {
				t.Errorf("world tracks %d deployments", len(got))
			}
		})
	}
}

// A FileWorkload threads through every protocol config to the shared
// pump and arms completion tracking on the deployment's collector; a
// WorkloadSink observes the per-node first-copy deliveries.
func TestWorkloadThreadsThroughEveryProtocol(t *testing.T) {
	wl := bullet.FileWorkload{RateKbps: 400, PacketSize: 1500, K: 200, Overhead: 0.15}
	for _, name := range bullet.Protocols() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 800, Clients: 15, Seed: 23})
			if err != nil {
				t.Fatal(err)
			}
			tree, err := w.RandomTree(4)
			if err != nil {
				t.Fatal(err)
			}
			sink := &countingSink{seen: make(map[int]int)}
			var p bullet.Protocol
			switch name {
			case "bullet":
				cfg := bullet.DefaultConfig(400)
				cfg.Duration = 60 * bullet.Second
				cfg.MaxSenders, cfg.MaxReceivers = 4, 4
				cfg.Workload, cfg.Sink = wl, sink
				p = bullet.BulletProtocol{Config: cfg}
			case "streamer":
				p = bullet.StreamerProtocol{Config: bullet.StreamConfig{
					Duration: 60 * bullet.Second, Workload: wl, Sink: sink}}
			case "gossip":
				p = bullet.GossipProtocol{Config: bullet.GossipConfig{
					Duration: 60 * bullet.Second, Workload: wl, Sink: sink}}
			case "anti-entropy":
				p = bullet.AntiEntropyProtocol{Config: bullet.AntiEntropyConfig{
					Duration: 60 * bullet.Second, Workload: wl, Sink: sink}}
			}
			d, err := w.Deploy(p, tree)
			if err != nil {
				t.Fatal(err)
			}
			if got := d.Workload().Name(); got != "file" {
				t.Fatalf("Workload().Name() = %q, want file", got)
			}
			if got := d.Collector().CompletionTarget(); got != wl.Target() {
				t.Fatalf("completion target %d, want %d", got, wl.Target())
			}
			w.Run(90 * bullet.Second)
			if d.Collector().Completed() == 0 {
				t.Errorf("%s: no node completed the %d-symbol file", name, wl.Target())
			}
			if len(sink.seen) == 0 {
				t.Errorf("%s: sink observed no deliveries", name)
			}
			for node, n := range sink.seen {
				// First-copy only: a node can never see more distinct
				// packets than the source emitted in 60s at 400 Kbps.
				if max := 60 * 400 * 1000 / 8 / 1500; n > max {
					t.Fatalf("node %d saw %d deliveries, ceiling %d", node, n, max)
				}
			}
		})
	}
}

type countingSink struct{ seen map[int]int }

func (s *countingSink) Deliver(now bullet.Time, node int, seq uint64) { s.seen[node]++ }

func TestProtocolByNameUnknown(t *testing.T) {
	_, err := bullet.ProtocolByName("quic")
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v, want unknown protocol", err)
	}
	// Near-miss names get a did-you-mean through the shared suggestion
	// machinery.
	_, err = bullet.ProtocolByName("streamr")
	var upe *bullet.UnknownProtocolError
	if !errors.As(err, &upe) {
		t.Fatalf("err type %T, want *UnknownProtocolError", err)
	}
	if upe.Suggestion != "streamer" {
		t.Errorf("Suggestion = %q, want streamer", upe.Suggestion)
	}
	if !strings.Contains(err.Error(), `did you mean "streamer"`) {
		t.Errorf("error %q missing did-you-mean", err)
	}
}

// Deployments made through World.Deploy are tracked by the world and
// expose their collector.
func TestDeployTracked(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 800, Clients: 15, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w.RandomTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bullet.DefaultConfig(400)
	cfg.Duration = 40 * bullet.Second
	cfg.MaxSenders, cfg.MaxReceivers = 4, 4
	d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
	if err != nil {
		t.Fatal(err)
	}
	col := d.Collector()
	if col == nil {
		t.Fatal("deployment returned nil collector")
	}
	w.Run(60 * bullet.Second)
	if col.Total(bullet.Useful) == 0 {
		t.Fatal("nothing delivered")
	}
	if deps := w.Deployments(); len(deps) != 1 || deps[0].Protocol() != "bullet" {
		t.Fatalf("deployment not tracked: %v", deps)
	}
}

// Crash/Restart/Join on a Bullet deployment: liveness flips, the tree
// re-parents orphans after the failover delay, and the node comes back
// on restart.
func TestDeploymentCrashRestartJoin(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 1000, Clients: 20, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w.RandomTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bullet.DefaultConfig(400)
	cfg.Start = 5 * bullet.Second
	cfg.Duration = 100 * bullet.Second
	cfg.MaxSenders, cfg.MaxReceivers = 4, 4
	d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
	if err != nil {
		t.Fatal(err)
	}

	// Pick the heaviest root child so the crash actually orphans nodes.
	victim, desc := tree.HeaviestChild(tree.Root)
	if victim < 0 || desc < 1 {
		t.Fatalf("degenerate tree: victim=%d desc=%d", victim, desc)
	}

	// Error cases up front.
	if err := d.Crash(tree.Root); err == nil {
		t.Error("crashing the source was allowed")
	}
	if err := d.Restart(victim); err == nil {
		t.Error("restarting a live node was allowed")
	}
	if err := d.Join(victim); err == nil {
		t.Error("joining an existing participant was allowed")
	}

	epoch0 := d.MemberEpoch()
	w.At(30*bullet.Second, func() {
		if err := d.Crash(victim); err != nil {
			t.Errorf("crash: %v", err)
		}
		if err := d.Crash(victim); err == nil {
			t.Error("double crash was allowed")
		}
	})
	w.Run(40 * bullet.Second) // past crash + failover delay
	if d.Live(victim) {
		t.Error("victim still live after crash")
	}
	if d.MemberEpoch() <= epoch0 {
		t.Error("member epoch did not advance on crash")
	}
	if tree.Contains(victim) {
		t.Error("victim still in the tree after the failover delay")
	}
	if got := len(d.Nodes()); got != 19 {
		t.Errorf("%d live nodes after crash, want 19", got)
	}
	// Orphans were re-parented, not dropped: the tree still spans all
	// 19 survivors from the root.
	if got := tree.SubtreeSize(tree.Root); got != 19 {
		t.Errorf("tree spans %d nodes after repair, want 19", got)
	}

	w.At(60*bullet.Second, func() {
		if err := d.Restart(victim); err != nil {
			t.Errorf("restart: %v", err)
		}
	})
	w.Run(110 * bullet.Second)
	if !d.Live(victim) {
		t.Error("victim not live after restart")
	}
	if !tree.Contains(victim) {
		t.Error("victim not re-attached after restart")
	}
	if got := len(d.Nodes()); got != 20 {
		t.Errorf("%d live nodes after restart, want 20", got)
	}
	// The restarted node received data again after rejoining.
	if pts := d.Collector().NodeSeries(victim, bullet.Useful); len(pts) > 0 {
		var post float64
		for _, pt := range pts {
			if pt.T >= 70 {
				post += pt.Kbps
			}
		}
		if post == 0 {
			t.Error("restarted node received nothing after rejoin")
		}
	}
}

// Scenario membership actions drive the world's deployments, composing
// with link dynamics in one schedule.
func TestScenarioChurnActions(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 1000, Clients: 20, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w.RandomTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bullet.DefaultConfig(400)
	cfg.Start = 5 * bullet.Second
	cfg.Duration = 80 * bullet.Second
	cfg.MaxSenders, cfg.MaxReceivers = 4, 4
	d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
	if err != nil {
		t.Fatal(err)
	}
	victim, _ := tree.HeaviestChild(tree.Root)
	w.Scenario(bullet.NewScenario().
		At(20*bullet.Second, bullet.CrashNode(victim)).
		At(50*bullet.Second, bullet.RestartNode(victim)))
	w.Run(30 * bullet.Second)
	if d.Live(victim) {
		t.Error("scenario CrashNode did not crash the victim")
	}
	w.Run(90 * bullet.Second)
	if !d.Live(victim) {
		t.Error("scenario RestartNode did not restart the victim")
	}
	if d.MemberEpoch() < 2 {
		t.Errorf("member epoch %d after crash+restart, want >= 2", d.MemberEpoch())
	}
}

// Stop halts a deployment: no useful bytes arrive afterwards.
func TestDeploymentStop(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 800, Clients: 15, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w.RandomTree(4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := w.Deploy(bullet.StreamerProtocol{Config: bullet.StreamConfig{
		RateKbps: 400, PacketSize: 1500, Duration: 90 * bullet.Second,
	}}, tree)
	if err != nil {
		t.Fatal(err)
	}
	w.At(40*bullet.Second, d.Stop)
	w.Run(100 * bullet.Second)
	if before := d.Collector().MeanOver(10*bullet.Second, 40*bullet.Second, bullet.Useful); before == 0 {
		t.Fatal("nothing delivered before Stop")
	}
	if after := d.Collector().MeanOver(45*bullet.Second, 100*bullet.Second, bullet.Useful); after != 0 {
		t.Errorf("%.3f Kbps delivered after Stop, want 0", after)
	}
}

// Two worlds with the same seed and the same churn schedule produce
// identical results — churn preserves the determinism contract.
func TestChurnDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 1000, Clients: 20, Seed: 26})
		if err != nil {
			t.Fatal(err)
		}
		tree, err := w.RandomTree(4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := bullet.DefaultConfig(400)
		cfg.Start = 5 * bullet.Second
		cfg.Duration = 80 * bullet.Second
		cfg.MaxSenders, cfg.MaxReceivers = 4, 4
		d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
		if err != nil {
			t.Fatal(err)
		}
		victims := tree.Participants[1:6]
		w.Scenario(bullet.NewScenario().
			At(25*bullet.Second, bullet.ChurnNodes(victims...)).
			At(55*bullet.Second, bullet.RestartNode(victims[0])))
		w.Run(90 * bullet.Second)
		return d.Collector().MeanOver(0, 90*bullet.Second, bullet.Useful)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical churn runs diverged: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("nothing delivered")
	}
}
