// Package bullet is the public API of this repository: a from-scratch
// reproduction of "Bullet: High Bandwidth Data Dissemination Using an
// Overlay Mesh" (Kostić, Rodriguez, Albrecht, Vahdat — SOSP 2003).
//
// Bullet layers a high-bandwidth recovery mesh over an arbitrary
// overlay distribution tree: parents deliberately send disjoint data
// subsets to their children (Figure 5 of the paper), RanSub
// periodically delivers uniformly random subsets of global state so
// nodes can locate peers with divergent content (compared via min-wise
// summary tickets), and receivers install Bloom filters at several
// peers to recover disjoint rows of the sequence space in parallel
// over TCP-friendly (TFRC) flows.
//
// Everything runs inside a deterministic packet-level network emulator
// (the stand-in for the paper's ModelNet testbed), so a run is a pure
// function of its configuration and seed.
//
// The quickest start — any protocol deploys the same way, by name or
// by constructing its Protocol struct:
//
//	w, _ := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 1500, Clients: 40, Seed: 1})
//	tree, _ := w.RandomTree(5)
//	cfg := bullet.DefaultConfig(600) // 600 Kbps stream
//	cfg.Duration = 120 * bullet.Second
//	d, _ := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
//	w.Run(150 * bullet.Second)
//	fmt.Println(d.Collector().MeanOver(60*bullet.Second, 150*bullet.Second, bullet.Useful), "Kbps")
//
// The Deployment handle supports runtime membership churn —
// d.Crash(node), d.Restart(node), d.Join(node) — which also composes
// with link dynamics through scenarios (CrashNode, RestartNode,
// JoinNode, ChurnNodes actions). See examples/ for runnable programs
// and cmd/bullet-sim for the harness that regenerates every table and
// figure of the paper.
package bullet

import (
	"math/rand"

	"bullet/internal/adversary"
	"bullet/internal/core"
	"bullet/internal/epidemic"
	"bullet/internal/experiments"
	"bullet/internal/metrics"
	"bullet/internal/netem"
	"bullet/internal/overlay"
	"bullet/internal/scenario"
	"bullet/internal/sim"
	"bullet/internal/streamer"
	"bullet/internal/topology"
	"bullet/internal/workload"
)

// Re-exported core types. The aliases make the whole system usable
// through this single package.
type (
	// Config configures a Bullet deployment (see core.Config).
	Config = core.Config
	// System is a deployed Bullet overlay.
	System = core.System
	// Tree is a rooted overlay distribution tree.
	Tree = overlay.Tree
	// Collector accumulates per-node bandwidth measurements.
	Collector = metrics.Collector
	// Kind selects a measurement category (Useful, Raw, Parent, Duplicate).
	Kind = metrics.Kind
	// Time is a virtual timestamp; Duration a virtual time span.
	Time = sim.Time
	// Duration is a virtual time span in nanoseconds.
	Duration = sim.Duration
	// Graph is a generated physical topology.
	Graph = topology.Graph
	// Router answers fixed shortest-path queries over a Graph.
	Router = topology.Router
	// Network is the packet-level emulator.
	Network = netem.Network
	// BandwidthProfile selects Table 1 link bandwidth ranges.
	BandwidthProfile = topology.BandwidthProfile
	// LossProfile configures random link loss (§4.5).
	LossProfile = topology.LossProfile
	// StreamConfig configures plain tree streaming (the §4.2 baseline).
	StreamConfig = streamer.Config
	// GossipConfig configures the push-gossip baseline (§4.4).
	GossipConfig = epidemic.GossipConfig
	// AntiEntropyConfig configures streaming + anti-entropy (§4.4).
	AntiEntropyConfig = epidemic.AntiEntropyConfig
	// ExperimentResult is a reproduced table/figure.
	ExperimentResult = experiments.Result
	// ExperimentScale selects small/medium/paper experiment sizing.
	ExperimentScale = experiments.Scale
	// ExperimentRun identifies one (id, scale, seed) execution for the
	// parallel runner.
	ExperimentRun = experiments.Run
	// ExperimentRunResult pairs an ExperimentRun with its outcome.
	ExperimentRunResult = experiments.RunResult
	// Adversary configures a seeded hostile-peer fleet for a
	// deployment (see WithAdversary): Model picks the attack, Fraction
	// the compromised share of non-root participants (default 0.25),
	// Seed an optional extra stream perturbation. The compromised set
	// and every hostile decision are pure functions of
	// (world seed, model, scale), drawn from a dedicated counter-hash
	// stream — never from the engine RNGs other components use.
	Adversary = adversary.Config
	// AdversaryModel selects a hostile-peer behavior (AdvFreeride,
	// AdvLiar, AdvCutvertex, AdvJoinstorm, AdvBallotstuff).
	AdversaryModel = adversary.Model
	// Scenario is a declarative schedule of timed network events
	// (failures, bandwidth shifts, partitions); see NewScenario.
	Scenario = scenario.Schedule
	// ScenarioAction is one atomic network mutation in a Scenario.
	ScenarioAction = scenario.Action
	// ScenarioEnv is what scenario actions act upon.
	ScenarioEnv = scenario.Env

	// Workload is a packet-generation source: it owns which sequence
	// numbers exist, how large they are, and when they are emitted.
	// Every protocol config carries a Workload field (nil = CBR).
	Workload = workload.Source
	// WorkloadSink observes per-node first-copy deliveries.
	WorkloadSink = workload.Sink
	// CBRWorkload streams fixed-size packets at a constant bit rate —
	// the default workload of every protocol.
	CBRWorkload = workload.CBR
	// VBRWorkload alternates deterministically between a high and a
	// low bit rate on a fixed period (bursty streaming).
	VBRWorkload = workload.VBR
	// FileWorkload is the finite fountain-coded file-distribution
	// workload of §2.1: sequence numbers double as encoded-symbol IDs
	// and a node completes at (1+ε)·K distinct receipts, recorded by
	// Collector.CompletionCDF.
	FileWorkload = workload.File
	// MultiRateWorkload streams at a rate that changes on a schedule;
	// see NewMultiRateWorkload.
	MultiRateWorkload = workload.MultiRate
	// WorkloadRateStep is one entry of a MultiRateWorkload schedule.
	WorkloadRateStep = workload.RateStep
)

// NewMultiRateWorkload builds a schedule-driven source: fixed-size
// packets whose emission rate follows the given steps (the first
// step's rate also covers any earlier time). Steps may also be
// appended mid-run from a scenario via SetRateAt.
func NewMultiRateWorkload(packetSize int, steps ...WorkloadRateStep) *MultiRateWorkload {
	return workload.NewMultiRate(packetSize, steps...)
}

// Measurement kinds.
const (
	Useful    = metrics.Useful
	Raw       = metrics.Raw
	Parent    = metrics.Parent
	Duplicate = metrics.Duplicate
)

// Time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Adversary models (see the Adversary config and WithAdversary).
const (
	// AdvNone disables the adversary layer (the Adversary zero value).
	AdvNone = adversary.None
	// AdvFreeride receives data but never relays to children nor
	// serves mesh/recovery requests.
	AdvFreeride = adversary.Freeride
	// AdvLiar advertises summary tickets for blocks it does not hold,
	// poisoning min-resemblance sender selection, and serves nothing.
	AdvLiar = adversary.Liar
	// AdvCutvertex crashes the live tree's heaviest cut vertices at
	// strike time to maximize orphaned subtree mass.
	AdvCutvertex = adversary.Cutvertex
	// AdvJoinstorm drives seeded flash crowds of leave/rejoin
	// oscillation through the membership API.
	AdvJoinstorm = adversary.Joinstorm
	// AdvBallotstuff stuffs RanSub collect ballots so random subsets
	// are biased toward colluders, which then refuse to serve.
	AdvBallotstuff = adversary.Ballotstuff
)

// Bandwidth profiles of Table 1.
var (
	LowBandwidth    = topology.LowBandwidth
	MediumBandwidth = topology.MediumBandwidth
	HighBandwidth   = topology.HighBandwidth
	// PaperLoss is the §4.5 lossy-network profile.
	PaperLoss = topology.PaperLoss
	// NoLoss disables random link loss.
	NoLoss = topology.NoLoss
)

// Experiment scales.
var (
	SmallScale  = experiments.Small
	MediumScale = experiments.Medium
	// XLScale sits between medium and paper: 10,000-node topology with
	// 400 participants, the CI smoke point for the scale path.
	XLScale    = experiments.XL
	PaperScale = experiments.PaperScale
	// MegaScale is the 100,000-node / 10,000-participant configuration:
	// five times the paper's scale, exercising the hierarchical router
	// and the sharded runner with a deliberately short stream window.
	MegaScale = experiments.Mega
)

// DefaultConfig returns the paper's Bullet parameters for a target
// streaming rate in Kbps.
func DefaultConfig(rateKbps float64) Config { return core.DefaultConfig(rateKbps) }

// WorldConfig sizes an emulated world.
type WorldConfig struct {
	// TotalNodes is the approximate physical topology size.
	TotalNodes int
	// Clients is the number of overlay participants.
	Clients int
	// Bandwidth selects the Table 1 profile (default medium).
	Bandwidth BandwidthProfile
	// Loss selects the link loss model (default none).
	Loss LossProfile
	// Seed makes the whole world (topology, emulation, protocols)
	// deterministic.
	Seed int64
	// Shards requests single-run parallel simulation: the topology is
	// partitioned into up to Shards shards (whole stub domains), each
	// simulated on its own goroutine with conservative barrier
	// synchronization. 0 or 1 runs serially. Any value produces traces
	// and metrics byte-identical to the serial run — sharding is purely
	// an execution-speed knob. The effective count may be lower than
	// requested (World.Shards reports it). netem.AutoShardCount (-1)
	// lets topology.AutoShards pick the count from the topology's load
	// and the machine's core count.
	Shards int
}

// World bundles an emulated network: engine, topology, router, netem.
type World struct {
	eng *sim.Engine
	g   *topology.Graph
	rt  *topology.Router
	net *netem.Network

	// deployments tracks every Deployment created through Deploy, so
	// scenario membership actions reach them (see World.Crash).
	deployments []Deployment
}

// NewWorld generates a topology and wraps it in a fresh emulator.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.TotalNodes == 0 {
		cfg.TotalNodes = 1500
	}
	if cfg.Clients == 0 {
		cfg.Clients = 40
	}
	if cfg.Bandwidth.Name == "" {
		cfg.Bandwidth = topology.MediumBandwidth
	}
	tc := topology.Sized(cfg.TotalNodes, cfg.Clients, cfg.Bandwidth)
	tc.Loss = cfg.Loss
	tc.Seed = cfg.Seed
	g, err := topology.Generate(tc)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	rt := topology.NewRouter(g)
	net := netem.New(eng, g, rt, netem.Config{})
	if cfg.Shards > 1 || cfg.Shards == netem.AutoShardCount {
		net.EnableShards(cfg.Shards)
	}
	return &World{eng: eng, g: g, rt: rt, net: net}, nil
}

// Graph returns the generated topology.
func (w *World) Graph() *Graph { return w.g }

// Router returns the route oracle.
func (w *World) Router() *Router { return w.rt }

// Network returns the emulator.
func (w *World) Network() *Network { return w.net }

// Participants returns the overlay attachment nodes.
func (w *World) Participants() []int { return w.g.Clients }

// Now returns the current virtual time.
func (w *World) Now() Time { return w.eng.Now() }

// Shards returns the effective shard count the world executes with
// (1 = serial).
func (w *World) Shards() int { return w.net.Shards() }

// ShardStat is one shard's planned weight and measured load.
type ShardStat = netem.ShardStat

// ShardStats returns cumulative per-shard load counters (nil when the
// world runs serially). Purely observational — reading it never
// affects the simulation.
func (w *World) ShardStats() []ShardStat { return w.net.ShardStats() }

// Run advances virtual time to `until`, serially or across the world's
// shards (WorldConfig.Shards). The trace is identical either way.
func (w *World) Run(until Time) { w.net.Run(until) }

// At schedules fn at virtual time t (e.g. to inject a failure).
func (w *World) At(t Time, fn func()) { w.eng.At(t, fn) }

// Scenario installs a schedule of timed network and membership events
// (link failures, bandwidth shifts, partitions, ramps, oscillations,
// node crashes/restarts/joins) into this world. Events fire
// deterministically at their scheduled virtual times during Run; an
// empty scenario leaves the run byte-identical to one without.
// Membership actions act on the deployments created through Deploy
// before the event fires.
//
//	s := bullet.NewScenario().
//	    At(30*bullet.Second, bullet.FailLink(lid)).
//	    At(45*bullet.Second, bullet.CrashNode(victim)).
//	    At(60*bullet.Second, bullet.RestoreLink(lid))
//	w.Scenario(s)
func (w *World) Scenario(s *Scenario) {
	s.Install(&scenario.Env{Eng: w.eng, G: w.g, M: w, A: w})
}

// NewScenario returns an empty scenario schedule. Populate it with At,
// Ramp, RampBandwidth, and Oscillate, then install via World.Scenario.
func NewScenario() *Scenario { return scenario.New() }

// Scenario action constructors, re-exported from internal/scenario.

// FailLink takes a physical link down: routing avoids it and packets
// traversing it are dropped.
func FailLink(link int) ScenarioAction { return scenario.FailLink(link) }

// RestoreLink brings a failed link back up.
func RestoreLink(link int) ScenarioAction { return scenario.RestoreLink(link) }

// SetBandwidth sets a link's capacity in Kbps (per direction).
func SetBandwidth(link int, kbps float64) ScenarioAction { return scenario.SetBandwidth(link, kbps) }

// ScaleBandwidth multiplies a link's capacity by factor.
func ScaleBandwidth(link int, factor float64) ScenarioAction {
	return scenario.ScaleBandwidth(link, factor)
}

// SetLatency sets a link's propagation delay.
func SetLatency(link int, d Duration) ScenarioAction { return scenario.SetLatency(link, d) }

// SetLoss sets a link's independent per-packet loss probability.
func SetLoss(link int, loss float64) ScenarioAction { return scenario.SetLoss(link, loss) }

// PartitionNodes cuts the node set off from the rest of the network.
func PartitionNodes(nodes ...int) ScenarioAction { return scenario.Partition(nodes...) }

// HealPartition restores every link failed by PartitionNodes.
func HealPartition() ScenarioAction { return scenario.Heal() }

// CrashNode crashes an overlay participant in every deployment of the
// world the scenario is installed into. Recovery is protocol-defined:
// Bullet re-parents the orphans and re-installs Bloom filters at live
// peers; the plain streamer's orphaned subtree starves.
func CrashNode(node int) ScenarioAction { return scenario.CrashNode(node) }

// RestartNode brings a crashed participant back.
func RestartNode(node int) ScenarioAction { return scenario.RestartNode(node) }

// JoinNode admits a brand-new participant mid-run.
func JoinNode(node int) ScenarioAction { return scenario.JoinNode(node) }

// ChurnNodes crashes the whole node set at one instant — the
// mass-failure workload.
func ChurnNodes(nodes ...int) ScenarioAction { return scenario.ChurnNodes(nodes...) }

// CompromiseNodes adds the nodes to the colluder set of every
// adversary fleet deployed in the world (see WithAdversary).
// Compromising is silent until AdversaryAt strikes.
func CompromiseNodes(nodes ...int) ScenarioAction { return scenario.CompromiseNodes(nodes...) }

// AdversaryAt fires the strike of every adversary fleet deployed in
// the world. Leeching models (AdvFreeride, AdvLiar, AdvBallotstuff)
// flip hostile and stay so; each extra AdversaryAt repeats the attack
// wave of the crash-timing models (AdvCutvertex, AdvJoinstorm).
func AdversaryAt() ScenarioAction { return scenario.AdversaryAt() }

// RandomTree builds a random degree-bounded tree over the participants
// rooted at the first participant.
func (w *World) RandomTree(maxDegree int) (*Tree, error) {
	return overlay.Random(w.g.Clients, w.g.Clients[0], maxDegree,
		rand.New(rand.NewSource(w.eng.Seed()^0x74726565)))
}

// BottleneckTree builds the paper's offline greedy bottleneck
// bandwidth tree (§4.1) from global topology knowledge.
func (w *World) BottleneckTree() (*Tree, error) {
	return overlay.Bottleneck(w.rt, w.g.Clients, w.g.Clients[0], 1500, 0)
}

// OvercastTree builds an Overcast-like online bandwidth-optimized tree.
func (w *World) OvercastTree(maxDegree int) (*Tree, error) {
	return overlay.Overcast(w.rt, w.g.Clients, w.g.Clients[0], 1500, maxDegree)
}

// RunExperiment executes one of the paper's table/figure reproductions
// by id ("table1", "fig6" ... "fig15", "overcast").
func RunExperiment(id string, scale ExperimentScale, seed int64) (*ExperimentResult, error) {
	entry, ok := experiments.Registry[id]
	if !ok {
		return nil, &UnknownExperimentError{ID: id, Suggestion: experiments.Suggest(id)}
	}
	return entry.Run(scale, seed)
}

// RunExperiments executes several experiment runs concurrently across
// workers goroutines (0 = GOMAXPROCS) and returns results in input
// order. Each run gets its own engine and emulator, so the output is
// byte-identical to running the experiments serially.
func RunExperiments(runs []ExperimentRun, workers int) []ExperimentRunResult {
	return experiments.RunAll(runs, workers)
}

// Experiments lists the available experiment ids.
func Experiments() []string { return experiments.Names() }

// UnknownExperimentError reports an unrecognized experiment id, with a
// did-you-mean Suggestion (the nearest registered id by edit distance)
// when one is plausibly close. It aliases the internal experiments
// error type so RunExperiment and RunExperiments surface the identical
// type — errors.As works the same against either entry point.
type UnknownExperimentError = experiments.UnknownExperimentError
