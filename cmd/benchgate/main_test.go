package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: bullet
BenchmarkFig07-8   	       1	2052964325 ns/op	        19.88 control_kbps	         0.1607 dup_ratio	         2.393 link_stress	       658.8 raw_kbps	       551.8 useful_kbps	155018464 B/op	 1503626 allocs/op
BenchmarkTable1-8  	       1	  11483393 ns/op	      1500 topo_nodes	 3231288 B/op	   27066 allocs/op
PASS
ok  	bullet	4.567s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	fig7 := rep.Benchmarks["BenchmarkFig07"]
	if fig7 == nil {
		t.Fatal("BenchmarkFig07 missing (GOMAXPROCS suffix not stripped?)")
	}
	checks := map[string]float64{
		"ns/op":       2052964325,
		"useful_kbps": 551.8,
		"dup_ratio":   0.1607,
		"B/op":        155018464,
		"allocs/op":   1503626,
	}
	for unit, want := range checks {
		if got := fig7[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
}

func writeBaseline(t *testing.T, rep *Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkFig07":  {"ns/op": 1800000000}, // current is +14%: allowed
		"BenchmarkTable1": {"ns/op": 11000000},
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base}, strings.NewReader(benchOutput), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "BenchmarkFig07") {
		t.Error("comparison table missing BenchmarkFig07")
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkFig07": {"ns/op": 1000000000}, // current is +105%: fails at 20%
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-max-regress", "0.20"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "BenchmarkFig07") {
		t.Errorf("stderr %q does not name the regressed benchmark", errb.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkDeleted": {"ns/op": 1e9},
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base}, strings.NewReader(benchOutput), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (baseline benchmark missing from run)", code)
	}
	if !strings.Contains(errb.String(), "missing from current run") {
		t.Errorf("stderr %q missing explanation", errb.String())
	}
}

// Benchmarks under the -min-ns floor are recorded but never gated:
// single-iteration timings of sub-100ms benches are noise.
func TestGateSkipsTinyBenchmarks(t *testing.T) {
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkTable1": {"ns/op": 11000000}, // 11ms baseline, current is +4%
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-max-regress", "0.001"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (tiny bench should be skipped); stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Errorf("table %q does not mark the tiny bench skipped", out.String())
	}
	// With the floor lowered it gates (and fails at 0.1%).
	code = run([]string{"-baseline", base, "-max-regress", "0.001", "-min-ns", "1000"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 with -min-ns 1000", code)
	}
}

// With -calibrate, a uniform hardware-speed delta between baseline and
// current machine cancels out, while a single outlier benchmark still
// fails the gate.
func TestCalibrateCancelsUniformShift(t *testing.T) {
	// Baseline is uniformly ~1.6x faster than the "current" machine
	// (as if recorded on faster hardware): without calibration every
	// bench fails, with it none do.
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkFig07":  {"ns/op": 2052964325.0 / 1.6},
		"BenchmarkTable1": {"ns/op": 11483393.0 / 1.6},
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-min-ns", "1000"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 1 {
		t.Fatalf("uncalibrated exit %d, want 1 (uniform shift trips gate)", code)
	}
	code = run([]string{"-baseline", base, "-min-ns", "1000", "-calibrate"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 0 {
		t.Fatalf("calibrated exit %d, want 0; stderr: %s", code, errb.String())
	}

	// One bench regressing 2x against an otherwise-matching baseline
	// fails even with calibration (median tracks the majority).
	base = writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkFig07":  {"ns/op": 2052964325.0 / 2}, // current looks 2x slower
		"BenchmarkTable1": {"ns/op": 11483393.0},       // current matches
	}})
	code = run([]string{"-baseline", base, "-min-ns", "1000", "-calibrate"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 1 {
		t.Fatalf("calibrated outlier exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "BenchmarkFig07") {
		t.Errorf("stderr %q does not name the regressed benchmark", errb.String())
	}
}

func TestJSONArtifactRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	var out, errb bytes.Buffer
	code := run([]string{"-json", path}, strings.NewReader(benchOutput), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks["BenchmarkFig07"]["useful_kbps"] != 551.8 {
		t.Error("custom metric lost in JSON round trip")
	}
	// The artifact can serve as its own baseline: identical runs pass.
	code = run([]string{"-baseline", path}, strings.NewReader(benchOutput), &out, &errb)
	if code != 0 {
		t.Fatalf("self-baseline exit %d, want 0; stderr: %s", code, errb.String())
	}
}

func TestEmptyInputFails(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader("no benchmarks here\n"), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 on empty input", code)
	}
}

// The gate covers B/op and allocs/op alongside ns/op: a benchmark that
// stays fast but doubles its allocations fails.
func TestGateFailsOnAllocRegression(t *testing.T) {
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		// ns/op and B/op match the current run; allocs/op halves the
		// current value, i.e. the current run regressed +100%.
		"BenchmarkFig07": {"ns/op": 2052964325, "B/op": 155018464, "allocs/op": 751813},
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-max-regress", "0.20"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (allocs/op regressed)", code)
	}
	if !strings.Contains(errb.String(), "allocs/op") {
		t.Errorf("stderr %q does not name allocs/op", errb.String())
	}
}

func TestGateFailsOnBytesRegression(t *testing.T) {
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkFig07": {"ns/op": 2052964325, "B/op": 100000000, "allocs/op": 1503626},
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-max-regress", "0.20"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (B/op regressed +55%%)", code)
	}
	if !strings.Contains(errb.String(), "B/op") {
		t.Errorf("stderr %q does not name B/op", errb.String())
	}
}

// The sub-min-ns exemption applies to every gate metric, and
// calibration must never rescale counting metrics: a machine-speed
// delta changes ns/op, not allocation counts.
func TestGateMetricsRespectMinNsAndCalibrate(t *testing.T) {
	tiny := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		// 11ms baseline: exempt even though allocs/op regressed wildly.
		"BenchmarkTable1": {"ns/op": 11000000, "allocs/op": 10},
	}})
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", tiny}, strings.NewReader(benchOutput), &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (sub-min-ns bench must skip alloc gate too); stderr: %s", code, errb.String())
	}
	// Uniform 1.6x time shift + a real alloc regression: calibration
	// forgives the former, never the latter.
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkFig07":  {"ns/op": 2052964325.0 / 1.6, "allocs/op": 751813},
		"BenchmarkTable1": {"ns/op": 11483393.0 / 1.6},
	}})
	out.Reset()
	errb.Reset()
	code := run([]string{"-baseline", base, "-min-ns", "1000", "-calibrate"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (alloc regression must survive calibration)", code)
	}
	if !strings.Contains(errb.String(), "allocs/op") {
		t.Errorf("stderr %q does not name allocs/op", errb.String())
	}
	if strings.Contains(errb.String(), "ns/op 1283102703") {
		t.Errorf("calibration failed to cancel the uniform time shift: %s", errb.String())
	}
}

// -update rewrites the baseline file from the current run with
// deterministic bytes: sorted benchmark names, sorted metric keys,
// shortest round-trip floats — so regenerating from identical metrics
// is a no-op diff, and the fresh baseline gates its own run clean.
func TestUpdateRewritesBaselineDeterministically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	// Seed the file with stale content -update must fully replace.
	if err := os.WriteFile(path, []byte(`{"benchmarks":{"BenchmarkGone":{"ns/op":1}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path, "-update"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(first), "BenchmarkGone") {
		t.Error("stale baseline entry survived -update")
	}
	fig7 := strings.Index(string(first), "BenchmarkFig07")
	table1 := strings.Index(string(first), "BenchmarkTable1")
	if fig7 < 0 || table1 < 0 || table1 < fig7 {
		t.Fatalf("benchmark names missing or unsorted: Fig07@%d Table1@%d", fig7, table1)
	}
	if !strings.Contains(string(first), `"ns/op": 2052964325`) {
		t.Errorf("integral float not in shortest form:\n%s", first)
	}
	// Rerunning on the same input must reproduce the bytes exactly.
	if code := run([]string{"-baseline", path, "-update"},
		strings.NewReader(benchOutput), &out, &errb); code != 0 {
		t.Fatalf("second -update exit %d", code)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("-update output is not byte-stable across identical runs")
	}
	// The regenerated baseline passes against the run that produced it,
	// even with a zero regression allowance.
	if code := run([]string{"-baseline", path, "-max-regress", "0", "-exempt-below", "0"},
		strings.NewReader(benchOutput), &out, &errb); code != 0 {
		t.Fatalf("fresh baseline fails its own run: exit %d; stderr: %s", code, errb.String())
	}
}

func TestUpdateRequiresBaseline(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-update"}, strings.NewReader(benchOutput), &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (-update without -baseline)", code)
	}
	if !strings.Contains(errb.String(), "-update requires -baseline") {
		t.Errorf("stderr %q missing explanation", errb.String())
	}
}

// The -exempt-below exemption is strict: a baseline ns/op exactly at
// the threshold is gated, one below it is skipped. -min-ns remains as
// a deprecated alias sharing the same value (the older tests above
// still exercise it).
func TestExemptBelowBoundary(t *testing.T) {
	// Baseline 11ms; the current run (benchOutput) is ~+4.4%, so with a
	// 0.1% allowance the benchmark fails whenever it is actually gated.
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkTable1": {"ns/op": 11000000},
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-max-regress", "0.001", "-exempt-below", "11000000"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 1 {
		t.Fatalf("baseline == threshold: exit %d, want 1 (gated)", code)
	}
	code = run([]string{"-baseline", base, "-max-regress", "0.001", "-exempt-below", "11000001"},
		strings.NewReader(benchOutput), &out, &errb)
	if code != 0 {
		t.Fatalf("baseline < threshold: exit %d, want 0 (exempt); stderr: %s", code, errb.String())
	}
}

// A benchmark whose current run lacks a gate metric the baseline has
// must fail, not gate as 0 (which would read as a -100% improvement).
func TestGateFailsOnMissingMetric(t *testing.T) {
	base := writeBaseline(t, &Report{Benchmarks: map[string]Metrics{
		"BenchmarkFig07": {"ns/op": 2052964325, "B/op": 155018464, "allocs/op": 1503626},
	}})
	// Current output without -benchmem: no B/op / allocs/op columns.
	cur := "BenchmarkFig07-8   1   2052964325 ns/op   551.8 useful_kbps\nPASS\n"
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base}, strings.NewReader(cur), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (gate metric missing from current run)", code)
	}
	if !strings.Contains(errb.String(), "allocs/op missing from current run") {
		t.Errorf("stderr %q missing explanation", errb.String())
	}
}
