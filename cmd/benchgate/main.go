// Command benchgate converts `go test -bench` output into a JSON
// metrics artifact and gates benchmark regressions against a committed
// baseline.
//
// Convert bench output to JSON:
//
//	go test -bench=. -benchtime=1x -benchmem | benchgate -json BENCH.json
//
// Gate against a baseline (exit 1 on a >20% regression of any gate
// metric — ns/op, B/op, or allocs/op):
//
//	go test -bench=. -benchtime=1x -benchmem | \
//	    benchgate -json BENCH.json -baseline bench_baseline.json -max-regress 0.20
//
// Regenerate the committed baseline from a fresh run (deterministic
// bytes: names and metric keys sorted, floats in their shortest
// round-trip form — rerunning on identical metrics is a no-op diff):
//
//	go test -bench=. -benchtime=1x -benchmem | \
//	    benchgate -baseline bench_baseline.json -update
//
// The JSON artifact records every metric a benchmark reported — ns/op,
// B/op, allocs/op, and the custom experiment metrics (useful_kbps,
// dup_ratio, ...) — keyed by benchmark name with the GOMAXPROCS suffix
// stripped. Only the gate metrics (default "ns/op,B/op,allocs/op")
// fail the run; the rest are carried so CI artifacts track the full
// trajectory. Benchmarks whose baseline ns/op is strictly under
// -exempt-below are exempt from every gate metric (single-iteration
// noise; -min-ns is a deprecated alias); -calibrate divides out a
// uniform hardware delta for ns/op only, since byte and allocation
// counts do not scale with machine speed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics maps metric unit -> value for one benchmark.
type Metrics map[string]float64

// Report is the JSON artifact shape.
type Report struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "-", "bench output file (default: stdin)")
		jsonOut    = fs.String("json", "", "write parsed metrics JSON to this file")
		baseline   = fs.String("baseline", "", "baseline JSON to gate against")
		maxRegress = fs.Float64("max-regress", 0.20, "allowed fractional regression of each gate metric")
		metric     = fs.String("metric", "ns/op,B/op,allocs/op", "comma-separated metrics the gate compares")
		exempt     = fs.Float64("exempt-below", 1e8, "exempt benchmarks whose baseline ns/op is strictly below this from every gate metric (single-iteration timings of sub-100ms benches are noise)")
		update     = fs.Bool("update", false, "rewrite the -baseline file from this run's parsed metrics instead of gating against it (deterministic bytes: sorted keys, shortest round-trip floats)")
		calibrate  = fs.Bool("calibrate", false, "divide current ns/op by the median current/baseline ratio (clamped to [0.5, 2]) before gating, so a uniform hardware-speed delta between the baseline machine and this one does not trip the gate; counting metrics (B/op, allocs/op) are machine-independent and never calibrated")
	)
	fs.Float64Var(exempt, "min-ns", *exempt, "deprecated alias for -exempt-below")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	rep, err := parse(r)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchgate: no benchmark lines in input")
		return 1
	}
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, rep); err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 1
		}
		fmt.Fprintf(stderr, "benchgate: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *jsonOut)
	}
	if *update {
		if *baseline == "" {
			fmt.Fprintln(stderr, "benchgate: -update requires -baseline (the file to rewrite)")
			return 2
		}
		if err := writeReport(*baseline, rep); err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 1
		}
		fmt.Fprintf(stderr, "benchgate: updated baseline %s with %d benchmark(s)\n", *baseline, len(rep.Benchmarks))
		return 0
	}
	if *baseline == "" {
		return 0
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchgate: %s: %v\n", *baseline, err)
		return 1
	}
	var failures []string
	seen := make(map[string]bool)
	for _, m := range strings.Split(*metric, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		// Calibration corrects for machine speed, which only affects
		// timing metrics.
		cal := *calibrate && m == "ns/op"
		for _, f := range gate(&base, rep, m, *maxRegress, *exempt, cal, stdout) {
			// A benchmark missing from the current run surfaces once per
			// gate metric with the identical message; count it once.
			if !seen[f] {
				seen[f] = true
				failures = append(failures, f)
			}
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "benchgate: %d regression(s) beyond %.0f%% on %s:\n",
			len(failures), *maxRegress*100, *metric)
		for _, f := range failures {
			fmt.Fprintf(stderr, "  %s\n", f)
		}
		return 1
	}
	return 0
}

// writeReport serializes rep to path with deterministic bytes: the
// same metrics always produce the same file, so regenerating an
// unchanged baseline is a no-op diff. encoding/json provides both
// guarantees — map keys (benchmark names and metric units) are emitted
// sorted, and floats use the shortest representation that round-trips.
func writeReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parse extracts benchmark metrics from `go test -bench` output. A
// bench line looks like:
//
//	BenchmarkFig07-8   1   2052964325 ns/op   551.8 useful_kbps   12 B/op   3 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. The -N
// GOMAXPROCS suffix is stripped from the name.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: make(map[string]Metrics)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // PASS/FAIL lines, headers
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := rep.Benchmarks[name]
		if m == nil {
			m = make(Metrics)
			rep.Benchmarks[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], sc.Text())
			}
			m[fields[i+1]] = v
		}
	}
	return rep, sc.Err()
}

// gate compares every baseline benchmark's gate metric against the
// current run, prints a comparison table, and returns descriptions of
// the benchmarks that regressed beyond maxRegress. A benchmark present
// in the baseline but missing from the current run is a failure (a
// silently deleted benchmark would otherwise un-gate itself); new
// benchmarks pass unchecked, as do benchmarks whose baseline ns/op is
// strictly below exemptBelow — at -benchtime=1x their timing is
// dominated by noise, though their metrics still land in the JSON
// artifact. A baseline exactly at the threshold is gated.
//
// With calibrate, current values are divided by the median
// current/baseline ratio across the gated set before comparison: a
// uniform shift (the baseline was recorded on different hardware)
// cancels out, while a single benchmark regressing stands out against
// the median. The correction is clamped to [0.5, 2], so a uniform
// slowdown beyond 2x still trips the gate rather than being normalized
// away.
func gate(base, cur *Report, metric string, maxRegress, exemptBelow float64, calibrate bool, out io.Writer) []string {
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	gated := func(n string) (bv float64, ok bool) {
		bv, ok = base.Benchmarks[n][metric]
		if !ok {
			return 0, false // no gate metric: informational only
		}
		if ns, has := base.Benchmarks[n]["ns/op"]; has && ns < exemptBelow {
			return bv, false
		}
		return bv, true
	}

	scale := 1.0
	if calibrate {
		var ratios []float64
		for _, n := range names {
			bv, ok := gated(n)
			if !ok || bv == 0 {
				continue
			}
			if cm, ok := cur.Benchmarks[n]; ok {
				ratios = append(ratios, cm[metric]/bv)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			if n := len(ratios); n%2 == 1 {
				scale = ratios[n/2]
			} else {
				scale = (ratios[n/2-1] + ratios[n/2]) / 2
			}
			if scale < 0.5 {
				scale = 0.5
			} else if scale > 2 {
				scale = 2
			}
			fmt.Fprintf(out, "calibration: dividing current %s by median ratio %.3f\n", metric, scale)
		}
	}

	var failures []string
	fmt.Fprintf(out, "%-40s %15s %15s %8s\n", "benchmark", "baseline "+metric, "current "+metric, "delta")
	for _, n := range names {
		bv, ok := gated(n)
		if !ok {
			if _, has := base.Benchmarks[n][metric]; has {
				fmt.Fprintf(out, "%-40s %15.0f %15s %8s\n", n, bv, "-", "skipped")
			}
			continue
		}
		cm, ok := cur.Benchmarks[n]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", n))
			fmt.Fprintf(out, "%-40s %15.0f %15s %8s\n", n, bv, "missing", "FAIL")
			continue
		}
		cvRaw, ok := cm[metric]
		if !ok {
			// A gate metric the baseline has but the current run lacks
			// (e.g. -benchmem dropped, ReportAllocs removed) would
			// otherwise gate as 0 and read as a -100% improvement.
			failures = append(failures, fmt.Sprintf("%s: %s missing from current run", n, metric))
			fmt.Fprintf(out, "%-40s %15.0f %15s %8s\n", n, bv, "missing", "FAIL")
			continue
		}
		cv := cvRaw / scale
		delta := 0.0
		if bv != 0 {
			delta = (cv - bv) / bv
		}
		status := fmt.Sprintf("%+.1f%%", delta*100)
		if cv > bv*(1+maxRegress) {
			failures = append(failures, fmt.Sprintf("%s: %s %.0f -> %.0f (%+.1f%%)", n, metric, bv, cv, delta*100))
			status += " FAIL"
		}
		fmt.Fprintf(out, "%-40s %15.0f %15.0f %8s\n", n, bv, cv, status)
	}
	return failures
}
