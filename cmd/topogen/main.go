// Command topogen generates and inspects the transit-stub topologies
// used by the experiments: node/link counts per class, bandwidth and
// delay distributions, and optional full link dumps.
//
// Usage:
//
//	topogen -nodes 20000 -clients 1000 -bandwidth medium -seed 1
//	topogen -nodes 5000 -clients 100 -bandwidth low -loss -dump links.tsv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"bullet/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: argv without the program
// name, and the two output streams. It returns the process exit code.
// Output is a pure function of the flags: generation draws only on the
// seeded topology RNG.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes   = fs.Int("nodes", 20000, "approximate total topology nodes")
		clients = fs.Int("clients", 1000, "overlay participant (client) nodes")
		bwName  = fs.String("bandwidth", "medium", "low | medium | high (Table 1)")
		loss    = fs.Bool("loss", false, "apply the paper's lossy-network profile (§4.5)")
		seed    = fs.Int64("seed", 1, "generator seed")
		dump    = fs.String("dump", "", "write all links as TSV to this file")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	bw, err := topology.ProfileByName(*bwName)
	if err != nil {
		fmt.Fprintln(stderr, "topogen:", err)
		return 1
	}
	cfg := topology.Sized(*nodes, *clients, bw)
	cfg.Seed = *seed
	if *loss {
		cfg.Loss = topology.PaperLoss
	}
	g, err := topology.Generate(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "topogen:", err)
		return 1
	}

	fmt.Fprintf(stdout, "nodes\t%d\n", len(g.Nodes))
	fmt.Fprintf(stdout, "links\t%d\n", len(g.Links))
	fmt.Fprintf(stdout, "clients\t%d\n", len(g.Clients))
	counts := g.LinkClassCounts()
	classes := []topology.LinkClass{topology.ClientStub, topology.StubStub, topology.TransitStub, topology.TransitTransit}
	for _, cls := range classes {
		var kbps []float64
		var lossy int
		for i := range g.Links {
			if g.Links[i].Class != cls {
				continue
			}
			kbps = append(kbps, g.Links[i].Kbps())
			if g.Links[i].Loss > 0 {
				lossy++
			}
		}
		sort.Float64s(kbps)
		if len(kbps) == 0 {
			continue
		}
		fmt.Fprintf(stdout, "%s\tcount=%d\tmin=%.0fKbps\tmedian=%.0fKbps\tmax=%.0fKbps\tlossy=%d\n",
			cls, counts[cls], kbps[0], kbps[len(kbps)/2], kbps[len(kbps)-1], lossy)
	}

	// Reachability spot check from the first client.
	rt := topology.NewRouter(g)
	unreachable := 0
	for _, c := range g.Clients {
		if !rt.Reachable(g.Clients[0], c) {
			unreachable++
		}
	}
	fmt.Fprintf(stdout, "unreachable_clients\t%d\n", unreachable)

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(stderr, "topogen:", err)
			return 1
		}
		fmt.Fprintln(f, "id\ta\tb\tclass\tkbps\tdelay_ms\tloss")
		for i := range g.Links {
			l := &g.Links[i]
			fmt.Fprintf(f, "%d\t%d\t%d\t%s\t%.0f\t%.2f\t%.5f\n",
				l.ID, l.A, l.B, l.Class, l.Kbps(), float64(l.Delay)/1e6, l.Loss)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "topogen:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s\n", *dump)
	}
	return 0
}
