// Command topogen generates and inspects the transit-stub topologies
// used by the experiments: node/link counts per class, bandwidth and
// delay distributions, and optional full link dumps.
//
// Usage:
//
//	topogen -nodes 20000 -clients 1000 -bandwidth medium -seed 1
//	topogen -nodes 5000 -clients 100 -bandwidth low -loss -dump links.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bullet/internal/topology"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 20000, "approximate total topology nodes")
		clients = flag.Int("clients", 1000, "overlay participant (client) nodes")
		bwName  = flag.String("bandwidth", "medium", "low | medium | high (Table 1)")
		loss    = flag.Bool("loss", false, "apply the paper's lossy-network profile (§4.5)")
		seed    = flag.Int64("seed", 1, "generator seed")
		dump    = flag.String("dump", "", "write all links as TSV to this file")
	)
	flag.Parse()

	bw, err := topology.ProfileByName(*bwName)
	if err != nil {
		fatal(err)
	}
	cfg := topology.Sized(*nodes, *clients, bw)
	cfg.Seed = *seed
	if *loss {
		cfg.Loss = topology.PaperLoss
	}
	g, err := topology.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("nodes\t%d\n", len(g.Nodes))
	fmt.Printf("links\t%d\n", len(g.Links))
	fmt.Printf("clients\t%d\n", len(g.Clients))
	counts := g.LinkClassCounts()
	classes := []topology.LinkClass{topology.ClientStub, topology.StubStub, topology.TransitStub, topology.TransitTransit}
	for _, cls := range classes {
		var kbps []float64
		var lossy int
		for i := range g.Links {
			if g.Links[i].Class != cls {
				continue
			}
			kbps = append(kbps, g.Links[i].Kbps())
			if g.Links[i].Loss > 0 {
				lossy++
			}
		}
		sort.Float64s(kbps)
		if len(kbps) == 0 {
			continue
		}
		fmt.Printf("%s\tcount=%d\tmin=%.0fKbps\tmedian=%.0fKbps\tmax=%.0fKbps\tlossy=%d\n",
			cls, counts[cls], kbps[0], kbps[len(kbps)/2], kbps[len(kbps)-1], lossy)
	}

	// Reachability spot check from the first client.
	rt := topology.NewRouter(g)
	unreachable := 0
	for _, c := range g.Clients {
		if !rt.Reachable(g.Clients[0], c) {
			unreachable++
		}
	}
	fmt.Printf("unreachable_clients\t%d\n", unreachable)

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(f, "id\ta\tb\tclass\tkbps\tdelay_ms\tloss")
		for i := range g.Links {
			l := &g.Links[i]
			fmt.Fprintf(f, "%d\t%d\t%d\t%s\t%.0f\t%.2f\t%.5f\n",
				l.ID, l.A, l.B, l.Class, l.Kbps(), float64(l.Delay)/1e6, l.Loss)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *dump)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
