package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// small keeps generation fast: a few hundred nodes is plenty to
// exercise every link class and the reachability check.
var small = []string{"-nodes", "300", "-clients", "10"}

func runArgs(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestDeterministicForFixedSeed(t *testing.T) {
	args := append(append([]string(nil), small...), "-bandwidth", "low", "-seed", "7")
	code1, out1, _ := runArgs(t, args...)
	code2, out2, _ := runArgs(t, args...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exit codes %d/%d, want 0/0", code1, code2)
	}
	if out1 != out2 {
		t.Fatal("same seed produced different output")
	}
	// A different seed yields a different topology report.
	_, out3, _ := runArgs(t, append(append([]string(nil), small...), "-bandwidth", "low", "-seed", "8")...)
	if out1 == out3 {
		t.Fatal("different seeds produced identical output")
	}
}

func TestReportShape(t *testing.T) {
	code, out, stderr := runArgs(t, append(append([]string(nil), small...), "-loss")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"nodes\t", "links\t", "clients\t10", "Client-Stub", "unreachable_clients\t0"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// -loss must actually mark links lossy: the report changes.
	_, noLoss, _ := runArgs(t, small...)
	if out == noLoss {
		t.Error("-loss produced the same report as the lossless profile")
	}
}

func TestUnknownBandwidthFails(t *testing.T) {
	code, _, stderr := runArgs(t, "-bandwidth", "enormous")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "enormous") {
		t.Errorf("stderr %q does not name the bad profile", stderr)
	}
}

func TestBadFlagFails(t *testing.T) {
	code, _, stderr := runArgs(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "no-such-flag") {
		t.Errorf("stderr %q does not mention the flag", stderr)
	}
}

func TestDumpWritesLinkTSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "links.tsv")
	args := append(append([]string(nil), small...), "-seed", "3", "-dump", path)
	code, _, stderr := runArgs(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "wrote "+path) {
		t.Errorf("stderr %q missing write confirmation", stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if lines[0] != "id\ta\tb\tclass\tkbps\tdelay_ms\tloss" {
		t.Fatalf("dump header %q", lines[0])
	}
	if len(lines) < 100 {
		t.Errorf("dump has only %d lines; expected one per link", len(lines))
	}
	if got := strings.Count(lines[1], "\t"); got != 6 {
		t.Errorf("dump row has %d tabs, want 6: %q", got, lines[1])
	}
}
