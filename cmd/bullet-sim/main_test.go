package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"bullet/internal/netem"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListExits0(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, id := range []string{"table1", "fig7", "dyn-partition", "dyn-flashcrowd"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestMissingExperimentExits2(t *testing.T) {
	code, _, errb := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "-experiment is required") {
		t.Errorf("stderr %q missing usage hint", errb)
	}
}

func TestBadFlagExits2(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUnknownScaleExits1(t *testing.T) {
	code, _, errb := runCLI(t, "-experiment", "table1", "-scale", "galactic")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "unknown scale") {
		t.Errorf("stderr %q missing scale error", errb)
	}
}

// A near-miss scale name gets a did-you-mean on stderr, through the
// same suggestion machinery as experiment ids.
func TestScaleTypoSuggestsNearest(t *testing.T) {
	code, _, errb := runCLI(t, "-experiment", "table1", "-scale", "smal")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, `did you mean "small"`) {
		t.Errorf("stderr %q missing scale suggestion", errb)
	}
}

// A comma-separated list (with stray whitespace) runs every entry and
// prints results in input order.
func TestCommaSeparatedListRunsInOrder(t *testing.T) {
	code, out, _ := runCLI(t, "-q", "-experiment", "table1, overcast", "-scale", "small")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	first := strings.Index(out, "# Table 1")
	second := strings.Index(out, "# Overcast")
	if first < 0 || second < 0 || second < first {
		t.Fatalf("results missing or out of order: table1@%d overcast@%d", first, second)
	}
}

// An unknown id exits non-zero, but only after the completed results
// have been emitted.
func TestUnknownIDEmitsCompletedResultsThenFails(t *testing.T) {
	code, out, errb := runCLI(t, "-q", "-experiment", "table1,nope,overcast", "-scale", "small")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "# Table 1") || !strings.Contains(out, "# Overcast") {
		t.Error("completed results were not emitted before the failure")
	}
	if !strings.Contains(errb, `"nope"`) {
		t.Errorf("stderr %q does not name the unknown experiment", errb)
	}
	if !strings.Contains(errb, "1 of 3 experiment(s) failed") {
		t.Errorf("stderr %q missing failure count", errb)
	}
}

// A near-miss experiment id surfaces a did-you-mean suggestion on
// stderr (nearest registered id by edit distance).
func TestUnknownIDSuggestsNearest(t *testing.T) {
	code, _, errb := runCLI(t, "-q", "-experiment", "fig99")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, `did you mean "fig9"?`) {
		t.Errorf("stderr %q missing did-you-mean suggestion", errb)
	}
	// Far-off ids get no misleading guess.
	code, _, errb = runCLI(t, "-q", "-experiment", "zzzzzzzzzzzz")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if strings.Contains(errb, "did you mean") {
		t.Errorf("stderr %q suggests a far-off id", errb)
	}
}

// -list prints each registered experiment on its own line, sorted by
// id, with a one-line description column.
func TestListPrintsOnePerLine(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 28 {
		t.Fatalf("%d lines, want 28 (one per experiment)", len(lines))
	}
	prev := ""
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) < 2 {
			t.Fatalf("line %q has no description column", l)
		}
		if prev >= fields[0] && prev != "" {
			t.Fatalf("ids not sorted: %q >= %q", prev, fields[0])
		}
		prev = fields[0]
	}
}

// -parallel does not change the output bytes.
func TestParallelOutputMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("several small-scale runs; skipped in -short")
	}
	args := []string{"-q", "-experiment", "table1,overcast,dyn-bottleneck", "-scale", "small"}
	_, serial, _ := runCLI(t, append(args, "-parallel", "1")...)
	_, parallel, _ := runCLI(t, append(args, "-parallel", "8")...)
	if serial != parallel {
		t.Fatal("parallel output differs from serial")
	}
	if len(serial) == 0 {
		t.Fatal("no output produced")
	}
}

func TestOutDirWritesTSVFiles(t *testing.T) {
	dir := t.TempDir()
	code, out, _ := runCLI(t, "-q", "-experiment", "table1", "-scale", "small", "-out", dir)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if out != "" {
		t.Errorf("stdout %q, want empty when -out is set", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1-small.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# Table 1") {
		t.Error("TSV file missing result header")
	}
}

// -cpuprofile/-memprofile write non-empty pprof files covering the
// experiment runs, so scale regressions can be diagnosed from the CLI.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	code, out, errb := runCLI(t, "-q", "-experiment", "table1", "-scale", "small",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb)
	}
	if !strings.Contains(out, "Table 1") {
		t.Error("experiment output missing despite profiling")
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestProfileBadPathExits1(t *testing.T) {
	code, _, errb := runCLI(t, "-q", "-experiment", "table1",
		"-cpuprofile", filepath.Join(t.TempDir(), "no/such/dir/cpu.out"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "bullet-sim:") {
		t.Errorf("stderr %q missing error", errb)
	}
}

// The xl scale resolves and sits between medium and paper.
func TestXLScaleRecognized(t *testing.T) {
	code, _, errb := runCLI(t, "-q", "-experiment", "nosuch", "-scale", "xl")
	// Unknown experiment fails with exit 1 *after* scale resolution; a
	// bad scale would have failed with "unknown scale".
	if code != 1 || strings.Contains(errb, "unknown scale") {
		t.Fatalf("xl scale not recognized: exit %d, stderr %s", code, errb)
	}
}

// Execution-knob misuse is rejected up front with a RunConfigError
// naming the flag, before any experiment runs.
func TestRunConfigValidationExits2(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-q", "-experiment", "table1", "-parallel", "0"}, "-parallel 0"},
		{[]string{"-q", "-experiment", "table1", "-parallel", "-3"}, "-parallel -3"},
		// -1 is the auto sentinel (netem.AutoShardCount), so the first
		// plainly-invalid negative is -2.
		{[]string{"-q", "-experiment", "table1", "-shards", "-2"}, "-shards -2"},
	} {
		code, out, errb := runCLI(t, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2", tc.args, code)
		}
		if !strings.Contains(errb, tc.want) {
			t.Errorf("%v: stderr %q missing %q", tc.args, errb, tc.want)
		}
		if out != "" {
			t.Errorf("%v: experiment ran despite invalid config", tc.args)
		}
	}
}

// RunConfig.Validate returns the typed *RunConfigError so callers can
// inspect which knob was bad; a sensible config passes.
func TestRunConfigErrorTyped(t *testing.T) {
	err := RunConfig{Parallel: -1}.Validate()
	var rce *RunConfigError
	if !errors.As(err, &rce) {
		t.Fatalf("wrong error type %T", err)
	}
	if rce.Flag != "parallel" || rce.Value != -1 {
		t.Errorf("error fields Flag=%q Value=%d, want parallel/-1", rce.Flag, rce.Value)
	}
	if err := (RunConfig{Parallel: 4, Shards: 8}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// -shards does not change the output bytes: a sharded run of the same
// experiments is byte-identical to the serial one.
func TestShardedOutputMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("several small-scale runs; skipped in -short")
	}
	args := []string{"-q", "-experiment", "table1,dyn-bottleneck", "-scale", "small"}
	_, serial, _ := runCLI(t, append(args, "-shards", "1")...)
	_, sharded, _ := runCLI(t, append(args, "-shards", "8")...)
	if serial != sharded {
		t.Fatal("sharded output differs from serial")
	}
	if len(serial) == 0 {
		t.Fatal("no output produced")
	}
}

// -shards accepts the word "auto" (stored as netem.AutoShardCount and
// tuned per topology by topology.AutoShards). At small scale auto
// resolves to serial, and — like every shard count — leaves the output
// bytes unchanged.
func TestShardsAutoFlag(t *testing.T) {
	if err := (RunConfig{Parallel: 1, Shards: netem.AutoShardCount}).Validate(); err != nil {
		t.Fatalf("auto sentinel rejected: %v", err)
	}
	var cfg RunConfig
	v := shardsValue{&cfg.Shards}
	if err := v.Set("auto"); err != nil || cfg.Shards != netem.AutoShardCount {
		t.Fatalf("Set(auto): err %v, Shards %d", err, cfg.Shards)
	}
	if v.String() != "auto" {
		t.Fatalf("String() = %q, want %q", v.String(), "auto")
	}
	if err := v.Set("8"); err != nil || cfg.Shards != 8 {
		t.Fatalf("Set(8): err %v, Shards %d", err, cfg.Shards)
	}
	if err := v.Set("eight"); err == nil {
		t.Fatal("Set accepted a non-count, non-auto value")
	}
	if testing.Short() {
		t.Skip("small-scale runs; skipped in -short")
	}
	args := []string{"-q", "-experiment", "table1", "-scale", "small"}
	_, serial, _ := runCLI(t, args...)
	code, auto, _ := runCLI(t, append(args, "-shards", "auto")...)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if auto != serial {
		t.Fatal("-shards auto changed output bytes")
	}
}

func TestShardStatsTableOnStderr(t *testing.T) {
	if testing.Short() {
		t.Skip("small-scale sharded run; skipped in -short")
	}
	args := []string{"-q", "-experiment", "fig6", "-scale", "small", "-shards", "4"}
	code, plain, _ := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	code, out, errb := runCLI(t, append(args, "-shardstats")...)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if out != plain {
		t.Fatal("-shardstats changed stdout bytes")
	}
	if !strings.Contains(errb, "# shard load (K=4)") {
		t.Fatalf("stderr missing shard load header:\n%s", errb)
	}
	if !strings.Contains(errb, "shard\tnodes\tclients\tweight\tevents\tbusy_ms") {
		t.Fatalf("stderr missing shard table columns:\n%s", errb)
	}
	// Four data rows, each with measured events.
	rows := 0
	for _, line := range strings.Split(errb, "\n") {
		f := strings.Split(line, "\t")
		if len(f) == 6 && f[0] != "shard" {
			rows++
			if f[4] == "0" {
				t.Errorf("shard %s reports zero executed events", f[0])
			}
		}
	}
	if rows != 4 {
		t.Fatalf("got %d shard rows, want 4:\n%s", rows, errb)
	}
}

// table1 only generates and measures a topology — it never enters the
// event loop, so there is no load to report. (Serial runs that do
// simulate print their engine total; see
// TestShardStatsEventsSumToSerialTotal.)
func TestShardStatsNoRunRecorded(t *testing.T) {
	code, _, errb := runCLI(t, "-q", "-experiment", "table1", "-scale", "small", "-shardstats")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(errb, "no run recorded") {
		t.Fatalf("stderr missing no-run notice:\n%s", errb)
	}
}

// parseEvents extracts the integer that follows prefix on the matching
// stderr line, e.g. "# global engine: 123 events" -> 123.
func parseEvents(t *testing.T, stderr, prefix string) uint64 {
	t.Helper()
	for _, line := range strings.Split(stderr, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			v, err := strconv.ParseUint(strings.Fields(rest)[0], 10, 64)
			if err != nil {
				t.Fatalf("bad count in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("stderr has no line starting %q:\n%s", prefix, stderr)
	return 0
}

// The -shardstats accounting closes: each shard's executed events plus
// the global engine's sum to the printed total, and that total equals
// the serial run's single-engine count — sharding never adds or drops
// a logical event.
func TestShardStatsEventsSumToSerialTotal(t *testing.T) {
	if testing.Short() {
		t.Skip("two small-scale runs; skipped in -short")
	}
	args := []string{"-q", "-experiment", "fig6", "-scale", "small", "-shardstats"}
	code, _, serialErr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("serial exit %d, want 0", code)
	}
	serialTotal := parseEvents(t, serialErr, "# serial run: all ")

	code, _, shardedErr := runCLI(t, append(args, "-shards", "4")...)
	if code != 0 {
		t.Fatalf("sharded exit %d, want 0", code)
	}
	var shardSum uint64
	rows := 0
	for _, line := range strings.Split(shardedErr, "\n") {
		f := strings.Split(line, "\t")
		if len(f) == 6 && f[0] != "shard" {
			v, err := strconv.ParseUint(f[4], 10, 64)
			if err != nil {
				t.Fatalf("bad events column in %q: %v", line, err)
			}
			shardSum += v
			rows++
		}
	}
	if rows != 4 {
		t.Fatalf("got %d shard rows, want 4:\n%s", rows, shardedErr)
	}
	global := parseEvents(t, shardedErr, "# global engine: ")
	total := parseEvents(t, shardedErr, "# total: ")
	if shardSum+global != total {
		t.Errorf("accounting does not close: shards %d + global %d != total %d", shardSum, global, total)
	}
	if total != serialTotal {
		t.Errorf("sharded total %d != serial total %d", total, serialTotal)
	}
}
