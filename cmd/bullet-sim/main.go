// Command bullet-sim runs the paper's evaluation experiments in the
// deterministic emulator and prints the series each figure plots.
//
// Usage:
//
//	bullet-sim -experiment fig7 -scale small -seed 42
//	bullet-sim -experiment all -scale medium -out results/
//	bullet-sim -experiment fig6,fig7,fig8 -parallel 4
//	bullet-sim -list
//
// Scales: small (seconds of wall-clock), medium, paper (the paper's
// 20,000-node topologies with 1000 participants; minutes to hours).
//
// Multiple experiments (a comma-separated list, or "all") fan out
// across -parallel worker goroutines, each with its own engine and
// emulator. Results are printed in input order and are byte-identical
// to a serial run: every experiment is a pure function of
// (experiment, scale, seed).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bullet/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id, comma-separated list, or \"all\" (see -list)")
		scaleName  = flag.String("scale", "small", "small | medium | paper")
		seed       = flag.Int64("seed", 42, "master RNG seed; runs are a pure function of (experiment, scale, seed)")
		outDir     = flag.String("out", "", "directory for per-experiment TSV files (default: stdout)")
		parallel   = flag.Int("parallel", 0, "worker goroutines for multi-experiment runs (0 = GOMAXPROCS)")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "bullet-sim: -experiment is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}
	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	var ids []string
	if *experiment == "all" {
		ids = experiments.Names()
	} else {
		ids = strings.Split(*experiment, ",")
	}
	runs := make([]experiments.Run, len(ids))
	for i, id := range ids {
		id = strings.TrimSpace(id)
		if _, ok := experiments.Registry[id]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
		}
		runs[i] = experiments.Run{ID: id, Scale: scale, Seed: *seed}
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "running %d experiment(s) at %s scale (seed %d)...\n",
		len(runs), scale.Name, *seed)
	results := experiments.RunAll(runs, *parallel)
	fmt.Fprintf(os.Stderr, "finished in %v\n", time.Since(start).Round(time.Millisecond))

	// Emit every completed result before failing: by this point all runs
	// have been computed, so a single bad experiment must not discard
	// the others' output.
	failed := 0
	for _, rr := range results {
		if rr.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "bullet-sim: %s: %v\n", rr.Run.ID, rr.Err)
			continue
		}
		if *outDir == "" {
			rr.Result.Print(os.Stdout)
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("%s-%s.tsv", rr.Run.ID, scale.Name))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		rr.Result.Print(f)
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d experiment(s) failed", failed, len(results)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bullet-sim:", err)
	os.Exit(1)
}
