// Command bullet-sim runs the paper's evaluation experiments in the
// deterministic emulator and prints the series each figure plots.
//
// Usage:
//
//	bullet-sim -experiment fig7 -scale small -seed 42
//	bullet-sim -experiment all -scale medium -out results/
//	bullet-sim -experiment fig6,fig7,fig8 -parallel 4
//	bullet-sim -experiment churn-xl -scale xl -shards 8
//	bullet-sim -experiment fig7 -scale mega -shards auto
//	bullet-sim -list
//
// Scales: small (seconds of wall-clock), medium, xl (the CI smoke
// point for the scale path), paper (the paper's 20,000-node topologies
// with 1000 participants; minutes to hours). -cpuprofile and
// -memprofile write pprof profiles covering exactly the experiment
// runs, for diagnosing scale regressions without editing code.
//
// Besides the paper's tables and figures, the dyn-* experiments replay
// deterministic network-dynamics scenarios (transient bottlenecks,
// partitions, flash crowds, oscillating links) against Bullet and the
// plain streaming baseline; see -list for ids.
//
// Execution knobs are orthogonal to what the experiments compute and
// never change output bytes. Multiple experiments (a comma-separated
// list, or "all") fan out across -parallel worker goroutines, each
// with its own engine and emulator; -shards additionally partitions
// every run's topology into that many conservatively synchronized
// simulation shards (see the README's "Parallel simulation" section).
// Results are printed in input order and are byte-identical to a
// serial run: every experiment is a pure function of
// (experiment, scale, seed). Unknown experiment ids fail the command
// with a non-zero exit, but only after every completed result has been
// emitted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"bullet/internal/experiments"
	"bullet/internal/netem"
)

// RunConfig bundles the execution knobs of one bullet-sim invocation —
// how the experiments execute, as opposed to what they compute. None
// of these fields may change output bytes; they are validated as one
// unit so misuse fails before any computation starts.
type RunConfig struct {
	Parallel   int    // worker goroutines across experiments (> 0)
	Shards     int    // simulation shards within each run (0 or 1 = serial)
	CPUProfile string // CPU profile path covering the runs ("" = off)
	MemProfile string // allocation profile path, written after the runs ("" = off)
}

// RunConfigError reports an invalid execution knob, naming the flag it
// came from.
type RunConfigError struct {
	Flag  string // flag name without the dash, e.g. "parallel"
	Value int
	Why   string
}

func (e *RunConfigError) Error() string {
	return fmt.Sprintf("-%s %d: %s", e.Flag, e.Value, e.Why)
}

// Validate rejects nonsensical execution configurations with a
// *RunConfigError.
func (c RunConfig) Validate() error {
	if c.Parallel <= 0 {
		return &RunConfigError{Flag: "parallel", Value: c.Parallel,
			Why: "worker count must be positive"}
	}
	if c.Shards < 0 && c.Shards != netem.AutoShardCount {
		return &RunConfigError{Flag: "shards", Value: c.Shards,
			Why: "shard count cannot be negative (0 or 1 means serial, \"auto\" tunes it)"}
	}
	return nil
}

// shardsValue is the -shards flag: a non-negative shard count, or the
// word "auto" to let topology.AutoShards size the partition from the
// topology's load and the machine's cores (stored as
// netem.AutoShardCount).
type shardsValue struct{ v *int }

func (s shardsValue) String() string {
	if s.v == nil {
		return "0"
	}
	if *s.v == netem.AutoShardCount {
		return "auto"
	}
	return strconv.Itoa(*s.v)
}

func (s shardsValue) Set(raw string) error {
	if raw == "auto" {
		*s.v = netem.AutoShardCount
		return nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return fmt.Errorf("want a shard count or \"auto\", got %q", raw)
	}
	*s.v = n
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: argv without the program
// name, and the two output streams. It returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bullet-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "", "experiment id, comma-separated list, or \"all\" (see -list)")
		scaleName  = fs.String("scale", "small", "small | medium | xl | paper")
		seed       = fs.Int64("seed", 42, "master RNG seed; runs are a pure function of (experiment, scale, seed)")
		outDir     = fs.String("out", "", "directory for per-experiment TSV files (default: stdout)")
		list       = fs.Bool("list", false, "list experiments and exit")
		quiet      = fs.Bool("q", false, "suppress progress output")
		cfg        RunConfig
	)
	fs.IntVar(&cfg.Parallel, "parallel", runtime.GOMAXPROCS(0), "worker goroutines for multi-experiment runs")
	fs.Var(shardsValue{&cfg.Shards}, "shards", "simulation shards per experiment run (0 or 1 = serial, \"auto\" = tuned to topology and cores; output is identical at any value)")
	shardStats := fs.Bool("shardstats", false, "print executed-event accounting to stderr after the runs: a per-shard load table plus global/total event counts for sharded runs, the single-engine total for serial ones (for partition-balance diagnosis; most useful with a single experiment)")
	fs.StringVar(&cfg.CPUProfile, "cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	fs.StringVar(&cfg.MemProfile, "memprofile", "", "write an allocation profile (after the runs) to this file")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Fprintf(stdout, "%-16s  %s\n", n, experiments.Registry[n].Desc)
		}
		return 0
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "bullet-sim:", err)
		return 2
	}
	if *experiment == "" {
		fmt.Fprintln(stderr, "bullet-sim: -experiment is required (or -list)")
		fs.Usage()
		return 2
	}
	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(stderr, "bullet-sim:", err)
		return 1
	}
	scale.Shards = cfg.Shards
	var statsRec *shardStatsRecorder
	if *shardStats {
		statsRec = &shardStatsRecorder{}
		scale.ShardStatsSink = statsRec.record
	}
	var ids []string
	if *experiment == "all" {
		ids = experiments.Names()
	} else {
		ids = strings.Split(*experiment, ",")
	}
	runs := make([]experiments.Run, len(ids))
	for i, id := range ids {
		// Unknown ids are not rejected up front: they flow through the
		// runner as per-run errors so every valid experiment in the list
		// still executes and prints before the non-zero exit.
		runs[i] = experiments.Run{ID: strings.TrimSpace(id), Scale: scale, Seed: *seed}
	}

	// Profiling hooks: scale regressions at xl/paper are diagnosed by
	// rerunning the same experiment with -cpuprofile/-memprofile, no
	// code edits needed. Profiles cover exactly the experiment runs.
	// Both files are created up front: an unwritable path must fail
	// before minutes of computation, not discard completed results.
	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			fmt.Fprintln(stderr, "bullet-sim:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "bullet-sim:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	var memFile *os.File
	if cfg.MemProfile != "" {
		f, err := os.Create(cfg.MemProfile)
		if err != nil {
			fmt.Fprintln(stderr, "bullet-sim:", err)
			return 1
		}
		memFile = f
	}

	start := time.Now()
	if !*quiet {
		fmt.Fprintf(stderr, "running %d experiment(s) at %s scale (seed %d)...\n",
			len(runs), scale.Name, *seed)
	}
	results := experiments.RunAll(runs, cfg.Parallel)
	if !*quiet {
		fmt.Fprintf(stderr, "finished in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if statsRec != nil {
		// Stats go to stderr: stdout carries the TSV results and must
		// stay byte-identical with and without the flag.
		statsRec.print(stderr)
	}
	profileFailed := false
	if memFile != nil {
		runtime.GC() // flush accounting so the profile reflects the runs
		err := pprof.Lookup("allocs").WriteTo(memFile, 0)
		if cerr := memFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			// Results are still emitted below; report the profile
			// failure and reflect it in the exit code at the end.
			fmt.Fprintln(stderr, "bullet-sim:", err)
			profileFailed = true
		}
	}

	// Emit every completed result before failing: by this point all runs
	// have been computed, so a single bad experiment must not discard
	// the others' output.
	failed := 0
	for _, rr := range results {
		if rr.Err != nil {
			failed++
			fmt.Fprintf(stderr, "bullet-sim: %s: %v\n", rr.Run.ID, rr.Err)
			continue
		}
		if *outDir == "" {
			rr.Result.Print(stdout)
			continue
		}
		if err := writeResult(*outDir, rr, scale.Name, stderr); err != nil {
			fmt.Fprintln(stderr, "bullet-sim:", err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "bullet-sim: %d of %d experiment(s) failed\n", failed, len(results))
		return 1
	}
	if profileFailed {
		return 1
	}
	return 0
}

// shardStatsRecorder collects executed-event accounting from
// experiment worlds. Counters are cumulative, so each world's latest
// report supersedes its earlier ones; the recorder keeps the final
// load seen (with several experiments in flight, that is the last
// world to finish a run segment — the flag is aimed at
// single-experiment use).
type shardStatsRecorder struct {
	mu   sync.Mutex
	last netem.RunLoad
	seen bool
}

func (r *shardStatsRecorder) record(l netem.RunLoad) {
	r.mu.Lock()
	r.last = netem.RunLoad{
		Shards:       append(r.last.Shards[:0], l.Shards...),
		GlobalEvents: l.GlobalEvents,
	}
	r.seen = true
	r.mu.Unlock()
}

func (r *shardStatsRecorder) print(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.seen {
		fmt.Fprintln(w, "# shard stats: no run recorded")
		return
	}
	l := r.last
	if len(l.Shards) == 0 {
		// Serial runs report their single-engine count: it is the total
		// any sharded run of the same experiment must reproduce.
		fmt.Fprintf(w, "# serial run: all %d events on the global engine\n", l.GlobalEvents)
		return
	}
	fmt.Fprintf(w, "# shard load (K=%d)\n", len(l.Shards))
	fmt.Fprintln(w, "shard\tnodes\tclients\tweight\tevents\tbusy_ms")
	for _, s := range l.Shards {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.1f\n",
			s.Shard, s.Nodes, s.Clients, s.Weight, s.Events,
			float64(s.BusyNanos)/1e6)
	}
	fmt.Fprintf(w, "# global engine: %d events\n", l.GlobalEvents)
	fmt.Fprintf(w, "# total: %d events (identical for any -shards value)\n", l.TotalEvents())
}

func writeResult(dir string, rr experiments.RunResult, scaleName string, stderr io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.tsv", rr.Run.ID, scaleName))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rr.Result.Print(f)
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}
