// Command bullet-sim runs the paper's evaluation experiments in the
// deterministic emulator and prints the series each figure plots.
//
// Usage:
//
//	bullet-sim -experiment fig7 -scale small -seed 42
//	bullet-sim -experiment all -scale medium -out results/
//	bullet-sim -list
//
// Scales: small (seconds of wall-clock), medium, paper (the paper's
// 20,000-node topologies with 1000 participants; minutes to hours).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bullet/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (table1, fig6..fig15, overcast, all)")
		scaleName  = flag.String("scale", "small", "small | medium | paper")
		seed       = flag.Int64("seed", 42, "master RNG seed; runs are a pure function of (experiment, scale, seed)")
		outDir     = flag.String("out", "", "directory for per-experiment TSV files (default: stdout)")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "bullet-sim: -experiment is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}
	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	ids := []string{*experiment}
	if *experiment == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		runner, ok := experiments.Registry[id]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s at %s scale (seed %d)...\n", id, scale.Name, *seed)
		res, err := runner(scale, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s finished in %v\n", id, time.Since(start).Round(time.Millisecond))
		if *outDir == "" {
			res.Print(os.Stdout)
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("%s-%s.tsv", id, scale.Name))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		res.Print(f)
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bullet-sim:", err)
	os.Exit(1)
}
