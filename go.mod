module bullet

go 1.24
