package bullet_test

import (
	"strings"
	"testing"

	"bullet"
)

func TestNewWorldDefaults(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Participants()) != 40 {
		t.Fatalf("default clients = %d, want 40", len(w.Participants()))
	}
	if w.Now() != 0 {
		t.Fatal("fresh world clock nonzero")
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() float64 {
		w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 1000, Clients: 20, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		tree, err := w.RandomTree(4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := bullet.DefaultConfig(400)
		cfg.Duration = 60 * bullet.Second
		cfg.MaxSenders, cfg.MaxReceivers = 4, 4
		d, err := w.Deploy(bullet.BulletProtocol{Config: cfg}, tree)
		if err != nil {
			t.Fatal(err)
		}
		col := d.Collector()
		w.Run(70 * bullet.Second)
		return col.MeanOver(0, 70*bullet.Second, bullet.Useful)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical seeds diverged: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	_, err := bullet.RunExperiment("fig99", bullet.SmallScale, 1)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	ue, ok := err.(*bullet.UnknownExperimentError)
	if !ok {
		t.Fatalf("wrong error type %T", err)
	}
	if ue.Suggestion != "fig9" {
		t.Errorf("suggestion %q, want fig9", ue.Suggestion)
	}
	if !strings.Contains(err.Error(), `did you mean "fig9"?`) {
		t.Errorf("error %q missing did-you-mean", err.Error())
	}
}

func TestExperimentsListed(t *testing.T) {
	ids := bullet.Experiments()
	if len(ids) != 28 {
		t.Fatalf("%d experiments, want 28", len(ids))
	}
	listed := make(map[string]bool, len(ids))
	for _, id := range ids {
		listed[id] = true
	}
	for _, id := range []string{
		"dyn-bottleneck", "dyn-partition", "dyn-flashcrowd", "dyn-oscillate",
		"churn-crash25", "churn-crashheal", "churn-rolling", "churn-join",
		"churn-xl", "filedist-compare", "vbr-stream",
		"adv-freeride", "adv-liar", "adv-cutvertex", "adv-joinstorm",
		"adv-ballotstuff",
	} {
		if !listed[id] {
			t.Errorf("experiment %q not listed", id)
		}
	}
}

func TestFacadeTreeBuilders(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 800, Clients: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range map[string]func() (*bullet.Tree, error){
		"random":     func() (*bullet.Tree, error) { return w.RandomTree(4) },
		"bottleneck": func() (*bullet.Tree, error) { return w.BottleneckTree() },
		"overcast":   func() (*bullet.Tree, error) { return w.OvercastTree(4) },
	} {
		tree, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tree.Validate(w.Participants()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	w, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 800, Clients: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Deploy(bullet.GossipProtocol{Config: bullet.GossipConfig{
		RateKbps: 300, PacketSize: 1500, Duration: 30 * bullet.Second,
	}}, nil); err != nil {
		t.Fatal(err)
	}
	w.Run(40 * bullet.Second)

	w2, err := bullet.NewWorld(bullet.WorldConfig{TotalNodes: 800, Clients: 15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w2.RandomTree(4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := w2.Deploy(bullet.AntiEntropyProtocol{Config: bullet.AntiEntropyConfig{
		RateKbps: 300, PacketSize: 1500, Duration: 40 * bullet.Second,
	}}, tree)
	if err != nil {
		t.Fatal(err)
	}
	col := d.Collector()
	w2.Run(60 * bullet.Second)
	if col.Total(bullet.Useful) == 0 {
		t.Fatal("anti-entropy delivered nothing")
	}
}
